#!/usr/bin/env python3
"""Compare a BENCH_*.json artifact against its committed baseline.

Usage:  tools/bench_diff.py <current.json> <baseline.json>

The bench is identified by the "bench" field every artifact records in
its header (bench_util.h json_header). For each headline metric the
spec below names, the current value is checked against the baseline:

  * direction "lower"/"higher" — which way is better. Improvements
    never fail; only regressions past the tolerance do.
  * mode "rel" — tolerance is a relative fraction of the baseline
    (default 0.15: a >15% regression fails, per the CI gate policy).
  * mode "abs" — tolerance is an absolute delta; used for fractions
    near zero (a relative check against ~0 is meaningless) and for
    deterministic byte/tuple counts (tolerance 0: any drift means the
    migration protocol changed shape and the baseline must be
    regenerated deliberately).

Exit code 0 when everything holds, 1 with a per-metric report when any
headline number regressed, 2 on malformed input.
"""

import json
import sys

# (dotted path, direction, mode, tolerance)
SPECS = {
    "elastic_migration": [
        # Deterministic given the pinned seed: routing counts and the
        # migration protocol's shipped state. Tight/exact on purpose.
        ("skew.zipf_balanced_imbalance", "lower", "rel", 0.15),
        ("skew.zipf_static_imbalance", "lower", "rel", 0.15),
        ("pause.moved_tuples", "lower", "abs", 0.0),
        ("pause.image_bytes", "lower", "abs", 0.0),
        # Wall-clock: generous, still catches order-of-magnitude slips.
        ("pause.grow_p99_ms", "lower", "rel", 1.0),
        ("pause.shrink_p99_ms", "lower", "rel", 1.0),
        # Fraction near zero: absolute band. Wide enough that any dip
        # passing the bench's own <0.10 claim also passes here even
        # from a slightly negative baseline.
        ("steady_state.dip_fraction", "lower", "abs", 0.15),
    ],
    "sw_batch_sweep": [
        ("splitjoin_best_speedup", "higher", "rel", 0.15),
        # Indexed vs full-lane scan at the window-2^17 headline point.
        ("indexed_vs_scan_speedup", "higher", "rel", 0.15),
    ],
    "kernel_cycles": [
        # Cycles/probe of the explicit kernels (rdtsc, CV-gated in the
        # bench itself): a >15% cycles/tuple regression fails.
        ("scan_simd.cycles_per_probe", "lower", "rel", 0.15),
        ("indexed.cycles_per_probe", "lower", "rel", 0.15),
        ("hash_fib_hi16.cycles_per_probe", "lower", "rel", 0.15),
        ("indexed_vs_scan_speedup", "higher", "rel", 0.15),
    ],
    "serve_multi_tenant": [
        # Wall-clock ratios of same-process measurements: stable in
        # direction, generous in magnitude on shared CI hardware.
        ("scaling_64.speedup", "higher", "rel", 0.5),
        ("scaling_256.speedup", "higher", "rel", 0.5),
        # Deterministic given the pinned seed and query pool: the global
        # plan's size and the shared-window census. Exact on purpose —
        # drift means the canonicalizer or the store changed shape.
        ("sharing.nodes_live", "lower", "abs", 0.0),
        ("sharing.windows_live", "lower", "abs", 0.0),
        # Fraction near zero (the bench claims <= 0.20).
        # Wide tolerance: the baseline run's best paired rep can land
        # slightly negative, and the bench's own claim gate allows +0.20.
        ("admission.quota_p99_degradation", "lower", "abs", 0.5),
    ],
    "sim_scale": [
        # Byte-identity of threaded runs against the serial oracle: exact
        # on purpose — any divergence is a kernel bug, never a perf matter.
        ("uniflow_2048_f2.identical", "higher", "abs", 0.0),
        ("opchain_1024.identical", "higher", "abs", 0.0),
        # Deterministic partition shape of the largest fabric: drift means
        # the partitioner or the engines' link declarations changed shape
        # and the baseline must be regenerated deliberately.
        ("uniflow_2048_f2.partition_cut_links", "lower", "abs", 0.0),
        # Wall-clock serial throughput: generous on shared CI hardware,
        # still catches order-of-magnitude slips in the stepper hot loop.
        ("uniflow_2048_f2.serial_mevals_per_sec", "higher", "rel", 0.5),
    ],
    "overload_guard": [
        # Wall-clock p99 ratio (guarded / unguarded under overload): the
        # injected delays dominate the host, so the direction is stable;
        # the absolute band just requires shedding to keep a real margin
        # below the unguarded latency.
        ("overload.p99_ratio", "lower", "abs", 0.35),
        # Deterministic for the pinned fault schedule: the phi-accrual
        # math fixes the conviction step (±1 epoch of EWMA slack), the
        # keyslot map fixes what a quarantine moves, and the right shard
        # is a correctness bit, not a perf number.
        ("detection.epochs_to_quarantine", "lower", "abs", 1.0),
        ("detection.moved_keyslots", "lower", "abs", 0.0),
        ("detection.right_shard", "higher", "abs", 0.0),
        # Throughput ratio near 1: absolute band generous enough for
        # shared CI hardware, still catches an accidental always-on
        # ingress copy.
        ("tax.observe_ratio", "higher", "abs", 0.4),
    ],
    "recovery_cost": [
        # Fractions (the bench claims log_overhead < 0.02).
        ("fast_path.log_overhead", "lower", "abs", 0.02),
        ("fast_path.ckpt_overhead", "lower", "abs", 0.05),
        # Exactness: recovery must never lose tuples.
        ("mttr.lost_tuples", "lower", "abs", 0.0),
        ("mttr.mean_us", "lower", "rel", 1.0),
    ],
}


def lookup(doc, dotted):
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[2])
        return 2
    try:
        with open(argv[1]) as f:
            current = json.load(f)
        with open(argv[2]) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot load inputs: {err}")
        return 2

    bench = current.get("bench")
    if bench != baseline.get("bench"):
        print(f"bench_diff: bench mismatch: {bench!r} vs "
              f"{baseline.get('bench')!r}")
        return 2
    spec = SPECS.get(bench)
    if spec is None:
        print(f"bench_diff: no headline spec for bench {bench!r} "
              f"(known: {', '.join(sorted(SPECS))})")
        return 2

    failures = 0
    print(f"bench_diff: {bench} ({argv[1]} vs baseline {argv[2]})")
    for path, direction, mode, tol in spec:
        cur = lookup(current, path)
        base = lookup(baseline, path)
        if cur is None or base is None:
            print(f"  FAIL {path}: missing "
                  f"({'current' if cur is None else 'baseline'})")
            failures += 1
            continue
        # Signed regression: positive = worse than baseline.
        regression = (cur - base) if direction == "lower" else (base - cur)
        if mode == "rel":
            allowed = abs(base) * tol
            shown = (f"{regression / abs(base) * 100.0:+.1f}%"
                     if base else f"{regression:+g}")
        else:
            allowed = tol
            shown = f"{regression:+g}"
        ok = regression <= allowed
        print(f"  {'ok  ' if ok else 'FAIL'} {path}: {cur:g} "
              f"(baseline {base:g}, {direction} is better, "
              f"regression {shown}, tol {mode} {tol:g})")
        failures += 0 if ok else 1

    if failures:
        print(f"bench_diff: {failures} headline metric(s) regressed past "
              "tolerance")
        return 1
    print("bench_diff: all headline metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
