# Empty dependencies file for hal_common.
# This may be replaced when dependencies are built.
