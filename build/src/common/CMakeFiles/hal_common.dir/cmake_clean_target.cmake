file(REMOVE_RECURSE
  "libhal_common.a"
)
