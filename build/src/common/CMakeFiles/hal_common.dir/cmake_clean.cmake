file(REMOVE_RECURSE
  "CMakeFiles/hal_common.dir/table.cc.o"
  "CMakeFiles/hal_common.dir/table.cc.o.d"
  "libhal_common.a"
  "libhal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
