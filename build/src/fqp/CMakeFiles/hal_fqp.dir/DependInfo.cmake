
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fqp/assigner.cc" "src/fqp/CMakeFiles/hal_fqp.dir/assigner.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/assigner.cc.o.d"
  "/root/repo/src/fqp/boolean_select.cc" "src/fqp/CMakeFiles/hal_fqp.dir/boolean_select.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/boolean_select.cc.o.d"
  "/root/repo/src/fqp/multi_query.cc" "src/fqp/CMakeFiles/hal_fqp.dir/multi_query.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/multi_query.cc.o.d"
  "/root/repo/src/fqp/op_block.cc" "src/fqp/CMakeFiles/hal_fqp.dir/op_block.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/op_block.cc.o.d"
  "/root/repo/src/fqp/query.cc" "src/fqp/CMakeFiles/hal_fqp.dir/query.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/query.cc.o.d"
  "/root/repo/src/fqp/temporal.cc" "src/fqp/CMakeFiles/hal_fqp.dir/temporal.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/temporal.cc.o.d"
  "/root/repo/src/fqp/topology.cc" "src/fqp/CMakeFiles/hal_fqp.dir/topology.cc.o" "gcc" "src/fqp/CMakeFiles/hal_fqp.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/hal_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
