file(REMOVE_RECURSE
  "libhal_fqp.a"
)
