file(REMOVE_RECURSE
  "CMakeFiles/hal_fqp.dir/assigner.cc.o"
  "CMakeFiles/hal_fqp.dir/assigner.cc.o.d"
  "CMakeFiles/hal_fqp.dir/boolean_select.cc.o"
  "CMakeFiles/hal_fqp.dir/boolean_select.cc.o.d"
  "CMakeFiles/hal_fqp.dir/multi_query.cc.o"
  "CMakeFiles/hal_fqp.dir/multi_query.cc.o.d"
  "CMakeFiles/hal_fqp.dir/op_block.cc.o"
  "CMakeFiles/hal_fqp.dir/op_block.cc.o.d"
  "CMakeFiles/hal_fqp.dir/query.cc.o"
  "CMakeFiles/hal_fqp.dir/query.cc.o.d"
  "CMakeFiles/hal_fqp.dir/temporal.cc.o"
  "CMakeFiles/hal_fqp.dir/temporal.cc.o.d"
  "CMakeFiles/hal_fqp.dir/topology.cc.o"
  "CMakeFiles/hal_fqp.dir/topology.cc.o.d"
  "libhal_fqp.a"
  "libhal_fqp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_fqp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
