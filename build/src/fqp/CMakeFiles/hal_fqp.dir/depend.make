# Empty dependencies file for hal_fqp.
# This may be replaced when dependencies are built.
