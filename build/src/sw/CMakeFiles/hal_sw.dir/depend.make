# Empty dependencies file for hal_sw.
# This may be replaced when dependencies are built.
