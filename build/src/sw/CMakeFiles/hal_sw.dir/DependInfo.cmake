
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/batch_join.cc" "src/sw/CMakeFiles/hal_sw.dir/batch_join.cc.o" "gcc" "src/sw/CMakeFiles/hal_sw.dir/batch_join.cc.o.d"
  "/root/repo/src/sw/handshake_join.cc" "src/sw/CMakeFiles/hal_sw.dir/handshake_join.cc.o" "gcc" "src/sw/CMakeFiles/hal_sw.dir/handshake_join.cc.o.d"
  "/root/repo/src/sw/splitjoin.cc" "src/sw/CMakeFiles/hal_sw.dir/splitjoin.cc.o" "gcc" "src/sw/CMakeFiles/hal_sw.dir/splitjoin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/hal_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
