file(REMOVE_RECURSE
  "libhal_sw.a"
)
