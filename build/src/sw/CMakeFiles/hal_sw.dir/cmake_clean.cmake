file(REMOVE_RECURSE
  "CMakeFiles/hal_sw.dir/batch_join.cc.o"
  "CMakeFiles/hal_sw.dir/batch_join.cc.o.d"
  "CMakeFiles/hal_sw.dir/handshake_join.cc.o"
  "CMakeFiles/hal_sw.dir/handshake_join.cc.o.d"
  "CMakeFiles/hal_sw.dir/splitjoin.cc.o"
  "CMakeFiles/hal_sw.dir/splitjoin.cc.o.d"
  "libhal_sw.a"
  "libhal_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
