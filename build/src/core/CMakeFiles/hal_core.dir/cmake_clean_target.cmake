file(REMOVE_RECURSE
  "libhal_core.a"
)
