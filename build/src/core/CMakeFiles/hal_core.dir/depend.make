# Empty dependencies file for hal_core.
# This may be replaced when dependencies are built.
