file(REMOVE_RECURSE
  "CMakeFiles/hal_core.dir/harness.cc.o"
  "CMakeFiles/hal_core.dir/harness.cc.o.d"
  "CMakeFiles/hal_core.dir/stream_join.cc.o"
  "CMakeFiles/hal_core.dir/stream_join.cc.o.d"
  "libhal_core.a"
  "libhal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
