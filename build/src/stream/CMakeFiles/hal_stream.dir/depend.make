# Empty dependencies file for hal_stream.
# This may be replaced when dependencies are built.
