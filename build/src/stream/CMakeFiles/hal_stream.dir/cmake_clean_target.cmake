file(REMOVE_RECURSE
  "libhal_stream.a"
)
