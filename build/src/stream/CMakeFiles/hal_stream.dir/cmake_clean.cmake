file(REMOVE_RECURSE
  "CMakeFiles/hal_stream.dir/generator.cc.o"
  "CMakeFiles/hal_stream.dir/generator.cc.o.d"
  "CMakeFiles/hal_stream.dir/join_spec.cc.o"
  "CMakeFiles/hal_stream.dir/join_spec.cc.o.d"
  "CMakeFiles/hal_stream.dir/reference_join.cc.o"
  "CMakeFiles/hal_stream.dir/reference_join.cc.o.d"
  "CMakeFiles/hal_stream.dir/tuple.cc.o"
  "CMakeFiles/hal_stream.dir/tuple.cc.o.d"
  "libhal_stream.a"
  "libhal_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
