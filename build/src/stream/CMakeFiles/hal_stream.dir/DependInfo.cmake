
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/generator.cc" "src/stream/CMakeFiles/hal_stream.dir/generator.cc.o" "gcc" "src/stream/CMakeFiles/hal_stream.dir/generator.cc.o.d"
  "/root/repo/src/stream/join_spec.cc" "src/stream/CMakeFiles/hal_stream.dir/join_spec.cc.o" "gcc" "src/stream/CMakeFiles/hal_stream.dir/join_spec.cc.o.d"
  "/root/repo/src/stream/reference_join.cc" "src/stream/CMakeFiles/hal_stream.dir/reference_join.cc.o" "gcc" "src/stream/CMakeFiles/hal_stream.dir/reference_join.cc.o.d"
  "/root/repo/src/stream/tuple.cc" "src/stream/CMakeFiles/hal_stream.dir/tuple.cc.o" "gcc" "src/stream/CMakeFiles/hal_stream.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
