# Empty dependencies file for hal_dist.
# This may be replaced when dependencies are built.
