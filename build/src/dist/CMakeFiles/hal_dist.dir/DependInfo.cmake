
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/deployments.cc" "src/dist/CMakeFiles/hal_dist.dir/deployments.cc.o" "gcc" "src/dist/CMakeFiles/hal_dist.dir/deployments.cc.o.d"
  "/root/repo/src/dist/path_model.cc" "src/dist/CMakeFiles/hal_dist.dir/path_model.cc.o" "gcc" "src/dist/CMakeFiles/hal_dist.dir/path_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
