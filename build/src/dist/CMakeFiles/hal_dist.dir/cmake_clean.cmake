file(REMOVE_RECURSE
  "CMakeFiles/hal_dist.dir/deployments.cc.o"
  "CMakeFiles/hal_dist.dir/deployments.cc.o.d"
  "CMakeFiles/hal_dist.dir/path_model.cc.o"
  "CMakeFiles/hal_dist.dir/path_model.cc.o.d"
  "libhal_dist.a"
  "libhal_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
