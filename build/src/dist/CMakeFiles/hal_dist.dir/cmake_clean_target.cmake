file(REMOVE_RECURSE
  "libhal_dist.a"
)
