
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/biflow/biflow_core.cc" "src/hw/CMakeFiles/hal_hw.dir/biflow/biflow_core.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/biflow/biflow_core.cc.o.d"
  "/root/repo/src/hw/biflow/engine.cc" "src/hw/CMakeFiles/hal_hw.dir/biflow/engine.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/biflow/engine.cc.o.d"
  "/root/repo/src/hw/common/network_builder.cc" "src/hw/CMakeFiles/hal_hw.dir/common/network_builder.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/common/network_builder.cc.o.d"
  "/root/repo/src/hw/common/word.cc" "src/hw/CMakeFiles/hal_hw.dir/common/word.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/common/word.cc.o.d"
  "/root/repo/src/hw/model/device.cc" "src/hw/CMakeFiles/hal_hw.dir/model/device.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/model/device.cc.o.d"
  "/root/repo/src/hw/model/resource_model.cc" "src/hw/CMakeFiles/hal_hw.dir/model/resource_model.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/model/resource_model.cc.o.d"
  "/root/repo/src/hw/model/timing_model.cc" "src/hw/CMakeFiles/hal_hw.dir/model/timing_model.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/model/timing_model.cc.o.d"
  "/root/repo/src/hw/opchain/op_chain_engine.cc" "src/hw/CMakeFiles/hal_hw.dir/opchain/op_chain_engine.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/opchain/op_chain_engine.cc.o.d"
  "/root/repo/src/hw/opchain/select_core.cc" "src/hw/CMakeFiles/hal_hw.dir/opchain/select_core.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/opchain/select_core.cc.o.d"
  "/root/repo/src/hw/uniflow/engine.cc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/engine.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/engine.cc.o.d"
  "/root/repo/src/hw/uniflow/hash_join_core.cc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/hash_join_core.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/hash_join_core.cc.o.d"
  "/root/repo/src/hw/uniflow/join_core.cc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/join_core.cc.o" "gcc" "src/hw/CMakeFiles/hal_hw.dir/uniflow/join_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/hal_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
