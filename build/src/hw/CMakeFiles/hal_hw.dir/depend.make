# Empty dependencies file for hal_hw.
# This may be replaced when dependencies are built.
