file(REMOVE_RECURSE
  "CMakeFiles/hal_hw.dir/biflow/biflow_core.cc.o"
  "CMakeFiles/hal_hw.dir/biflow/biflow_core.cc.o.d"
  "CMakeFiles/hal_hw.dir/biflow/engine.cc.o"
  "CMakeFiles/hal_hw.dir/biflow/engine.cc.o.d"
  "CMakeFiles/hal_hw.dir/common/network_builder.cc.o"
  "CMakeFiles/hal_hw.dir/common/network_builder.cc.o.d"
  "CMakeFiles/hal_hw.dir/common/word.cc.o"
  "CMakeFiles/hal_hw.dir/common/word.cc.o.d"
  "CMakeFiles/hal_hw.dir/model/device.cc.o"
  "CMakeFiles/hal_hw.dir/model/device.cc.o.d"
  "CMakeFiles/hal_hw.dir/model/resource_model.cc.o"
  "CMakeFiles/hal_hw.dir/model/resource_model.cc.o.d"
  "CMakeFiles/hal_hw.dir/model/timing_model.cc.o"
  "CMakeFiles/hal_hw.dir/model/timing_model.cc.o.d"
  "CMakeFiles/hal_hw.dir/opchain/op_chain_engine.cc.o"
  "CMakeFiles/hal_hw.dir/opchain/op_chain_engine.cc.o.d"
  "CMakeFiles/hal_hw.dir/opchain/select_core.cc.o"
  "CMakeFiles/hal_hw.dir/opchain/select_core.cc.o.d"
  "CMakeFiles/hal_hw.dir/uniflow/engine.cc.o"
  "CMakeFiles/hal_hw.dir/uniflow/engine.cc.o.d"
  "CMakeFiles/hal_hw.dir/uniflow/hash_join_core.cc.o"
  "CMakeFiles/hal_hw.dir/uniflow/hash_join_core.cc.o.d"
  "CMakeFiles/hal_hw.dir/uniflow/join_core.cc.o"
  "CMakeFiles/hal_hw.dir/uniflow/join_core.cc.o.d"
  "libhal_hw.a"
  "libhal_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
