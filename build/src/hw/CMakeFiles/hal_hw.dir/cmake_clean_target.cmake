file(REMOVE_RECURSE
  "libhal_hw.a"
)
