# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/uniflow_engine_test[1]_include.cmake")
include("/root/repo/build/tests/biflow_engine_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/splitjoin_test[1]_include.cmake")
include("/root/repo/build/tests/handshake_join_test[1]_include.cmake")
include("/root/repo/build/tests/batch_join_test[1]_include.cmake")
include("/root/repo/build/tests/facade_test[1]_include.cmake")
include("/root/repo/build/tests/fqp_test[1]_include.cmake")
include("/root/repo/build/tests/boolean_select_test[1]_include.cmake")
include("/root/repo/build/tests/multi_query_test[1]_include.cmake")
include("/root/repo/build/tests/path_model_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_components_test[1]_include.cmake")
include("/root/repo/build/tests/opchain_test[1]_include.cmake")
include("/root/repo/build/tests/drivers_channel_test[1]_include.cmake")
