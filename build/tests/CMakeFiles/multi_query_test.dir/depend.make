# Empty dependencies file for multi_query_test.
# This may be replaced when dependencies are built.
