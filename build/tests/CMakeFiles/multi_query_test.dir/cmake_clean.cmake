file(REMOVE_RECURSE
  "CMakeFiles/multi_query_test.dir/fqp/multi_query_test.cc.o"
  "CMakeFiles/multi_query_test.dir/fqp/multi_query_test.cc.o.d"
  "multi_query_test"
  "multi_query_test.pdb"
  "multi_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
