
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/sim_test.cc" "tests/CMakeFiles/sim_test.dir/sim/sim_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hal_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/hal_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/fqp/CMakeFiles/hal_fqp.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/hal_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hal_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
