file(REMOVE_RECURSE
  "CMakeFiles/fqp_test.dir/fqp/fqp_test.cc.o"
  "CMakeFiles/fqp_test.dir/fqp/fqp_test.cc.o.d"
  "fqp_test"
  "fqp_test.pdb"
  "fqp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fqp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
