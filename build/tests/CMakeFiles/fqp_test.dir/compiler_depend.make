# Empty compiler generated dependencies file for fqp_test.
# This may be replaced when dependencies are built.
