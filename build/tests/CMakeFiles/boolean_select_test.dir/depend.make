# Empty dependencies file for boolean_select_test.
# This may be replaced when dependencies are built.
