file(REMOVE_RECURSE
  "CMakeFiles/boolean_select_test.dir/fqp/boolean_select_test.cc.o"
  "CMakeFiles/boolean_select_test.dir/fqp/boolean_select_test.cc.o.d"
  "boolean_select_test"
  "boolean_select_test.pdb"
  "boolean_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
