file(REMOVE_RECURSE
  "CMakeFiles/facade_test.dir/core/facade_test.cc.o"
  "CMakeFiles/facade_test.dir/core/facade_test.cc.o.d"
  "facade_test"
  "facade_test.pdb"
  "facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
