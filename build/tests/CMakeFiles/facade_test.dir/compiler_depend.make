# Empty compiler generated dependencies file for facade_test.
# This may be replaced when dependencies are built.
