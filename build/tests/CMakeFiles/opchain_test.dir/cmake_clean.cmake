file(REMOVE_RECURSE
  "CMakeFiles/opchain_test.dir/hw/opchain_test.cc.o"
  "CMakeFiles/opchain_test.dir/hw/opchain_test.cc.o.d"
  "opchain_test"
  "opchain_test.pdb"
  "opchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
