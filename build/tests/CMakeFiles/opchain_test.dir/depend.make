# Empty dependencies file for opchain_test.
# This may be replaced when dependencies are built.
