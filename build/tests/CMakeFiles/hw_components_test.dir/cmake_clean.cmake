file(REMOVE_RECURSE
  "CMakeFiles/hw_components_test.dir/hw/hw_components_test.cc.o"
  "CMakeFiles/hw_components_test.dir/hw/hw_components_test.cc.o.d"
  "hw_components_test"
  "hw_components_test.pdb"
  "hw_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
