# Empty dependencies file for hw_components_test.
# This may be replaced when dependencies are built.
