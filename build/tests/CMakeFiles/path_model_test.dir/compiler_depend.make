# Empty compiler generated dependencies file for path_model_test.
# This may be replaced when dependencies are built.
