file(REMOVE_RECURSE
  "CMakeFiles/path_model_test.dir/dist/path_model_test.cc.o"
  "CMakeFiles/path_model_test.dir/dist/path_model_test.cc.o.d"
  "path_model_test"
  "path_model_test.pdb"
  "path_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
