file(REMOVE_RECURSE
  "CMakeFiles/uniflow_engine_test.dir/hw/uniflow_engine_test.cc.o"
  "CMakeFiles/uniflow_engine_test.dir/hw/uniflow_engine_test.cc.o.d"
  "uniflow_engine_test"
  "uniflow_engine_test.pdb"
  "uniflow_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniflow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
