# Empty compiler generated dependencies file for uniflow_engine_test.
# This may be replaced when dependencies are built.
