file(REMOVE_RECURSE
  "CMakeFiles/drivers_channel_test.dir/hw/drivers_channel_test.cc.o"
  "CMakeFiles/drivers_channel_test.dir/hw/drivers_channel_test.cc.o.d"
  "drivers_channel_test"
  "drivers_channel_test.pdb"
  "drivers_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drivers_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
