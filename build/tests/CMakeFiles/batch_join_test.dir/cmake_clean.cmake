file(REMOVE_RECURSE
  "CMakeFiles/batch_join_test.dir/sw/batch_join_test.cc.o"
  "CMakeFiles/batch_join_test.dir/sw/batch_join_test.cc.o.d"
  "batch_join_test"
  "batch_join_test.pdb"
  "batch_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
