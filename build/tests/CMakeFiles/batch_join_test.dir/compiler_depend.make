# Empty compiler generated dependencies file for batch_join_test.
# This may be replaced when dependencies are built.
