file(REMOVE_RECURSE
  "CMakeFiles/model_test.dir/hw/model_test.cc.o"
  "CMakeFiles/model_test.dir/hw/model_test.cc.o.d"
  "model_test"
  "model_test.pdb"
  "model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
