# Empty dependencies file for handshake_join_test.
# This may be replaced when dependencies are built.
