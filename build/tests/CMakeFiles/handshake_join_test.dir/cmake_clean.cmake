file(REMOVE_RECURSE
  "CMakeFiles/handshake_join_test.dir/sw/handshake_join_test.cc.o"
  "CMakeFiles/handshake_join_test.dir/sw/handshake_join_test.cc.o.d"
  "handshake_join_test"
  "handshake_join_test.pdb"
  "handshake_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handshake_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
