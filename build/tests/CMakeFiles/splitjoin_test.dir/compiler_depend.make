# Empty compiler generated dependencies file for splitjoin_test.
# This may be replaced when dependencies are built.
