file(REMOVE_RECURSE
  "CMakeFiles/splitjoin_test.dir/sw/splitjoin_test.cc.o"
  "CMakeFiles/splitjoin_test.dir/sw/splitjoin_test.cc.o.d"
  "splitjoin_test"
  "splitjoin_test.pdb"
  "splitjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
