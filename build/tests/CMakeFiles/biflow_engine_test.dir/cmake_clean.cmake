file(REMOVE_RECURSE
  "CMakeFiles/biflow_engine_test.dir/hw/biflow_engine_test.cc.o"
  "CMakeFiles/biflow_engine_test.dir/hw/biflow_engine_test.cc.o.d"
  "biflow_engine_test"
  "biflow_engine_test.pdb"
  "biflow_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biflow_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
