# Empty dependencies file for biflow_engine_test.
# This may be replaced when dependencies are built.
