file(REMOVE_RECURSE
  "CMakeFiles/iot_sensor_fusion.dir/iot_sensor_fusion.cpp.o"
  "CMakeFiles/iot_sensor_fusion.dir/iot_sensor_fusion.cpp.o.d"
  "iot_sensor_fusion"
  "iot_sensor_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_sensor_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
