# Empty compiler generated dependencies file for iot_sensor_fusion.
# This may be replaced when dependencies are built.
