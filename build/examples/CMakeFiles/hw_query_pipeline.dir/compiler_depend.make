# Empty compiler generated dependencies file for hw_query_pipeline.
# This may be replaced when dependencies are built.
