file(REMOVE_RECURSE
  "CMakeFiles/hw_query_pipeline.dir/hw_query_pipeline.cpp.o"
  "CMakeFiles/hw_query_pipeline.dir/hw_query_pipeline.cpp.o.d"
  "hw_query_pipeline"
  "hw_query_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_query_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
