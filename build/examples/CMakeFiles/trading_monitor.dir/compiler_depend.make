# Empty compiler generated dependencies file for trading_monitor.
# This may be replaced when dependencies are built.
