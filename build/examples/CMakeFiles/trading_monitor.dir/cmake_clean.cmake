file(REMOVE_RECURSE
  "CMakeFiles/trading_monitor.dir/trading_monitor.cpp.o"
  "CMakeFiles/trading_monitor.dir/trading_monitor.cpp.o.d"
  "trading_monitor"
  "trading_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trading_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
