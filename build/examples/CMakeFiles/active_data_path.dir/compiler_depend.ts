# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for active_data_path.
