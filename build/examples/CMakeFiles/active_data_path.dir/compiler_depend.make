# Empty compiler generated dependencies file for active_data_path.
# This may be replaced when dependencies are built.
