file(REMOVE_RECURSE
  "CMakeFiles/active_data_path.dir/active_data_path.cpp.o"
  "CMakeFiles/active_data_path.dir/active_data_path.cpp.o.d"
  "active_data_path"
  "active_data_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_data_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
