file(REMOVE_RECURSE
  "CMakeFiles/fqp_query_assignment.dir/fqp_query_assignment.cpp.o"
  "CMakeFiles/fqp_query_assignment.dir/fqp_query_assignment.cpp.o.d"
  "fqp_query_assignment"
  "fqp_query_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fqp_query_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
