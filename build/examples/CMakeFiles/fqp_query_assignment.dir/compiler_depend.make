# Empty compiler generated dependencies file for fqp_query_assignment.
# This may be replaced when dependencies are built.
