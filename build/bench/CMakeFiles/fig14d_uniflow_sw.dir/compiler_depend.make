# Empty compiler generated dependencies file for fig14d_uniflow_sw.
# This may be replaced when dependencies are built.
