file(REMOVE_RECURSE
  "CMakeFiles/fig14d_uniflow_sw.dir/fig14d_uniflow_sw.cc.o"
  "CMakeFiles/fig14d_uniflow_sw.dir/fig14d_uniflow_sw.cc.o.d"
  "fig14d_uniflow_sw"
  "fig14d_uniflow_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14d_uniflow_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
