file(REMOVE_RECURSE
  "CMakeFiles/fqp_multi_query.dir/fqp_multi_query.cc.o"
  "CMakeFiles/fqp_multi_query.dir/fqp_multi_query.cc.o.d"
  "fqp_multi_query"
  "fqp_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fqp_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
