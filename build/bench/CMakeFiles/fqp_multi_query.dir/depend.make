# Empty dependencies file for fqp_multi_query.
# This may be replaced when dependencies are built.
