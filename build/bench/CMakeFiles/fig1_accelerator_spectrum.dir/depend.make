# Empty dependencies file for fig1_accelerator_spectrum.
# This may be replaced when dependencies are built.
