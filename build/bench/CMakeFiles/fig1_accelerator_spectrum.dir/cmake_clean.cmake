file(REMOVE_RECURSE
  "CMakeFiles/fig1_accelerator_spectrum.dir/fig1_accelerator_spectrum.cc.o"
  "CMakeFiles/fig1_accelerator_spectrum.dir/fig1_accelerator_spectrum.cc.o.d"
  "fig1_accelerator_spectrum"
  "fig1_accelerator_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_accelerator_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
