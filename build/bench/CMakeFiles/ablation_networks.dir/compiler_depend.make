# Empty compiler generated dependencies file for ablation_networks.
# This may be replaced when dependencies are built.
