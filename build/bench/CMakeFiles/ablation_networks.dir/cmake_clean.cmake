file(REMOVE_RECURSE
  "CMakeFiles/ablation_networks.dir/ablation_networks.cc.o"
  "CMakeFiles/ablation_networks.dir/ablation_networks.cc.o.d"
  "ablation_networks"
  "ablation_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
