# Empty compiler generated dependencies file for fig14a_uniflow_hw_throughput.
# This may be replaced when dependencies are built.
