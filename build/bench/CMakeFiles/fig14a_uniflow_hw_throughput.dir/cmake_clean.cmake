file(REMOVE_RECURSE
  "CMakeFiles/fig14a_uniflow_hw_throughput.dir/fig14a_uniflow_hw_throughput.cc.o"
  "CMakeFiles/fig14a_uniflow_hw_throughput.dir/fig14a_uniflow_hw_throughput.cc.o.d"
  "fig14a_uniflow_hw_throughput"
  "fig14a_uniflow_hw_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_uniflow_hw_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
