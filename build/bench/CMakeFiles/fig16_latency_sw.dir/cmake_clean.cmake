file(REMOVE_RECURSE
  "CMakeFiles/fig16_latency_sw.dir/fig16_latency_sw.cc.o"
  "CMakeFiles/fig16_latency_sw.dir/fig16_latency_sw.cc.o.d"
  "fig16_latency_sw"
  "fig16_latency_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_latency_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
