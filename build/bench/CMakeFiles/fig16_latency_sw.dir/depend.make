# Empty dependencies file for fig16_latency_sw.
# This may be replaced when dependencies are built.
