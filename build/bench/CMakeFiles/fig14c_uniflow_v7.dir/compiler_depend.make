# Empty compiler generated dependencies file for fig14c_uniflow_v7.
# This may be replaced when dependencies are built.
