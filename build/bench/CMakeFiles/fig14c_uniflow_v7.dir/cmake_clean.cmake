file(REMOVE_RECURSE
  "CMakeFiles/fig14c_uniflow_v7.dir/fig14c_uniflow_v7.cc.o"
  "CMakeFiles/fig14c_uniflow_v7.dir/fig14c_uniflow_v7.cc.o.d"
  "fig14c_uniflow_v7"
  "fig14c_uniflow_v7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14c_uniflow_v7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
