# Empty compiler generated dependencies file for ablation_fanout.
# This may be replaced when dependencies are built.
