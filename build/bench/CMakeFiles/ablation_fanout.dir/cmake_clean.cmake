file(REMOVE_RECURSE
  "CMakeFiles/ablation_fanout.dir/ablation_fanout.cc.o"
  "CMakeFiles/ablation_fanout.dir/ablation_fanout.cc.o.d"
  "ablation_fanout"
  "ablation_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
