# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14b_uni_vs_bi_hw.
