file(REMOVE_RECURSE
  "CMakeFiles/fig14b_uni_vs_bi_hw.dir/fig14b_uni_vs_bi_hw.cc.o"
  "CMakeFiles/fig14b_uni_vs_bi_hw.dir/fig14b_uni_vs_bi_hw.cc.o.d"
  "fig14b_uni_vs_bi_hw"
  "fig14b_uni_vs_bi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_uni_vs_bi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
