# Empty dependencies file for fig14b_uni_vs_bi_hw.
# This may be replaced when dependencies are built.
