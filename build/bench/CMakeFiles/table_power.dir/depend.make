# Empty dependencies file for table_power.
# This may be replaced when dependencies are built.
