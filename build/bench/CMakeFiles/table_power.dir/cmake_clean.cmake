file(REMOVE_RECURSE
  "CMakeFiles/table_power.dir/table_power.cc.o"
  "CMakeFiles/table_power.dir/table_power.cc.o.d"
  "table_power"
  "table_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
