# Empty compiler generated dependencies file for ablation_join_algorithm.
# This may be replaced when dependencies are built.
