file(REMOVE_RECURSE
  "CMakeFiles/ablation_join_algorithm.dir/ablation_join_algorithm.cc.o"
  "CMakeFiles/ablation_join_algorithm.dir/ablation_join_algorithm.cc.o.d"
  "ablation_join_algorithm"
  "ablation_join_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_join_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
