file(REMOVE_RECURSE
  "CMakeFiles/ablation_ordering_precision.dir/ablation_ordering_precision.cc.o"
  "CMakeFiles/ablation_ordering_precision.dir/ablation_ordering_precision.cc.o.d"
  "ablation_ordering_precision"
  "ablation_ordering_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ordering_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
