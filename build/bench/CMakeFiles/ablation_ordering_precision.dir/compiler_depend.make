# Empty compiler generated dependencies file for ablation_ordering_precision.
# This may be replaced when dependencies are built.
