# Empty dependencies file for ablation_selection_pushdown.
# This may be replaced when dependencies are built.
