file(REMOVE_RECURSE
  "CMakeFiles/ablation_selection_pushdown.dir/ablation_selection_pushdown.cc.o"
  "CMakeFiles/ablation_selection_pushdown.dir/ablation_selection_pushdown.cc.o.d"
  "ablation_selection_pushdown"
  "ablation_selection_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selection_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
