# Empty dependencies file for ablation_biflow_arbitration.
# This may be replaced when dependencies are built.
