file(REMOVE_RECURSE
  "CMakeFiles/ablation_biflow_arbitration.dir/ablation_biflow_arbitration.cc.o"
  "CMakeFiles/ablation_biflow_arbitration.dir/ablation_biflow_arbitration.cc.o.d"
  "ablation_biflow_arbitration"
  "ablation_biflow_arbitration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_biflow_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
