file(REMOVE_RECURSE
  "CMakeFiles/fig15_latency_hw.dir/fig15_latency_hw.cc.o"
  "CMakeFiles/fig15_latency_hw.dir/fig15_latency_hw.cc.o.d"
  "fig15_latency_hw"
  "fig15_latency_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_latency_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
