# Empty dependencies file for fig15_latency_hw.
# This may be replaced when dependencies are built.
