file(REMOVE_RECURSE
  "CMakeFiles/ablation_chain_llhsj.dir/ablation_chain_llhsj.cc.o"
  "CMakeFiles/ablation_chain_llhsj.dir/ablation_chain_llhsj.cc.o.d"
  "ablation_chain_llhsj"
  "ablation_chain_llhsj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chain_llhsj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
