# Empty dependencies file for ablation_chain_llhsj.
# This may be replaced when dependencies are built.
