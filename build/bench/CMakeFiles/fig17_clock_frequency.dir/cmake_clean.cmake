file(REMOVE_RECURSE
  "CMakeFiles/fig17_clock_frequency.dir/fig17_clock_frequency.cc.o"
  "CMakeFiles/fig17_clock_frequency.dir/fig17_clock_frequency.cc.o.d"
  "fig17_clock_frequency"
  "fig17_clock_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_clock_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
