# Empty dependencies file for fig17_clock_frequency.
# This may be replaced when dependencies are built.
