file(REMOVE_RECURSE
  "CMakeFiles/fqp_assignment.dir/fqp_assignment.cc.o"
  "CMakeFiles/fqp_assignment.dir/fqp_assignment.cc.o.d"
  "fqp_assignment"
  "fqp_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fqp_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
