# Empty dependencies file for fqp_assignment.
# This may be replaced when dependencies are built.
