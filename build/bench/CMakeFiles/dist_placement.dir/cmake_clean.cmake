file(REMOVE_RECURSE
  "CMakeFiles/dist_placement.dir/dist_placement.cc.o"
  "CMakeFiles/dist_placement.dir/dist_placement.cc.o.d"
  "dist_placement"
  "dist_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
