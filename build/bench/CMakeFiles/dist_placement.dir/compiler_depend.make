# Empty compiler generated dependencies file for dist_placement.
# This may be replaced when dependencies are built.
