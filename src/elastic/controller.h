// hal::elastic — live shard add/remove with online state migration and
// skew-aware routing for the key-hash cluster.
//
// The paper's scaling story (§VI, Fig. 17) is static: pick a shard count,
// measure. Real deployments resize under load, and the interesting
// question is what a reconfiguration costs while the join keeps running.
// This controller answers it with an epoch-aligned migration protocol on
// top of cluster::ClusterEngine's topology primitives:
//
//   1. freeze  — migrations run strictly between process() calls, at the
//                epoch barrier where every slot's epoch has been collected
//                (supervised restarts included). No tuple is in flight for
//                the affected key ranges, so there is nothing to quiesce:
//                the barrier *is* the freeze.
//   2. ship    — each source slot's window state is captured (a live
//                snapshot, or the newest checkpoint plus the replay-log
//                delta since it — the "since-snapshot ingress delta"),
//                serialized with recovery::serialize, and pushed through a
//                hal::net connection so every migration exercises the full
//                wire codec (CRC, framing, credit window).
//   3. rebuild — every slot whose key set changes is rebuilt from the
//                seq-ordered, seq-deduplicated merge of its own surviving
//                tuples and the shipped-in state. Count-based eviction
//                trims the merge to the window, and the exact-global
//                merger filter keeps the output multiset byte-identical
//                to a fixed-topology oracle (router.h has the argument).
//   4. swap    — the versioned KeyspaceMap is installed atomically
//                (version must be exactly current+1), then slots the new
//                map no longer references are retired. In-flight tuples
//                cannot be double-counted or dropped because there are
//                none at the barrier.
//
// Skew-aware routing rides the same machinery: the router's per-key load
// counters feed rebalance(), which (a) splits hot keys across a replica
// group 1×k join-matrix style — R replicated, S dealt round-robin, so each
// (r, s) pair still meets exactly once — and (b) greedily repacks whole
// keyslots so zipfian workloads spread like uniform ones.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace hal::elastic {

struct ElasticConfig {
  // Ship every migration image through a hal::net connection even when
  // the cluster's own links are raw SPSC: codec fidelity on every path.
  // Off = decode the serialized frame in place (still exercises the
  // checkpoint codec, skips the wire).
  bool ship_images = true;
  // Transport carrying shipped images. The cluster's sockets are not
  // reused — migration is a control-plane transfer with its own channel.
  net::TransportKind ship_transport = net::TransportKind::kLoopback;
  // Reconstruct source state as newest-checkpoint + replay-delta instead
  // of a live snapshot when the delta still covers the gap (requires
  // recovery.supervise). Falls back to a snapshot when it does not.
  // Either way a slot whose replicas are all dead is served from the
  // checkpoint path when possible.
  bool prefer_checkpoint_delta = false;
  // rebalance(): a key is "hot" when its measured load exceeds
  // threshold × the per-shard fair share; hot keys are split.
  double hot_key_split_threshold = 1.0;
  // Upper bound on a split group's size (and on split creation at all:
  // < 2 disables splitting).
  std::uint32_t max_split_ways = 4;
  // rebalance(): keyslots move while some shard's measured load exceeds
  // (1 + slack) × fair share and a move strictly improves the spread.
  double rebalance_slack = 0.10;
};

// One migration's accounting, also the unit of the controller's history.
struct MigrationReport {
  std::uint64_t from_version = 0;
  std::uint64_t to_version = 0;
  std::uint32_t shards_before = 0;
  std::uint32_t shards_after = 0;
  std::uint32_t moved_keyslots = 0;  // owner changed in this revision
  std::uint32_t rebuilt_slots = 0;
  std::uint32_t splits_created = 0;  // split groups added or resized
  std::uint32_t splits_removed = 0;
  std::uint64_t moved_tuples = 0;     // tuples shipped into rebuilt slots
  std::uint64_t image_bytes = 0;      // Σ serialized source images
  std::uint64_t shipped_frames = 0;   // images that crossed the net channel
  std::uint64_t replayed_batches = 0; // checkpoint+delta reconstructions
  std::uint32_t lost_sources = 0;     // dead slots with no usable state
  double pause_seconds = 0.0;  // wall time process() was held off
};

class Controller {
 public:
  // The engine must be kKeyHash-partitioned; the controller holds a
  // reference and must not outlive it. All calls must happen on the
  // thread that calls engine.process(), between process() calls.
  explicit Controller(cluster::ClusterEngine& engine, ElasticConfig cfg = {});
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Grows the cluster by `count` fresh slots and rebalances keyslots onto
  // them (load-weighted when key-load tracking is on, count-balanced
  // otherwise).
  MigrationReport add_shards(std::uint32_t count);
  // Shrinks by `count` slots (the highest-numbered live ones): their
  // splits are dissolved, their keyslots migrate to the survivors, then
  // the victims are retired. At least one slot must survive.
  MigrationReport remove_shards(std::uint32_t count);

  // Evicts one *specific* live slot — the hal::guard quarantine path: the
  // slot's splits dissolve, its keyslots re-route to the survivors, its
  // state ships out, then it is retired. Same protocol as remove_shards,
  // but the victim is chosen by the caller (a suspected-slow shard), not
  // by slot id. At least one other slot must survive.
  MigrationReport drain_slot(std::uint32_t slot);

  // Splits `key` across the `ways` least-loaded live slots (join-matrix
  // style); unsplit_key() collapses it back onto its keyslot's owner.
  MigrationReport split_key(std::uint32_t key, std::uint32_t ways);
  MigrationReport unsplit_key(std::uint32_t key);

  // Measured-skew pass: splits keys whose load exceeds the hot-key
  // threshold, dissolves splits that cooled off, then repacks keyslots
  // until every shard is within the slack band. Returns one report per
  // revision installed (empty when the placement was already balanced).
  std::vector<MigrationReport> rebalance();

  [[nodiscard]] const std::vector<MigrationReport>& history() const noexcept {
    return history_;
  }

  // Controller totals under `prefix` ("elastic."): migration counts and
  // moved bytes/tuples are deterministic for a fixed reconfiguration
  // schedule; pause wall time is not.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  // Computes the delta between the installed keyspace and `next`
  // (version already bumped), gathers every source slot's state, rebuilds
  // every affected slot, installs `next`, then retires `retire`.
  void execute(cluster::KeyspaceMap next,
               const std::vector<std::uint32_t>& retire,
               MigrationReport& rep);
  // One slot's window as a seq-sorted, seq-deduplicated tuple list
  // (snapshot or checkpoint+delta per config), shipped per config.
  [[nodiscard]] std::vector<stream::Tuple> fetch_slot(std::uint32_t slot,
                                                      MigrationReport& rep);
  // Round-trips a serialized image through the controller's net channel
  // (lazily established) and returns the received bytes.
  [[nodiscard]] std::vector<std::uint8_t> ship(
      std::vector<std::uint8_t> bytes);
  void ensure_ship_channel();

  // Live slot ids, ascending.
  [[nodiscard]] std::vector<std::uint32_t> live_slots() const;
  // Measured per-keyslot load under the split set of `splits` (split keys
  // don't ride their keyslot); uniform 1.0 per keyslot when tracking is
  // off or nothing was routed yet.
  [[nodiscard]] std::vector<double> keyslot_loads(
      const std::map<std::uint32_t, std::vector<std::uint32_t>>& splits)
      const;
  // Deterministic greedy repack of `cur`'s keyslots over `targets`:
  // forced moves off non-targets first (largest load to least-loaded
  // shard), then largest-from-fullest to emptiest while it strictly
  // narrows the spread. Does not bump the version.
  [[nodiscard]] static cluster::KeyspaceMap balanced(
      const cluster::KeyspaceMap& cur,
      const std::vector<std::uint32_t>& targets,
      const std::vector<double>& load);

  cluster::ClusterEngine& engine_;
  ElasticConfig cfg_;
  std::vector<MigrationReport> history_;

  // Lazy migration channel (ship_images): a listener/dialer pair on a
  // controller-owned transport. Teardown order: dialer, listener,
  // transport (see ~Controller).
  std::unique_ptr<net::Transport> ship_transport_;
  std::unique_ptr<net::Listener> ship_listener_;
  std::unique_ptr<net::Connection> ship_tx_;
  net::Connection* ship_rx_ = nullptr;  // owned by the listener
};

}  // namespace hal::elastic
