#include "elastic/controller.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/assert.h"
#include "common/timer.h"
#include "core/window_image.h"
#include "recovery/checkpoint.h"

namespace hal::elastic {

namespace {

using cluster::KeyspaceMap;

// A WindowImage's tuples in one flat list: per-core sub-windows plus the
// handshake boundary queues. Order is repaired by sort_dedup below.
[[nodiscard]] std::vector<stream::Tuple> flatten(
    const core::WindowImage& image) {
  std::vector<stream::Tuple> out;
  for (const core::WindowImage::CoreState& c : image.cores) {
    out.insert(out.end(), c.win_r.begin(), c.win_r.end());
    out.insert(out.end(), c.win_s.begin(), c.win_s.end());
  }
  for (const core::WindowImage::BoundaryState& b : image.boundaries) {
    out.insert(out.end(), b.r_q.begin(), b.r_q.end());
    out.insert(out.end(), b.s_q.begin(), b.s_q.end());
  }
  return out;
}

// Arrival order restored, duplicates (the same tuple surviving in two
// sources' windows) collapsed. `seq` is the global arrival index, so it
// is a total order and a unique identity at once.
void sort_dedup(std::vector<stream::Tuple>& tuples) {
  std::sort(tuples.begin(), tuples.end(),
            [](const stream::Tuple& a, const stream::Tuple& b) {
              return a.seq < b.seq;
            });
  tuples.erase(std::unique(tuples.begin(), tuples.end(),
                           [](const stream::Tuple& a, const stream::Tuple& b) {
                             return a.seq == b.seq;
                           }),
               tuples.end());
}

[[nodiscard]] bool contains(const std::vector<std::uint32_t>& v,
                            std::uint32_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

// Distinct migration-channel addresses across controllers (and, for
// abstract unix sockets, across processes).
std::string ship_address(net::TransportKind kind) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case net::TransportKind::kLoopback:
      return "elastic-migration-" + std::to_string(id);
    case net::TransportKind::kUnix:
      return "@hal-elastic-" + std::to_string(::getpid()) + "-" +
             std::to_string(id);
    case net::TransportKind::kTcp:
      return "127.0.0.1:0";
    case net::TransportKind::kInProcess:
      break;
  }
  HAL_CHECK(false,
            "kInProcess has no net::Transport — disable ship_images instead");
  return {};
}

}  // namespace

Controller::Controller(cluster::ClusterEngine& engine, ElasticConfig cfg)
    : engine_(engine), cfg_(cfg) {
  HAL_CHECK(engine.config().partitioning == cluster::Partitioning::kKeyHash,
            "elastic reconfiguration requires key-hash partitioning");
}

Controller::~Controller() {
  // Mirror the cluster's net teardown order: dialer end first, then the
  // listener (owning the acceptor end), then the transport.
  if (ship_tx_ != nullptr) ship_tx_->close();
  ship_tx_.reset();
  ship_listener_.reset();
  ship_transport_.reset();
}

// --- Public operations ----------------------------------------------------

MigrationReport Controller::add_shards(std::uint32_t count) {
  HAL_CHECK(count >= 1, "add_shards needs count >= 1");
  const Timer pause;
  MigrationReport rep;
  rep.shards_before = engine_.active_slot_count();
  for (std::uint32_t i = 0; i < count; ++i) (void)engine_.add_slot();
  KeyspaceMap next =
      balanced(engine_.keyspace(), live_slots(),
               keyslot_loads(engine_.keyspace().splits()));
  next.bump_version();
  execute(std::move(next), {}, rep);
  rep.shards_after = engine_.active_slot_count();
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  return rep;
}

MigrationReport Controller::remove_shards(std::uint32_t count) {
  HAL_CHECK(count >= 1, "remove_shards needs count >= 1");
  const Timer pause;
  MigrationReport rep;
  rep.shards_before = engine_.active_slot_count();
  HAL_CHECK(rep.shards_before > count,
            "remove_shards must leave at least one live slot");
  std::vector<std::uint32_t> live = live_slots();
  const std::vector<std::uint32_t> victims(live.end() - count, live.end());
  const std::vector<std::uint32_t> survivors(live.begin(), live.end() - count);

  KeyspaceMap next = engine_.keyspace();
  // A split touching a victim is dissolved in the same revision; its key
  // collapses back onto its keyslot's (surviving) owner.
  for (const auto& [key, group] : engine_.keyspace().splits()) {
    const bool doomed = std::any_of(
        group.begin(), group.end(),
        [&](std::uint32_t m) { return contains(victims, m); });
    if (doomed) next.unsplit(key);
  }
  next = balanced(next, survivors, keyslot_loads(next.splits()));
  next.bump_version();
  execute(std::move(next), victims, rep);
  rep.shards_after = engine_.active_slot_count();
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  return rep;
}

MigrationReport Controller::drain_slot(std::uint32_t slot) {
  HAL_CHECK(slot < engine_.slot_count() && !engine_.slot_retired(slot),
            "drain_slot needs a live slot");
  const Timer pause;
  MigrationReport rep;
  rep.shards_before = engine_.active_slot_count();
  HAL_CHECK(rep.shards_before >= 2,
            "drain_slot must leave at least one live slot");
  std::vector<std::uint32_t> live = live_slots();
  std::vector<std::uint32_t> survivors;
  for (const std::uint32_t s : live) {
    if (s != slot) survivors.push_back(s);
  }

  KeyspaceMap next = engine_.keyspace();
  for (const auto& [key, group] : engine_.keyspace().splits()) {
    if (contains(group, slot)) next.unsplit(key);
  }
  next = balanced(next, survivors, keyslot_loads(next.splits()));
  next.bump_version();
  execute(std::move(next), {slot}, rep);
  rep.shards_after = engine_.active_slot_count();
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  return rep;
}

MigrationReport Controller::split_key(std::uint32_t key, std::uint32_t ways) {
  HAL_CHECK(ways >= 2, "a hot-key split needs at least two members");
  const Timer pause;
  MigrationReport rep;
  rep.shards_before = rep.shards_after = engine_.active_slot_count();
  const std::vector<std::uint32_t> live = live_slots();
  HAL_CHECK(ways <= live.size(), "split ways exceeds the live slot count");

  // Members: the `ways` least-loaded live slots (ties broken by id).
  const std::vector<double> load = keyslot_loads(engine_.keyspace().splits());
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (const std::uint32_t slot : live) {
    double sum = 0.0;
    for (std::uint32_t ks = 0; ks < KeyspaceMap::kKeyslots; ++ks) {
      if (engine_.keyspace().owner(ks) == slot) sum += load[ks];
    }
    ranked.emplace_back(sum, slot);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::uint32_t> members;
  for (std::uint32_t i = 0; i < ways; ++i) members.push_back(ranked[i].second);
  std::sort(members.begin(), members.end());

  KeyspaceMap next = engine_.keyspace();
  next.split(key, members);
  next.bump_version();
  execute(std::move(next), {}, rep);
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  return rep;
}

MigrationReport Controller::unsplit_key(std::uint32_t key) {
  HAL_CHECK(engine_.keyspace().split_group(key) != nullptr,
            "unsplit_key on a key that is not split");
  const Timer pause;
  MigrationReport rep;
  rep.shards_before = rep.shards_after = engine_.active_slot_count();
  KeyspaceMap next = engine_.keyspace();
  next.unsplit(key);
  next.bump_version();
  execute(std::move(next), {}, rep);
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  return rep;
}

std::vector<MigrationReport> Controller::rebalance() {
  std::vector<MigrationReport> out;
  const Timer pause;
  const std::vector<std::uint32_t> live = live_slots();
  const KeyspaceMap& cur = engine_.keyspace();

  // Measured per-key totals, in deterministic (key) order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> keys(
      engine_.key_load().begin(), engine_.key_load().end());
  std::sort(keys.begin(), keys.end());
  double total = 0.0;
  for (const auto& [key, n] : keys) total += static_cast<double>(n);
  const double fair = total / static_cast<double>(live.size());

  KeyspaceMap next = cur;
  // Hot-key pass: split keys above the threshold, dissolve ones below it.
  // Disabled entirely without measured load or with max_split_ways < 2.
  if (total > 0.0 && cfg_.max_split_ways >= 2) {
    const double hot = cfg_.hot_key_split_threshold * fair;
    for (const auto& [key, n] : keys) {
      const bool split_now = cur.split_group(key) != nullptr;
      if (static_cast<double>(n) > hot && !split_now) {
        const auto ways = static_cast<std::uint32_t>(std::min<std::size_t>(
            {cfg_.max_split_ways, live.size(),
             static_cast<std::size_t>(
                 std::ceil(static_cast<double>(n) / std::max(fair, 1.0)))}));
        if (ways >= 2) {
          // Deal across the least-loaded members by slot id — keyslot
          // repack below evens out whatever this perturbs.
          std::vector<std::uint32_t> members(live.begin(),
                                             live.begin() + ways);
          next.split(key, std::move(members));
        }
      } else if (static_cast<double>(n) <= hot && split_now) {
        next.unsplit(key);
      }
    }
  }
  next = balanced(next, live, keyslot_loads(next.splits()));

  const bool changed =
      next.owners() != cur.owners() || next.splits() != cur.splits();
  if (!changed) return out;

  MigrationReport rep;
  rep.shards_before = rep.shards_after = engine_.active_slot_count();
  next.bump_version();
  execute(std::move(next), {}, rep);
  rep.pause_seconds = pause.elapsed_seconds();
  history_.push_back(rep);
  out.push_back(rep);
  return out;
}

void Controller::collect_metrics(obs::MetricRegistry& registry,
                                 const std::string& prefix) const {
  MigrationReport sum;
  for (const MigrationReport& r : history_) {
    sum.moved_keyslots += r.moved_keyslots;
    sum.rebuilt_slots += r.rebuilt_slots;
    sum.splits_created += r.splits_created;
    sum.splits_removed += r.splits_removed;
    sum.moved_tuples += r.moved_tuples;
    sum.image_bytes += r.image_bytes;
    sum.shipped_frames += r.shipped_frames;
    sum.replayed_batches += r.replayed_batches;
    sum.lost_sources += r.lost_sources;
    sum.pause_seconds += r.pause_seconds;
  }
  registry.set_counter(prefix + "migrations", history_.size());
  registry.set_counter(prefix + "moved_keyslots", sum.moved_keyslots);
  registry.set_counter(prefix + "rebuilt_slots", sum.rebuilt_slots);
  registry.set_counter(prefix + "splits_created", sum.splits_created);
  registry.set_counter(prefix + "splits_removed", sum.splits_removed);
  registry.set_counter(prefix + "moved_tuples", sum.moved_tuples);
  registry.set_counter(prefix + "image_bytes", sum.image_bytes);
  registry.set_counter(prefix + "shipped_frames", sum.shipped_frames);
  registry.set_counter(prefix + "replayed_batches", sum.replayed_batches);
  registry.set_counter(prefix + "lost_sources", sum.lost_sources);
  registry.set_gauge(prefix + "pause_seconds_total", sum.pause_seconds,
                     obs::Stability::kRuntime);
}

// --- Migration core -------------------------------------------------------

void Controller::execute(KeyspaceMap next,
                         const std::vector<std::uint32_t>& retire,
                         MigrationReport& rep) {
  const KeyspaceMap cur = engine_.keyspace();
  rep.from_version = cur.version();
  rep.to_version = next.version();

  // Keyslots whose owner changes, grouped by new owner.
  std::map<std::uint32_t, std::vector<std::uint32_t>> moved_to;
  for (std::uint32_t ks = 0; ks < KeyspaceMap::kKeyslots; ++ks) {
    if (cur.owner(ks) != next.owner(ks)) {
      moved_to[next.owner(ks)].push_back(ks);
      ++rep.moved_keyslots;
    }
  }

  // Keys whose split placement changes (created, dissolved, resized).
  // Their state is re-dealt explicitly below and excluded everywhere
  // else: a member keeping its old S share while the new deal assigns
  // that share elsewhere would double-produce pairs.
  std::set<std::uint32_t> changed_keys;
  for (const auto& [key, group] : cur.splits()) {
    const std::vector<std::uint32_t>* now = next.split_group(key);
    if (now == nullptr) {
      changed_keys.insert(key);
      ++rep.splits_removed;
    } else if (*now != group) {
      changed_keys.insert(key);
      ++rep.splits_created;  // resize counts as a (re)creation
    }
  }
  for (const auto& [key, group] : next.splits()) {
    if (cur.split_group(key) == nullptr) {
      changed_keys.insert(key);
      ++rep.splits_created;
    }
  }

  // Where a changed key's state currently lives.
  const auto cur_holders =
      [&cur](std::uint32_t key) -> std::vector<std::uint32_t> {
    if (const std::vector<std::uint32_t>* g = cur.split_group(key)) return *g;
    return {cur.owner(KeyspaceMap::keyslot_of(key))};
  };

  // Slots to rebuild, and the slots whose state feeds them. Every target
  // is also a source: its merge starts from its own surviving tuples.
  std::set<std::uint32_t> targets;
  std::set<std::uint32_t> sources;
  for (const auto& [target, keyslots] : moved_to) {
    targets.insert(target);
    for (const std::uint32_t ks : keyslots) sources.insert(cur.owner(ks));
  }
  for (const std::uint32_t key : changed_keys) {
    for (const std::uint32_t s : cur_holders(key)) sources.insert(s);
    if (const std::vector<std::uint32_t>* g = next.split_group(key)) {
      targets.insert(g->begin(), g->end());
    } else {
      targets.insert(next.owner(KeyspaceMap::keyslot_of(key)));
    }
  }
  sources.insert(targets.begin(), targets.end());

  if (!targets.empty()) {
    // Ship phase: capture every source before any rebuild — a slot that
    // is both source and target must be read pre-rebuild.
    std::map<std::uint32_t, std::vector<stream::Tuple>> flat;
    for (const std::uint32_t s : sources) flat[s] = fetch_slot(s, rep);

    // Seq-merged view of one changed key's complete current state.
    const auto collect_key = [&](std::uint32_t key) {
      std::vector<stream::Tuple> all;
      for (const std::uint32_t s : cur_holders(key)) {
        for (const stream::Tuple& t : flat[s]) {
          if (t.key == key) all.push_back(t);
        }
      }
      sort_dedup(all);
      return all;
    };

    for (const std::uint32_t target : targets) {
      std::vector<stream::Tuple> merged;
      // Own surviving tuples. Keyslots this slot *loses* stay too: their
      // keys route elsewhere from now on, so the leftovers can never
      // pair again — they just age out of the window.
      for (const stream::Tuple& t : flat[target]) {
        if (!changed_keys.contains(t.key)) merged.push_back(t);
      }
      const std::size_t own = merged.size();
      // Moved-in keyslots. Split keys are skipped: their state lives
      // with the group, not the keyslot owner.
      if (const auto it = moved_to.find(target); it != moved_to.end()) {
        for (const std::uint32_t ks : it->second) {
          for (const stream::Tuple& t : flat[cur.owner(ks)]) {
            if (KeyspaceMap::keyslot_of(t.key) != ks) continue;
            if (changed_keys.contains(t.key)) continue;
            if (next.split_group(t.key) != nullptr) continue;
            merged.push_back(t);
          }
        }
      }
      // Re-dealt keys this slot now holds: R replicated to the whole
      // group, S dealt round-robin in seq order — the 1×k join matrix.
      // The deal offset need not match the router's future turn counter:
      // any deal is exact, because each S tuple lands on exactly one
      // member and every member holds the key's full R window.
      for (const std::uint32_t key : changed_keys) {
        if (const std::vector<std::uint32_t>* g = next.split_group(key)) {
          if (!contains(*g, target)) continue;
          std::uint64_t s_index = 0;
          for (const stream::Tuple& t : collect_key(key)) {
            if (t.origin == stream::StreamId::R) {
              merged.push_back(t);
            } else {
              if ((*g)[s_index % g->size()] == target) merged.push_back(t);
              ++s_index;
            }
          }
        } else if (next.owner(KeyspaceMap::keyslot_of(key)) == target) {
          const std::vector<stream::Tuple> all = collect_key(key);
          merged.insert(merged.end(), all.begin(), all.end());
        }
      }
      rep.moved_tuples += merged.size() - own;
      sort_dedup(merged);
      engine_.rebuild_slot(target, merged);
      ++rep.rebuilt_slots;
    }
  }

  // Swap phase: the atomic routing flip, then victim retirement. Both
  // happen at the same barrier the rebuilds ran under, so no tuple is
  // ever routed by a map whose state placement is not yet in effect.
  engine_.apply_keyspace(std::move(next));
  for (const std::uint32_t v : retire) engine_.retire_slot(v);
}

std::vector<stream::Tuple> Controller::fetch_slot(std::uint32_t slot,
                                                  MigrationReport& rep) {
  std::vector<std::uint8_t> bytes;
  std::vector<cluster::TupleBatch> delta;

  const auto try_checkpoint_delta = [&]() -> bool {
    std::uint64_t ckpt_epoch = 0;
    std::vector<std::uint8_t> frame = engine_.checkpoint_slot(slot, ckpt_epoch);
    if (frame.empty()) return false;
    bool complete = false;
    std::vector<cluster::TupleBatch> d =
        engine_.replay_delta_slot(slot, ckpt_epoch, complete);
    if (!complete) return false;
    bytes = std::move(frame);
    delta = std::move(d);
    return true;
  };

  bool have = cfg_.prefer_checkpoint_delta && try_checkpoint_delta();
  if (!have) {
    bytes = engine_.snapshot_slot(slot);
    have = !bytes.empty();
  }
  // Snapshot impossible (every replica dead): the checkpoint+delta path
  // is the fallback even when not preferred.
  if (!have && !cfg_.prefer_checkpoint_delta) have = try_checkpoint_delta();
  if (!have) {
    // The slot's state is unrecoverable — the cluster is already serving
    // degraded. Migrate the keys with empty history rather than wedging.
    ++rep.lost_sources;
    return {};
  }

  rep.image_bytes += bytes.size();
  if (cfg_.ship_images) {
    bytes = ship(std::move(bytes));
    ++rep.shipped_frames;
  }
  core::WindowImage image;
  HAL_CHECK(recovery::deserialize(bytes, image),
            "migration image failed to decode after shipping");
  std::vector<stream::Tuple> out = flatten(image);
  rep.replayed_batches += delta.size();
  for (const cluster::TupleBatch& b : delta) {
    out.insert(out.end(), b.tuples.begin(), b.tuples.end());
  }
  sort_dedup(out);
  return out;
}

void Controller::ensure_ship_channel() {
  if (ship_tx_ != nullptr) return;
  ship_transport_ = net::make_transport(cfg_.ship_transport);
  net::EndpointOptions opts;
  // Images are one frame each and strictly request/response, so the
  // smallest window that admits a frame suffices.
  opts.window_frames = 4;
  ship_listener_ = ship_transport_->listen(ship_address(cfg_.ship_transport),
                                           opts);
  net::EndpointOptions dial = opts;
  dial.node_id = 1;
  ship_tx_ = ship_transport_->connect(ship_listener_->address(), dial);
  ship_rx_ = ship_listener_->accept(10.0);
  HAL_CHECK(ship_rx_ != nullptr, "migration channel accept timed out");
}

std::vector<std::uint8_t> Controller::ship(std::vector<std::uint8_t> bytes) {
  ensure_ship_channel();
  HAL_CHECK(bytes.size() <= net::kMaxPayload,
            "migration image exceeds the wire frame payload limit");
  HAL_CHECK(ship_tx_->send(net::MsgType::kCheckpoint, bytes, 30.0),
            "shipping a migration image timed out");
  net::Frame frame;
  HAL_CHECK(ship_rx_->recv(frame, 30.0),
            "receiving a migration image timed out");
  HAL_CHECK(frame.header.type == net::MsgType::kCheckpoint,
            "unexpected frame type on the migration channel");
  return std::move(frame.payload);
}

// --- Placement helpers ----------------------------------------------------

std::vector<std::uint32_t> Controller::live_slots() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t slot = 0; slot < engine_.slot_count(); ++slot) {
    if (!engine_.slot_retired(slot)) out.push_back(slot);
  }
  return out;
}

std::vector<double> Controller::keyslot_loads(
    const std::map<std::uint32_t, std::vector<std::uint32_t>>& splits) const {
  std::vector<double> load(KeyspaceMap::kKeyslots, 0.0);
  std::uint64_t total = 0;
  for (const auto& [key, n] : engine_.key_load()) {
    if (splits.contains(key)) continue;  // split keys don't ride keyslots
    load[KeyspaceMap::keyslot_of(key)] += static_cast<double>(n);
    total += n;
  }
  // No measurements: balance by keyslot count instead of load.
  if (total == 0) return std::vector<double>(KeyspaceMap::kKeyslots, 1.0);
  return load;
}

KeyspaceMap Controller::balanced(const KeyspaceMap& cur,
                                 const std::vector<std::uint32_t>& targets,
                                 const std::vector<double>& load) {
  HAL_CHECK(!targets.empty(), "balanced() needs at least one target slot");
  KeyspaceMap next = cur;

  std::map<std::uint32_t, std::vector<std::uint32_t>> owned;
  std::map<std::uint32_t, double> shard_load;
  for (const std::uint32_t t : targets) {
    owned[t];
    shard_load[t] = 0.0;
  }
  std::vector<std::uint32_t> forced;  // keyslots owned by non-targets
  for (std::uint32_t ks = 0; ks < KeyspaceMap::kKeyslots; ++ks) {
    const std::uint32_t o = cur.owner(ks);
    if (shard_load.contains(o)) {
      owned[o].push_back(ks);
      shard_load[o] += load[ks];
    } else {
      forced.push_back(ks);
    }
  }

  const auto least_loaded = [&]() {
    std::uint32_t best = targets.front();
    for (const auto& [slot, l] : shard_load) {
      if (l < shard_load[best]) best = slot;
    }
    return best;
  };

  // Forced moves first: largest keyslot to the least-loaded target (ties
  // by keyslot id — everything here is deterministic by construction).
  std::sort(forced.begin(), forced.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return load[a] != load[b] ? load[a] > load[b] : a < b;
            });
  for (const std::uint32_t ks : forced) {
    const std::uint32_t t = least_loaded();
    next.set_owner(ks, t);
    owned[t].push_back(ks);
    shard_load[t] += load[ks];
  }

  // Greedy narrowing: move the largest keyslot that strictly shrinks the
  // fullest→emptiest gap. Each move strictly decreases Σ load², so the
  // loop terminates; the iteration bound is a pure backstop.
  for (int iter = 0; iter < 4096; ++iter) {
    std::uint32_t donor = targets.front();
    std::uint32_t recipient = targets.front();
    for (const auto& [slot, l] : shard_load) {
      if (l > shard_load[donor]) donor = slot;
      if (l < shard_load[recipient]) recipient = slot;
    }
    if (donor == recipient) break;
    const double gap = shard_load[donor] - shard_load[recipient];
    std::uint32_t best_ks = KeyspaceMap::kKeyslots;
    for (const std::uint32_t ks : owned[donor]) {
      if (load[ks] >= gap) continue;  // would overshoot: no improvement
      if (best_ks == KeyspaceMap::kKeyslots || load[ks] > load[best_ks] ||
          (load[ks] == load[best_ks] && ks < best_ks)) {
        best_ks = ks;
      }
    }
    if (best_ks == KeyspaceMap::kKeyslots) break;
    next.set_owner(best_ks, recipient);
    auto& dv = owned[donor];
    dv.erase(std::find(dv.begin(), dv.end(), best_ks));
    owned[recipient].push_back(best_ks);
    shard_load[donor] -= load[best_ks];
    shard_load[recipient] += load[best_ks];
  }
  return next;
}

}  // namespace hal::elastic
