// Fixed-width ASCII table printer for bench output.
//
// Every bench binary prints the paper's figure/table as rows; this helper
// keeps the formatting uniform and diff-friendly (EXPERIMENTS.md embeds the
// output verbatim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hal {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string num(double v, int precision = 3);
  static std::string integer(std::uint64_t v);
  static std::string si(double v, int precision = 3);  // 1.25M, 3.1k, ...

  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hal
