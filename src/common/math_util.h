// Small integer math helpers shared by the simulator and the models.
#pragma once

#include <bit>
#include <cstdint>

#include "common/assert.h"

namespace hal {

// ⌈log2(x)⌉ for x >= 1.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return 64 - static_cast<std::uint32_t>(std::countl_zero(x - 1));
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

// ⌈log_k(x)⌉ for k >= 2, x >= 1: depth of a k-ary tree with x leaves.
[[nodiscard]] constexpr std::uint32_t ceil_log(std::uint64_t x,
                                               std::uint64_t k) noexcept {
  std::uint32_t depth = 0;
  std::uint64_t reach = 1;
  while (reach < x) {
    reach *= k;
    ++depth;
  }
  return depth;
}

}  // namespace hal
