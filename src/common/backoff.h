// Bounded spin-then-backoff waiter for the software engines' hot loops.
//
// The seed engines waited with bare `std::this_thread::yield()` loops,
// which has two failure modes the paper's software measurements (Fig. 14d)
// are sensitive to: under load, N waiters yield-storm the scheduler and
// steal cycles from the threads doing real work (the paper's observation
// that the distribution/gathering "networks" consume processor capacity);
// at idle, every worker burns a full core forever. SpinBackoff fixes both
// with a three-phase policy:
//
//   1. spin   — a short burst of pause instructions. A producer that is
//               about to publish (the common case on the hot path) is
//               caught here with no syscall and no scheduler round trip.
//   2. yield  — hand the core to whoever is runnable. Covers the window
//               where the peer thread is descheduled; latency stays at
//               scheduler granularity (µs), which keeps the per-tuple
//               latency benches (Fig. 16) meaningful.
//   3. sleep  — exponentially growing sleeps capped at max_sleep_us. An
//               idle engine parks here: ~8k wakeups/s/thread at the
//               default cap, far below 5% of a core, while the worst-case
//               reaction time to new input stays bounded at the cap.
//
// Callers reset() whenever they make progress, so the policy restarts
// from the cheap spin phase the moment traffic resumes.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace hal {

// One pause/yield hint to the core (not the scheduler); the SMT sibling
// gets the slot while we wait for a cache line to change hands.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  // No architectural hint available; the surrounding load loop is enough.
#endif
}

class SpinBackoff {
 public:
  struct Params {
    std::uint32_t spin_limit = 64;    // phase 1: pause instructions
    std::uint32_t yield_limit = 128;  // phase 2: sched_yield calls
    std::uint32_t min_sleep_us = 8;   // phase 3: first sleep quantum
    std::uint32_t max_sleep_us = 128; // phase 3: cap (bounds reaction time)
  };

  // Preset for latency-critical waits (transport sends, epoch collection):
  // the sleep cap is 4× tighter than the default, so a waiter that parked
  // during an idle stretch reacts to the next burst within ~32 µs instead
  // of adding a >100 µs wakeup spike to the batch's latency. Idle cost
  // stays trivial (~31k wakeups/s/thread worst case, well under 5% of a
  // core — the idle-CPU test bounds the default; hot loops are never idle
  // long enough to matter).
  [[nodiscard]] static constexpr Params hot_loop() noexcept {
    return Params{.spin_limit = 64,
                  .yield_limit = 128,
                  .min_sleep_us = 4,
                  .max_sleep_us = 32};
  }

  SpinBackoff() = default;
  explicit SpinBackoff(const Params& params)
      : params_(params), sleep_us_(params.min_sleep_us) {}

  // One wait step; escalates spin → yield → capped exponential sleep.
  void pause() {
    if (iteration_ < params_.spin_limit) {
      ++iteration_;
      cpu_relax();
      return;
    }
    if (iteration_ < params_.spin_limit + params_.yield_limit) {
      ++iteration_;
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    if (sleep_us_ < params_.max_sleep_us) {
      const std::uint32_t next = sleep_us_ * 2;
      sleep_us_ = next < params_.max_sleep_us ? next : params_.max_sleep_us;
    }
  }

  // Call on progress so the next wait restarts from the spin phase.
  void reset() noexcept {
    iteration_ = 0;
    sleep_us_ = params_.min_sleep_us;
  }

  // True once the waiter has escalated past the spin/yield phases (used by
  // tests to assert an idle engine actually parks).
  [[nodiscard]] bool sleeping() const noexcept {
    return iteration_ >= params_.spin_limit + params_.yield_limit;
  }

 private:
  Params params_;
  std::uint32_t iteration_ = 0;
  std::uint32_t sleep_us_ = Params{}.min_sleep_us;
};

// Convenience: wait until `done()` returns true, backing off between
// probes. `done` must be safe to call repeatedly (e.g. an acquire load).
template <typename Predicate>
void backoff_until(Predicate&& done) {
  SpinBackoff backoff;
  while (!done()) backoff.pause();
}

template <typename Predicate>
void backoff_until(Predicate&& done, const SpinBackoff::Params& params) {
  SpinBackoff backoff(params);
  while (!done()) backoff.pause();
}

}  // namespace hal
