// Bounded lock-free single-producer/single-consumer ring buffer.
//
// This is the communication primitive of the software stream-join engines
// (hal::sw): the distributor thread is the single producer for each join
// core's inbox, and each join core is the single producer of its result
// outbox. Capacity is rounded up to a power of two so index wrapping is a
// mask. False sharing between the producer and consumer indices is avoided
// with cache-line alignment.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace hal {

// A fixed 64 bytes rather than std::hardware_destructive_interference_size:
// the stdlib constant is flagged by GCC as ABI-unstable across tuning
// flags, and 64 is correct for every platform this library targets.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity)
      : capacity_(std::bit_ceil(std::max<std::size_t>(min_capacity, 2))),
        mask_(capacity_ - 1),
        slots_(capacity_) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when full — in which case `value` is NOT
  // consumed, so `while (!q.try_push(std::move(v)))` retry loops are safe.
  // (A by-value parameter here would move-construct the doomed argument on
  // the failed attempt and silently push an empty shell on the retry.)
  [[nodiscard]] bool try_push(T&& value) { return push_impl(std::move(value)); }
  [[nodiscard]] bool try_push(const T& value) { return push_impl(value); }

  // Consumer side. Returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side view without popping.
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  // Approximate size; exact only when called from a quiescent state.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

 private:
  template <typename U>
  [[nodiscard]] bool push_impl(U&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_cache_;
    if (head - tail >= capacity_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= capacity_) return false;
    }
    slots_[head & mask_] = std::forward<U>(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::size_t tail_cache_ = 0;  // producer-owned
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLineSize) std::size_t head_cache_ = 0;  // consumer-owned
};

}  // namespace hal
