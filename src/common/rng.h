// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All workloads in this repository are seeded explicitly so every
// experiment and test is reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <limits>

namespace hal {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 to expand the seed into the full 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping is fine here; a tiny
    // modulo bias is acceptable for workload generation, but we use the
    // widening multiply which has none for bounds << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability_true) noexcept {
    return next_double() < probability_true;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hal
