// Lightweight assertion macros used across the hal library.
//
// HAL_ASSERT is active in all build types (these simulators are correctness
// critical and the cost is negligible next to the simulated work).
// HAL_CHECK is for user-facing precondition violations and throws, so API
// misuse is reportable rather than fatal.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hal {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HAL_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace hal

#define HAL_ASSERT(expr)                                    \
  do {                                                      \
    if (!(expr)) {                                          \
      ::hal::assert_fail(#expr, __FILE__, __LINE__, "");    \
    }                                                       \
  } while (false)

#define HAL_ASSERT_MSG(expr, msg)                           \
  do {                                                      \
    if (!(expr)) {                                          \
      ::hal::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                       \
  } while (false)

// Throwing precondition check for public API entry points.
#define HAL_CHECK(expr, msg)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      throw ::hal::PreconditionError(std::string("precondition failed: ") + \
                                     (msg));                               \
    }                                                                      \
  } while (false)
