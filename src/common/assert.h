// Lightweight assertion macros used across the hal library.
//
// HAL_ASSERT is active in all build types (these simulators are correctness
// critical and the cost is negligible next to the simulated work).
// HAL_CHECK is for user-facing precondition violations and throws, so API
// misuse is reportable rather than fatal.
// HAL_CHECK_RECOVERABLE throws hal::Error for runtime faults that a
// supervisor can contain without killing the process.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace hal {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HAL_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

// Recoverable runtime fault: the operation failed but the process (and
// sibling components) are intact. The cluster Supervisor catches this to
// contain a faulted worker and restart it from its last checkpoint,
// instead of the whole engine aborting. Derives from runtime_error, not
// logic_error: these are environment/state faults, not API misuse.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace hal

#define HAL_ASSERT(expr)                                    \
  do {                                                      \
    if (!(expr)) {                                          \
      ::hal::assert_fail(#expr, __FILE__, __LINE__, "");    \
    }                                                       \
  } while (false)

#define HAL_ASSERT_MSG(expr, msg)                           \
  do {                                                      \
    if (!(expr)) {                                          \
      ::hal::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                       \
  } while (false)

// Throwing precondition check for public API entry points.
#define HAL_CHECK(expr, msg)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      throw ::hal::PreconditionError(std::string("precondition failed: ") + \
                                     (msg));                               \
    }                                                                      \
  } while (false)

// Throwing check for faults a supervisor is expected to contain (worker
// state corruption, injected chaos faults, failed restores). Unlike
// HAL_ASSERT this must never abort: the cluster catches hal::Error at the
// worker boundary and fail-stops only that worker.
#define HAL_CHECK_RECOVERABLE(expr, msg)                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      throw ::hal::Error(std::string("recoverable fault: ") + (msg));    \
    }                                                                    \
  } while (false)
