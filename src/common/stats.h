// Streaming statistics and latency histograms used by engines and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.h"

namespace hal {

// Welford running mean/variance plus min/max. O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exact-percentile reservoir for latency samples. Keeps every sample; the
// experiments in this repo record at most a few hundred thousand, so exact
// quantiles are affordable and simpler than a sketch.
class LatencyRecorder {
 public:
  void record(double value) { samples_.push_back(value); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  [[nodiscard]] double percentile(double p) const {
    HAL_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace hal
