#include "common/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "common/assert.h"

namespace hal {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HAL_ASSERT(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  HAL_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::si(double v, int precision) {
  const char* suffix = "";
  double scaled = v;
  if (v >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += " ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };

  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace hal
