#include "cluster/router.h"

namespace hal::cluster {

Router::Router(Partitioning partitioning, std::uint32_t rows,
               std::uint32_t cols)
    : partitioning_(partitioning), rows_(rows), cols_(cols) {
  HAL_CHECK(rows_ >= 1 && cols_ >= 1, "grid must have at least one worker");
  if (partitioning_ == Partitioning::kKeyHash) {
    HAL_CHECK(rows_ == 1, "key-hash partitioning is a flat 1×N layout");
    map_ = KeyspaceMap::uniform(cols_);
  }
}

void Router::set_keyspace(KeyspaceMap map) {
  HAL_CHECK(partitioning_ == Partitioning::kKeyHash,
            "the keyspace map only exists under key-hash partitioning");
  HAL_CHECK(map.valid(), "refusing to install a malformed keyspace map");
  HAL_CHECK(map.version() == map_.version() + 1,
            "keyspace revisions must install in order, one at a time");
  map_ = std::move(map);
}

void Router::route(const stream::Tuple& t,
                   std::vector<std::uint32_t>& slots_out) {
  slots_out.clear();
  if (partitioning_ == Partitioning::kKeyHash) {
    route_hashed(t, [&](const stream::Tuple&, std::uint32_t slot) {
      slots_out.push_back(slot);
    });
    return;
  }
  // kSplitGrid: slot index = row * cols + col. R owns a row (replicated
  // across its columns), S owns a column (replicated down its rows).
  if (t.origin == stream::StreamId::R) {
    const auto row = static_cast<std::uint32_t>(count_r_++ % rows_);
    for (std::uint32_t col = 0; col < cols_; ++col) {
      slots_out.push_back(row * cols_ + col);
    }
  } else {
    const auto col = static_cast<std::uint32_t>(count_s_++ % cols_);
    for (std::uint32_t row = 0; row < rows_; ++row) {
      slots_out.push_back(row * cols_ + col);
    }
  }
}

}  // namespace hal::cluster
