#include "cluster/router.h"

namespace hal::cluster {

namespace {

// Fibonacci multiplicative hash — cheap, and decorrelates the sequential
// key patterns the generators produce from the shard index.
[[nodiscard]] std::uint32_t hash_key(std::uint32_t key) noexcept {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(key) * 2654435761ULL) >> 16);
}

}  // namespace

Router::Router(Partitioning partitioning, std::uint32_t rows,
               std::uint32_t cols)
    : partitioning_(partitioning), rows_(rows), cols_(cols) {
  HAL_CHECK(rows_ >= 1 && cols_ >= 1, "grid must have at least one worker");
  if (partitioning_ == Partitioning::kKeyHash) {
    HAL_CHECK(rows_ == 1, "key-hash partitioning is a flat 1×N layout");
  }
}

std::uint32_t Router::hash_slot(std::uint32_t key) const noexcept {
  return hash_key(key) % cols_;
}

void Router::route(const stream::Tuple& t,
                   std::vector<std::uint32_t>& slots_out) {
  slots_out.clear();
  if (partitioning_ == Partitioning::kKeyHash) {
    slots_out.push_back(hash_slot(t.key));
    return;
  }
  // kSplitGrid: slot index = row * cols + col. R owns a row (replicated
  // across its columns), S owns a column (replicated down its rows).
  if (t.origin == stream::StreamId::R) {
    const auto row = static_cast<std::uint32_t>(count_r_++ % rows_);
    for (std::uint32_t col = 0; col < cols_; ++col) {
      slots_out.push_back(row * cols_ + col);
    }
  } else {
    const auto col = static_cast<std::uint32_t>(count_s_++ % cols_);
    for (std::uint32_t row = 0; row < rows_; ++row) {
      slots_out.push_back(row * cols_ + col);
    }
  }
}

}  // namespace hal::cluster
