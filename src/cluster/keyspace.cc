#include "cluster/keyspace.h"

#include <algorithm>

#include "common/assert.h"

namespace hal::cluster {

KeyspaceMap KeyspaceMap::uniform(std::uint32_t shards) {
  HAL_CHECK(shards >= 1, "keyspace needs at least one shard");
  KeyspaceMap map;
  map.owners_.resize(kKeyslots);
  for (std::uint32_t ks = 0; ks < kKeyslots; ++ks) {
    map.owners_[ks] = ks % shards;
  }
  map.version_ = 1;
  return map;
}

std::uint32_t KeyspaceMap::owner(std::uint32_t keyslot) const {
  HAL_CHECK(keyslot < owners_.size(), "keyslot out of range");
  return owners_[keyslot];
}

std::uint32_t KeyspaceMap::shard_of_key(std::uint32_t key) const {
  return owner(keyslot_of(key));
}

const std::vector<std::uint32_t>* KeyspaceMap::split_group(
    std::uint32_t key) const {
  const auto it = splits_.find(key);
  return it == splits_.end() ? nullptr : &it->second;
}

void KeyspaceMap::set_owner(std::uint32_t keyslot, std::uint32_t shard) {
  HAL_CHECK(keyslot < owners_.size(), "keyslot out of range");
  owners_[keyslot] = shard;
}

void KeyspaceMap::split(std::uint32_t key,
                        std::vector<std::uint32_t> members) {
  HAL_CHECK(!members.empty(), "a hot-key group needs at least one member");
  std::vector<std::uint32_t> sorted = members;
  std::sort(sorted.begin(), sorted.end());
  HAL_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
            "hot-key group members must be distinct");
  splits_[key] = std::move(members);
}

void KeyspaceMap::unsplit(std::uint32_t key) { splits_.erase(key); }

std::vector<std::uint32_t> KeyspaceMap::referenced_shards() const {
  std::vector<std::uint32_t> out = owners_;
  for (const auto& [key, members] : splits_) {
    out.insert(out.end(), members.begin(), members.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool KeyspaceMap::valid() const {
  if (version_ == 0 || owners_.size() != kKeyslots) return false;
  for (const auto& [key, members] : splits_) {
    if (members.empty()) return false;
    std::vector<std::uint32_t> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace hal::cluster
