// hal::cluster over hal::net — the truly distributed runtime.
//
// ClusterEngine models a multi-node deployment inside one process; this
// layer splits it across real process (or machine) boundaries. The roles:
//
//   serve_worker()    — runs in each worker process: listens on a
//                       transport address, accepts the coordinator's
//                       connection, and serves tuple batches through an
//                       unmodified single-node engine until shutdown.
//                       Watermarks are the epoch barriers; their R/S
//                       arrival counts let the worker audit that the
//                       transport delivered every routed tuple exactly
//                       once — under injected faults included.
//   RemoteCoordinator — the router + exact-global merger side: partitions
//                       tuples across the worker connections (same Router
//                       and WindowTracker as the in-process engine),
//                       drains result batches opportunistically while
//                       sending (the credit windows on both directions
//                       would otherwise deadlock), and emits the same
//                       deterministically ordered, window-filtered result
//                       multiset the in-process cluster produces.
//
// The protocol per connection, all framed by net/wire.h:
//
//   coordinator → worker: TupleBatch*  (Watermark ends each epoch)
//   worker → coordinator: ResultBatch* (end_of_epoch=true answers the
//                                       watermark barrier)
//   either → either:      Shutdown     (orderly teardown)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "core/stream_join.h"
#include "net/transport.h"

namespace hal::cluster {

struct RemoteWorkerOptions {
  net::TransportKind transport = net::TransportKind::kTcp;
  // Address to listen on ("127.0.0.1:0" = ephemeral TCP port; "@name" =
  // abstract unix socket; any string for loopback).
  std::string listen_address;
  std::uint32_t node_id = 0;
  // Fully resolved engine configuration (window_size must already be the
  // per-worker window, see remote_worker_window_size()).
  core::EngineConfig engine;
  std::size_t batch_size = 64;     // result-batch granularity
  std::size_t window_frames = 64;  // credit window granted per link
  double accept_timeout_s = 30.0;
  // Called with the resolved address (ephemeral port filled in) before
  // accepting — e.g. print it for the coordinator process to read.
  std::function<void(const std::string&)> on_listening;
  // Loopback rendezvous requires dial and listen on one Transport object;
  // pass the shared hub here. Null = create a private transport.
  net::Transport* shared_transport = nullptr;
};

struct RemoteWorkerReport {
  std::uint64_t epochs = 0;
  std::uint64_t tuples_in = 0;
  std::uint64_t results_out = 0;
  std::uint64_t batches_in = 0;
  net::NetStats net;  // worker-side connection counters
};

// Serves one shard to completion (until the coordinator's shutdown or the
// accept timeout). Blocking; run it on a dedicated thread or process.
RemoteWorkerReport serve_worker(const RemoteWorkerOptions& opts);

struct RemoteClusterConfig {
  Partitioning partitioning = Partitioning::kKeyHash;
  std::uint32_t shards = 4;     // kKeyHash slot count
  std::uint32_t grid_rows = 2;  // kSplitGrid layout
  std::uint32_t grid_cols = 2;
  WindowMode window_mode = WindowMode::kExactGlobal;
  std::size_t window_size = 1 << 10;
  stream::JoinSpec spec = stream::JoinSpec::equi_on_key();

  std::size_t batch_size = 64;
  std::size_t window_frames = 64;
  net::TransportKind transport = net::TransportKind::kTcp;
  // One worker address per shard slot (slot index = vector index).
  std::vector<std::string> worker_addresses;
  // Wire faults injected on every coordinator→worker link; the merged
  // result multiset must be unaffected (the transport recovers).
  net::FaultPlan fault;
  net::Transport* shared_transport = nullptr;  // loopback hub (see above)
  double connect_timeout_s = 15.0;
};

// Per-worker engine window implied by the partitioning scheme — the same
// derivation the in-process ClusterEngine applies.
[[nodiscard]] std::size_t remote_worker_window_size(
    const RemoteClusterConfig& cfg);

struct RemoteClusterReport {
  std::uint64_t epochs = 0;
  std::uint64_t input_tuples = 0;
  std::uint64_t routed_tuples = 0;
  std::uint64_t merged_results = 0;
  std::uint64_t filtered_results = 0;
  double elapsed_seconds = 0.0;
  net::NetStats net;  // coordinator-side ends of every link, summed
};

class RemoteCoordinator {
 public:
  explicit RemoteCoordinator(const RemoteClusterConfig& cfg);
  ~RemoteCoordinator();

  RemoteCoordinator(const RemoteCoordinator&) = delete;
  RemoteCoordinator& operator=(const RemoteCoordinator&) = delete;

  // One epoch: route, barrier on every worker's watermark answer, merge,
  // window-filter, order deterministically.
  core::RunReport process(const std::vector<stream::Tuple>& tuples);
  std::vector<stream::ResultTuple> take_results();

  [[nodiscard]] RemoteClusterReport report() const;
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

  // Orderly teardown: shutdown frames to every worker. Idempotent; the
  // destructor calls it.
  void shutdown();

 private:
  void flush_slot(std::uint32_t slot, std::vector<stream::Tuple>& staging);
  void send_with_drain(std::uint32_t slot, net::MsgType type,
                       const std::vector<std::uint8_t>& payload);
  void drain_results();

  RemoteClusterConfig cfg_;
  Router router_;
  WindowTracker tracker_;  // used iff window_mode == kExactGlobal
  std::unique_ptr<net::Transport> owned_transport_;
  net::Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<net::Connection>> conns_;

  std::uint64_t epoch_ = 0;
  std::vector<std::vector<stream::Tuple>> staging_;
  std::vector<std::uint32_t> scratch_slots_;
  std::vector<std::uint64_t> slot_r_count_;  // per-epoch watermark audit
  std::vector<std::uint64_t> slot_s_count_;
  std::vector<std::vector<stream::ResultTuple>> pending_;  // per slot
  std::vector<std::uint64_t> done_epoch_;
  std::vector<stream::ResultTuple> epoch_results_;
  std::vector<stream::ResultTuple> collected_;

  std::uint64_t input_tuples_ = 0;
  std::uint64_t routed_tuples_ = 0;
  std::uint64_t merged_results_ = 0;
  std::uint64_t filtered_results_ = 0;
  double elapsed_seconds_ = 0.0;
  bool shut_down_ = false;
};

}  // namespace hal::cluster
