// Versioned key→shard ownership for the elastic key-hash cluster.
//
// The static `hash(key) % shards` router cannot express reconfiguration:
// moving a key range means changing the modulus, which reshuffles *every*
// key. A KeyspaceMap interposes a fixed intermediate space of kKeyslots
// hash buckets ("keyslots", the Redis-cluster trick): keys hash onto
// keyslots permanently, keyslots map to shard slots by a mutable owner
// table, and reconfiguration moves whole keyslots — each migration
// touches exactly the keys of the slots it moves and nothing else.
//
// Two routing layers:
//
//   owners  — keyslot → shard. The uniform() factory reproduces the old
//             static hash layout bit-for-bit whenever the shard count
//             divides kKeyslots (every power of two up to 256), so a
//             never-reconfigured cluster routes exactly as before.
//   splits  — per-key hot-key overrides (join-matrix style, a 1×k grid
//             per key): a split key's R tuples are replicated to every
//             group member and its S tuples are dealt round-robin across
//             them, so each (r, s) pair for that key meets at exactly one
//             member. This caps the per-member probe cost for a single
//             "celebrity" key that exceeds one shard's fair share — the
//             case owner rebalancing alone cannot fix.
//
// Versioning invariants (enforced by ClusterEngine::apply_keyspace):
//
//   * Revisions apply in order: version N installs only over N-1. The
//     router never routes with a map whose version it did not observe
//     being installed — there is no torn or skipped revision.
//   * A revision may only reference live (non-retired) shard slots.
//   * Installation happens at an epoch barrier, after the state of every
//     moved keyslot has been rebuilt at its new owner — so a tuple routed
//     under revision N always finds the window state its matches need.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace hal::cluster {

class KeyspaceMap {
 public:
  // Fixed keyslot count. Large enough that 256-way load estimates are
  // smooth at realistic key domains, small enough that a full migration
  // plan is trivially cheap to compute.
  static constexpr std::uint32_t kKeyslots = 256;

  // Fibonacci multiplicative hash — cheap, and decorrelates the
  // sequential key patterns the generators produce from the shard index.
  [[nodiscard]] static std::uint32_t hash_key(std::uint32_t key) noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(key) * 2654435761ULL) >> 16);
  }
  [[nodiscard]] static std::uint32_t keyslot_of(std::uint32_t key) noexcept {
    return hash_key(key) % kKeyslots;
  }

  // Version-1 map assigning keyslot ks to shard ks % shards. When shards
  // divides kKeyslots this equals the pre-elastic static layout
  // hash(key) % shards for every key.
  [[nodiscard]] static KeyspaceMap uniform(std::uint32_t shards);

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] const std::vector<std::uint32_t>& owners() const noexcept {
    return owners_;
  }
  [[nodiscard]] std::uint32_t owner(std::uint32_t keyslot) const;
  // Owner of the key's keyslot (ignores splits — callers that honor
  // splits must check split_group() first).
  [[nodiscard]] std::uint32_t shard_of_key(std::uint32_t key) const;
  // The key's hot-key group, or nullptr when the key is not split.
  [[nodiscard]] const std::vector<std::uint32_t>* split_group(
      std::uint32_t key) const;
  // Deterministically ordered (std::map) so migration plans and routing
  // derived from iteration are reproducible.
  [[nodiscard]] const std::map<std::uint32_t, std::vector<std::uint32_t>>&
  splits() const noexcept {
    return splits_;
  }

  // --- Next-revision builders ------------------------------------------
  // Copy the installed map, mutate, bump_version() once, then hand the
  // result to ClusterEngine::apply_keyspace.
  void set_owner(std::uint32_t keyslot, std::uint32_t shard);
  // Installs/replaces a hot-key group. Members must be non-empty and
  // duplicate-free; the group order is the S-side deal order.
  void split(std::uint32_t key, std::vector<std::uint32_t> members);
  void unsplit(std::uint32_t key);
  void bump_version() noexcept { ++version_; }

  // Every shard slot the map references (owners ∪ split members), sorted
  // and deduplicated.
  [[nodiscard]] std::vector<std::uint32_t> referenced_shards() const;

  // Structural well-formedness: fully populated owner table, valid split
  // groups. Shard-liveness is the engine's check (it knows the topology).
  [[nodiscard]] bool valid() const;

 private:
  std::uint64_t version_ = 0;  // 0 = default-constructed, not installable
  std::vector<std::uint32_t> owners_;  // size kKeyslots once initialized
  std::map<std::uint32_t, std::vector<std::uint32_t>> splits_;
};

}  // namespace hal::cluster
