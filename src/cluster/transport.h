// In-process transport layer of the hal::cluster runtime.
//
// The cluster models a multi-node deployment inside one process: every
// router→worker and worker→merger connection is a *link* — a bounded SPSC
// channel carrying tuple/result batches, with optional per-link bandwidth
// and latency parameters. Bandwidth pacing stamps each batch with a
// delivery deadline derived from a per-link serialization clock (a batch
// of k tuples occupies the wire for k/bandwidth seconds), and the receiver
// holds the batch until its deadline — so a throttled link sustains at
// most its configured rate without ever blocking the sender beyond queue
// capacity. This makes `dist::PathModel` predictions testable against
// actual execution: configure the links from `dist::PipelineParams`,
// throttle them below engine capacity, and the measured cluster throughput
// must track `PathModel::sustainable_input_tps()`.
//
// Bounded queues are the backpressure mechanism (exactly as the hardware
// engines' ready/valid FIFO links): a full inbox stalls the router, a full
// outbox stalls the worker, and every stalled spin is counted so the
// `ClusterReport` can attribute lost throughput to the congested link.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/spsc_queue.h"
#include "dist/deployments.h"
#include "dist/path_model.h"
#include "net/transport.h"
#include "stream/tuple.h"

namespace hal::cluster {

struct LinkParams {
  // Tuples/s the link can carry; 0 disables bandwidth pacing.
  double bandwidth_tps = 0.0;
  // One-way propagation latency added to every batch, in microseconds.
  double latency_us = 0.0;
  // Bounded queue depth, in batches (backpressure threshold).
  std::size_t capacity_batches = 64;

  // --- hal::guard send budgets / circuit breaker -----------------------
  // Upper bound on how long one send() may stall against a full queue or
  // exhausted credit window before giving up, in microseconds. 0 keeps
  // the pre-guard behavior: retry forever (backpressure, never loss). A
  // bounded budget turns a wedged consumer (partitioned TCP peer, dead
  // worker behind a full queue) from an epoch-long stall into a counted
  // send failure the cluster can fail over from.
  double send_budget_us = 0.0;
  // After this many *consecutive* budget-exhausted sends the breaker
  // opens: every later send fails fast (one counted drop, no waiting)
  // until the link is replaced. 0 disables the breaker (each send spends
  // its full budget). Only meaningful with send_budget_us > 0.
  std::uint32_t breaker_trip_failures = 1;
};

struct TransportParams {
  // Tuples accumulated per batch before a link send (amortizes the
  // per-message queue round trip, like the batched GPU dispatch).
  std::size_t batch_size = 64;
  LinkParams ingress;  // router → worker
  LinkParams egress;   // worker → merger

  // Link backing. kInProcess keeps the raw SPSC queues below (with
  // bandwidth/latency modeling); any other kind routes every batch
  // through a hal::net connection pair — full wire codec, credit window,
  // and (for kUnix/kTcp) real sockets between the cluster's threads.
  // Modeled pacing does not apply to net-backed links: the wire is real,
  // so its latency is too.
  net::TransportKind link_transport = net::TransportKind::kInProcess;
  // Credit window granted on each net-backed link, in frames.
  std::size_t net_window_frames = 64;
  // Wire faults injected on every net-backed ingress link (recovery is
  // the transport's job; the cluster's results must not change).
  net::FaultPlan net_fault;
  // Restrict net_fault to these worker indices (empty = every worker).
  // Lets a chaos plan partition exactly one worker's ingress wire while
  // its replica stays healthy, so breaker-to-failover is observable.
  std::vector<std::uint32_t> net_fault_workers;
  // Net endpoint budget overrides for the cluster's links; 0 keeps the
  // EndpointOptions default. Tightening stall_timeout_ms bounds how long
  // a tail-loss reset takes; backoff_max_ms bounds redial latency.
  double net_connect_timeout_s = 0.0;
  double net_stall_timeout_ms = 0.0;
  double net_backoff_max_ms = 0.0;

  // Derives link parameters from the distributed-pipeline parameter set
  // used by the dist:: deployment models: the router→worker hop crosses
  // the switch and the destination NIC; the result hop crosses the NIC.
  [[nodiscard]] static TransportParams from_pipeline(
      const dist::PipelineParams& p);
};

// One shard's data path through the cluster, expressed in the dist::
// active-data-path vocabulary so modeled and measured throughput can be
// compared directly: ingress link → worker engine → egress link.
[[nodiscard]] dist::PathModel shard_path_model(const TransportParams& t,
                                               double worker_tps,
                                               double result_selectivity,
                                               const std::string& name);

struct TupleBatch {
  std::uint64_t epoch = 0;
  // Monotone per-link sequence number assigned by the replay log
  // (hal::recovery); 0 when replay is disabled. A restarted worker uses
  // it to discard live batches already covered by its replay delta.
  std::uint64_t link_seq = 0;
  bool end_of_epoch = false;
  double deliver_at_us = 0.0;  // stamped by Link::send
  std::vector<stream::Tuple> tuples;
};

struct ResultBatch {
  std::uint64_t epoch = 0;
  std::uint64_t link_seq = 0;  // see TupleBatch (unused on egress today)
  bool end_of_epoch = false;
  bool died = false;  // worker announced fail-stop (fault injection)
  double deliver_at_us = 0.0;
  std::vector<stream::ResultTuple> results;
};

// Producer-side link statistics, materialized by Link::stats(). Written
// only by the producer thread; readable from the main thread at any time
// (an abandoned worker keeps draining — and sending — with no epoch
// barrier left to publish its counters, so the live counters inside Link
// are relaxed atomics and this is a torn-free snapshot of them).
struct LinkStats {
  std::uint64_t batches = 0;
  std::uint64_t payload_items = 0;
  std::uint64_t stall_spins = 0;     // failed pushes against a full queue
  std::size_t queue_high_water = 0;  // max observed occupancy, in batches
  // hal::guard breaker accounting (all zero with send_budget_us == 0).
  std::uint64_t budget_exhausted = 0;  // sends that gave up at the budget
  std::uint64_t breaker_drops = 0;     // fast-failed sends (breaker open)
  bool breaker_open = false;
};

// Batch ↔ wire-message bridging for net-backed links (transport.cc).
// try_send returns false on a refused send (credit window exhausted);
// try_recv returns false when no data message is pending.
[[nodiscard]] bool net_try_send(net::Connection& conn, const TupleBatch& b);
[[nodiscard]] bool net_try_send(net::Connection& conn, const ResultBatch& b);
[[nodiscard]] bool net_try_recv(net::Connection& conn, TupleBatch& out);
[[nodiscard]] bool net_try_recv(net::Connection& conn, ResultBatch& out);

// A bounded SPSC channel with bandwidth/latency modeling and stall
// accounting. `now_us` is the caller-supplied cluster clock (microseconds
// since engine start) so pacing composes with fault-injected extra delay.
template <typename T>
class Link {
 public:
  explicit Link(const LinkParams& params)
      : params_(params), queue_(params.capacity_batches) {}

  // Routes the link through a hal::net connection pair instead of the
  // SPSC queue: the producer end encodes every batch onto `tx`, the
  // consumer end decodes from `rx`. Call before any traffic; both
  // connections must outlive the link's use. Modeled pacing is disabled
  // (deliver_at_us stays 0) — a net-backed wire has real latency.
  void attach_net(net::Connection* tx, net::Connection* rx) {
    net_tx_ = tx;
    net_rx_ = rx;
  }
  [[nodiscard]] bool net_backed() const noexcept { return net_tx_ != nullptr; }

  // Blocking send with backpressure accounting; stamps the delivery
  // deadline but never sleeps for pacing itself (the receiver pays the
  // modeled wire time, keeping a single producer able to feed N links at
  // their aggregate rate). Returns false iff the send was abandoned — the
  // budget ran out or the breaker was already open (send_budget_us > 0
  // only; an unbudgeted link retries forever and always returns true).
  [[nodiscard]] bool send(T msg, double now_us, std::uint64_t payload_items) {
    if (breaker_open_) {
      stats_.breaker_drops.fetch_add(1, std::memory_order_relaxed);
      stats_.breaker_open.store(true, std::memory_order_relaxed);
      return false;
    }
    if (replay_enabled_) {
      // Sequence assignment and log append are one atomic step, so a
      // supervisor's replay_copy() either contains a batch or sees a
      // floor below its seq — never both, never neither (the exactly-once
      // invariant recovery depends on).
      std::lock_guard<std::mutex> lock(replay_mu_);
      msg.link_seq = ++replay_seq_;
      replay_log_.push_back(msg);
      if (replay_log_.size() > replay_bound_) {
        const std::uint64_t epoch = replay_log_.front().epoch;
        if (epoch > evicted_through_epoch_) evicted_through_epoch_ = epoch;
        replay_log_.pop_front();
      }
    }
    if (net_tx_ != nullptr) {
      stats_.batches.fetch_add(1, std::memory_order_relaxed);
      stats_.payload_items.fetch_add(payload_items,
                                     std::memory_order_relaxed);
      // A refused send is the wire's ready/valid stall: the peer's credit
      // window is exhausted, exactly like a full FIFO.
      SpinBackoff backoff(SpinBackoff::hot_loop());
      BudgetClock budget(params_.send_budget_us);
      while (!net_try_send(*net_tx_, msg)) {
        stats_.stall_spins.fetch_add(1, std::memory_order_relaxed);
        if (budget.exhausted()) return give_up();
        backoff.pause();
      }
      consecutive_failures_ = 0;
      return true;
    }
    double busy_us = 0.0;
    if (params_.bandwidth_tps > 0.0 && payload_items > 0) {
      busy_us = static_cast<double>(payload_items) * 1e6 /
                params_.bandwidth_tps;
    }
    const double start_us = next_free_us_ > now_us ? next_free_us_ : now_us;
    next_free_us_ = start_us + busy_us;
    msg.deliver_at_us = next_free_us_ + params_.latency_us;

    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    stats_.payload_items.fetch_add(payload_items, std::memory_order_relaxed);
    const std::size_t occupied = queue_.size_approx() + 1;  // incl. msg
    const std::size_t clamped =
        occupied < params_.capacity_batches ? occupied
                                            : params_.capacity_batches;
    if (clamped > stats_.queue_high_water.load(std::memory_order_relaxed)) {
      stats_.queue_high_water.store(clamped, std::memory_order_relaxed);
    }
    SpinBackoff backoff(SpinBackoff::hot_loop());
    BudgetClock budget(params_.send_budget_us);
    while (!queue_.try_push(std::move(msg))) {
      stats_.stall_spins.fetch_add(1, std::memory_order_relaxed);
      if (budget.exhausted()) return give_up();
      backoff.pause();
    }
    consecutive_failures_ = 0;
    return true;
  }

  // Breaker state (producer-side; the consumer never writes it).
  [[nodiscard]] bool breaker_open() const noexcept { return breaker_open_; }

  [[nodiscard]] bool try_recv(T& out) {
    if (net_rx_ != nullptr) return net_try_recv(*net_rx_, out);
    return queue_.try_pop(out);
  }

  [[nodiscard]] LinkStats stats() const noexcept {
    LinkStats s;
    s.batches = stats_.batches.load(std::memory_order_relaxed);
    s.payload_items = stats_.payload_items.load(std::memory_order_relaxed);
    s.stall_spins = stats_.stall_spins.load(std::memory_order_relaxed);
    s.queue_high_water =
        stats_.queue_high_water.load(std::memory_order_relaxed);
    s.budget_exhausted =
        stats_.budget_exhausted.load(std::memory_order_relaxed);
    s.breaker_drops = stats_.breaker_drops.load(std::memory_order_relaxed);
    s.breaker_open = stats_.breaker_open.load(std::memory_order_relaxed);
    return s;
  }
  [[nodiscard]] const LinkParams& params() const noexcept { return params_; }

  // --- Bounded replay log (hal::recovery) --------------------------------
  // When enabled, every send is stamped with a monotone link_seq and
  // copied into a bounded log. The producer truncates the log as
  // checkpoints land; a supervisor copies the uncovered suffix to replay
  // into a restarted consumer. Overflow evicts the oldest entry and
  // records the highest evicted epoch, so recovery can detect when the
  // since-checkpoint delta is no longer fully covered.

  // Call before any traffic (producer/consumer threads not yet running).
  void enable_replay(std::size_t max_batches) {
    replay_bound_ = max_batches == 0 ? 1 : max_batches;
    replay_enabled_ = true;
  }
  [[nodiscard]] bool replay_enabled() const noexcept {
    return replay_enabled_;
  }

  // Drops entries fully covered by a checkpoint at `up_to_epoch`
  // (producer side, called at epoch barriers).
  void truncate_replay(std::uint64_t up_to_epoch) {
    if (!replay_enabled_) return;
    std::lock_guard<std::mutex> lock(replay_mu_);
    while (!replay_log_.empty() && replay_log_.front().epoch <= up_to_epoch) {
      replay_log_.pop_front();
    }
  }

  // Highest link_seq assigned so far (0 when replay is disabled): the
  // discard floor for a consumer whose state already covers every past
  // send (elastic rebuilds use it to heal drain-only workers).
  [[nodiscard]] std::uint64_t last_seq() {
    if (!replay_enabled_) return 0;
    std::lock_guard<std::mutex> lock(replay_mu_);
    return replay_seq_;
  }

  // Snapshot of the suffix newer than `after_epoch`, plus the seq floor
  // (everything sent so far; later sends carry seq > floor) and the
  // highest epoch ever evicted (coverage check: evicted > after_epoch
  // means the delta is incomplete and exact recovery is impossible).
  [[nodiscard]] std::vector<T> replay_copy(
      std::uint64_t after_epoch, std::uint64_t& floor_seq,
      std::uint64_t& evicted_through_epoch) {
    std::lock_guard<std::mutex> lock(replay_mu_);
    floor_seq = replay_seq_;
    evicted_through_epoch = evicted_through_epoch_;
    std::vector<T> out;
    for (const T& msg : replay_log_) {
      if (msg.epoch > after_epoch) out.push_back(msg);
    }
    return out;
  }

 private:
  // Lazily-armed wall-clock deadline for one send's retry loop. The clock
  // is read only after the first failed try, so an uncontended send costs
  // nothing; with budget_us <= 0 it never reads the clock at all.
  class BudgetClock {
   public:
    explicit BudgetClock(double budget_us) noexcept : budget_us_(budget_us) {}
    [[nodiscard]] bool exhausted() {
      if (budget_us_ <= 0.0) return false;
      const auto now = std::chrono::steady_clock::now();
      if (!armed_) {
        armed_ = true;
        deadline_ = now + std::chrono::nanoseconds(
                              static_cast<std::int64_t>(budget_us_ * 1e3));
        return false;
      }
      return now >= deadline_;
    }

   private:
    double budget_us_;
    bool armed_ = false;
    std::chrono::steady_clock::time_point deadline_;
  };

  // One send gave up at its budget; trips the breaker after the
  // configured run of consecutive failures.
  [[nodiscard]] bool give_up() {
    stats_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
    ++consecutive_failures_;
    if (params_.breaker_trip_failures > 0 &&
        consecutive_failures_ >= params_.breaker_trip_failures) {
      breaker_open_ = true;
      stats_.breaker_open.store(true, std::memory_order_relaxed);
    }
    return false;
  }

  // Live counters behind LinkStats. One writer (the producer thread), but
  // the main thread snapshots them through stats() while an abandoned
  // worker may still be sending, so every field is a relaxed atomic.
  struct AtomicLinkStats {
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> payload_items{0};
    std::atomic<std::uint64_t> stall_spins{0};
    std::atomic<std::size_t> queue_high_water{0};
    std::atomic<std::uint64_t> budget_exhausted{0};
    std::atomic<std::uint64_t> breaker_drops{0};
    std::atomic<bool> breaker_open{false};
  };

  LinkParams params_;
  SpscQueue<T> queue_;
  net::Connection* net_tx_ = nullptr;  // producer-side net end (or null)
  net::Connection* net_rx_ = nullptr;  // consumer-side net end (or null)
  double next_free_us_ = 0.0;  // producer-owned serialization clock
  AtomicLinkStats stats_;
  std::uint32_t consecutive_failures_ = 0;  // producer-owned
  bool breaker_open_ = false;               // producer-owned

  bool replay_enabled_ = false;
  std::size_t replay_bound_ = 0;
  std::mutex replay_mu_;  // guards the log against supervisor copies
  std::deque<T> replay_log_;
  std::uint64_t replay_seq_ = 0;             // guarded by replay_mu_
  std::uint64_t evicted_through_epoch_ = 0;  // guarded by replay_mu_
};

}  // namespace hal::cluster
