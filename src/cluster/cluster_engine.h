// hal::cluster — sharded multi-node stream-join runtime.
//
// A ClusterEngine implements the core::StreamJoinEngine facade but runs
// the sliding-window join across N worker nodes, each wrapping an
// unmodified single-node backend (hardware uni-flow on the cycle sim,
// software SplitJoin, batched, ...) on its own thread. The pieces:
//
//   router   — partitions tuples SplitJoin-style across a worker grid
//              (store-to-one-shard, process-against-all) or by key hash
//              for equi-joins (see cluster/router.h for the exactness
//              argument).
//   transport— bounded SPSC links carrying tuple/result batches with
//              modeled per-link bandwidth/latency (cluster/transport.h),
//              so dist::PathModel predictions are testable against runs.
//   workers  — one thread per worker; pops ingress batches, drives its
//              inner engine, pushes result batches. Replication factor
//              ≥ 2 runs hot replicas per shard slot for failover.
//   merger   — the cluster-level gathering node: drains every worker's
//              egress link, reassembles per-epoch result sets, and (with
//              WindowMode::kExactGlobal) filters stale pairs so the
//              cluster's output multiset is byte-identical to the
//              single-node reference oracle. Results are emitted in a
//              deterministic order (by probing-tuple arrival).
//
// Robustness: bounded queues give backpressure (stalls are counted, never
// dropped); fault injection can fail-stop a worker or delay a link. A
// failed worker's partial epoch is discarded — its replica's complete
// epoch is used instead (failover) or, with no replica, the loss is
// accounted and reported (clean degradation) while the cluster keeps
// serving the surviving shards.
//
// An epoch is one process() call: feed, drain, merge, report. The engine
// is quiescent between epochs, which is when report() may be read.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "cluster/router.h"
#include "cluster/transport.h"
#include "common/timer.h"
#include "core/stream_join.h"
#include "guard/guard.h"

namespace hal::cluster {

enum class FaultKind : std::uint8_t {
  // Fail-stop: the worker dies immediately before processing the trigger
  // batch. Unsupervised it announces the failure and keeps draining its
  // inbox so the router never wedges; supervised it exits and is
  // restarted from its last checkpoint (see RecoveryConfig).
  kKillWorker,
  // Contained fault: the worker throws hal::Error at the trigger batch
  // (exercising the HAL_CHECK_RECOVERABLE path) and fail-stops like
  // kKillWorker.
  kWorkerError,
  // Link fault: extra one-way delay on the worker's ingress link for the
  // whole run (applied at construction; epoch/after_batches ignored).
  kDelayLink,
  // Gray failure: the worker stays alive and correct but turns slow — an
  // injected per-batch delay of extra_delay_us inside its busy section
  // (so service-time accounting sees it, exactly like a thermal throttle
  // or noisy neighbor would look) for duration_batches batches starting
  // at the trigger. period > 1 makes it a stutter: only every period-th
  // batch is delayed (GC-pause shaped). Output is unaffected — which is
  // the point: only hal::guard's detector can tell.
  kSlowWorker,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kKillWorker;
  // Flat worker index = slot * replicas + replica.
  std::uint32_t worker = 0;
  // Trigger position for kill/error events: the event fires immediately
  // before the worker processes its (after_batches + 1)-th non-empty data
  // batch — counted within `epoch` when epoch >= 1, or across the whole
  // run when epoch == 0 (the legacy drop_worker semantics). An epoch
  // trigger the stream never reaches fires at the first batch of a later
  // epoch instead, so seeded chaos plans stay deterministic on short
  // runs. Each event fires at most once, surviving worker restarts.
  std::uint64_t epoch = 0;
  std::uint32_t after_batches = 0;
  // kDelayLink: permanent extra link latency. kSlowWorker: injected
  // per-batch processing delay.
  double extra_delay_us = 0.0;
  // kSlowWorker only: how many batches the degradation lasts (0 = the
  // rest of the run) and the stutter period (1 = every batch is slow).
  std::uint64_t duration_batches = 0;
  std::uint32_t period = 1;
};

struct FaultPlan {
  // Any number of simultaneous faults (multiple kills, kill + delay, ...).
  std::vector<FaultEvent> events;
};

struct RecoveryConfig {
  // Master switch: enables per-worker checkpoints, ingress replay logs
  // and the Supervisor thread. With it off a killed worker stays dead
  // (replica failover / clean degradation, the pre-recovery behavior).
  bool supervise = false;
  // A worker checkpoints its engine after every k-th completed epoch
  // (before publishing the epoch, so the checkpoint is always at least as
  // fresh as what the main thread has observed). 0 disables checkpoints:
  // restarts then replay from an empty window, which is only exact while
  // the replay log still covers everything since epoch 0.
  std::uint32_t checkpoint_interval_epochs = 1;
  // Per-ingress-link replay log bound, in batches. When a restart needs
  // batches the log already evicted, exact recovery is impossible and the
  // worker degrades to a drained slot (counted in RecoveryStats).
  std::size_t replay_log_batches = std::size_t{1} << 12;
};

struct RecoveryStats {
  std::uint64_t checkpoints = 0;       // images taken across all workers
  std::uint64_t checkpoint_bytes = 0;  // Σ serialized image sizes
  std::uint64_t restarts = 0;          // supervised respawns
  std::uint64_t replayed_batches = 0;  // delta batches reprocessed
  std::uint64_t replayed_tuples = 0;
  std::uint64_t unrecoverable = 0;  // restarts that lost replay coverage
  double mttr_seconds_total = 0.0;  // Σ kill-detect → worker respawned
  double mttr_seconds_max = 0.0;
};

struct ElasticParams {
  // Per-key routed-tuple counters in the router: the measured-skew feed
  // for elastic::Controller::rebalance(). Off by default (one hash-map
  // increment per routed tuple).
  bool track_key_load = false;
};

struct ClusterConfig {
  Partitioning partitioning = Partitioning::kKeyHash;
  std::uint32_t shards = 4;     // kKeyHash slot count (initial, elastic)
  std::uint32_t grid_rows = 2;  // kSplitGrid layout (slots = rows × cols)
  std::uint32_t grid_cols = 2;
  // Workers per shard slot; 2 enables failover under fault injection.
  std::uint32_t replicas = 1;
  WindowMode window_mode = WindowMode::kExactGlobal;

  // Global per-stream sliding window; the per-worker engine window is
  // derived from it (see worker_window_size()).
  std::size_t window_size = 1 << 10;
  stream::JoinSpec spec = stream::JoinSpec::equi_on_key();

  // Template for every worker's inner engine (backend, num_cores,
  // collect_results, hw network/clock options). window_size and spec are
  // overridden by the cluster.
  core::EngineConfig worker;
  // Optional per-slot overrides (mixed-backend clusters), indexed by slot.
  std::vector<core::EngineConfig> worker_overrides;

  TransportParams transport;
  FaultPlan faults;
  RecoveryConfig recovery;
  ElasticParams elastic;
  // Core pinning / NUMA-aware shard layout for the worker threads
  // (cluster/placement.h). Off by default.
  PlacementConfig placement;
  // SLO-bounded admission at the cluster ingress (hal::guard): tuples are
  // shed — with exact accounting — before routing and before the
  // exact-global tracker, so the guarded output equals the reference
  // join of (input − shed log). Off by default; with guard.enabled false
  // the hot path pays one branch per epoch.
  guard::GuardConfig guard;
};

// Per-worker engine window implied by the partitioning scheme (the
// divisibility requirements are HAL_CHECKed at construction).
[[nodiscard]] std::size_t worker_window_size(const ClusterConfig& cfg);

// True iff the spec pins r.key == s.key, making hash partitioning lossless.
[[nodiscard]] bool key_hashable(const stream::JoinSpec& spec);

struct WorkerReport {
  std::uint32_t index = 0;
  std::uint32_t slot = 0;
  std::uint32_t replica = 0;
  core::Backend backend = core::Backend::kSwSplitJoin;
  std::uint64_t tuples_in = 0;
  std::uint64_t results_out = 0;
  std::uint64_t data_batches_in = 0;
  std::uint64_t result_batches_out = 0;
  double busy_seconds = 0.0;  // time inside the inner engine
  bool pinned = false;        // thread affinity applied successfully
  int pin_cpu = -1;           // assigned CPU (-1 = unpinned)
  bool dropped = false;
  bool unrecoverable = false;  // supervised restart lost replay coverage
  std::uint64_t restarts = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t replayed_batches = 0;
  std::uint64_t heartbeat = 0;  // worker-loop liveness ticks
  std::uint64_t slow_batches = 0;  // batches degraded by kSlowWorker
  LinkStats ingress;  // router → this worker (stalls charged to router)
  LinkStats egress;   // this worker → merger (stalls charged to worker)
};

struct ClusterReport {
  std::vector<WorkerReport> workers;  // incl. retired slots (elastic)
  std::uint64_t input_tuples = 0;   // tuples offered to process()
  std::uint64_t routed_tuples = 0;  // tuple-sends incl. grid replication
  std::uint64_t merged_results = 0;
  // Stale pairs removed by the exact-global window filter.
  std::uint64_t filtered_results = 0;
  std::uint64_t failovers = 0;
  std::uint64_t lost_tuples = 0;  // routed to a dead, replica-less slot
  bool degraded = false;
  std::uint64_t router_stall_spins = 0;   // Σ ingress stalls
  std::uint64_t worker_stall_spins = 0;   // Σ egress stalls
  // Workers whose thread affinity was applied (0 unless
  // config().placement.pin_workers and the host honors the mask).
  std::uint64_t pinned_workers = 0;
  std::size_t ingress_queue_high_water = 0;
  std::size_t egress_queue_high_water = 0;
  double elapsed_seconds = 0.0;  // Σ process() wall time
  // Net-backed links only: every connection end's counters, summed (so
  // each wire frame shows up once as sent and once as received).
  bool net_enabled = false;
  net::NetStats net;
  // Supervised-recovery totals (all zero when recovery.supervise is off).
  RecoveryStats recovery;
  // Elastic topology (kKeyHash): live slots and the installed keyspace
  // revision. A never-reconfigured cluster reports active_shards ==
  // config().shards and keyspace_version == 1.
  std::uint32_t active_shards = 0;
  std::uint64_t keyspace_version = 0;
  // hal::guard: ingress admission totals (zero when guard is disabled)
  // and circuit-breaker accounting across all links.
  bool guard_enabled = false;
  guard::GuardStats guard;
  std::uint64_t budget_exhausted = 0;  // sends abandoned at their budget
  std::uint64_t breaker_drops = 0;     // fast-failed sends (breaker open)
  std::uint64_t breaker_trips = 0;     // links whose breaker is open

  [[nodiscard]] double throughput_tuples_per_sec() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(input_tuples) / elapsed_seconds
               : 0.0;
  }
};

class ClusterEngine final : public core::StreamJoinEngine {
 public:
  explicit ClusterEngine(const ClusterConfig& cfg);
  ~ClusterEngine() override;

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  core::RunReport process(const std::vector<stream::Tuple>& tuples) override;
  void prefill(const std::vector<stream::Tuple>& tuples) override;
  void program(const stream::JoinSpec& spec) override;
  std::vector<stream::ResultTuple> take_results() override;
  [[nodiscard]] core::Backend backend() const noexcept override {
    return core::Backend::kCluster;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return std::nullopt;
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }
  // Aggregated runtime metrics. Valid between process() calls.
  [[nodiscard]] ClusterReport report() const;

  // --- Elastic topology (hal::elastic, kKeyHash only) -------------------
  // All of these run on the thread that calls process(), strictly between
  // process() calls: the engine is quiescent at that epoch barrier (every
  // slot's epoch has been collected, supervised restarts included), which
  // is the migration protocol's freeze point. elastic::Controller is the
  // intended caller; the primitives are public so tests can drive them.

  // Slots ever created, retired included (slot ids are never reused).
  [[nodiscard]] std::uint32_t slot_count() const noexcept {
    return static_cast<std::uint32_t>(slot_staging_.size());
  }
  [[nodiscard]] std::uint32_t active_slot_count() const noexcept;
  [[nodiscard]] bool slot_retired(std::uint32_t slot) const;

  // Appends a new shard slot (cfg.replicas fresh workers, net links when
  // net-backed) and returns its id. It receives traffic only once a
  // keyspace revision maps keyslots (or split members) to it.
  std::uint32_t add_slot();
  // Permanently retires a slot the installed keyspace no longer
  // references: worker threads exit and their engines are destroyed.
  void retire_slot(std::uint32_t slot);

  // Installed routing revision; apply_keyspace requires version exactly
  // current+1 and every referenced shard to be a live slot.
  [[nodiscard]] const KeyspaceMap& keyspace() const {
    return router_.keyspace();
  }
  void apply_keyspace(KeyspaceMap map);

  // Serialized recovery::serialize frame of the freshest live replica's
  // current window (epoch-stamped at the barrier); empty when every
  // replica of the slot is dead or cannot snapshot.
  [[nodiscard]] std::vector<std::uint8_t> snapshot_slot(std::uint32_t slot);
  // Newest *published* checkpoint frame of a live replica plus its epoch;
  // empty when none was taken yet (requires recovery.supervise).
  [[nodiscard]] std::vector<std::uint8_t> checkpoint_slot(
      std::uint32_t slot, std::uint64_t& epoch_out);
  // Copy of the slot's ingress replay-log suffix newer than after_epoch
  // (replicas receive identical traffic, so any live replica's log
  // serves). complete_out: the log still covers everything after
  // after_epoch. Requires recovery.supervise (the logs exist only then).
  [[nodiscard]] std::vector<TupleBatch> replay_delta_slot(
      std::uint32_t slot, std::uint64_t after_epoch, bool& complete_out);
  // Replaces every replica engine of `slot` with a fresh engine prefilled
  // with `window` (arrival order; the engine's own count-based eviction
  // trims it). Also heals dead/unrecoverable replicas — the rebuilt
  // window *is* their complete state — and, under supervision, publishes
  // a fresh checkpoint so a later restart replays only post-rebuild
  // deltas instead of restoring a pre-migration image.
  void rebuild_slot(std::uint32_t slot,
                    const std::vector<stream::Tuple>& window);

  // Per-key routed-tuple counts since the last reset (empty unless
  // cfg.elastic.track_key_load).
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint64_t>&
  key_load() const noexcept {
    return router_.key_load();
  }
  void reset_key_load() { router_.reset_key_load(); }

  // Folds the ClusterReport into the registry: routing/merge totals and
  // per-worker traffic are deterministic (routing and the fault plan are
  // batch-count driven), stall spins / queue depths / wall times are not.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override;

  // --- hal::guard -------------------------------------------------------
  // The cluster-ingress admission guard (shed log, stats, latch state).
  // Read between process() calls; non-null even when disabled.
  [[nodiscard]] const guard::AdmissionGuard* admission_guard()
      const noexcept override {
    return &guard_;
  }
  // Trips one worker permanently off the serving path (main thread, used
  // on ingress send failure; also callable from tests). The worker keeps
  // draining but its epochs stop counting — replica failover or clean
  // degradation take over, instead of the epoch stalling forever.
  void abandon_worker(std::uint32_t index);

 private:
  struct MergeSlot;

  struct Worker {
    Worker(std::uint32_t index, std::uint32_t slot, std::uint32_t replica,
           const LinkParams& ingress, const LinkParams& egress)
        : index(index), slot(slot), replica(replica), inbox(ingress),
          outbox(egress) {}

    const std::uint32_t index;
    const std::uint32_t slot;
    const std::uint32_t replica;
    std::unique_ptr<core::StreamJoinEngine> engine;
    Link<TupleBatch> inbox;
    Link<ResultBatch> outbox;
    std::thread thread;

    // Worker-thread-written; normally published to the main thread by the
    // end-of-epoch / died message through the merger, but an abandoned
    // worker keeps draining with no barrier left, so report() may read
    // these live — relaxed atomics (single writer) keep that torn-free.
    std::atomic<std::uint64_t> tuples_in{0};
    std::atomic<std::uint64_t> results_out{0};
    std::atomic<std::uint64_t> data_batches_in{0};
    std::atomic<double> busy_seconds{0.0};
    std::vector<stream::ResultTuple> staged;  // results awaiting egress
    std::atomic<bool> dropped{false};

    // This worker's merge slot (heap-stable; set before the thread
    // starts). Lets the worker thread mark its own epoch dead when an
    // egress-side breaker trip makes the obituary path itself unusable.
    MergeSlot* merge_slot = nullptr;

    // kSlowWorker state (worker-thread owned once consume() latches it).
    std::uint64_t slow_remaining = 0;  // batches still degraded
    double slow_us = 0.0;              // injected delay per slow batch
    std::uint32_t slow_period = 1;     // stutter period (1 = every batch)
    std::uint64_t slow_tick = 0;
    // Total batches actually delayed; atomic for the same abandoned-worker
    // live read as the counters above.
    std::atomic<std::uint64_t> slow_batches{0};

    // Placement: CPU assigned by the policy (-1 = none); `pinned` set by
    // the worker thread once the affinity mask sticks (relaxed is enough —
    // reporting only).
    int pin_cpu = -1;
    std::atomic<bool> pinned{false};

    // --- Elastic retirement (main thread orchestrates) ------------------
    core::Backend backend_tag = core::Backend::kSwSplitJoin;  // outlives engine
    std::atomic<bool> exit_req{false};  // ask the thread to return at idle
    std::atomic<bool> retired{false};   // thread joined, engine destroyed

    // --- Supervised-recovery state (recovery.supervise only) ------------
    core::EngineConfig engine_cfg;  // to rebuild the engine on restart
    // This worker's fault events; `fault_fired` persists across
    // incarnations so a replayed trigger position cannot re-fire.
    std::vector<FaultEvent> faults;
    std::vector<bool> fault_fired;
    std::uint64_t epoch_batches = 0;  // non-empty batches this epoch

    std::atomic<std::uint64_t> heartbeat{0};  // liveness ticks (obs gauge)
    std::atomic<bool> dead{false};  // thread exited; supervisor must act
    std::atomic<bool> unrecoverable{false};  // restart lost coverage

    // Newest checkpoint: worker thread writes, supervisor reads. The
    // published epoch additionally feeds replay-log truncation on the
    // main thread (reading it there is sound: the worker stores before
    // sending the end-of-epoch batch the main thread has already merged).
    std::mutex ckpt_mu;
    std::vector<std::uint8_t> ckpt_bytes;   // guarded by ckpt_mu
    std::uint64_t ckpt_epoch = 0;           // guarded by ckpt_mu
    std::atomic<std::uint64_t> ckpt_epoch_pub{0};

    // Replay handoff, set by the supervisor before respawning the thread
    // (the spawn publishes it). The respawned loop processes `replay`
    // first, then discards inbox batches with link_seq <= replay_floor —
    // every batch is processed exactly once under any interleaving.
    std::vector<TupleBatch> replay;
    std::uint64_t replay_floor = 0;

    // Recovery tallies. checkpoints/checkpoint_bytes are worker-owned
    // (published like tuples_in); restarts/mttr are supervisor-owned and
    // ordered by the respawn → end-of-epoch → collect chain.
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpoint_bytes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t replayed_batches = 0;
    std::uint64_t replayed_tuples = 0;
    double mttr_seconds_total = 0.0;
    double mttr_seconds_max = 0.0;
    std::vector<double> mttr_us_samples;  // for the mttr_us histogram
  };

  // Merger-side per-worker assembly state. `pending` is merger-owned;
  // `completed` is handed to the main thread by the `completed_epoch`
  // release store and not touched again until the next epoch's traffic.
  struct MergeSlot {
    std::vector<stream::ResultTuple> pending;
    std::vector<stream::ResultTuple> completed;
    double last_deliver_at_us = 0.0;
    std::atomic<std::uint64_t> completed_epoch{0};
    std::atomic<bool> died{false};
  };

  void worker_loop(Worker& w);
  // Processes one ingress batch inside the worker loop; returns false iff
  // the worker fail-stopped and (supervised) its thread must exit.
  bool consume(Worker& w, TupleBatch batch, bool replaying);
  // First unfired kill/error event due at this batch, or nullptr.
  [[nodiscard]] const FaultEvent* due_fault(Worker& w,
                                            const TupleBatch& batch);
  // Fail-stop bookkeeping shared by kills, injected errors and contained
  // hal::Error faults; returns the value consume() must return.
  bool fail_stop(Worker& w, std::uint64_t epoch);
  // Worker-thread handling of an abandoned egress send (budget exhausted
  // or breaker open): drain-only containment without a restart. Returns
  // the value consume() must return (true — the thread keeps draining).
  bool egress_lost(Worker& w);
  void maybe_checkpoint(Worker& w, std::uint64_t epoch);
  void supervisor_loop();
  void recover(Worker& w);
  void merger_loop();
  void flush_slot(std::uint32_t slot, bool end_of_epoch);
  void collect_slot(std::uint32_t slot,
                    std::vector<stream::ResultTuple>& out);
  void wait_until(double deadline_us) const;
  [[nodiscard]] double now_us() const { return timer_.elapsed_us(); }

  // Establishes one net connection pair per worker link and attaches it
  // (constructor, net-backed transports only).
  void setup_net_links();
  // Dials and accepts the two connections of one worker's links
  // (net-backed transports; no-op otherwise). add_slot() uses it to wire
  // workers created after construction.
  void attach_net_links(Worker& w);
  // Builds (but does not start) one worker. Caller pushes it and its
  // MergeSlot under topology_mu_ when threads are already running.
  [[nodiscard]] std::unique_ptr<Worker> make_worker(std::uint32_t slot,
                                                    std::uint32_t replica);
  void start_worker(Worker& w);

  ClusterConfig cfg_;
  Router router_;
  PlacementPolicy placement_;
  WindowTracker tracker_;  // used iff window_mode == kExactGlobal
  Timer timer_;            // cluster clock: µs since construction
  guard::AdmissionGuard guard_;          // cluster-ingress admission
  std::vector<stream::Tuple> admitted_;  // guard scratch, reused per epoch

  // Net-backed link state (unused when link_transport == kInProcess).
  // Dialer ends are owned here; acceptor ends by the listener. Teardown
  // order matters: threads join first, then dialers close, then the
  // listener (and its connections), then the transport.
  std::unique_ptr<net::Transport> net_transport_;
  std::unique_ptr<net::Listener> net_listener_;
  std::vector<std::unique_ptr<net::Connection>> net_dialers_;
  std::vector<net::Connection*> net_acceptors_;

  // Grow-only (elastic): retirement never erases entries, so worker
  // indices stay stable. The mutex orders vector growth (add_slot, main
  // thread) against the merger/supervisor sweeps; element pointees are
  // heap-stable and synchronized by their own protocols.
  mutable std::mutex topology_mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<MergeSlot>> merge_;
  std::thread merger_;
  std::thread supervisor_;  // spawned iff recovery.supervise
  std::atomic<bool> stop_{false};

  // Main-thread epoch state. Slot-indexed vectors cover retired slots
  // too (grow-only, like workers_).
  std::uint64_t epoch_ = 0;
  std::vector<std::vector<stream::Tuple>> slot_staging_;
  std::vector<std::uint64_t> slot_epoch_tuples_;
  std::vector<std::uint32_t> active_replica_;
  std::vector<std::uint8_t> slot_retired_;
  std::vector<std::uint32_t> scratch_slots_;
  std::vector<stream::ResultTuple> collected_;

  // Accumulated report counters (main thread).
  std::uint64_t input_tuples_ = 0;
  std::uint64_t routed_tuples_ = 0;
  std::uint64_t merged_results_ = 0;
  std::uint64_t filtered_results_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t lost_tuples_ = 0;
  bool degraded_ = false;
  double elapsed_seconds_ = 0.0;
};

[[nodiscard]] std::unique_ptr<ClusterEngine> make_cluster_engine(
    const ClusterConfig& cfg);

}  // namespace hal::cluster
