#include "cluster/transport.h"

namespace hal::cluster {

TransportParams TransportParams::from_pipeline(const dist::PipelineParams& p) {
  TransportParams t;
  // Router → worker crosses the datacenter switch and the worker's NIC;
  // the slower of the two caps the link rate, both add latency.
  t.ingress.bandwidth_tps = p.switch_tps < p.nic_tps ? p.switch_tps
                                                     : p.nic_tps;
  t.ingress.latency_us = p.switch_latency_us + p.nic_latency_us;
  // Worker → merger is a NIC-to-NIC result hop.
  t.egress.bandwidth_tps = p.nic_tps;
  t.egress.latency_us = p.nic_latency_us;
  return t;
}

dist::PathModel shard_path_model(const TransportParams& t, double worker_tps,
                                 double result_selectivity,
                                 const std::string& name) {
  dist::PathModel path(name);
  const double unthrottled = 1e18;  // effectively infinite capacity
  path.add_stage({"ingress-link",
                  t.ingress.bandwidth_tps > 0.0 ? t.ingress.bandwidth_tps
                                                : unthrottled,
                  t.ingress.latency_us, 1.0});
  path.add_stage({"worker-engine", worker_tps, 0.0, result_selectivity});
  path.add_stage({"egress-link",
                  t.egress.bandwidth_tps > 0.0 ? t.egress.bandwidth_tps
                                               : unthrottled,
                  t.egress.latency_us, 1.0});
  return path;
}

}  // namespace hal::cluster
