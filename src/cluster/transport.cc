#include "cluster/transport.h"

#include "common/assert.h"

namespace hal::cluster {

TransportParams TransportParams::from_pipeline(const dist::PipelineParams& p) {
  TransportParams t;
  // Router → worker crosses the datacenter switch and the worker's NIC;
  // the slower of the two caps the link rate, both add latency.
  t.ingress.bandwidth_tps = p.switch_tps < p.nic_tps ? p.switch_tps
                                                     : p.nic_tps;
  t.ingress.latency_us = p.switch_latency_us + p.nic_latency_us;
  // Worker → merger is a NIC-to-NIC result hop.
  t.egress.bandwidth_tps = p.nic_tps;
  t.egress.latency_us = p.nic_latency_us;
  return t;
}

bool net_try_send(net::Connection& conn, const TupleBatch& b) {
  net::TupleBatchMsg msg;
  msg.epoch = b.epoch;
  msg.link_seq = b.link_seq;
  msg.end_of_epoch = b.end_of_epoch;
  msg.tuples = b.tuples;
  return conn.try_send(net::MsgType::kTupleBatch, net::encode(msg));
}

bool net_try_send(net::Connection& conn, const ResultBatch& b) {
  net::ResultBatchMsg msg;
  msg.epoch = b.epoch;
  msg.end_of_epoch = b.end_of_epoch;
  msg.died = b.died;
  msg.results = b.results;
  return conn.try_send(net::MsgType::kResultBatch, net::encode(msg));
}

bool net_try_recv(net::Connection& conn, TupleBatch& out) {
  net::Frame frame;
  if (!conn.try_recv(frame)) return false;
  // Recoverable, not fatal: a protocol violation on one link fail-stops
  // its consumer (the supervisor can restart a worker), never the process.
  HAL_CHECK_RECOVERABLE(frame.header.type == net::MsgType::kTupleBatch,
                        "unexpected message type on a tuple link");
  net::TupleBatchMsg msg;
  HAL_CHECK_RECOVERABLE(net::decode(frame.payload, msg),
                        "undecodable tuple batch on a verified frame");
  out.epoch = msg.epoch;
  out.link_seq = msg.link_seq;
  out.end_of_epoch = msg.end_of_epoch;
  out.deliver_at_us = 0.0;
  out.tuples = std::move(msg.tuples);
  return true;
}

bool net_try_recv(net::Connection& conn, ResultBatch& out) {
  net::Frame frame;
  if (!conn.try_recv(frame)) return false;
  HAL_CHECK_RECOVERABLE(frame.header.type == net::MsgType::kResultBatch,
                        "unexpected message type on a result link");
  net::ResultBatchMsg msg;
  HAL_CHECK_RECOVERABLE(net::decode(frame.payload, msg),
                        "undecodable result batch on a verified frame");
  out.epoch = msg.epoch;
  out.end_of_epoch = msg.end_of_epoch;
  out.died = msg.died;
  out.deliver_at_us = 0.0;
  out.results = std::move(msg.results);
  return true;
}

dist::PathModel shard_path_model(const TransportParams& t, double worker_tps,
                                 double result_selectivity,
                                 const std::string& name) {
  dist::PathModel path(name);
  const double unthrottled = 1e18;  // effectively infinite capacity
  path.add_stage({"ingress-link",
                  t.ingress.bandwidth_tps > 0.0 ? t.ingress.bandwidth_tps
                                                : unthrottled,
                  t.ingress.latency_us, 1.0});
  path.add_stage({"worker-engine", worker_tps, 0.0, result_selectivity});
  path.add_stage({"egress-link",
                  t.egress.bandwidth_tps > 0.0 ? t.egress.bandwidth_tps
                                               : unthrottled,
                  t.egress.latency_us, 1.0});
  return path;
}

}  // namespace hal::cluster
