#include "cluster/cluster_engine.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <span>

#include "common/assert.h"
#include "common/backoff.h"

namespace hal::cluster {

using stream::ResultTuple;
using stream::Tuple;

bool key_hashable(const stream::JoinSpec& spec) {
  for (const auto& c : spec.conjuncts()) {
    if (c.lhs == stream::Field::Key && c.rhs == stream::Field::Key &&
        c.op == stream::CmpOp::Eq && c.band == 0) {
      return true;
    }
  }
  return false;
}

std::size_t worker_window_size(const ClusterConfig& cfg) {
  const std::size_t w = cfg.window_size;
  if (cfg.partitioning == Partitioning::kKeyHash) {
    if (cfg.window_mode == WindowMode::kPartitionedLocal) {
      HAL_CHECK(w % cfg.shards == 0,
                "window_size must be a multiple of the shard count for "
                "partitioned-local windows");
      return w / cfg.shards;
    }
    // Exact-global: in the worst case every windowed tuple of a stream
    // hashes to one shard, so each worker must hold the full W; the
    // merger's window filter discards the stale surplus.
    return w;
  }
  HAL_CHECK(w % cfg.grid_rows == 0 && w % cfg.grid_cols == 0,
            "window_size must be a multiple of both grid dimensions");
  // Round-robin row/column slicing gives worker (i, j) every grid_rows-th
  // R tuple and every grid_cols-th S tuple; a shared engine window of the
  // larger slice never misses a global-window partner (the smaller side's
  // surplus is filtered by the merger; square grids are exact as-is).
  return std::max(w / cfg.grid_rows, w / cfg.grid_cols);
}

namespace {

[[nodiscard]] std::uint64_t probe_seq(const ResultTuple& t) noexcept {
  return t.r.seq > t.s.seq ? t.r.seq : t.s.seq;
}

}  // namespace

ClusterEngine::ClusterEngine(const ClusterConfig& cfg)
    : cfg_(cfg),
      router_(cfg.partitioning,
              cfg.partitioning == Partitioning::kKeyHash ? 1 : cfg.grid_rows,
              cfg.partitioning == Partitioning::kKeyHash ? cfg.shards
                                                         : cfg.grid_cols) {
  HAL_CHECK(cfg_.replicas >= 1, "need at least one replica per shard slot");
  HAL_CHECK(cfg_.transport.batch_size >= 1, "batch_size must be positive");
  HAL_CHECK(cfg_.worker.backend != core::Backend::kCluster,
            "clusters of clusters are not supported");
  if (cfg_.partitioning == Partitioning::kKeyHash) {
    HAL_CHECK(key_hashable(cfg_.spec),
              "key-hash partitioning requires an r.key == s.key conjunct; "
              "use kSplitGrid for general predicates");
  } else {
    HAL_CHECK(cfg_.grid_rows == cfg_.grid_cols ||
                  cfg_.window_mode == WindowMode::kExactGlobal,
              "non-square grids need the exact-global window filter");
  }

  const std::size_t worker_window = worker_window_size(cfg_);
  const std::uint32_t slots = router_.num_slots();
  slot_staging_.resize(slots);
  slot_epoch_tuples_.assign(slots, 0);
  active_replica_.assign(slots, 0);

  const std::uint32_t total = slots * cfg_.replicas;
  workers_.reserve(total);
  merge_.reserve(total);
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    core::EngineConfig engine_cfg =
        slot < cfg_.worker_overrides.size() ? cfg_.worker_overrides[slot]
                                            : cfg_.worker;
    HAL_CHECK(engine_cfg.backend != core::Backend::kCluster,
              "clusters of clusters are not supported");
    engine_cfg.window_size = worker_window;
    engine_cfg.spec = cfg_.spec;
    for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
      const auto index = static_cast<std::uint32_t>(workers_.size());
      LinkParams ingress = cfg_.transport.ingress;
      if (cfg_.faults.delay_worker && *cfg_.faults.delay_worker == index) {
        ingress.latency_us += cfg_.faults.extra_delay_us;
      }
      auto w = std::make_unique<Worker>(index, slot, rep, ingress,
                                        cfg_.transport.egress);
      w->engine = core::make_engine(engine_cfg);
      workers_.push_back(std::move(w));
      merge_.push_back(std::make_unique<MergeSlot>());
    }
  }
  setup_net_links();
  for (auto& w : workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([this, raw] { worker_loop(*raw); });
  }
  merger_ = std::thread([this] { merger_loop(); });
}

void ClusterEngine::setup_net_links() {
  const net::TransportKind kind = cfg_.transport.link_transport;
  if (kind == net::TransportKind::kInProcess) return;
  net_transport_ = net::make_transport(kind);

  static std::atomic<std::uint64_t> instance_counter{0};
  const std::uint64_t id =
      instance_counter.fetch_add(1, std::memory_order_relaxed);
  std::string address;
  switch (kind) {
    case net::TransportKind::kLoopback:
      address = "cluster";  // the rendezvous hub is per-engine anyway
      break;
    case net::TransportKind::kUnix:
      address = "@hal-cluster-" + std::to_string(::getpid()) + "-" +
                std::to_string(id);
      break;
    case net::TransportKind::kTcp:
      address = "127.0.0.1:0";  // ephemeral; resolved below
      break;
    case net::TransportKind::kInProcess:
      break;
  }
  net::EndpointOptions opts;
  opts.window_frames = cfg_.transport.net_window_frames;
  net_listener_ = net_transport_->listen(address, opts);
  const std::string dial_address = net_listener_->address();

  // One connection pair per link, established strictly dial-then-accept
  // so accept order matches dial order. shard 0 = ingress, 1 = egress.
  for (auto& w : workers_) {
    for (std::uint32_t dir = 0; dir < 2; ++dir) {
      net::EndpointOptions dial = opts;
      dial.node_id = w->index;
      dial.shard = dir;
      if (dir == 0) dial.fault = cfg_.transport.net_fault;
      net_dialers_.push_back(net_transport_->connect(dial_address, dial));
      net::Connection* accepted = net_listener_->accept(15.0);
      HAL_CHECK(accepted != nullptr, "net-backed link accept timed out");
      net_acceptors_.push_back(accepted);
      if (dir == 0) {
        w->inbox.attach_net(net_dialers_.back().get(), accepted);
      } else {
        w->outbox.attach_net(net_dialers_.back().get(), accepted);
      }
    }
  }
}

ClusterEngine::~ClusterEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->thread.join();
  merger_.join();
  // Net teardown after every thread that touches a connection is gone:
  // dialers first (their I/O threads stop), then the listener (owns the
  // acceptor ends), then the transport.
  net_dialers_.clear();
  net_listener_.reset();
  net_transport_.reset();
}

// Deadline-aware wait for the modeled wire time: sleep in coarse chunks
// while the deadline is comfortably far (so paced links do not burn a
// core), then yield-spin the final stretch for the precision the pacing
// tests assert. The 500 µs guard absorbs OS sleep overshoot.
void ClusterEngine::wait_until(double deadline_us) const {
  while (deadline_us - now_us() > 500.0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  while (now_us() < deadline_us) std::this_thread::yield();
}

void ClusterEngine::worker_loop(Worker& w) {
  const bool is_drop_target =
      cfg_.faults.drop_worker && *cfg_.faults.drop_worker == w.index;
  SpinBackoff backoff;
  while (true) {
    TupleBatch batch;
    if (!w.inbox.try_recv(batch)) {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
      continue;
    }
    backoff.reset();
    if (w.dropped.load(std::memory_order_relaxed)) continue;  // drain only

    if (!batch.tuples.empty()) {
      if (is_drop_target && w.data_batches_in >= cfg_.faults.drop_after_batches) {
        // Fail-stop: announce once, then keep draining so the router's
        // bounded link never wedges on a dead node.
        w.dropped.store(true, std::memory_order_release);
        ResultBatch obituary;
        obituary.epoch = batch.epoch;
        obituary.died = true;
        w.outbox.send(std::move(obituary), now_us(), 0);
        continue;
      }
      ++w.data_batches_in;
      w.tuples_in += batch.tuples.size();
      wait_until(batch.deliver_at_us);  // modeled wire time
      Timer busy;
      const core::RunReport inner = w.engine->process(batch.tuples);
      auto fresh = w.engine->take_results();
      w.busy_seconds += busy.elapsed_seconds();
      w.results_out += inner.results_emitted;
      w.staged.insert(w.staged.end(), fresh.begin(), fresh.end());
      if (!batch.end_of_epoch &&
          w.staged.size() >= cfg_.transport.batch_size) {
        ResultBatch out;
        out.epoch = batch.epoch;
        out.results = std::move(w.staged);
        w.staged.clear();
        const auto n = static_cast<std::uint64_t>(out.results.size());
        w.outbox.send(std::move(out), now_us(), n);
      }
    } else {
      wait_until(batch.deliver_at_us);
    }

    if (batch.end_of_epoch) {
      ResultBatch out;
      out.epoch = batch.epoch;
      out.end_of_epoch = true;
      out.results = std::move(w.staged);
      w.staged.clear();
      const auto n = static_cast<std::uint64_t>(out.results.size());
      w.outbox.send(std::move(out), now_us(), n);
    }
  }
}

void ClusterEngine::merger_loop() {
  SpinBackoff backoff;
  while (true) {
    bool any = false;
    for (auto& w : workers_) {
      ResultBatch batch;
      while (w->outbox.try_recv(batch)) {
        any = true;
        MergeSlot& m = *merge_[w->index];
        if (batch.died) {
          // Partial epoch of a failed worker is discarded wholesale; the
          // replica's complete epoch (or accounted loss) replaces it.
          m.pending.clear();
          m.died.store(true, std::memory_order_release);
          continue;
        }
        m.pending.insert(m.pending.end(), batch.results.begin(),
                         batch.results.end());
        if (batch.end_of_epoch) {
          m.completed = std::move(m.pending);
          m.pending.clear();
          m.last_deliver_at_us = batch.deliver_at_us;
          m.completed_epoch.store(batch.epoch, std::memory_order_release);
        }
      }
    }
    if (any) {
      backoff.reset();
    } else {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
    }
  }
}

void ClusterEngine::flush_slot(std::uint32_t slot, bool end_of_epoch) {
  auto& staging = slot_staging_[slot];
  if (staging.empty() && !end_of_epoch) return;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[slot * cfg_.replicas + rep];
    TupleBatch batch;
    batch.epoch = epoch_;
    batch.end_of_epoch = end_of_epoch;
    batch.tuples = staging;  // replicas each get their own copy
    const auto n = static_cast<std::uint64_t>(batch.tuples.size());
    w.inbox.send(std::move(batch), now_us(), n);
  }
  staging.clear();
}

void ClusterEngine::collect_slot(std::uint32_t slot,
                                 std::vector<ResultTuple>& out) {
  const std::uint32_t base = slot * cfg_.replicas;
  SpinBackoff backoff;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    MergeSlot& m = *merge_[base + rep];
    while (m.completed_epoch.load(std::memory_order_acquire) < epoch_ &&
           !m.died.load(std::memory_order_acquire)) {
      backoff.pause();
    }
    backoff.reset();
  }
  std::int64_t chosen = -1;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    if (merge_[base + rep]->completed_epoch.load(
            std::memory_order_acquire) >= epoch_) {
      chosen = rep;
      break;
    }
  }
  if (chosen < 0) {
    // Every replica of this slot is dead: clean degradation.
    degraded_ = true;
    lost_tuples_ += slot_epoch_tuples_[slot];
    return;
  }
  if (static_cast<std::uint32_t>(chosen) != active_replica_[slot]) {
    ++failovers_;
    active_replica_[slot] = static_cast<std::uint32_t>(chosen);
  }
  MergeSlot& m = *merge_[base + static_cast<std::uint32_t>(chosen)];
  wait_until(m.last_deliver_at_us);  // modeled egress latency
  out.insert(out.end(), m.completed.begin(), m.completed.end());
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    merge_[base + rep]->completed.clear();
  }
}

core::RunReport ClusterEngine::process(const std::vector<Tuple>& tuples) {
  ++epoch_;
  std::fill(slot_epoch_tuples_.begin(), slot_epoch_tuples_.end(), 0);
  Timer wall;

  // Batched ingress: the whole epoch routes as one span (one virtual-free
  // pass, no per-tuple scratch vector) and the tracker map is pre-sized,
  // so the router amortizes its per-tuple dispatch the way the engines do.
  if (cfg_.window_mode == WindowMode::kExactGlobal) {
    tracker_.reserve(tuples.size());
    for (const Tuple& t : tuples) tracker_.observe(t);
  }
  router_.route_span(
      std::span<const Tuple>(tuples), [&](const Tuple& t, std::uint32_t slot) {
        ++routed_tuples_;
        ++slot_epoch_tuples_[slot];
        auto& staging = slot_staging_[slot];
        staging.push_back(t);
        if (staging.size() >= cfg_.transport.batch_size) {
          flush_slot(slot, false);
        }
      });
  for (std::uint32_t slot = 0; slot < router_.num_slots(); ++slot) {
    flush_slot(slot, true);
  }

  std::vector<ResultTuple> epoch_results;
  for (std::uint32_t slot = 0; slot < router_.num_slots(); ++slot) {
    collect_slot(slot, epoch_results);
  }

  if (cfg_.window_mode == WindowMode::kExactGlobal) {
    const auto before = epoch_results.size();
    std::erase_if(epoch_results, [this](const ResultTuple& rt) {
      return !tracker_.pair_in_window(rt, cfg_.window_size);
    });
    filtered_results_ += before - epoch_results.size();
  }
  // Deterministic, order-preserving emission: by probing-tuple arrival,
  // then by stored-tuple arrival — the gathering-network contract.
  std::sort(epoch_results.begin(), epoch_results.end(),
            [](const ResultTuple& a, const ResultTuple& b) {
              const auto pa = probe_seq(a), pb = probe_seq(b);
              if (pa != pb) return pa < pb;
              if (a.r.seq != b.r.seq) return a.r.seq < b.r.seq;
              return a.s.seq < b.s.seq;
            });

  core::RunReport report;
  report.tuples_processed = tuples.size();
  report.results_emitted = epoch_results.size();
  report.elapsed_seconds = wall.elapsed_seconds();

  input_tuples_ += tuples.size();
  merged_results_ += epoch_results.size();
  elapsed_seconds_ += report.elapsed_seconds;
  collected_.insert(collected_.end(),
                    std::make_move_iterator(epoch_results.begin()),
                    std::make_move_iterator(epoch_results.end()));
  return report;
}

void ClusterEngine::prefill(const std::vector<Tuple>& tuples) {
  // The engine is quiescent (before the first process() or between
  // epochs); inner engines are warmed directly, and the next epoch's
  // inbox traffic publishes the writes to the worker threads.
  std::vector<std::vector<Tuple>> per_slot(router_.num_slots());
  for (const Tuple& t : tuples) {
    if (cfg_.window_mode == WindowMode::kExactGlobal) tracker_.observe(t);
    router_.route(t, scratch_slots_);
    for (const std::uint32_t slot : scratch_slots_) {
      per_slot[slot].push_back(t);
    }
  }
  for (std::uint32_t slot = 0; slot < router_.num_slots(); ++slot) {
    if (per_slot[slot].empty()) continue;
    for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
      workers_[slot * cfg_.replicas + rep]->engine->prefill(per_slot[slot]);
    }
  }
}

void ClusterEngine::program(const stream::JoinSpec& spec) {
  HAL_CHECK(false,
            "kCluster does not support runtime re-programming; construct a "
            "new cluster");
  (void)spec;
}

std::vector<ResultTuple> ClusterEngine::take_results() {
  std::vector<ResultTuple> out = std::move(collected_);
  collected_.clear();
  return out;
}

ClusterReport ClusterEngine::report() const {
  ClusterReport rep;
  rep.input_tuples = input_tuples_;
  rep.routed_tuples = routed_tuples_;
  rep.merged_results = merged_results_;
  rep.filtered_results = filtered_results_;
  rep.failovers = failovers_;
  rep.lost_tuples = lost_tuples_;
  rep.degraded = degraded_;
  rep.elapsed_seconds = elapsed_seconds_;
  rep.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerReport wr;
    wr.index = w->index;
    wr.slot = w->slot;
    wr.replica = w->replica;
    wr.backend = w->engine->backend();
    wr.tuples_in = w->tuples_in;
    wr.results_out = w->results_out;
    wr.data_batches_in = w->data_batches_in;
    wr.result_batches_out = w->outbox.stats().batches;
    wr.busy_seconds = w->busy_seconds;
    wr.dropped = w->dropped.load(std::memory_order_acquire);
    wr.ingress = w->inbox.stats();
    wr.egress = w->outbox.stats();
    rep.router_stall_spins += wr.ingress.stall_spins;
    rep.worker_stall_spins += wr.egress.stall_spins;
    rep.ingress_queue_high_water =
        std::max(rep.ingress_queue_high_water, wr.ingress.queue_high_water);
    rep.egress_queue_high_water =
        std::max(rep.egress_queue_high_water, wr.egress.queue_high_water);
    rep.workers.push_back(std::move(wr));
  }
  if (net_transport_ != nullptr) {
    rep.net_enabled = true;
    for (const auto& c : net_dialers_) rep.net.add(c->stats());
    for (const net::Connection* c : net_acceptors_) rep.net.add(c->stats());
  }
  return rep;
}

void ClusterEngine::collect_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) const {
  const ClusterReport rep = report();
  registry.set_counter(prefix + "input_tuples", rep.input_tuples);
  registry.set_counter(prefix + "routed_tuples", rep.routed_tuples);
  registry.set_counter(prefix + "merged_results", rep.merged_results);
  registry.set_counter(prefix + "filtered_results", rep.filtered_results);
  registry.set_counter(prefix + "failovers", rep.failovers);
  registry.set_counter(prefix + "lost_tuples", rep.lost_tuples);
  registry.set_counter(prefix + "degraded", rep.degraded ? 1 : 0);
  registry.set_counter(prefix + "router.stall_spins", rep.router_stall_spins,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "worker.stall_spins", rep.worker_stall_spins,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "ingress.queue_high_water",
                       rep.ingress_queue_high_water,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "egress.queue_high_water",
                       rep.egress_queue_high_water,
                       obs::Stability::kRuntime);
  registry.set_gauge(prefix + "elapsed_seconds", rep.elapsed_seconds,
                     obs::Stability::kRuntime);
  if (rep.net_enabled) {
    net::collect_metrics(registry, prefix + "net.", rep.net);
  }
  for (const WorkerReport& wr : rep.workers) {
    const std::string wp =
        prefix + "worker." + std::to_string(wr.index) + ".";
    // A worker's raw emissions are only reproducible when its inner
    // engine's are; the threaded handshake chain races (the exact-global
    // merge filter restores determinism cluster-wide, not per worker).
    const obs::Stability emit_stability =
        wr.backend == core::Backend::kSwHandshake
            ? obs::Stability::kRuntime
            : obs::Stability::kDeterministic;
    registry.set_counter(wp + "tuples_in", wr.tuples_in);
    registry.set_counter(wp + "results_out", wr.results_out, emit_stability);
    // Wire framing, not data: the batch count tracks the transport
    // granularity (TransportParams::batch_size / dispatch_batch), so it is
    // runtime-shaped like the stall and high-water counters — the
    // deterministic projection must not change with the dispatch path.
    registry.set_counter(wp + "data_batches_in", wr.data_batches_in,
                         obs::Stability::kRuntime);
    registry.set_counter(wp + "dropped", wr.dropped ? 1 : 0);
    registry.set_gauge(wp + "busy_seconds", wr.busy_seconds,
                       obs::Stability::kRuntime);
    registry.set_counter(wp + "ingress.stall_spins", wr.ingress.stall_spins,
                         obs::Stability::kRuntime);
    registry.set_counter(wp + "egress.stall_spins", wr.egress.stall_spins,
                         obs::Stability::kRuntime);
  }
  for (const auto& w : workers_) {
    if (!w->dropped.load(std::memory_order_acquire)) {
      w->engine->collect_metrics(
          registry, prefix + "worker." + std::to_string(w->index) + ".engine.");
    }
  }
}

std::unique_ptr<ClusterEngine> make_cluster_engine(const ClusterConfig& cfg) {
  return std::make_unique<ClusterEngine>(cfg);
}

}  // namespace hal::cluster
