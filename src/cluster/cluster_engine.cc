#include "cluster/cluster_engine.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <span>

#include "common/assert.h"
#include "common/backoff.h"
#include "recovery/checkpoint.h"

namespace hal::cluster {

using stream::ResultTuple;
using stream::Tuple;

bool key_hashable(const stream::JoinSpec& spec) {
  for (const auto& c : spec.conjuncts()) {
    if (c.lhs == stream::Field::Key && c.rhs == stream::Field::Key &&
        c.op == stream::CmpOp::Eq && c.band == 0) {
      return true;
    }
  }
  return false;
}

std::size_t worker_window_size(const ClusterConfig& cfg) {
  const std::size_t w = cfg.window_size;
  if (cfg.partitioning == Partitioning::kKeyHash) {
    if (cfg.window_mode == WindowMode::kPartitionedLocal) {
      HAL_CHECK(w % cfg.shards == 0,
                "window_size must be a multiple of the shard count for "
                "partitioned-local windows");
      return w / cfg.shards;
    }
    // Exact-global: in the worst case every windowed tuple of a stream
    // hashes to one shard, so each worker must hold the full W; the
    // merger's window filter discards the stale surplus.
    return w;
  }
  HAL_CHECK(w % cfg.grid_rows == 0 && w % cfg.grid_cols == 0,
            "window_size must be a multiple of both grid dimensions");
  // Round-robin row/column slicing gives worker (i, j) every grid_rows-th
  // R tuple and every grid_cols-th S tuple; a shared engine window of the
  // larger slice never misses a global-window partner (the smaller side's
  // surplus is filtered by the merger; square grids are exact as-is).
  return std::max(w / cfg.grid_rows, w / cfg.grid_cols);
}

namespace {

[[nodiscard]] std::uint64_t probe_seq(const ResultTuple& t) noexcept {
  return t.r.seq > t.s.seq ? t.r.seq : t.s.seq;
}

}  // namespace

ClusterEngine::ClusterEngine(const ClusterConfig& cfg)
    : cfg_(cfg),
      router_(cfg.partitioning,
              cfg.partitioning == Partitioning::kKeyHash ? 1 : cfg.grid_rows,
              cfg.partitioning == Partitioning::kKeyHash ? cfg.shards
                                                         : cfg.grid_cols),
      placement_(cfg.placement, CpuTopology::discover()),
      guard_(cfg.guard) {
  HAL_CHECK(cfg_.replicas >= 1, "need at least one replica per shard slot");
  HAL_CHECK(cfg_.transport.batch_size >= 1, "batch_size must be positive");
  HAL_CHECK(cfg_.worker.backend != core::Backend::kCluster,
            "clusters of clusters are not supported");
  if (cfg_.partitioning == Partitioning::kKeyHash) {
    HAL_CHECK(key_hashable(cfg_.spec),
              "key-hash partitioning requires an r.key == s.key conjunct; "
              "use kSplitGrid for general predicates");
  } else {
    HAL_CHECK(cfg_.grid_rows == cfg_.grid_cols ||
                  cfg_.window_mode == WindowMode::kExactGlobal,
              "non-square grids need the exact-global window filter");
  }

  if (cfg_.partitioning == Partitioning::kKeyHash &&
      cfg_.elastic.track_key_load) {
    router_.enable_load_tracking();
  }

  const std::uint32_t slots = router_.num_slots();
  slot_staging_.resize(slots);
  slot_epoch_tuples_.assign(slots, 0);
  active_replica_.assign(slots, 0);
  slot_retired_.assign(slots, 0);

  const std::uint32_t total = slots * cfg_.replicas;
  workers_.reserve(total);
  merge_.reserve(total);
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
      workers_.push_back(make_worker(slot, rep));
      merge_.push_back(std::make_unique<MergeSlot>());
      workers_.back()->merge_slot = merge_.back().get();
    }
  }
  setup_net_links();
  for (auto& w : workers_) start_worker(*w);
  merger_ = std::thread([this] { merger_loop(); });
  if (cfg_.recovery.supervise) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

std::unique_ptr<ClusterEngine::Worker> ClusterEngine::make_worker(
    std::uint32_t slot, std::uint32_t replica) {
  core::EngineConfig engine_cfg = slot < cfg_.worker_overrides.size()
                                      ? cfg_.worker_overrides[slot]
                                      : cfg_.worker;
  HAL_CHECK(engine_cfg.backend != core::Backend::kCluster,
            "clusters of clusters are not supported");
  engine_cfg.window_size = worker_window_size(cfg_);
  engine_cfg.spec = cfg_.spec;
  const auto index = static_cast<std::uint32_t>(workers_.size());
  LinkParams ingress = cfg_.transport.ingress;
  for (const FaultEvent& ev : cfg_.faults.events) {
    if (ev.kind == FaultKind::kDelayLink && ev.worker == index) {
      ingress.latency_us += ev.extra_delay_us;
    }
  }
  auto w = std::make_unique<Worker>(index, slot, replica, ingress,
                                    cfg_.transport.egress);
  w->engine = core::make_engine(engine_cfg);
  w->engine_cfg = engine_cfg;  // recovery rebuilds the engine from this
  w->backend_tag = w->engine->backend();
  for (const FaultEvent& ev : cfg_.faults.events) {
    if (ev.kind != FaultKind::kDelayLink && ev.worker == index) {
      w->faults.push_back(ev);
    }
  }
  w->fault_fired.assign(w->faults.size(), false);
  w->pin_cpu = placement_.cpu_for(slot, replica, cfg_.replicas);
  if (cfg_.recovery.supervise) {
    w->inbox.enable_replay(cfg_.recovery.replay_log_batches);
  }
  return w;
}

void ClusterEngine::start_worker(Worker& w) {
  Worker* raw = &w;
  raw->thread = std::thread([this, raw] { worker_loop(*raw); });
}

void ClusterEngine::setup_net_links() {
  const net::TransportKind kind = cfg_.transport.link_transport;
  if (kind == net::TransportKind::kInProcess) return;
  net_transport_ = net::make_transport(kind);

  static std::atomic<std::uint64_t> instance_counter{0};
  const std::uint64_t id =
      instance_counter.fetch_add(1, std::memory_order_relaxed);
  std::string address;
  switch (kind) {
    case net::TransportKind::kLoopback:
      address = "cluster";  // the rendezvous hub is per-engine anyway
      break;
    case net::TransportKind::kUnix:
      address = "@hal-cluster-" + std::to_string(::getpid()) + "-" +
                std::to_string(id);
      break;
    case net::TransportKind::kTcp:
      address = "127.0.0.1:0";  // ephemeral; resolved below
      break;
    case net::TransportKind::kInProcess:
      break;
  }
  net::EndpointOptions opts;
  opts.window_frames = cfg_.transport.net_window_frames;
  if (cfg_.transport.net_stall_timeout_ms > 0.0) {
    opts.stall_timeout_ms = cfg_.transport.net_stall_timeout_ms;
  }
  net_listener_ = net_transport_->listen(address, opts);
  for (auto& w : workers_) attach_net_links(*w);
}

void ClusterEngine::attach_net_links(Worker& w) {
  if (net_transport_ == nullptr) return;
  const std::string dial_address = net_listener_->address();
  net::EndpointOptions opts;
  opts.window_frames = cfg_.transport.net_window_frames;
  if (cfg_.transport.net_connect_timeout_s > 0.0) {
    opts.connect_timeout_s = cfg_.transport.net_connect_timeout_s;
  }
  if (cfg_.transport.net_stall_timeout_ms > 0.0) {
    opts.stall_timeout_ms = cfg_.transport.net_stall_timeout_ms;
  }
  if (cfg_.transport.net_backoff_max_ms > 0.0) {
    opts.backoff_max_ms = cfg_.transport.net_backoff_max_ms;
  }
  const auto& fault_targets = cfg_.transport.net_fault_workers;
  const bool faulted =
      fault_targets.empty() ||
      std::find(fault_targets.begin(), fault_targets.end(), w.index) !=
          fault_targets.end();
  // One connection pair per link, established strictly dial-then-accept
  // so accept order matches dial order. shard 0 = ingress, 1 = egress.
  for (std::uint32_t dir = 0; dir < 2; ++dir) {
    net::EndpointOptions dial = opts;
    dial.node_id = w.index;
    dial.shard = dir;
    if (dir == 0 && faulted) dial.fault = cfg_.transport.net_fault;
    net_dialers_.push_back(net_transport_->connect(dial_address, dial));
    net::Connection* accepted = net_listener_->accept(15.0);
    HAL_CHECK(accepted != nullptr, "net-backed link accept timed out");
    net_acceptors_.push_back(accepted);
    if (dir == 0) {
      w.inbox.attach_net(net_dialers_.back().get(), accepted);
    } else {
      w.outbox.attach_net(net_dialers_.back().get(), accepted);
    }
  }
}

ClusterEngine::~ClusterEngine() {
  stop_.store(true, std::memory_order_release);
  // Supervisor first, so no respawn races the worker joins below. At
  // quiescence no recovery is pending — collect_slot blocks until every
  // recovered epoch completes — so any dead flag left here belongs to an
  // already-exited incarnation that will never be restarted.
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  merger_.join();
  // Net teardown after every thread that touches a connection is gone:
  // dialers first (their I/O threads stop), then the listener (owns the
  // acceptor ends), then the transport.
  net_dialers_.clear();
  net_listener_.reset();
  net_transport_.reset();
}

// Deadline-aware wait for the modeled wire time: sleep in coarse chunks
// while the deadline is comfortably far (so paced links do not burn a
// core), then yield-spin the final stretch for the precision the pacing
// tests assert. The 500 µs guard absorbs OS sleep overshoot.
void ClusterEngine::wait_until(double deadline_us) const {
  while (deadline_us - now_us() > 500.0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  while (now_us() < deadline_us) std::this_thread::yield();
}

void ClusterEngine::worker_loop(Worker& w) {
  // Placement is best-effort: a rejected mask (CPU went offline, cgroup
  // restriction) just leaves the thread floating.
  if (w.pin_cpu >= 0 && pin_current_thread(w.pin_cpu)) {
    w.pinned.store(true, std::memory_order_relaxed);
  }
  // Respawned incarnations first re-process the since-checkpoint delta the
  // supervisor staged. Live batches already covered by it (link_seq <=
  // replay_floor) are discarded below, so every batch is processed exactly
  // once no matter where in the epoch the kill landed.
  if (!w.replay.empty() && !stop_.load(std::memory_order_acquire)) {
    std::vector<TupleBatch> delta = std::move(w.replay);
    w.replay.clear();
    for (TupleBatch& batch : delta) {
      ++w.replayed_batches;
      w.replayed_tuples += batch.tuples.size();
      if (!consume(w, std::move(batch), /*replaying=*/true)) return;
    }
  }
  SpinBackoff backoff;
  while (true) {
    w.heartbeat.fetch_add(1, std::memory_order_relaxed);
    TupleBatch batch;
    bool got = false;
    try {
      got = w.inbox.try_recv(batch);
    } catch (const Error&) {
      // Protocol violation on the ingress wire (HAL_CHECK_RECOVERABLE in
      // the decode path): contained as a fail-stop of this worker, never
      // a crash of the process.
      if (!fail_stop(w, 0)) return;
      continue;
    }
    if (!got) {
      if (stop_.load(std::memory_order_acquire) ||
          w.exit_req.load(std::memory_order_acquire)) {
        return;  // shutdown, or elastic retirement at the epoch barrier
      }
      backoff.pause();
      continue;
    }
    backoff.reset();
    if (batch.link_seq != 0 && batch.link_seq <= w.replay_floor) {
      continue;  // covered by the replay delta (or drain-only respawn)
    }
    if (w.dropped.load(std::memory_order_relaxed)) continue;  // drain only
    if (!consume(w, std::move(batch), /*replaying=*/false)) return;
  }
}

bool ClusterEngine::consume(Worker& w, TupleBatch batch, bool replaying) {
  if (!batch.tuples.empty()) {
    while (const FaultEvent* ev = due_fault(w, batch)) {
      if (ev->kind == FaultKind::kSlowWorker) {
        // Latch the gray failure; the delay itself is paid inside the
        // busy section below so service-time accounting sees it.
        w.slow_remaining = ev->duration_batches == 0
                               ? std::numeric_limits<std::uint64_t>::max()
                               : ev->duration_batches;
        w.slow_us = ev->extra_delay_us;
        w.slow_period = ev->period == 0 ? 1 : ev->period;
        w.slow_tick = 0;
        continue;  // a plan may stack further faults at the same batch
      }
      if (ev->kind == FaultKind::kKillWorker) {
        return fail_stop(w, batch.epoch);
      }
      // kWorkerError: throw-and-contain, exercising the recoverable-fault
      // path end to end rather than short-circuiting it.
      try {
        HAL_CHECK_RECOVERABLE(false, "injected worker fault");
      } catch (const Error&) {
        return fail_stop(w, batch.epoch);
      }
    }
    w.data_batches_in.fetch_add(1, std::memory_order_relaxed);
    ++w.epoch_batches;
    w.tuples_in.fetch_add(batch.tuples.size(), std::memory_order_relaxed);
    if (!replaying) wait_until(batch.deliver_at_us);  // modeled wire time
    Timer busy;
    if (w.slow_remaining > 0) {
      // Injected degradation: stretch the busy section the way a thermal
      // throttle or noisy neighbor would, leaving output untouched.
      if (w.slow_tick++ % w.slow_period == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(w.slow_us)));
        w.slow_batches.fetch_add(1, std::memory_order_relaxed);
      }
      --w.slow_remaining;
    }
    core::RunReport inner;
    try {
      inner = w.engine->process(batch.tuples);
    } catch (const Error&) {
      // A recoverable engine fault fail-stops this worker only.
      return fail_stop(w, batch.epoch);
    }
    auto fresh = w.engine->take_results();
    w.busy_seconds.store(
        w.busy_seconds.load(std::memory_order_relaxed) +
            busy.elapsed_seconds(),
        std::memory_order_relaxed);
    w.results_out.fetch_add(inner.results_emitted,
                            std::memory_order_relaxed);
    w.staged.insert(w.staged.end(), fresh.begin(), fresh.end());
    if (!batch.end_of_epoch &&
        w.staged.size() >= cfg_.transport.batch_size) {
      ResultBatch out;
      out.epoch = batch.epoch;
      out.results = std::move(w.staged);
      w.staged.clear();
      const auto n = static_cast<std::uint64_t>(out.results.size());
      if (!w.outbox.send(std::move(out), now_us(), n)) {
        return egress_lost(w);
      }
    }
  } else if (!replaying) {
    wait_until(batch.deliver_at_us);
  }

  if (batch.end_of_epoch) {
    w.epoch_batches = 0;
    // Checkpoint before the end-of-epoch send: once the main thread has
    // merged an epoch, the matching image is already published, which is
    // what makes replay-log truncation at the next process() sound.
    maybe_checkpoint(w, batch.epoch);
    ResultBatch out;
    out.epoch = batch.epoch;
    out.end_of_epoch = true;
    out.results = std::move(w.staged);
    w.staged.clear();
    const auto n = static_cast<std::uint64_t>(out.results.size());
    if (!w.outbox.send(std::move(out), now_us(), n)) {
      return egress_lost(w);
    }
  }
  return true;
}

// The egress wire gave up (send budget exhausted / breaker open): the
// obituary path runs over the same broken link, so the death notice goes
// straight into the merge slot instead. The thread keeps running in
// drain-only mode — the router's bounded ingress must never wedge on a
// worker that stopped producing — and `dead` stays clear: a supervised
// restart would only thrash against the same tripped breaker, so the slot
// degrades to its replica (failover) or to accounted loss instead.
bool ClusterEngine::egress_lost(Worker& w) {
  w.dropped.store(true, std::memory_order_release);
  if (cfg_.recovery.supervise) {
    w.unrecoverable.store(true, std::memory_order_release);
  }
  w.merge_slot->died.store(true, std::memory_order_release);
  return true;
}

const FaultEvent* ClusterEngine::due_fault(Worker& w,
                                           const TupleBatch& batch) {
  for (std::size_t i = 0; i < w.faults.size(); ++i) {
    if (w.fault_fired[i]) continue;
    const FaultEvent& ev = w.faults[i];
    bool due = false;
    if (ev.epoch == 0) {
      // Whole-run counting (the legacy drop_worker semantics).
      due = w.data_batches_in.load(std::memory_order_relaxed) >=
            ev.after_batches;
    } else if (batch.epoch == ev.epoch) {
      due = w.epoch_batches >= ev.after_batches;
    } else if (batch.epoch > ev.epoch) {
      // The trigger epoch passed without reaching the position (short
      // epoch): late-fire so seeded chaos plans stay deterministic.
      due = true;
    }
    if (due) {
      w.fault_fired[i] = true;  // at most once, across incarnations
      return &ev;
    }
  }
  return nullptr;
}

bool ClusterEngine::fail_stop(Worker& w, std::uint64_t epoch) {
  // Announce once: the merger discards the partial epoch on the obituary.
  w.dropped.store(true, std::memory_order_release);
  ResultBatch obituary;
  obituary.epoch = epoch;
  obituary.died = true;
  if (!w.outbox.send(std::move(obituary), now_us(), 0)) {
    // The obituary itself was lost to a broken egress: deliver the death
    // notice directly and stay drain-only — a supervised restart cannot
    // outrun the tripped breaker.
    return egress_lost(w);
  }
  if (cfg_.recovery.supervise) {
    // Supervised: the thread exits and the supervisor restarts it from
    // the newest checkpoint plus the replay delta.
    w.dead.store(true, std::memory_order_release);
    return false;
  }
  // Unsupervised: keep draining so the router's bounded link never wedges
  // on a dead node (replica failover / clean degradation take over).
  return true;
}

void ClusterEngine::abandon_worker(std::uint32_t index) {
  HAL_CHECK(index < workers_.size(), "abandon_worker: index out of range");
  Worker& w = *workers_[index];
  if (w.retired.load(std::memory_order_acquire)) return;
  // Same containment as an egress-side trip, from the main thread: the
  // worker drains but its epochs stop counting, and collect_slot's wait
  // is released through the merge slot (unsupervised) or the
  // unrecoverable flag (supervised).
  w.dropped.store(true, std::memory_order_release);
  if (cfg_.recovery.supervise) {
    w.unrecoverable.store(true, std::memory_order_release);
  }
  merge_[index]->died.store(true, std::memory_order_release);
}

void ClusterEngine::maybe_checkpoint(Worker& w, std::uint64_t epoch) {
  if (!cfg_.recovery.supervise) return;
  const std::uint32_t interval = cfg_.recovery.checkpoint_interval_epochs;
  if (interval == 0 || epoch % interval != 0) return;
  core::WindowImage image;
  if (!w.engine->snapshot(image)) return;  // backend cannot snapshot
  image.epoch = epoch;
  std::vector<std::uint8_t> bytes = recovery::serialize(image);
  ++w.checkpoints;
  w.checkpoint_bytes += bytes.size();
  {
    std::lock_guard<std::mutex> lock(w.ckpt_mu);
    w.ckpt_bytes = std::move(bytes);
    w.ckpt_epoch = epoch;
  }
  w.ckpt_epoch_pub.store(epoch, std::memory_order_release);
}

void ClusterEngine::supervisor_loop() {
  SpinBackoff backoff;
  while (true) {
    bool acted = false;
    {
      // The sweep holds topology_mu_ so add_slot() cannot reallocate
      // workers_ mid-iteration (retired entries stay in place and are
      // simply never dead).
      std::lock_guard<std::mutex> lock(topology_mu_);
      for (auto& w : workers_) {
        if (w->dead.load(std::memory_order_acquire)) {
          recover(*w);
          acted = true;
        }
      }
    }
    if (acted) {
      backoff.reset();
    } else {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
    }
  }
}

void ClusterEngine::recover(Worker& w) {
  Timer repair;       // detect → respawned: the MTTR the bench reports
  w.thread.join();    // the incarnation set `dead` and exited right after
  ++w.restarts;

  std::vector<std::uint8_t> bytes;
  std::uint64_t ckpt_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(w.ckpt_mu);
    bytes = w.ckpt_bytes;
    ckpt_epoch = w.ckpt_epoch;
  }
  // No checkpoint yet means the fresh engine below *is* the epoch-0 state
  // (exact only while the replay log still reaches back to the start and
  // nothing was prefilled — prefill warms engines before any checkpoint).
  w.engine = core::make_engine(w.engine_cfg);
  bool restored = bytes.empty();
  if (!bytes.empty()) {
    core::WindowImage image;
    restored = recovery::deserialize(bytes, image) && w.engine->restore(image);
  }

  std::uint64_t floor = 0;
  std::uint64_t evicted = 0;
  std::vector<TupleBatch> delta =
      w.inbox.replay_copy(ckpt_epoch, floor, evicted);
  const bool recoverable = restored && evicted <= ckpt_epoch;

  // MTTR accounting must precede the publication points below: the main
  // thread's collect_slot wait is released either by the respawned thread
  // (spawn's synchronizes-with edge, then worker → merger → collect) or by
  // the `unrecoverable` store, and either edge must order these plain
  // writes before report() reads them. The branch bookkeeping and the
  // spawn itself are the only repair costs the measurement misses.
  const double mttr = repair.elapsed_seconds();
  w.mttr_seconds_total += mttr;
  if (mttr > w.mttr_seconds_max) w.mttr_seconds_max = mttr;
  w.mttr_us_samples.push_back(mttr * 1e6);

  if (!recoverable) {
    // The log no longer covers the since-checkpoint delta (or the image
    // is damaged): exact recovery is impossible. Respawn drain-only so
    // the slot degrades cleanly instead of serving wrong answers.
    w.unrecoverable.store(true, std::memory_order_release);
    w.replay.clear();
    w.replay_floor = std::numeric_limits<std::uint64_t>::max();
  } else {
    w.replay = std::move(delta);
    w.replay_floor = floor;
    w.staged.clear();  // the dead incarnation's partial epoch is discarded
    w.dropped.store(false, std::memory_order_release);
  }
  w.dead.store(false, std::memory_order_relaxed);
  Worker* raw = &w;
  w.thread = std::thread([this, raw] { worker_loop(*raw); });
}

void ClusterEngine::merger_loop() {
  SpinBackoff backoff;
  while (true) {
    bool any = false;
    {
      // topology_mu_ pins workers_/merge_ against add_slot() growth for
      // the duration of one sweep; retired workers are skipped (their
      // outboxes drained dry before retirement).
      std::lock_guard<std::mutex> lock(topology_mu_);
      for (auto& w : workers_) {
        if (w->retired.load(std::memory_order_acquire)) continue;
        ResultBatch batch;
        try {
          while (w->outbox.try_recv(batch)) {
            any = true;
            MergeSlot& m = *merge_[w->index];
            if (batch.died) {
              // Partial epoch of a failed worker is discarded wholesale;
              // the replica's complete epoch (or accounted loss) replaces
              // it.
              m.pending.clear();
              m.died.store(true, std::memory_order_release);
              continue;
            }
            m.pending.insert(m.pending.end(), batch.results.begin(),
                             batch.results.end());
            if (batch.end_of_epoch) {
              m.completed = std::move(m.pending);
              m.pending.clear();
              m.last_deliver_at_us = batch.deliver_at_us;
              m.completed_epoch.store(batch.epoch, std::memory_order_release);
            }
          }
        } catch (const Error&) {
          // Garbage on a result wire (HAL_CHECK_RECOVERABLE in the decode
          // path): discard the partial epoch and mark the producer dead —
          // the same containment as a worker obituary.
          MergeSlot& m = *merge_[w->index];
          m.pending.clear();
          m.died.store(true, std::memory_order_release);
        }
      }
    }
    if (any) {
      backoff.reset();
    } else {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
    }
  }
}

void ClusterEngine::flush_slot(std::uint32_t slot, bool end_of_epoch) {
  auto& staging = slot_staging_[slot];
  if (staging.empty() && !end_of_epoch) return;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[slot * cfg_.replicas + rep];
    TupleBatch batch;
    batch.epoch = epoch_;
    batch.end_of_epoch = end_of_epoch;
    batch.tuples = staging;  // replicas each get their own copy
    const auto n = static_cast<std::uint64_t>(batch.tuples.size());
    if (w.inbox.breaker_open() || !w.inbox.send(std::move(batch), now_us(), n)) {
      // The worker's ingress wire is gone (budget exhausted / breaker
      // open): trip it off the serving path so its replica takes over
      // instead of the epoch stalling against a wedged link.
      abandon_worker(w.index);
    }
  }
  staging.clear();
}

void ClusterEngine::collect_slot(std::uint32_t slot,
                                 std::vector<ResultTuple>& out) {
  const std::uint32_t base = slot * cfg_.replicas;
  SpinBackoff backoff;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    MergeSlot& m = *merge_[base + rep];
    if (cfg_.recovery.supervise) {
      // A supervised worker's epoch still completes — after the restart,
      // restore and replay — so death is not a reason to stop waiting
      // unless recovery itself declared the worker unrecoverable.
      Worker& w = *workers_[base + rep];
      while (m.completed_epoch.load(std::memory_order_acquire) < epoch_ &&
             !w.unrecoverable.load(std::memory_order_acquire)) {
        backoff.pause();
      }
    } else {
      while (m.completed_epoch.load(std::memory_order_acquire) < epoch_ &&
             !m.died.load(std::memory_order_acquire)) {
        backoff.pause();
      }
    }
    backoff.reset();
  }
  std::int64_t chosen = -1;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    if (merge_[base + rep]->completed_epoch.load(
            std::memory_order_acquire) >= epoch_) {
      chosen = rep;
      break;
    }
  }
  if (chosen < 0) {
    // Every replica of this slot is dead: clean degradation.
    degraded_ = true;
    lost_tuples_ += slot_epoch_tuples_[slot];
    return;
  }
  if (static_cast<std::uint32_t>(chosen) != active_replica_[slot]) {
    ++failovers_;
    active_replica_[slot] = static_cast<std::uint32_t>(chosen);
  }
  MergeSlot& m = *merge_[base + static_cast<std::uint32_t>(chosen)];
  wait_until(m.last_deliver_at_us);  // modeled egress latency
  out.insert(out.end(), m.completed.begin(), m.completed.end());
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    merge_[base + rep]->completed.clear();
  }
}

core::RunReport ClusterEngine::process(const std::vector<Tuple>& tuples) {
  ++epoch_;
  std::fill(slot_epoch_tuples_.begin(), slot_epoch_tuples_.end(), 0);
  if (cfg_.recovery.supervise) {
    // Entries fully covered by each worker's newest published checkpoint
    // are dead weight; drop them before this epoch's sends (same thread
    // as the sends, so the log never truncates mid-epoch).
    for (auto& w : workers_) {
      if (w->retired.load(std::memory_order_relaxed)) continue;
      w->inbox.truncate_replay(
          w->ckpt_epoch_pub.load(std::memory_order_acquire));
    }
  }
  Timer wall;

  // Guarded ingress (hal::guard): shed BEFORE the exact-global tracker
  // and the router, so a shed tuple reaches no window anywhere in the
  // cluster and the output is exactly the reference join of
  // (input − shed log). Disabled guards cost one branch per epoch.
  const std::vector<Tuple>* input = &tuples;
  if constexpr (guard::kEnabled) {
    if (cfg_.guard.enabled) {
      guard_.observe_delay_us(guard_.estimate_delay_us(tuples.size()));
      admitted_.clear();
      admitted_.reserve(tuples.size());
      guard_.filter(tuples, admitted_);
      input = &admitted_;
    }
  }

  // Batched ingress: the whole epoch routes as one span (one virtual-free
  // pass, no per-tuple scratch vector) and the tracker map is pre-sized,
  // so the router amortizes its per-tuple dispatch the way the engines do.
  if (cfg_.window_mode == WindowMode::kExactGlobal) {
    tracker_.reserve(input->size());
    for (const Tuple& t : *input) tracker_.observe(t);
  }
  router_.route_span(
      std::span<const Tuple>(*input), [&](const Tuple& t, std::uint32_t slot) {
        ++routed_tuples_;
        ++slot_epoch_tuples_[slot];
        auto& staging = slot_staging_[slot];
        staging.push_back(t);
        if (staging.size() >= cfg_.transport.batch_size) {
          flush_slot(slot, false);
        }
      });
  for (std::uint32_t slot = 0; slot < slot_count(); ++slot) {
    if (!slot_retired_[slot]) flush_slot(slot, true);
  }

  std::vector<ResultTuple> epoch_results;
  for (std::uint32_t slot = 0; slot < slot_count(); ++slot) {
    if (!slot_retired_[slot]) collect_slot(slot, epoch_results);
  }

  if (cfg_.window_mode == WindowMode::kExactGlobal) {
    const auto before = epoch_results.size();
    std::erase_if(epoch_results, [this](const ResultTuple& rt) {
      return !tracker_.pair_in_window(rt, cfg_.window_size);
    });
    filtered_results_ += before - epoch_results.size();
  }
  // Deterministic, order-preserving emission: by probing-tuple arrival,
  // then by stored-tuple arrival — the gathering-network contract.
  std::sort(epoch_results.begin(), epoch_results.end(),
            [](const ResultTuple& a, const ResultTuple& b) {
              const auto pa = probe_seq(a), pb = probe_seq(b);
              if (pa != pb) return pa < pb;
              if (a.r.seq != b.r.seq) return a.r.seq < b.r.seq;
              return a.s.seq < b.s.seq;
            });

  core::RunReport report;
  report.tuples_processed = input->size();
  report.results_emitted = epoch_results.size();
  report.elapsed_seconds = wall.elapsed_seconds();
  if constexpr (guard::kEnabled) {
    if (cfg_.guard.enabled) {
      guard_.update_service_rate(report.elapsed_seconds * 1e6,
                                 input->size());
    }
  }

  input_tuples_ += tuples.size();
  merged_results_ += epoch_results.size();
  elapsed_seconds_ += report.elapsed_seconds;
  collected_.insert(collected_.end(),
                    std::make_move_iterator(epoch_results.begin()),
                    std::make_move_iterator(epoch_results.end()));
  return report;
}

void ClusterEngine::prefill(const std::vector<Tuple>& tuples) {
  // The engine is quiescent (before the first process() or between
  // epochs); inner engines are warmed directly, and the next epoch's
  // inbox traffic publishes the writes to the worker threads.
  std::vector<std::vector<Tuple>> per_slot(slot_count());
  for (const Tuple& t : tuples) {
    if (cfg_.window_mode == WindowMode::kExactGlobal) tracker_.observe(t);
    router_.route(t, scratch_slots_);
    for (const std::uint32_t slot : scratch_slots_) {
      per_slot[slot].push_back(t);
    }
  }
  for (std::uint32_t slot = 0; slot < slot_count(); ++slot) {
    if (per_slot[slot].empty() || slot_retired_[slot]) continue;
    for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
      workers_[slot * cfg_.replicas + rep]->engine->prefill(per_slot[slot]);
    }
  }
}

// --- Elastic topology operations (hal::elastic) ----------------------------
// All run on the process() thread, strictly between process() calls: the
// engine is quiescent at that epoch barrier — collect_slot has observed
// every slot's completed epoch (supervised restarts included), so worker
// engines are safe to read and mutate directly. Mutations are published
// to worker threads by the next epoch's Link traffic (release/acquire on
// send/recv), the same contract prefill() relies on.

std::uint32_t ClusterEngine::active_slot_count() const noexcept {
  std::uint32_t n = 0;
  for (const std::uint8_t r : slot_retired_) n += r ? 0 : 1;
  return n;
}

bool ClusterEngine::slot_retired(std::uint32_t slot) const {
  HAL_CHECK(slot < slot_retired_.size(), "slot out of range");
  return slot_retired_[slot] != 0;
}

std::uint32_t ClusterEngine::add_slot() {
  HAL_CHECK(cfg_.partitioning == Partitioning::kKeyHash,
            "elastic topology changes require key-hash partitioning");
  const std::uint32_t slot = slot_count();
  slot_staging_.emplace_back();
  slot_epoch_tuples_.push_back(0);
  active_replica_.push_back(0);
  slot_retired_.push_back(0);
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    std::unique_ptr<Worker> w = make_worker(slot, rep);
    // Wire the net links before the merger can see the worker: attaching
    // swaps the link's backing, which must not race a sweep's try_recv.
    attach_net_links(*w);
    {
      std::lock_guard<std::mutex> lock(topology_mu_);
      workers_.push_back(std::move(w));
      merge_.push_back(std::make_unique<MergeSlot>());
      workers_.back()->merge_slot = merge_.back().get();
    }
    start_worker(*workers_.back());
  }
  return slot;
}

void ClusterEngine::retire_slot(std::uint32_t slot) {
  HAL_CHECK(cfg_.partitioning == Partitioning::kKeyHash,
            "elastic topology changes require key-hash partitioning");
  HAL_CHECK(slot < slot_count(), "slot out of range");
  HAL_CHECK(!slot_retired_[slot], "slot is already retired");
  HAL_CHECK(active_slot_count() > 1, "cannot retire the last live slot");
  // The installed revision must have stopped routing to the slot — that
  // ordering (rebuild targets, swap the map, then retire) is what makes
  // retirement invisible in the output.
  const KeyspaceMap& map = router_.keyspace();
  for (std::uint32_t ks = 0; ks < KeyspaceMap::kKeyslots; ++ks) {
    HAL_CHECK(map.owner(ks) != slot,
              "retire_slot: keyslots still route to the slot");
  }
  for (const auto& [key, members] : map.splits()) {
    for (const std::uint32_t m : members) {
      HAL_CHECK(m != slot,
                "retire_slot: a hot-key group still references the slot");
    }
    (void)key;
  }
  HAL_CHECK(slot_staging_[slot].empty(),
            "retire_slot: un-flushed traffic staged for the slot");
  slot_retired_[slot] = 1;
  const std::uint32_t base = slot * cfg_.replicas;
  // At the barrier every replica thread is alive and idle (supervised
  // kills were already recovered; unsupervised dropped workers sit in
  // their drain loop), so exit_req is honored promptly.
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    workers_[base + rep]->exit_req.store(true, std::memory_order_release);
  }
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[base + rep];
    if (w.thread.joinable()) w.thread.join();
    w.engine.reset();
    w.retired.store(true, std::memory_order_release);
  }
}

void ClusterEngine::apply_keyspace(KeyspaceMap map) {
  HAL_CHECK(cfg_.partitioning == Partitioning::kKeyHash,
            "the keyspace map only exists under key-hash partitioning");
  for (const std::uint32_t shard : map.referenced_shards()) {
    HAL_CHECK(shard < slot_count() && !slot_retired_[shard],
              "keyspace revision references a slot that is not live");
  }
  router_.set_keyspace(std::move(map));  // version ordering checked there
}

std::vector<std::uint8_t> ClusterEngine::snapshot_slot(std::uint32_t slot) {
  HAL_CHECK(slot < slot_count() && !slot_retired_[slot],
            "snapshot_slot: slot is not live");
  const std::uint32_t base = slot * cfg_.replicas;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[base + rep];
    if (w.dropped.load(std::memory_order_acquire) ||
        w.unrecoverable.load(std::memory_order_acquire)) {
      continue;  // this replica's window is stale or gone
    }
    core::WindowImage image;
    if (!w.engine->snapshot(image)) continue;
    image.epoch = epoch_;
    return recovery::serialize(image);
  }
  return {};
}

std::vector<std::uint8_t> ClusterEngine::checkpoint_slot(
    std::uint32_t slot, std::uint64_t& epoch_out) {
  HAL_CHECK(slot < slot_count() && !slot_retired_[slot],
            "checkpoint_slot: slot is not live");
  epoch_out = 0;
  std::vector<std::uint8_t> best;
  const std::uint32_t base = slot * cfg_.replicas;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[base + rep];
    if (w.unrecoverable.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(w.ckpt_mu);
    if (!w.ckpt_bytes.empty() && (best.empty() || w.ckpt_epoch > epoch_out)) {
      best = w.ckpt_bytes;
      epoch_out = w.ckpt_epoch;
    }
  }
  return best;
}

std::vector<TupleBatch> ClusterEngine::replay_delta_slot(
    std::uint32_t slot, std::uint64_t after_epoch, bool& complete_out) {
  HAL_CHECK(slot < slot_count() && !slot_retired_[slot],
            "replay_delta_slot: slot is not live");
  complete_out = false;
  const std::uint32_t base = slot * cfg_.replicas;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[base + rep];
    if (!w.inbox.replay_enabled()) continue;
    std::uint64_t floor = 0;
    std::uint64_t evicted = 0;
    std::vector<TupleBatch> delta =
        w.inbox.replay_copy(after_epoch, floor, evicted);
    complete_out = evicted <= after_epoch;
    return delta;  // replicas receive identical traffic; any log serves
  }
  return {};
}

void ClusterEngine::rebuild_slot(std::uint32_t slot,
                                 const std::vector<Tuple>& window) {
  HAL_CHECK(slot < slot_count() && !slot_retired_[slot],
            "rebuild_slot: slot is not live");
  const std::uint32_t base = slot * cfg_.replicas;
  for (std::uint32_t rep = 0; rep < cfg_.replicas; ++rep) {
    Worker& w = *workers_[base + rep];
    HAL_CHECK(!w.dead.load(std::memory_order_acquire),
              "rebuild_slot ran outside the epoch barrier");
    w.engine = core::make_engine(w.engine_cfg);
    if (!window.empty()) w.engine->prefill(window);
    w.staged.clear();
    w.epoch_batches = 0;
    // The rebuilt window is the slot's complete state: a replica that was
    // dead (unsupervised) or unrecoverable is healthy again from here on.
    w.dropped.store(false, std::memory_order_release);
    w.unrecoverable.store(false, std::memory_order_release);
    merge_[base + rep]->died.store(false, std::memory_order_release);
    if (cfg_.recovery.supervise) {
      // Refresh the checkpoint: the old image and the replay log both
      // predate the migrated-in tuples, so a later restart restoring
      // them would serve a pre-migration window.
      core::WindowImage image;
      if (w.engine->snapshot(image)) {
        image.epoch = epoch_;
        std::vector<std::uint8_t> bytes = recovery::serialize(image);
        ++w.checkpoints;
        w.checkpoint_bytes += bytes.size();
        {
          std::lock_guard<std::mutex> lock(w.ckpt_mu);
          w.ckpt_bytes = std::move(bytes);
          w.ckpt_epoch = epoch_;
        }
        w.ckpt_epoch_pub.store(epoch_, std::memory_order_release);
      }
      w.inbox.truncate_replay(epoch_);
      w.replay.clear();
      w.replay_floor = w.inbox.last_seq();
    }
  }
}

void ClusterEngine::program(const stream::JoinSpec& spec) {
  HAL_CHECK(false,
            "kCluster does not support runtime re-programming; construct a "
            "new cluster");
  (void)spec;
}

std::vector<ResultTuple> ClusterEngine::take_results() {
  std::vector<ResultTuple> out = std::move(collected_);
  collected_.clear();
  return out;
}

ClusterReport ClusterEngine::report() const {
  ClusterReport rep;
  rep.input_tuples = input_tuples_;
  rep.routed_tuples = routed_tuples_;
  rep.merged_results = merged_results_;
  rep.filtered_results = filtered_results_;
  rep.failovers = failovers_;
  rep.lost_tuples = lost_tuples_;
  rep.degraded = degraded_;
  rep.elapsed_seconds = elapsed_seconds_;
  rep.workers.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerReport wr;
    wr.index = w->index;
    wr.slot = w->slot;
    wr.replica = w->replica;
    wr.backend = w->backend_tag;  // outlives the engine (retired slots)
    wr.tuples_in = w->tuples_in.load(std::memory_order_relaxed);
    wr.results_out = w->results_out.load(std::memory_order_relaxed);
    wr.data_batches_in =
        w->data_batches_in.load(std::memory_order_relaxed);
    wr.result_batches_out = w->outbox.stats().batches;
    wr.busy_seconds = w->busy_seconds.load(std::memory_order_relaxed);
    wr.dropped = w->dropped.load(std::memory_order_acquire);
    wr.pinned = w->pinned.load(std::memory_order_relaxed);
    wr.pin_cpu = w->pin_cpu;
    if (wr.pinned) ++rep.pinned_workers;
    wr.unrecoverable = w->unrecoverable.load(std::memory_order_acquire);
    wr.restarts = w->restarts;
    wr.checkpoints = w->checkpoints;
    wr.checkpoint_bytes = w->checkpoint_bytes;
    wr.replayed_batches = w->replayed_batches;
    wr.heartbeat = w->heartbeat.load(std::memory_order_relaxed);
    wr.slow_batches = w->slow_batches.load(std::memory_order_relaxed);
    wr.ingress = w->inbox.stats();
    wr.egress = w->outbox.stats();
    rep.budget_exhausted +=
        wr.ingress.budget_exhausted + wr.egress.budget_exhausted;
    rep.breaker_drops += wr.ingress.breaker_drops + wr.egress.breaker_drops;
    if (wr.ingress.breaker_open) ++rep.breaker_trips;
    if (wr.egress.breaker_open) ++rep.breaker_trips;
    rep.recovery.checkpoints += wr.checkpoints;
    rep.recovery.checkpoint_bytes += wr.checkpoint_bytes;
    rep.recovery.restarts += wr.restarts;
    rep.recovery.replayed_batches += wr.replayed_batches;
    rep.recovery.replayed_tuples += w->replayed_tuples;
    if (wr.unrecoverable) ++rep.recovery.unrecoverable;
    rep.recovery.mttr_seconds_total += w->mttr_seconds_total;
    rep.recovery.mttr_seconds_max =
        std::max(rep.recovery.mttr_seconds_max, w->mttr_seconds_max);
    rep.router_stall_spins += wr.ingress.stall_spins;
    rep.worker_stall_spins += wr.egress.stall_spins;
    rep.ingress_queue_high_water =
        std::max(rep.ingress_queue_high_water, wr.ingress.queue_high_water);
    rep.egress_queue_high_water =
        std::max(rep.egress_queue_high_water, wr.egress.queue_high_water);
    rep.workers.push_back(std::move(wr));
  }
  if (net_transport_ != nullptr) {
    rep.net_enabled = true;
    for (const auto& c : net_dialers_) rep.net.add(c->stats());
    for (const net::Connection* c : net_acceptors_) rep.net.add(c->stats());
  }
  rep.active_shards = active_slot_count();
  if (cfg_.partitioning == Partitioning::kKeyHash) {
    rep.keyspace_version = router_.keyspace().version();
  }
  rep.guard_enabled = guard::kEnabled && cfg_.guard.enabled;
  rep.guard = guard_.stats();
  return rep;
}

void ClusterEngine::collect_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) const {
  const ClusterReport rep = report();
  registry.set_counter(prefix + "input_tuples", rep.input_tuples);
  registry.set_counter(prefix + "routed_tuples", rep.routed_tuples);
  registry.set_counter(prefix + "merged_results", rep.merged_results);
  registry.set_counter(prefix + "filtered_results", rep.filtered_results);
  registry.set_counter(prefix + "failovers", rep.failovers);
  registry.set_counter(prefix + "lost_tuples", rep.lost_tuples);
  registry.set_counter(prefix + "degraded", rep.degraded ? 1 : 0);
  // Elastic topology: both track the reconfiguration schedule, which is
  // caller-driven and reproducible under a fixed plan.
  registry.set_counter(prefix + "elastic.active_shards", rep.active_shards);
  registry.set_counter(prefix + "elastic.keyspace_version",
                       rep.keyspace_version);
  // Recovery: checkpoint/restart totals track batch positions and epoch
  // cadence (deterministic); replay-phase sizes and repair times track
  // the supervisor's race with live traffic (runtime).
  registry.set_counter(prefix + "recovery.checkpoints",
                       rep.recovery.checkpoints);
  registry.set_counter(prefix + "recovery.checkpoint_bytes",
                       rep.recovery.checkpoint_bytes);
  registry.set_counter(prefix + "recovery.restarts", rep.recovery.restarts);
  registry.set_counter(prefix + "recovery.unrecoverable",
                       rep.recovery.unrecoverable);
  registry.set_counter(prefix + "recovery.replayed_batches",
                       rep.recovery.replayed_batches,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "recovery.replayed_tuples",
                       rep.recovery.replayed_tuples,
                       obs::Stability::kRuntime);
  {
    // MTTR distribution across all supervised restarts. Samples are
    // re-recorded in full at each collection, so export from a fresh
    // registry per collection (the harness convention).
    obs::Histogram& h = registry.histogram(
        prefix + "recovery.mttr_us",
        {100.0, 1000.0, 10000.0, 100000.0, 1000000.0},
        obs::Stability::kRuntime);
    for (const auto& w : workers_) {
      for (const double v : w->mttr_us_samples) h.record(v);
    }
  }
  // Host-topology dependent (how many affinity masks stuck), never part
  // of the deterministic projection.
  registry.set_counter(prefix + "placement.pinned_workers",
                       rep.pinned_workers, obs::Stability::kRuntime);
  registry.set_counter(prefix + "router.stall_spins", rep.router_stall_spins,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "worker.stall_spins", rep.worker_stall_spins,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "ingress.queue_high_water",
                       rep.ingress_queue_high_water,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "egress.queue_high_water",
                       rep.egress_queue_high_water,
                       obs::Stability::kRuntime);
  registry.set_gauge(prefix + "elapsed_seconds", rep.elapsed_seconds,
                     obs::Stability::kRuntime);
  // hal::guard: admission totals depend on the latch's timing history and
  // breaker state on real wire behavior, so everything here is runtime.
  if (rep.guard_enabled) {
    registry.set_counter(prefix + "guard.admitted", rep.guard.admitted,
                         obs::Stability::kRuntime);
    registry.set_counter(prefix + "guard.shed", rep.guard.shed,
                         obs::Stability::kRuntime);
    registry.set_counter(prefix + "guard.latch_transitions",
                         rep.guard.latch_transitions,
                         obs::Stability::kRuntime);
    registry.set_counter(prefix + "guard.overload_observations",
                         rep.guard.overload_observations,
                         obs::Stability::kRuntime);
  }
  registry.set_counter(prefix + "breaker.budget_exhausted",
                       rep.budget_exhausted, obs::Stability::kRuntime);
  registry.set_counter(prefix + "breaker.drops", rep.breaker_drops,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "breaker.trips", rep.breaker_trips,
                       obs::Stability::kRuntime);
  if (rep.net_enabled) {
    net::collect_metrics(registry, prefix + "net.", rep.net);
  }
  for (const WorkerReport& wr : rep.workers) {
    const std::string wp =
        prefix + "worker." + std::to_string(wr.index) + ".";
    // A worker's raw emissions are only reproducible when its inner
    // engine's are; the threaded handshake chain races (the exact-global
    // merge filter restores determinism cluster-wide, not per worker).
    const obs::Stability emit_stability =
        wr.backend == core::Backend::kSwHandshake
            ? obs::Stability::kRuntime
            : obs::Stability::kDeterministic;
    registry.set_counter(wp + "tuples_in", wr.tuples_in);
    registry.set_counter(wp + "results_out", wr.results_out, emit_stability);
    // Wire framing, not data: the batch count tracks the transport
    // granularity (TransportParams::batch_size / dispatch_batch), so it is
    // runtime-shaped like the stall and high-water counters — the
    // deterministic projection must not change with the dispatch path.
    registry.set_counter(wp + "data_batches_in", wr.data_batches_in,
                         obs::Stability::kRuntime);
    registry.set_counter(wp + "dropped", wr.dropped ? 1 : 0);
    registry.set_counter(wp + "recovery.restarts", wr.restarts);
    registry.set_counter(wp + "recovery.unrecoverable",
                         wr.unrecoverable ? 1 : 0);
    // Liveness ticks: pure scheduling noise, but a flat-lined gauge next
    // to a live peer set is the at-a-glance "worker is wedged" signal.
    registry.set_gauge(wp + "heartbeat", static_cast<double>(wr.heartbeat),
                       obs::Stability::kRuntime);
    registry.set_gauge(wp + "busy_seconds", wr.busy_seconds,
                       obs::Stability::kRuntime);
    if (wr.slow_batches > 0) {
      registry.set_counter(wp + "slow_batches", wr.slow_batches,
                           obs::Stability::kRuntime);
    }
    registry.set_counter(wp + "ingress.stall_spins", wr.ingress.stall_spins,
                         obs::Stability::kRuntime);
    registry.set_counter(wp + "egress.stall_spins", wr.egress.stall_spins,
                         obs::Stability::kRuntime);
  }
  for (const auto& w : workers_) {
    if (w->retired.load(std::memory_order_acquire)) continue;
    if (!w->dropped.load(std::memory_order_acquire)) {
      w->engine->collect_metrics(
          registry, prefix + "worker." + std::to_string(w->index) + ".engine.");
    }
  }
}

std::unique_ptr<ClusterEngine> make_cluster_engine(const ClusterConfig& cfg) {
  return std::make_unique<ClusterEngine>(cfg);
}

}  // namespace hal::cluster
