// Tuple routing for the sharded cluster runtime.
//
// Two partitioning policies:
//
// * kSplitGrid — the SplitJoin discipline (store-to-one-shard,
//   process-against-all) generalized to a rows×cols worker grid, the
//   join-matrix layout: R tuples are assigned round-robin to a *row* and
//   replicated across that row's workers; S tuples are assigned
//   round-robin to a *column* and replicated down it. Every (r, s) pair
//   meets at exactly one worker — (row(r), col(s)) — and, because the
//   round-robin row/column assignment slices each stream exactly like
//   SplitJoin's per-core turn counting, each worker's local count-based
//   sub-window of W/rows (resp. W/cols) tuples is precisely its slice of
//   the global W-tuple window. Works for arbitrary join predicates.
//
// * kKeyHash — equi-join fast path: each tuple goes to the single worker
//   owning its key, so matches co-locate and no replication is needed.
//   State is partitioned (each worker stores only its key range), which
//   cuts per-probe scan work by the shard count — the scaling mode.
//   Ownership is indirected through a versioned KeyspaceMap (keyslot →
//   shard table plus hot-key split groups) so hal::elastic can move key
//   ranges and split skewed keys at runtime; a fresh router starts from
//   KeyspaceMap::uniform(shards), which reproduces the static
//   hash(key) % shards layout. The router can additionally count routed
//   tuples per key (enable_load_tracking) — the measured-skew feed for
//   the elastic rebalance policy.
//
// Exactness: a worker wraps an unmodified single-node engine, which evicts
// by *local* arrival count. Whenever a worker's local window can outlive
// the global W-tuple window (kKeyHash, or the long side of a non-square
// grid), the engine is given a window large enough to never *miss* a
// global-window partner, and the merger discards the stale extras using
// the WindowTracker: the router records, for every arrival, how many R/S
// tuples preceded it, which is sufficient to decide post-hoc whether the
// stored tuple of a result pair was still inside the probing tuple's
// global window. Subset guarantee + superset filter ⇒ byte-identical
// result multisets to the single-node oracle.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/keyspace.h"
#include "common/assert.h"
#include "simd/probe.h"
#include "stream/tuple.h"

namespace hal::cluster {

enum class Partitioning : std::uint8_t {
  kSplitGrid,  // store-to-one, process-against-all (any predicate)
  kKeyHash,    // hash(key) ownership (equi-joins)
};

[[nodiscard]] constexpr const char* to_string(Partitioning p) noexcept {
  switch (p) {
    case Partitioning::kSplitGrid: return "split-grid";
    case Partitioning::kKeyHash: return "key-hash";
  }
  return "?";
}

// Per-shard window discipline (see header comment).
enum class WindowMode : std::uint8_t {
  // Workers hold enough history that, after the merger's window filter,
  // the cluster is byte-identical to the global count-based W window.
  kExactGlobal,
  // Workers hold W/shards each (kKeyHash) — the discipline real
  // key-partitioned deployments use: per-partition count-based windows.
  // Aggregate state is W, per-probe work drops by the shard count.
  kPartitionedLocal,
};

[[nodiscard]] constexpr const char* to_string(WindowMode m) noexcept {
  switch (m) {
    case WindowMode::kExactGlobal: return "exact-global";
    case WindowMode::kPartitionedLocal: return "partitioned-local";
  }
  return "?";
}

class Router {
 public:
  Router(Partitioning partitioning, std::uint32_t rows, std::uint32_t cols);

  // Shard slots (grid cells or hash partitions) the tuple must visit, in
  // slot-index order. Must be called exactly once per tuple, in arrival
  // order (grid assignment advances per-stream round-robin counters).
  void route(const stream::Tuple& t, std::vector<std::uint32_t>& slots_out);

  // Batch-granularity routing: one call per arrival-order span, invoking
  // emit(tuple, slot) for every (tuple, destination) pair without a
  // scratch-vector round trip per tuple. Equivalent to route() called
  // tuple-by-tuple (the round-robin counters advance identically); it
  // exists so the cluster ingress amortizes the per-tuple dispatch the
  // same way the engines do.
  template <typename EmitFn>
  void route_span(std::span<const stream::Tuple> tuples, EmitFn&& emit) {
    if (partitioning_ == Partitioning::kKeyHash) {
      if (!track_load_ && map_.splits().empty()) {
        // Hot-loop fast path: no per-key accounting, no split groups —
        // every tuple goes to owners[keyslot(key)]. Hash a chunk of keys
        // at a time through the simd kernel (identical output to
        // KeyspaceMap::hash_key lane by lane, pinned by the kernel
        // tests), then emit through the owner table.
        const std::uint32_t* owners = map_.owners().data();
        std::size_t pos = 0;
        while (pos < tuples.size()) {
          const std::size_t n = std::min(kHashChunk, tuples.size() - pos);
          for (std::size_t j = 0; j < n; ++j) {
            hash_keys_[j] = tuples[pos + j].key;
          }
          simd::hash_fib_hi16(hash_keys_.data(), n, hash_out_.data());
          for (std::size_t j = 0; j < n; ++j) {
            emit(tuples[pos + j],
                 owners[hash_out_[j] % KeyspaceMap::kKeyslots]);
          }
          pos += n;
        }
        return;
      }
      for (const stream::Tuple& t : tuples) route_hashed(t, emit);
      return;
    }
    for (const stream::Tuple& t : tuples) {
      if (t.origin == stream::StreamId::R) {
        const auto row = static_cast<std::uint32_t>(count_r_++ % rows_);
        for (std::uint32_t col = 0; col < cols_; ++col) {
          emit(t, row * cols_ + col);
        }
      } else {
        const auto col = static_cast<std::uint32_t>(count_s_++ % cols_);
        for (std::uint32_t row = 0; row < rows_; ++row) {
          emit(t, row * cols_ + col);
        }
      }
    }
  }

  // Construction-time slot count (grid cells, or the initial shard count
  // for kKeyHash). Elastic reconfiguration can grow past this; the
  // cluster engine tracks the live slot set itself.
  [[nodiscard]] std::uint32_t num_slots() const noexcept {
    return rows_ * cols_;
  }
  [[nodiscard]] Partitioning partitioning() const noexcept {
    return partitioning_;
  }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

  // --- Elastic keyspace (kKeyHash only) --------------------------------
  [[nodiscard]] const KeyspaceMap& keyspace() const {
    HAL_CHECK(partitioning_ == Partitioning::kKeyHash,
              "the keyspace map only exists under key-hash partitioning");
    return map_;
  }
  // Atomic (from the routing thread's perspective: between route calls)
  // swap to the next revision. Revisions install strictly in order.
  void set_keyspace(KeyspaceMap map);

  // --- Per-key load accounting (skew detection) ------------------------
  void enable_load_tracking() noexcept { track_load_ = true; }
  [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint64_t>&
  key_load() const noexcept {
    return key_load_;
  }
  void reset_key_load() { key_load_.clear(); }

 private:
  // Key-hash dispatch for one tuple: hot-key groups replicate R to every
  // member and deal S round-robin (each (r, s) pair of the key meets at
  // exactly one member — s's member, which holds every windowed r);
  // everything else goes to the keyslot owner.
  template <typename EmitFn>
  void route_hashed(const stream::Tuple& t, EmitFn&& emit) {
    if (track_load_) ++key_load_[t.key];
    if (!map_.splits().empty()) {
      if (const std::vector<std::uint32_t>* group = map_.split_group(t.key)) {
        if (t.origin == stream::StreamId::R) {
          for (const std::uint32_t slot : *group) emit(t, slot);
        } else {
          emit(t, (*group)[split_turn_[t.key]++ % group->size()]);
        }
        return;
      }
    }
    emit(t, map_.shard_of_key(t.key));
  }

  Partitioning partitioning_;
  std::uint32_t rows_;  // kKeyHash: rows_ == 1, cols_ == initial shards
  std::uint32_t cols_;
  std::uint64_t count_r_ = 0;  // grid round-robin turn counters
  std::uint64_t count_s_ = 0;

  KeyspaceMap map_;  // kKeyHash only; starts at uniform(cols_)
  // Per-split-key S-side deal counters. Survive re-splits; routing stays
  // deterministic either way (single routing thread).
  std::unordered_map<std::uint32_t, std::uint64_t> split_turn_;

  bool track_load_ = false;
  std::unordered_map<std::uint32_t, std::uint64_t> key_load_;

  // Gather/landing buffers of the batched keyslot-hash fast path (the
  // router is single-threaded, like the turn counters above).
  static constexpr std::size_t kHashChunk = 256;
  std::vector<std::uint32_t> hash_keys_ = std::vector<std::uint32_t>(kHashChunk);
  std::vector<std::uint32_t> hash_out_ = std::vector<std::uint32_t>(kHashChunk);
};

// Arrival-order accounting for the merger's exact-global window filter.
class WindowTracker {
 public:
  // Pre-sizes the arrival map for `n` further observations, so a batched
  // ingress loop does not rehash mid-span.
  void reserve(std::size_t n) { counts_.reserve(counts_.size() + n); }

  // Records one arrival. Tuples must be observed in arrival order; seq
  // values must be unique across the run (the generators guarantee this).
  void observe(const stream::Tuple& t) {
    counts_.emplace(t.seq, Counts{seen_r_, seen_s_});
    if (t.origin == stream::StreamId::R) {
      ++seen_r_;
    } else {
      ++seen_s_;
    }
  }

  // True iff the earlier tuple of the pair was still inside the later
  // (probing) tuple's opposite-stream window of `window` tuples when the
  // probe arrived — the reference oracle's probe-then-insert semantics.
  [[nodiscard]] bool pair_in_window(const stream::ResultTuple& result,
                                    std::size_t window) const {
    const bool r_probes = result.r.seq > result.s.seq;
    const stream::Tuple& probe = r_probes ? result.r : result.s;
    const stream::Tuple& stored = r_probes ? result.s : result.r;
    const auto probe_it = counts_.find(probe.seq);
    const auto stored_it = counts_.find(stored.seq);
    HAL_ASSERT_MSG(probe_it != counts_.end() && stored_it != counts_.end(),
                   "result references a tuple the router never saw");
    const bool stored_is_r = stored.origin == stream::StreamId::R;
    const std::uint64_t before_probe =
        stored_is_r ? probe_it->second.r : probe_it->second.s;
    const std::uint64_t before_stored =
        stored_is_r ? stored_it->second.r : stored_it->second.s;
    // `stored` is the (before_stored + 1)-th tuple of its stream; it is
    // still windowed at the probe iff at most `window` same-stream tuples
    // (itself included) arrived up to the probe after its insertion point.
    return before_probe - before_stored <= window;
  }

  [[nodiscard]] std::size_t observed() const noexcept {
    return counts_.size();
  }

 private:
  struct Counts {
    std::uint64_t r;  // R tuples that arrived strictly before this one
    std::uint64_t s;
  };
  std::unordered_map<std::uint64_t, Counts> counts_;
  std::uint64_t seen_r_ = 0;
  std::uint64_t seen_s_ = 0;
};

}  // namespace hal::cluster
