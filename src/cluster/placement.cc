#include "cluster/placement.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace hal::cluster {
namespace {

// Parses a sysfs cpulist ("0-3,8,10-11\n") into CPU ids. Returns an empty
// vector on malformed input (caller falls back to the flat topology).
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    const long lo = std::strtol(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos) break;
    pos = static_cast<std::size_t>(end - text.c_str());
    long hi = lo;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      char* end2 = nullptr;
      hi = std::strtol(text.c_str() + pos, &end2, 10);
      if (end2 == text.c_str() + pos) return {};
      pos = static_cast<std::size_t>(end2 - text.c_str());
    }
    if (lo < 0 || hi < lo) return {};
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (pos < text.size() && (text[pos] == ',' || text[pos] == '\n')) ++pos;
  }
  return cpus;
}

std::string read_small_file(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return std::string(buf, n);
}

}  // namespace

CpuTopology CpuTopology::flat(int count) {
  CpuTopology topo;
  topo.node_cpus.emplace_back();
  for (int c = 0; c < std::max(count, 1); ++c) {
    topo.node_cpus[0].push_back(c);
  }
  return topo;
}

CpuTopology CpuTopology::discover() {
  CpuTopology topo;
#if defined(__linux__)
  for (int node = 0; node < 1024; ++node) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpulist", node);
    const std::string text = read_small_file(path);
    if (text.empty()) break;  // nodes are numbered contiguously
    std::vector<int> cpus = parse_cpulist(text);
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    return flat(hw == 0 ? 1 : static_cast<int>(hw));
  }
  return topo;
}

PlacementPolicy::PlacementPolicy(const PlacementConfig& cfg,
                                 CpuTopology topology)
    : enabled_(cfg.pin_workers), topology_(std::move(topology)) {
  if (!cfg.cpus.empty()) {
    // Restrict the topology to the allowed CPUs, dropping emptied nodes;
    // an allowed CPU the topology does not know lands on a synthetic
    // trailing node so it still participates.
    CpuTopology filtered;
    std::vector<int> unknown = cfg.cpus;
    for (const auto& node : topology_.node_cpus) {
      std::vector<int> keep;
      for (const int cpu : node) {
        const auto it = std::find(unknown.begin(), unknown.end(), cpu);
        if (it != unknown.end()) {
          keep.push_back(cpu);
          unknown.erase(it);
        }
      }
      if (!keep.empty()) filtered.node_cpus.push_back(std::move(keep));
    }
    if (!unknown.empty()) filtered.node_cpus.push_back(std::move(unknown));
    if (filtered.node_cpus.empty()) {
      enabled_ = false;
      filtered.node_cpus.emplace_back();  // keep the invariant: ≥ 1 node
    }
    topology_ = std::move(filtered);
  }
  if (!cfg.numa_aware && topology_.num_nodes() > 1) {
    // Collapse to one node: plain round-robin over the CPU list.
    std::vector<int> all;
    for (const auto& node : topology_.node_cpus) {
      all.insert(all.end(), node.begin(), node.end());
    }
    topology_.node_cpus.assign(1, std::move(all));
  }
  if (topology_.num_cpus() == 0) enabled_ = false;
}

int PlacementPolicy::node_for_slot(std::uint32_t slot) const noexcept {
  if (!enabled_) return -1;
  return static_cast<int>(slot % topology_.num_nodes());
}

int PlacementPolicy::cpu_for(std::uint32_t slot, std::uint32_t replica,
                             std::uint32_t replicas) const noexcept {
  if (!enabled_) return -1;
  const int node = node_for_slot(slot);
  const auto& cpus = topology_.node_cpus[static_cast<std::size_t>(node)];
  if (cpus.empty()) return -1;
  // Workers of the slots sharing this node spread over its CPUs; a slot's
  // replicas take adjacent CPUs so they share the node but not the core.
  const std::uint64_t slot_on_node = slot / topology_.num_nodes();
  const std::uint64_t lane =
      slot_on_node * std::max<std::uint32_t>(replicas, 1) + replica;
  return cpus[lane % cpus.size()];
}

bool pin_current_thread(int cpu) noexcept {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace hal::cluster
