// Worker placement: core pinning and NUMA-aware shard layout.
//
// The paper's software baseline pins join cores to physical cores (28 of
// 32, leaving capacity for the distribution/gathering networks); on a
// multi-socket box the further concern is that a shard's replicas and its
// window memory stay on one NUMA node, so probes never cross the
// interconnect. This module gives ClusterEngine both knobs:
//
//   * CpuTopology::discover() reads /sys/devices/system/node/node*/cpulist
//     (falling back to a single node holding every online CPU) so the
//     policy knows which CPUs share a memory domain.
//   * PlacementPolicy maps (slot, replica, workers_per_slot) → CPU:
//     slots round-robin across NUMA nodes, replicas of one slot co-locate
//     on their slot's node, and worker threads spread over the node's
//     CPUs. With numa_aware off (or one node — every machine this repo's
//     CI touches) this degrades to plain round-robin over the CPU list.
//   * pin_current_thread() applies the affinity mask (Linux only; a
//     no-op returning false elsewhere — callers treat pinning as an
//     optimization, never a correctness requirement).
//
// Everything here is pure bookkeeping except the final pthread call, so
// the layout logic is unit-testable on any host via injected topologies.
#pragma once

#include <cstdint>
#include <vector>

namespace hal::cluster {

struct PlacementConfig {
  // Pin each worker thread to one CPU chosen by PlacementPolicy. Off by
  // default: pinning a 9-thread cluster onto the 1-CPU CI box would
  // serialize it.
  bool pin_workers = false;
  // Explicit CPU list to place onto (in preference order). Empty = every
  // online CPU, grouped by NUMA node when numa_aware.
  std::vector<int> cpus;
  // Interleave shard slots across NUMA nodes and co-locate replicas.
  bool numa_aware = true;
};

struct CpuTopology {
  // node_cpus[n] = online CPUs of NUMA node n, ascending. Never empty;
  // a UMA machine (or a failed sysfs probe) yields one node.
  std::vector<std::vector<int>> node_cpus;

  [[nodiscard]] static CpuTopology discover();
  // Single node 0 holding cpus 0..count-1 (tests, fallback).
  [[nodiscard]] static CpuTopology flat(int count);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return node_cpus.size();
  }
  [[nodiscard]] std::size_t num_cpus() const noexcept {
    std::size_t n = 0;
    for (const auto& node : node_cpus) n += node.size();
    return n;
  }
};

class PlacementPolicy {
 public:
  PlacementPolicy(const PlacementConfig& cfg, CpuTopology topology);

  // CPU for worker (slot, replica) when each slot runs `replicas`
  // workers. Deterministic in its arguments. Returns -1 when the config
  // disables pinning or no CPU is available.
  [[nodiscard]] int cpu_for(std::uint32_t slot, std::uint32_t replica,
                            std::uint32_t replicas) const noexcept;
  // NUMA node a slot's state lands on (index into the effective
  // topology); -1 when pinning is disabled.
  [[nodiscard]] int node_for_slot(std::uint32_t slot) const noexcept;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const CpuTopology& topology() const noexcept {
    return topology_;
  }

 private:
  bool enabled_ = false;
  CpuTopology topology_;  // effective: filtered to cfg.cpus when given
};

// Pins the calling thread to `cpu`. Returns true on success; false on
// non-Linux hosts, cpu < 0, or a rejected affinity mask.
bool pin_current_thread(int cpu) noexcept;

}  // namespace hal::cluster
