#include "cluster/remote.h"

#include <algorithm>
#include <thread>

#include "cluster/cluster_engine.h"
#include "common/assert.h"
#include "common/timer.h"

namespace hal::cluster {

using stream::ResultTuple;
using stream::StreamId;
using stream::Tuple;

namespace {

[[nodiscard]] std::uint64_t probe_seq(const ResultTuple& t) noexcept {
  return t.r.seq > t.s.seq ? t.r.seq : t.s.seq;
}

}  // namespace

RemoteWorkerReport serve_worker(const RemoteWorkerOptions& opts) {
  std::unique_ptr<net::Transport> owned;
  net::Transport* transport = opts.shared_transport;
  if (transport == nullptr) {
    owned = net::make_transport(opts.transport);
    transport = owned.get();
  }
  net::EndpointOptions ep;
  ep.node_id = opts.node_id;
  ep.window_frames = opts.window_frames;
  auto listener = transport->listen(opts.listen_address, ep);
  if (opts.on_listening) opts.on_listening(listener->address());

  net::Connection* conn = listener->accept(opts.accept_timeout_s);
  HAL_CHECK(conn != nullptr, "remote worker: coordinator never connected");

  auto engine = core::make_engine(opts.engine);
  RemoteWorkerReport rep;
  std::vector<ResultTuple> staged;
  std::uint64_t epoch_r = 0;
  std::uint64_t epoch_s = 0;
  std::uint64_t current_epoch = 0;

  const auto send_results = [&](bool end_of_epoch) {
    net::ResultBatchMsg out;
    out.epoch = current_epoch;
    out.end_of_epoch = end_of_epoch;
    out.results = std::move(staged);
    staged.clear();
    HAL_CHECK(conn->send_msg(net::MsgType::kResultBatch, out, 60.0),
              "remote worker: result send failed");
  };

  while (true) {
    net::Frame frame;
    if (!conn->recv(frame, 1.0)) {
      if (conn->peer_closed()) break;
      continue;  // idle between epochs
    }
    switch (frame.header.type) {
      case net::MsgType::kTupleBatch: {
        net::TupleBatchMsg msg;
        HAL_CHECK(net::decode(frame.payload, msg),
                  "remote worker: undecodable tuple batch");
        current_epoch = msg.epoch;
        ++rep.batches_in;
        rep.tuples_in += msg.tuples.size();
        for (const Tuple& t : msg.tuples) {
          if (t.origin == StreamId::R) {
            ++epoch_r;
          } else {
            ++epoch_s;
          }
        }
        const core::RunReport inner = engine->process(msg.tuples);
        rep.results_out += inner.results_emitted;
        const auto fresh = engine->take_results();
        staged.insert(staged.end(), fresh.begin(), fresh.end());
        if (staged.size() >= opts.batch_size) send_results(false);
        break;
      }
      case net::MsgType::kWatermark: {
        net::WatermarkMsg wm;
        HAL_CHECK(net::decode(frame.payload, wm),
                  "remote worker: undecodable watermark");
        // Exactly-once audit: what the coordinator routed to this link
        // this epoch must be exactly what arrived — faults and all.
        HAL_CHECK(wm.r_count == epoch_r && wm.s_count == epoch_s,
                  "remote worker: watermark count mismatch (transport "
                  "lost or duplicated tuples)");
        epoch_r = 0;
        epoch_s = 0;
        current_epoch = wm.epoch;
        ++rep.epochs;
        send_results(true);  // the barrier answer
        break;
      }
      default:
        HAL_CHECK(false, "remote worker: unexpected message type");
    }
  }
  rep.net = conn->stats();
  conn->close();
  return rep;
}

std::size_t remote_worker_window_size(const RemoteClusterConfig& cfg) {
  ClusterConfig probe;
  probe.partitioning = cfg.partitioning;
  probe.shards = cfg.shards;
  probe.grid_rows = cfg.grid_rows;
  probe.grid_cols = cfg.grid_cols;
  probe.window_mode = cfg.window_mode;
  probe.window_size = cfg.window_size;
  return worker_window_size(probe);
}

RemoteCoordinator::RemoteCoordinator(const RemoteClusterConfig& cfg)
    : cfg_(cfg),
      router_(cfg.partitioning,
              cfg.partitioning == Partitioning::kKeyHash ? 1 : cfg.grid_rows,
              cfg.partitioning == Partitioning::kKeyHash ? cfg.shards
                                                         : cfg.grid_cols) {
  HAL_CHECK(cfg_.batch_size >= 1, "batch_size must be positive");
  const std::uint32_t slots = router_.num_slots();
  HAL_CHECK(cfg_.worker_addresses.size() == slots,
            "need exactly one worker address per shard slot");
  if (cfg_.partitioning == Partitioning::kKeyHash) {
    HAL_CHECK(key_hashable(cfg_.spec),
              "key-hash partitioning requires an r.key == s.key conjunct");
  }
  transport_ = cfg_.shared_transport;
  if (transport_ == nullptr) {
    owned_transport_ = net::make_transport(cfg_.transport);
    transport_ = owned_transport_.get();
  }
  staging_.resize(slots);
  slot_r_count_.assign(slots, 0);
  slot_s_count_.assign(slots, 0);
  pending_.resize(slots);
  done_epoch_.assign(slots, 0);
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    net::EndpointOptions ep;
    ep.node_id = slot;
    ep.window_frames = cfg_.window_frames;
    ep.connect_timeout_s = cfg_.connect_timeout_s;
    ep.fault = cfg_.fault;
    conns_.push_back(
        transport_->connect(cfg_.worker_addresses[slot], ep));
  }
}

RemoteCoordinator::~RemoteCoordinator() { shutdown(); }

void RemoteCoordinator::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& conn : conns_) conn->close();
}

void RemoteCoordinator::drain_results() {
  for (std::uint32_t slot = 0; slot < conns_.size(); ++slot) {
    net::Frame frame;
    while (conns_[slot]->try_recv(frame)) {
      HAL_CHECK(frame.header.type == net::MsgType::kResultBatch,
                "coordinator: unexpected message from worker");
      net::ResultBatchMsg msg;
      HAL_CHECK(net::decode(frame.payload, msg),
                "coordinator: undecodable result batch");
      pending_[slot].insert(pending_[slot].end(), msg.results.begin(),
                            msg.results.end());
      if (msg.end_of_epoch) {
        epoch_results_.insert(epoch_results_.end(), pending_[slot].begin(),
                              pending_[slot].end());
        pending_[slot].clear();
        done_epoch_[slot] = msg.epoch;
      }
    }
  }
}

void RemoteCoordinator::send_with_drain(
    std::uint32_t slot, net::MsgType type,
    const std::vector<std::uint8_t>& payload) {
  Timer timer;
  while (!conns_[slot]->try_send(type, payload)) {
    // The tuple direction is stalled on credit; keep consuming the result
    // direction or the two windows deadlock against each other.
    drain_results();
    HAL_CHECK(!conns_[slot]->peer_closed(),
              "coordinator: worker connection closed mid-epoch");
    HAL_CHECK(timer.elapsed_seconds() < 120.0,
              "coordinator: send wedged for 120s");
    std::this_thread::yield();
  }
}

void RemoteCoordinator::flush_slot(std::uint32_t slot,
                                   std::vector<Tuple>& staging) {
  if (staging.empty()) return;
  net::TupleBatchMsg msg;
  msg.epoch = epoch_;
  msg.tuples = std::move(staging);
  staging.clear();
  send_with_drain(slot, net::MsgType::kTupleBatch, net::encode(msg));
}

core::RunReport RemoteCoordinator::process(const std::vector<Tuple>& tuples) {
  HAL_CHECK(!shut_down_, "coordinator already shut down");
  ++epoch_;
  Timer wall;
  std::fill(slot_r_count_.begin(), slot_r_count_.end(), 0);
  std::fill(slot_s_count_.begin(), slot_s_count_.end(), 0);

  for (const Tuple& t : tuples) {
    if (cfg_.window_mode == WindowMode::kExactGlobal) tracker_.observe(t);
    router_.route(t, scratch_slots_);
    for (const std::uint32_t slot : scratch_slots_) {
      ++routed_tuples_;
      if (t.origin == StreamId::R) {
        ++slot_r_count_[slot];
      } else {
        ++slot_s_count_[slot];
      }
      staging_[slot].push_back(t);
      if (staging_[slot].size() >= cfg_.batch_size) {
        flush_slot(slot, staging_[slot]);
      }
    }
  }
  for (std::uint32_t slot = 0; slot < router_.num_slots(); ++slot) {
    flush_slot(slot, staging_[slot]);
    net::WatermarkMsg wm;
    wm.epoch = epoch_;
    wm.r_count = slot_r_count_[slot];
    wm.s_count = slot_s_count_[slot];
    send_with_drain(slot, net::MsgType::kWatermark, net::encode(wm));
  }

  // Barrier: every worker answers the watermark with an end-of-epoch
  // result batch.
  Timer barrier;
  while (true) {
    drain_results();
    bool all_done = true;
    for (const std::uint64_t done : done_epoch_) {
      if (done < epoch_) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    HAL_CHECK(barrier.elapsed_seconds() < 120.0,
              "coordinator: epoch barrier wedged for 120s");
    std::this_thread::yield();
  }

  if (cfg_.window_mode == WindowMode::kExactGlobal) {
    const auto before = epoch_results_.size();
    std::erase_if(epoch_results_, [this](const ResultTuple& rt) {
      return !tracker_.pair_in_window(rt, cfg_.window_size);
    });
    filtered_results_ += before - epoch_results_.size();
  }
  // Same deterministic emission order as the in-process cluster: by
  // probing-tuple arrival, then stored-tuple arrival.
  std::sort(epoch_results_.begin(), epoch_results_.end(),
            [](const ResultTuple& a, const ResultTuple& b) {
              const auto pa = probe_seq(a), pb = probe_seq(b);
              if (pa != pb) return pa < pb;
              if (a.r.seq != b.r.seq) return a.r.seq < b.r.seq;
              return a.s.seq < b.s.seq;
            });

  core::RunReport rep;
  rep.tuples_processed = tuples.size();
  rep.results_emitted = epoch_results_.size();
  rep.elapsed_seconds = wall.elapsed_seconds();

  input_tuples_ += tuples.size();
  merged_results_ += epoch_results_.size();
  elapsed_seconds_ += rep.elapsed_seconds;
  collected_.insert(collected_.end(),
                    std::make_move_iterator(epoch_results_.begin()),
                    std::make_move_iterator(epoch_results_.end()));
  epoch_results_.clear();
  return rep;
}

std::vector<ResultTuple> RemoteCoordinator::take_results() {
  std::vector<ResultTuple> out = std::move(collected_);
  collected_.clear();
  return out;
}

RemoteClusterReport RemoteCoordinator::report() const {
  RemoteClusterReport rep;
  rep.epochs = epoch_;
  rep.input_tuples = input_tuples_;
  rep.routed_tuples = routed_tuples_;
  rep.merged_results = merged_results_;
  rep.filtered_results = filtered_results_;
  rep.elapsed_seconds = elapsed_seconds_;
  for (const auto& conn : conns_) rep.net.add(conn->stats());
  return rep;
}

void RemoteCoordinator::collect_metrics(obs::MetricRegistry& registry,
                                        const std::string& prefix) const {
  const RemoteClusterReport rep = report();
  registry.set_counter(prefix + "epochs", rep.epochs);
  registry.set_counter(prefix + "input_tuples", rep.input_tuples);
  registry.set_counter(prefix + "routed_tuples", rep.routed_tuples);
  registry.set_counter(prefix + "merged_results", rep.merged_results);
  registry.set_counter(prefix + "filtered_results", rep.filtered_results);
  registry.set_gauge(prefix + "elapsed_seconds", rep.elapsed_seconds,
                     obs::Stability::kRuntime);
  net::collect_metrics(registry, prefix + "net.", rep.net);
}

}  // namespace hal::cluster
