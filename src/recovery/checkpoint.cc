#include "recovery/checkpoint.h"

#include "core/stream_join.h"
#include "net/wire.h"

namespace hal::recovery {

namespace {

using core::WindowImage;
using stream::Tuple;

// Same primitives as the net codec (wire.cc keeps its own copies in an
// anonymous namespace; the layout contract between them is the 17-byte
// wire tuple, pinned by the round-trip tests).

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

constexpr std::size_t kTupleWireSize = 17;

void put_tuple(std::vector<std::uint8_t>& out, const Tuple& t) {
  put_u32(out, t.key);
  put_u32(out, t.value);
  put_u64(out, t.seq);
  put_u8(out, t.origin == stream::StreamId::R ? 0 : 1);
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool read_u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool read_u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool read_tuple(Tuple& t) {
    std::uint8_t origin = 0;
    if (!read_u32(t.key) || !read_u32(t.value) || !read_u64(t.seq) ||
        !read_u8(origin)) {
      return false;
    }
    if (origin > 1) return false;
    t.origin = origin == 0 ? stream::StreamId::R : stream::StreamId::S;
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Refuses counts the remaining bytes cannot possibly hold, so a corrupt
// count can never trigger an unbounded allocation.
bool read_tuples(Reader& r, std::uint32_t count,
                 std::vector<Tuple>& out) {
  if (r.remaining() < static_cast<std::size_t>(count) * kTupleWireSize) {
    return false;
  }
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Tuple t;
    if (!r.read_tuple(t)) return false;
    out.push_back(t);
  }
  return true;
}

bool read_arrivals(Reader& r, std::size_t count,
                   std::vector<std::uint64_t>& out) {
  if (r.remaining() < count * 8) return false;
  out.clear();
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    if (!r.read_u64(v)) return false;
    out.push_back(v);
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> serialize(const WindowImage& image) {
  std::vector<std::uint8_t> payload;
  put_u8(payload, static_cast<std::uint8_t>(image.backend));
  put_u32(payload, image.num_cores);
  put_u64(payload, image.window_size);
  put_u64(payload, image.epoch);
  put_u64(payload, image.count_r);
  put_u64(payload, image.count_s);
  put_u64(payload, image.results_emitted);
  put_u32(payload, static_cast<std::uint32_t>(image.cores.size()));
  for (const auto& core : image.cores) {
    put_u32(payload, static_cast<std::uint32_t>(core.win_r.size()));
    put_u32(payload, static_cast<std::uint32_t>(core.win_s.size()));
    const bool has_arrivals = !core.arr_r.empty() || !core.arr_s.empty();
    put_u8(payload, has_arrivals ? 1 : 0);
    for (const Tuple& t : core.win_r) put_tuple(payload, t);
    for (const Tuple& t : core.win_s) put_tuple(payload, t);
    if (has_arrivals) {
      for (std::uint64_t a : core.arr_r) put_u64(payload, a);
      for (std::uint64_t a : core.arr_s) put_u64(payload, a);
    }
  }
  put_u32(payload, static_cast<std::uint32_t>(image.boundaries.size()));
  for (const auto& boundary : image.boundaries) {
    put_u32(payload, static_cast<std::uint32_t>(boundary.r_q.size()));
    put_u32(payload, static_cast<std::uint32_t>(boundary.s_q.size()));
    for (const Tuple& t : boundary.r_q) put_tuple(payload, t);
    for (const Tuple& t : boundary.s_q) put_tuple(payload, t);
  }

  std::vector<std::uint8_t> wire;
  net::append_frame(wire, net::MsgType::kCheckpoint, image.epoch, payload);
  return wire;
}

bool deserialize(std::span<const std::uint8_t> bytes, WindowImage& out) {
  net::FrameDecoder decoder;
  decoder.feed(bytes);
  net::Frame frame;
  if (decoder.next(frame) != net::DecodeStatus::kOk) return false;
  if (frame.header.type != net::MsgType::kCheckpoint) return false;
  // Exactly one frame: trailing bytes mean a damaged image store.
  net::Frame extra;
  if (decoder.next(extra) != net::DecodeStatus::kNeedMore ||
      decoder.buffered() != 0) {
    return false;
  }

  Reader r(frame.payload);
  std::uint8_t backend = 0;
  std::uint32_t core_count = 0;
  WindowImage image;
  if (!r.read_u8(backend) || !r.read_u32(image.num_cores) ||
      !r.read_u64(image.window_size) || !r.read_u64(image.epoch) ||
      !r.read_u64(image.count_r) || !r.read_u64(image.count_s) ||
      !r.read_u64(image.results_emitted) || !r.read_u32(core_count)) {
    return false;
  }
  if (backend > static_cast<std::uint8_t>(core::Backend::kCluster)) {
    return false;
  }
  image.backend = static_cast<core::Backend>(backend);
  // Each core record needs at least its 9-byte header; checking before the
  // resize keeps a crafted count from over-allocating (the frame CRC only
  // guards against corruption, not construction).
  if (r.remaining() < static_cast<std::size_t>(core_count) * 9) return false;
  image.cores.resize(core_count);
  for (auto& core : image.cores) {
    std::uint32_t nr = 0;
    std::uint32_t ns = 0;
    std::uint8_t has_arrivals = 0;
    if (!r.read_u32(nr) || !r.read_u32(ns) || !r.read_u8(has_arrivals) ||
        has_arrivals > 1) {
      return false;
    }
    if (!read_tuples(r, nr, core.win_r) || !read_tuples(r, ns, core.win_s)) {
      return false;
    }
    if (has_arrivals == 1) {
      if (!read_arrivals(r, nr, core.arr_r) ||
          !read_arrivals(r, ns, core.arr_s)) {
        return false;
      }
    }
  }
  std::uint32_t boundary_count = 0;
  if (!r.read_u32(boundary_count)) return false;
  if (r.remaining() < static_cast<std::size_t>(boundary_count) * 8) {
    return false;
  }
  image.boundaries.resize(boundary_count);
  for (auto& boundary : image.boundaries) {
    std::uint32_t nr = 0;
    std::uint32_t ns = 0;
    if (!r.read_u32(nr) || !r.read_u32(ns)) return false;
    if (!read_tuples(r, nr, boundary.r_q) ||
        !read_tuples(r, ns, boundary.s_q)) {
      return false;
    }
  }
  if (!r.done()) return false;
  out = std::move(image);
  return true;
}

}  // namespace hal::recovery
