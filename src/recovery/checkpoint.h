// hal::recovery checkpoint codec — transportable window-state images.
//
// serialize() turns a `core::WindowImage` (produced by
// `StreamJoinEngine::snapshot()`) into one CRC32C-checked
// `net::MsgType::kCheckpoint` wire frame, so a checkpoint is bit-equal
// whether it sits in a supervisor's in-memory slot, a file, or a socket —
// the same frame discipline as every other message the cluster ships.
// deserialize() is total on arbitrary bytes: any truncation, bit flip
// (CRC), or structural inconsistency returns false and leaves `out`
// untouched by contract of use (callers treat false as image-lost).
//
// Payload layout (little-endian, after the standard frame header):
//
//   u8  backend            core::Backend underlying value
//   u32 num_cores
//   u64 window_size | epoch | count_r | count_s | results_emitted
//   u32 core count
//   per core:
//     u32 nr | u32 ns | u8 has_arrivals
//     nr + ns tuples (17-byte wire tuples, R window then S window)
//     [nr + ns u64 arrival indices when has_arrivals]
//   u32 boundary count
//   per boundary: u32 nr | u32 ns | nr + ns tuples
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/window_image.h"

namespace hal::recovery {

// One framed kCheckpoint record (header + payload).
[[nodiscard]] std::vector<std::uint8_t> serialize(
    const core::WindowImage& image);

// Strict inverse: exactly one well-formed kCheckpoint frame, nothing
// trailing. Returns false on any framing, CRC, or structural error.
[[nodiscard]] bool deserialize(std::span<const std::uint8_t> bytes,
                               core::WindowImage& out);

}  // namespace hal::recovery
