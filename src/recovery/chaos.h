// hal::recovery chaos harness — seeded, deterministic fault schedules.
//
// A ChaosPlan is a reproducible list of fault events at epoch + batch
// granularity, generated from one seed: worker kills and injected
// recoverable errors (cluster::FaultPlan events), ingress-link delays
// (applied at cluster construction), and wire-level corruption /
// partitions (net::FaultPlan, socket transports only). The same seed
// always produces the same schedule, so a differential chaos suite can
// assert byte-identical results against a fault-free oracle, and a
// failure report can name the seed that broke the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "net/fault.h"

namespace hal::recovery {

enum class ChaosKind : std::uint8_t {
  kKill,        // cluster::FaultKind::kKillWorker
  kWorkerError, // cluster::FaultKind::kWorkerError
  kLinkDelay,   // cluster::FaultKind::kDelayLink
  kCorrupt,     // net::FaultPlan::corrupt_every (wire transports)
  kPartition,   // net::FaultPlan::partition_after_frames
  // Gray failures (cluster::FaultKind::kSlowWorker): the worker stays
  // alive and correct but turns slow. kSlow degrades for a stretch of
  // batches; kStutter delays only every period-th batch (GC-pause
  // shaped). Neither changes any output — only hal::guard's detector
  // can tell a gray-slow shard from a healthy one.
  kSlow,
  kStutter,
};

[[nodiscard]] const char* to_string(ChaosKind kind) noexcept;

struct ChaosEvent {
  ChaosKind kind = ChaosKind::kKill;
  std::uint32_t worker = 0;       // flat worker index (kill/error/delay)
  std::uint64_t epoch = 0;        // 1-based trigger epoch (kill/error)
  std::uint32_t after_batches = 0;
  double delay_us = 0.0;          // kLinkDelay/kSlow/kStutter
  std::uint64_t every_frames = 0; // kCorrupt/kPartition trigger period
  // kSlow/kStutter: degradation length in batches (0 = rest of run) and
  // the stutter period (1 = every batch).
  std::uint64_t duration_batches = 0;
  std::uint32_t period = 1;
};

struct ChaosOptions {
  // Shape of the run the plan targets (trigger positions are drawn
  // uniformly inside this envelope).
  std::uint32_t workers = 1;
  std::uint64_t epochs = 4;
  std::uint32_t batches_per_epoch = 8;
  // Event mix.
  std::uint32_t kills = 1;
  std::uint32_t errors = 0;
  std::uint32_t link_delays = 0;
  double max_delay_us = 200.0;
  // Gray failures (hal::guard detection targets). Slow events draw their
  // per-batch delay from [max_slow_us/2, max_slow_us] — large enough to
  // dominate the peer median, so detector tests converge; stutters fire
  // every stutter_period-th batch for the rest of the run.
  std::uint32_t slow_workers = 0;
  std::uint32_t stutters = 0;
  double max_slow_us = 2000.0;
  std::uint32_t stutter_period = 4;
  // Wire faults (ignored by kInProcess transports).
  bool wire_corrupt = false;
  bool wire_partition = false;
};

class ChaosPlan {
 public:
  // Deterministic: the same (seed, options) always yields the same plan.
  [[nodiscard]] static ChaosPlan generate(std::uint64_t seed,
                                          const ChaosOptions& opts);

  // Kill/error/delay events, translated for the cluster engine.
  [[nodiscard]] cluster::FaultPlan cluster_faults() const;
  // Corrupt/partition events, translated for net-backed links.
  [[nodiscard]] net::FaultPlan net_faults() const;
  // Installs both into a cluster config (faults are appended, the wire
  // plan replaces transport.net_fault). Enabling supervision is the
  // caller's choice — a chaos run without recovery is the degradation
  // baseline, not a misuse.
  void install(cluster::ClusterConfig& cfg) const;

  // One line per event, e.g. "kill w2 @e3+1" — for failure reports.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] const std::vector<ChaosEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::vector<ChaosEvent> events_;
};

}  // namespace hal::recovery
