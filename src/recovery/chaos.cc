#include "recovery/chaos.h"

#include <algorithm>

#include "common/rng.h"

namespace hal::recovery {

const char* to_string(ChaosKind kind) noexcept {
  switch (kind) {
    case ChaosKind::kKill: return "kill";
    case ChaosKind::kWorkerError: return "error";
    case ChaosKind::kLinkDelay: return "delay";
    case ChaosKind::kCorrupt: return "corrupt";
    case ChaosKind::kPartition: return "partition";
    case ChaosKind::kSlow: return "slow";
    case ChaosKind::kStutter: return "stutter";
  }
  return "?";
}

ChaosPlan ChaosPlan::generate(std::uint64_t seed, const ChaosOptions& opts) {
  ChaosPlan plan;
  plan.seed_ = seed;
  Rng rng(seed);
  const std::uint32_t workers = opts.workers == 0 ? 1 : opts.workers;
  const std::uint64_t epochs = opts.epochs == 0 ? 1 : opts.epochs;
  const std::uint32_t batches =
      opts.batches_per_epoch == 0 ? 1 : opts.batches_per_epoch;

  auto draw_position = [&](ChaosEvent& ev) {
    ev.worker = static_cast<std::uint32_t>(rng.next_below(workers));
    ev.epoch = 1 + rng.next_below(epochs);
    ev.after_batches = static_cast<std::uint32_t>(rng.next_below(batches));
  };
  for (std::uint32_t i = 0; i < opts.kills; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kKill;
    draw_position(ev);
    plan.events_.push_back(ev);
  }
  for (std::uint32_t i = 0; i < opts.errors; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kWorkerError;
    draw_position(ev);
    plan.events_.push_back(ev);
  }
  for (std::uint32_t i = 0; i < opts.link_delays; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kLinkDelay;
    ev.worker = static_cast<std::uint32_t>(rng.next_below(workers));
    ev.delay_us = rng.next_double() * opts.max_delay_us;
    plan.events_.push_back(ev);
  }
  for (std::uint32_t i = 0; i < opts.slow_workers; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kSlow;
    draw_position(ev);
    ev.delay_us = opts.max_slow_us * (0.5 + 0.5 * rng.next_double());
    // Long enough to span several detector epochs from any trigger point.
    ev.duration_batches = 0;  // rest of the run
    plan.events_.push_back(ev);
  }
  for (std::uint32_t i = 0; i < opts.stutters; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kStutter;
    draw_position(ev);
    ev.delay_us = opts.max_slow_us * (0.5 + 0.5 * rng.next_double());
    ev.duration_batches = 0;
    ev.period = opts.stutter_period == 0 ? 1 : opts.stutter_period;
    plan.events_.push_back(ev);
  }
  if (opts.wire_corrupt) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kCorrupt;
    ev.every_frames = 17 + rng.next_below(48);  // a few fires per run
    plan.events_.push_back(ev);
  }
  if (opts.wire_partition) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kPartition;
    ev.every_frames = 8 + rng.next_below(56);
    plan.events_.push_back(ev);
  }
  // Deterministic order regardless of generation insertions, so a plan
  // prints (and installs) identically across library versions.
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.after_batches != b.after_batches) {
                return a.after_batches < b.after_batches;
              }
              if (a.worker != b.worker) return a.worker < b.worker;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return plan;
}

cluster::FaultPlan ChaosPlan::cluster_faults() const {
  cluster::FaultPlan plan;
  for (const ChaosEvent& ev : events_) {
    cluster::FaultEvent out;
    switch (ev.kind) {
      case ChaosKind::kKill:
        out.kind = cluster::FaultKind::kKillWorker;
        break;
      case ChaosKind::kWorkerError:
        out.kind = cluster::FaultKind::kWorkerError;
        break;
      case ChaosKind::kLinkDelay:
        out.kind = cluster::FaultKind::kDelayLink;
        break;
      case ChaosKind::kSlow:
      case ChaosKind::kStutter:
        out.kind = cluster::FaultKind::kSlowWorker;
        break;
      case ChaosKind::kCorrupt:
      case ChaosKind::kPartition:
        continue;  // wire-level, not the cluster's concern
    }
    out.worker = ev.worker;
    out.epoch = ev.epoch;
    out.after_batches = ev.after_batches;
    out.extra_delay_us = ev.delay_us;
    out.duration_batches = ev.duration_batches;
    out.period = ev.period;
    plan.events.push_back(out);
  }
  return plan;
}

net::FaultPlan ChaosPlan::net_faults() const {
  net::FaultPlan plan;
  for (const ChaosEvent& ev : events_) {
    if (ev.kind == ChaosKind::kCorrupt) plan.corrupt_every = ev.every_frames;
    if (ev.kind == ChaosKind::kPartition) {
      plan.partition_after_frames = ev.every_frames;
      plan.partition_seconds = 0.02;  // short: the suite must converge
    }
  }
  return plan;
}

void ChaosPlan::install(cluster::ClusterConfig& cfg) const {
  const cluster::FaultPlan faults = cluster_faults();
  cfg.faults.events.insert(cfg.faults.events.end(), faults.events.begin(),
                           faults.events.end());
  cfg.transport.net_fault = net_faults();
}

std::string ChaosPlan::describe() const {
  std::string out = "chaos seed " + std::to_string(seed_) + ":";
  for (const ChaosEvent& ev : events_) {
    out += "\n  ";
    out += to_string(ev.kind);
    switch (ev.kind) {
      case ChaosKind::kKill:
      case ChaosKind::kWorkerError:
        out += " w" + std::to_string(ev.worker) + " @e" +
               std::to_string(ev.epoch) + "+" +
               std::to_string(ev.after_batches);
        break;
      case ChaosKind::kLinkDelay:
        out += " w" + std::to_string(ev.worker) + " +" +
               std::to_string(ev.delay_us) + "us";
        break;
      case ChaosKind::kSlow:
      case ChaosKind::kStutter:
        out += " w" + std::to_string(ev.worker) + " @e" +
               std::to_string(ev.epoch) + "+" +
               std::to_string(ev.after_batches) + " +" +
               std::to_string(ev.delay_us) + "us";
        if (ev.period > 1) {
          out += " every " + std::to_string(ev.period);
        }
        break;
      case ChaosKind::kCorrupt:
      case ChaosKind::kPartition:
        out += " every " + std::to_string(ev.every_frames) + " frames";
        break;
    }
  }
  return out;
}

}  // namespace hal::recovery
