#include "sim/partition.h"

#include <unordered_map>
#include <unordered_set>

#include "common/assert.h"
#include "sim/module.h"

namespace hal::sim {

Partition partition_modules(
    const std::vector<Module*>& modules,
    const std::vector<std::pair<const Module*, const Module*>>& links,
    std::uint32_t num_shards) {
  HAL_CHECK(num_shards >= 1, "need at least one shard");
  const std::size_t n = modules.size();

  Partition out;
  out.shards.resize(num_shards);
  if (n == 0) return out;

  std::unordered_map<const Module*, std::size_t> index;
  index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index.emplace(modules[i], i);

  // Dedup links (an endpoint pair may be declared from both sides) and
  // build the adjacency in declaration order, which the DFS below follows.
  std::vector<std::vector<std::size_t>> adj(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(links.size());
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(links.size());
  for (const auto& [a, b] : links) {
    const auto ia = index.find(a);
    const auto ib = index.find(b);
    HAL_CHECK(ia != index.end() && ib != index.end(),
              "link references an unregistered module");
    const std::size_t lo = ia->second < ib->second ? ia->second : ib->second;
    const std::size_t hi = ia->second < ib->second ? ib->second : ia->second;
    if (lo == hi) continue;
    if (!seen.insert((static_cast<std::uint64_t>(lo) << 32) | hi).second) {
      continue;
    }
    edges.emplace_back(lo, hi);
    adj[ia->second].push_back(ib->second);
    adj[ib->second].push_back(ia->second);
  }
  out.total_links = edges.size();

  // Iterative DFS over the link graph, seeded in registration order so
  // unlinked modules (and disconnected components) still appear exactly
  // once, in a deterministic position.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::size_t> stack;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    stack.push_back(seed);
    visited[seed] = true;
    while (!stack.empty()) {
      const std::size_t m = stack.back();
      stack.pop_back();
      order.push_back(m);
      // Push neighbors in reverse so the first-declared link is walked
      // first (stack reverses the order).
      for (auto it = adj[m].rbegin(); it != adj[m].rend(); ++it) {
        if (!visited[*it]) {
          visited[*it] = true;
          stack.push_back(*it);
        }
      }
    }
  }
  HAL_ASSERT(order.size() == n);

  // Contiguous chunks of the DFS order, sizes differing by at most one.
  std::vector<std::size_t> shard_of(n, 0);
  const std::size_t base = n / num_shards;
  const std::size_t extra = n % num_shards;
  std::size_t pos = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const std::size_t take = base + (s < extra ? 1 : 0);
    out.shards[s].reserve(take);
    for (std::size_t k = 0; k < take; ++k, ++pos) {
      out.shards[s].push_back(modules[order[pos]]);
      shard_of[order[pos]] = s;
    }
  }
  HAL_ASSERT(pos == n);

  for (const auto& [lo, hi] : edges) {
    if (shard_of[lo] != shard_of[hi]) ++out.cut_links;
  }
  return out;
}

}  // namespace hal::sim
