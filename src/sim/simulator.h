// The clock driver: steps all registered modules through eval/commit.
//
// Two execution kernels share one register/FIFO substrate:
//
//   threads == 1 — the serial stepper: two plain loops per cycle, exactly
//                  the code every realization has always run. This is the
//                  oracle: all determinism claims are stated against it.
//   threads >= 2 — the parallel stepper (parallel_stepper.h): registered
//                  modules are sharded once (topology-aware via link()
//                  declarations, see partition.h) and persistent workers
//                  run the eval | barrier | commit | barrier cycle. The
//                  two-phase contract makes the result byte-identical to
//                  the serial oracle for any shard assignment.
//
// run_until() batches predicate checks to `predicate_epoch` cycles; the
// batching applies identically to both kernels, so for a fixed config the
// parallel run always matches the serial one cycle-for-cycle. The default
// epoch of 1 preserves the historical check-before-every-step semantics
// bit-exactly.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.h"
#include "obs/metrics.h"
#include "sim/module.h"
#include "sim/parallel_stepper.h"
#include "sim/partition.h"

namespace hal::sim {

struct SimConfig {
  // Shards/threads for the stepping kernel; 1 selects the serial oracle.
  // Clamped to the module count at partition time (an empty shard would
  // still pay barrier crossings).
  std::uint32_t threads = 1;
  // run_until() checks its predicate every `predicate_epoch` cycles
  // instead of every cycle. 1 = historical semantics. Larger epochs trade
  // predicate latency (completion overshoot of up to epoch-1 cycles) for
  // fewer kernel entries — the win is largest for the parallel kernel,
  // where each entry is a worker wakeup.
  std::uint64_t predicate_epoch = 1;
};

class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(SimConfig cfg) { configure(cfg); }

  void configure(const SimConfig& cfg) {
    HAL_CHECK(cfg.threads >= 1, "SimConfig.threads must be >= 1");
    HAL_CHECK(cfg.predicate_epoch >= 1,
              "SimConfig.predicate_epoch must be >= 1");
    config_ = cfg;
    stepper_.reset();
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }

  // Engines know their module population up front; reserving avoids the
  // reallocation churn of thousands of push_backs at construction.
  void reserve(std::size_t n) { modules_.reserve(n); }

  // Non-owning registration; callers (engines) own their modules and must
  // keep them alive for the simulator's lifetime.
  void add(Module& m) {
    modules_.push_back(&m);
    stepper_.reset();
  }

  // Declares that `a` and `b` share a wire (FIFO endpoint, register
  // handoff). Purely a partitioning hint: linked modules are co-sharded
  // when balance allows, keeping their shared state on one thread's cache.
  // Undeclared links cost locality, never correctness.
  void link(const Module& a, const Module& b) {
    links_.emplace_back(&a, &b);
    stepper_.reset();
  }

  // Advance one clock cycle.
  void step() { step_n(1); }

  // Advance `cycles` clock cycles with no intervening predicate checks —
  // the batched entry point both kernels implement natively.
  void step_n(std::uint64_t cycles) {
    if (cycles == 0) return;
    if (config_.threads <= 1 || modules_.size() <= 1) {
      for (std::uint64_t c = 0; c < cycles; ++c) {
        for (Module* m : modules_) m->eval();
        for (Module* m : modules_) m->commit();
        cycle_.store(cycle_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
      }
      return;
    }
    ensure_stepper();
    stepper_->run(cycles);
  }

  // Run until `done()` returns true or `max_cycles` elapse (counted from
  // the call). Returns the number of cycles stepped. The predicate is
  // checked before each epoch of `predicate_epoch` cycles, so a predicate
  // that is already true costs 0 and the default epoch of 1 checks before
  // every step.
  template <typename Pred>
  std::uint64_t run_until(Pred&& done, std::uint64_t max_cycles) {
    const std::uint64_t epoch = config_.predicate_epoch;
    std::uint64_t stepped = 0;
    while (stepped < max_cycles && !done()) {
      const std::uint64_t batch = std::min(epoch, max_cycles - stepped);
      step_n(batch);
      stepped += batch;
    }
    return stepped;
  }

  [[nodiscard]] std::uint64_t cycle() const noexcept {
    return cycle_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t module_count() const noexcept {
    return modules_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  // Shards the parallel kernel would use for the current config (1 for the
  // serial oracle). Partition introspection below is only populated once a
  // threaded step has forced the partition to exist.
  [[nodiscard]] std::uint32_t effective_threads() const noexcept {
    if (config_.threads <= 1 || modules_.size() <= 1) return 1;
    return static_cast<std::uint32_t>(
        std::min<std::size_t>(config_.threads, modules_.size()));
  }
  [[nodiscard]] const ParallelStepper* stepper() const noexcept {
    return stepper_.get();
  }

  // Publishes the clock-domain metrics under `prefix`. Engines layer their
  // per-module counters on top. The simulated-design values (cycles,
  // modules) are deterministic; the execution-descriptive ones (threads,
  // partition shape, barrier stalls) are tagged runtime so the
  // deterministic projection is identical across thread counts.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const {
    // One reused key buffer: metric names share the prefix, so rebuilding
    // `prefix + name` per metric is pure allocation churn on the snapshot
    // path (set_counter only needs a string_view).
    std::string key;
    key.reserve(prefix.size() + 32);
    const auto with = [&](std::string_view suffix) -> const std::string& {
      key.assign(prefix);
      key.append(suffix);
      return key;
    };
    registry.set_counter(with("sim.cycles"), cycle());
    registry.set_counter(with("sim.modules"), modules_.size());
    registry.set_counter(with("sim.threads"), effective_threads(),
                         obs::Stability::kRuntime);
    if (stepper_ == nullptr) return;
    registry.set_counter(with("sim.partition.links"), partition_links_,
                         obs::Stability::kRuntime);
    registry.set_counter(with("sim.partition.cut_links"), partition_cut_links_,
                         obs::Stability::kRuntime);
    for (std::size_t s = 0; s < stepper_->shard_count(); ++s) {
      key.assign(prefix);
      key.append("sim.shard.");
      key.append(std::to_string(s));
      const std::size_t stem = key.size();
      key.append(".modules");
      registry.set_counter(key, stepper_->shard_modules(s),
                           obs::Stability::kRuntime);
      key.resize(stem);
      key.append(".spin_waits");
      registry.set_counter(key, stepper_->shard_spin_waits(s),
                           obs::Stability::kRuntime);
    }
  }

 private:
  void ensure_stepper() {
    if (stepper_ != nullptr) return;
    Partition part = partition_modules(modules_, links_, effective_threads());
    partition_links_ = part.total_links;
    partition_cut_links_ = part.cut_links;
    stepper_ = std::make_unique<ParallelStepper>(std::move(part.shards),
                                                 cycle_);
  }

  std::vector<Module*> modules_;
  std::vector<std::pair<const Module*, const Module*>> links_;
  SimConfig config_;
  // Atomic because drivers/sinks read the clock during a parallel eval
  // phase while the leader shard republishes it between barriers; relaxed
  // ops keep the serial path a plain load/store.
  std::atomic<std::uint64_t> cycle_{0};
  std::unique_ptr<ParallelStepper> stepper_;
  std::size_t partition_links_ = 0;
  std::size_t partition_cut_links_ = 0;
};

}  // namespace hal::sim
