// The clock driver: steps all registered modules through eval/commit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "sim/module.h"

namespace hal::sim {

class Simulator {
 public:
  // Non-owning registration; callers (engines) own their modules and must
  // keep them alive for the simulator's lifetime.
  void add(Module& m) { modules_.push_back(&m); }

  // Advance one clock cycle.
  void step() {
    for (Module* m : modules_) m->eval();
    for (Module* m : modules_) m->commit();
    ++cycle_;
  }

  // Run until `done()` returns true or `max_cycles` elapse (counted from
  // the call). Returns the number of cycles stepped. The predicate is
  // checked before each step, so a predicate that is already true costs 0.
  template <typename Pred>
  std::uint64_t run_until(Pred&& done, std::uint64_t max_cycles) {
    std::uint64_t stepped = 0;
    while (stepped < max_cycles && !done()) {
      step();
      ++stepped;
    }
    return stepped;
  }

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }
  [[nodiscard]] std::size_t module_count() const noexcept {
    return modules_.size();
  }

  // Publishes the clock-domain metrics (cycle count, module count) under
  // `prefix`. Engines layer their per-module counters on top.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const {
    registry.set_counter(prefix + "sim.cycles", cycle_);
    registry.set_counter(prefix + "sim.modules", modules_.size());
  }

 private:
  std::vector<Module*> modules_;
  std::uint64_t cycle_ = 0;
};

}  // namespace hal::sim
