// Thread-parallel two-phase kernel: Graphite-style parallel cycle-level
// simulation with the determinism kept bit-exact.
//
// The serial Simulator::step() walks every module twice per cycle; at
// thousand-module fabrics that single hot loop is the wall-clock
// bottleneck for the paper's open-problem topologies (Fig. 5/6/7). The
// stepper shards the module list across persistent worker threads and runs
//
//   [all shards] eval     — stage actions against committed state
//   ── barrier ──
//   [all shards] commit   — apply staged actions, leader publishes clock+1
//   ── barrier ──
//
// per cycle. Because eval() only observes committed state and commit()
// only applies a module's own staged state (the flip-flop contract in
// module.h), *any* assignment of modules to threads commits exactly the
// serial result: the threaded run is byte-identical to the serial oracle —
// cycle counts, FIFO contents, every deterministic counter. The barriers
// provide the happens-before edges (see barrier.h); nothing else
// synchronizes, so the per-cycle cost is two barrier crossings.
//
// Threading contract inherited by modules (all current modules satisfy it
// by construction):
//   * eval() may read any committed state but writes only its own module's
//     staged/private state, plus staged pushes/pops on FIFOs it is the
//     sole producer/consumer of (the SPSC discipline fifo.h documents).
//   * commit() touches only the module's own state and must not read the
//     simulator clock (the leader republishes it concurrently).
//
// Workers persist across run() calls and park in SpinBackoff between
// them, so stepping one cycle at a time (run_until with predicate_epoch 1)
// costs a wakeup, not a thread spawn.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/barrier.h"

namespace hal::sim {

class Module;

class ParallelStepper {
 public:
  // `shards[0]` runs on the calling thread; one worker thread is spawned
  // per additional shard. `cycle` is the simulator's published clock: it
  // reads the current cycle index during eval and is advanced by the
  // leader once per committed cycle.
  ParallelStepper(std::vector<std::vector<Module*>> shards,
                  std::atomic<std::uint64_t>& cycle);
  ~ParallelStepper();

  ParallelStepper(const ParallelStepper&) = delete;
  ParallelStepper& operator=(const ParallelStepper&) = delete;

  // Runs `cycles` eval/commit cycles; returns once every shard has
  // committed the final one (all module state is then safe to read from
  // the calling thread). Not reentrant.
  void run(std::uint64_t cycles);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_modules(std::size_t s) const {
    return shards_[s].modules.size();
  }
  // Backoff steps shard `s` spent waiting at barriers (runtime stability:
  // a scheduling artifact, not a property of the simulated design).
  [[nodiscard]] std::uint64_t shard_spin_waits(std::size_t s) const {
    return shards_[s].spin_waits.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::vector<Module*> modules;
    std::atomic<std::uint64_t> spin_waits{0};
    // Keep neighboring shards' hot counters off one cache line.
    char padding[64];
  };

  void run_shard(std::size_t shard_idx, std::uint64_t cycles,
                 std::uint64_t base_cycle);
  void worker_main(std::size_t shard_idx);

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t>& cycle_;
  SpinBarrier barrier_;

  // run() publishes the command (cycle count + clock base) with a release
  // bump of go_epoch_; parked workers acquire it and join the barriers.
  std::atomic<std::uint64_t> go_epoch_{0};
  std::uint64_t cycles_to_run_ = 0;
  std::uint64_t base_cycle_ = 0;
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace hal::sim
