// Two-phase cycle simulation primitives.
//
// hal::sim is the substrate that stands in for the paper's FPGAs. Every
// hardware component (DNode, GNode, join core, ...) is a Module driven by a
// shared clock. A simulation cycle has two phases:
//
//   eval()   — every module reads the *committed* state of the world
//              (its own registers, FIFO occupancies as of the cycle start)
//              and stages its actions (register writes, FIFO pushes/pops).
//   commit() — every staged action is applied atomically, advancing to the
//              next clock edge.
//
// Because eval() only ever observes committed state, module evaluation
// order is irrelevant and the simulation is deterministic — the same
// property synchronous RTL gets from edge-triggered flip-flops. This is
// what makes the cycle counts reported by the benches faithful to the
// micro-architecture rather than artifacts of scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace hal::sim {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Phase 1: observe committed state, stage actions.
  virtual void eval() = 0;
  // Phase 2: apply staged actions (default: nothing to commit).
  virtual void commit() {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

// A register whose read value is stable within a cycle. Writes via set()
// become visible after commit() — the flip-flop abstraction.
template <typename T>
class Register {
 public:
  Register() = default;
  explicit Register(T initial) : value_(initial), next_(initial) {}

  [[nodiscard]] const T& get() const noexcept { return value_; }
  void set(T v) noexcept {
    next_ = std::move(v);
    dirty_ = true;
  }
  void commit() noexcept {
    // Most registers are idle on most cycles; keep the clean case a
    // predictable early return.
    if (!dirty_) [[likely]] {
      return;
    }
    value_ = next_;
    dirty_ = false;
  }

 private:
  T value_{};
  T next_{};
  bool dirty_ = false;
};

}  // namespace hal::sim
