// Reusable low-latency barrier for the parallel two-phase kernel.
//
// A cycle of the sharded simulator is two barrier-separated phases
// (eval | commit), so the barrier is crossed twice per simulated cycle and
// its cost is the whole parallelization tax. A centralized sense-reversing
// spin barrier keeps that tax at one contended fetch_add plus a read-only
// spin per thread — the same discipline the cluster workers use
// (SpinBackoff), so an oversubscribed host (fewer cores than shards, or a
// tsan run) degrades to yields/sleeps instead of livelocking.
//
// Memory semantics: every write a thread performed before arrive_and_wait()
// is visible to every thread after it returns (acq_rel on the arrival
// counter, release/acquire on the generation word). That is exactly the
// happens-before edge the two-phase contract needs: all staged pushes are
// visible to the owning FIFO's commit, and all commits are visible to the
// next cycle's evals.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/assert.h"
#include "common/backoff.h"

namespace hal::sim {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t participants)
      : participants_(participants) {
    HAL_CHECK(participants_ >= 1, "barrier needs at least one participant");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // Blocks until all participants have arrived. `spin_waits`, when
  // provided, is incremented once per backoff step spent waiting — the
  // per-shard stall counter the simulator publishes (runtime stability:
  // it depends on scheduling, not on the simulated design).
  void arrive_and_wait(std::atomic<std::uint64_t>* spin_waits = nullptr) {
    const std::uint32_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Last arriver: reset the count for the next use, then release the
      // generation. The release store orders the reset before it, so a
      // fast thread re-entering the next barrier increments from zero.
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      return;
    }
    SpinBackoff backoff;
    while (generation_.load(std::memory_order_acquire) == gen) {
      backoff.pause();
      if (spin_waits != nullptr) {
        spin_waits->fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  [[nodiscard]] std::uint32_t participants() const noexcept {
    return participants_;
  }

 private:
  const std::uint32_t participants_;
  std::atomic<std::uint32_t> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
};

}  // namespace hal::sim
