// Registered single-producer/single-consumer FIFO link between modules.
//
// Models the ready/valid-handshaked pipeline buffers of the hardware design
// (e.g., a DNode's internal buffer, a join core's Fetcher). Occupancy
// checks (`can_push`, `can_pop`) always reflect the state at the start of
// the cycle, exactly like a synchronous FIFO whose `full`/`empty` flags are
// registered. Consequences that mirror real hardware:
//
//   * A capacity-1 FIFO can only sustain one transfer every two cycles
//     (full flag clears a cycle after the pop).
//   * A capacity-2 FIFO (a "skid buffer") sustains one transfer per cycle —
//     this is why DNodes/GNodes use depth-2 buffers (§IV: "DNodes store
//     incoming tuples as long as their internal buffer is not full",
//     one tuple out per clock cycle).
//
// At most one push and one pop may be staged per cycle (SPSC, as in the
// modeled hardware where each link has one driver).
#pragma once

#include <deque>
#include <optional>

#include "common/assert.h"
#include "obs/enabled.h"
#include "sim/module.h"

namespace hal::sim {

template <typename T>
class Fifo final : public Module {
 public:
  Fifo(std::string name, std::size_t capacity)
      : Module(std::move(name)), capacity_(capacity) {
    HAL_CHECK(capacity_ > 0, "fifo capacity must be positive");
  }

  // -- producer interface (eval phase) --
  [[nodiscard]] bool can_push() const noexcept {
    return data_.size() < capacity_;
  }
  void push(T value) {
    HAL_ASSERT_MSG(can_push(), "push on full fifo");
    HAL_ASSERT_MSG(!staged_push_.has_value(), "double push in one cycle");
    staged_push_ = std::move(value);
  }

  // -- consumer interface (eval phase) --
  [[nodiscard]] bool can_pop() const noexcept { return !data_.empty(); }
  [[nodiscard]] const T& front() const {
    HAL_ASSERT_MSG(can_pop(), "front on empty fifo");
    return data_.front();
  }
  T pop() {
    HAL_ASSERT_MSG(can_pop(), "pop on empty fifo");
    HAL_ASSERT_MSG(!staged_pop_, "double pop in one cycle");
    staged_pop_ = true;
    return data_.front();
  }

  // -- observers --
  // Committed content at offset i from the front (0 = next to pop). Used
  // where the modeled hardware exposes a buffer's contents to a scan (the
  // bi-flow outgoing buffers are part of the window memory bank).
  [[nodiscard]] const T& peek(std::size_t i) const {
    HAL_ASSERT(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  // Maximum committed occupancy observed since construction. Deterministic
  // (a function of the cycle-accurate schedule); always 0 with HAL_OBS=0.
  [[nodiscard]] std::size_t high_water() const noexcept {
    return high_water_;
  }

  void eval() override {}

  void commit() override {
    if (staged_pop_) {
      data_.pop_front();
      staged_pop_ = false;
    }
    if (staged_push_.has_value()) {
      data_.push_back(std::move(*staged_push_));
      staged_push_.reset();
      HAL_ASSERT(data_.size() <= capacity_);
      if constexpr (obs::kEnabled) {
        if (data_.size() > high_water_) high_water_ = data_.size();
      }
    }
  }

 private:
  std::size_t capacity_;
  std::deque<T> data_;
  std::optional<T> staged_push_;
  bool staged_pop_ = false;
  std::size_t high_water_ = 0;
};

}  // namespace hal::sim
