#include "sim/parallel_stepper.h"

#include <utility>

#include "common/assert.h"
#include "common/backoff.h"
#include "sim/module.h"

namespace hal::sim {

ParallelStepper::ParallelStepper(std::vector<std::vector<Module*>> shards,
                                 std::atomic<std::uint64_t>& cycle)
    : shards_(shards.size()),
      cycle_(cycle),
      barrier_(static_cast<std::uint32_t>(shards.size())) {
  HAL_CHECK(!shards.empty(), "stepper needs at least one shard");
  for (std::size_t s = 0; s < shards.size(); ++s) {
    shards_[s].modules = std::move(shards[s]);
  }
  workers_.reserve(shards_.size() - 1);
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    workers_.emplace_back([this, s] { worker_main(s); });
  }
}

ParallelStepper::~ParallelStepper() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& w : workers_) w.join();
}

void ParallelStepper::run(std::uint64_t cycles) {
  if (cycles == 0) return;
  const std::uint64_t base = cycle_.load(std::memory_order_relaxed);
  cycles_to_run_ = cycles;
  base_cycle_ = base;
  go_epoch_.fetch_add(1, std::memory_order_release);
  run_shard(0, cycles, base);
  // Leaving the final barrier means every shard committed the final
  // cycle; stragglers may still be observing the barrier release, but
  // their writes are already visible here.
}

void ParallelStepper::run_shard(std::size_t shard_idx, std::uint64_t cycles,
                                std::uint64_t base_cycle) {
  Shard& shard = shards_[shard_idx];
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (Module* m : shard.modules) m->eval();
    barrier_.arrive_and_wait(&shard.spin_waits);
    for (Module* m : shard.modules) m->commit();
    if (shard_idx == 0) {
      // Relaxed is enough: the commit barrier below publishes it before
      // any module's next eval can read the clock.
      cycle_.store(base_cycle + c + 1, std::memory_order_relaxed);
    }
    barrier_.arrive_and_wait(&shard.spin_waits);
  }
}

void ParallelStepper::worker_main(std::size_t shard_idx) {
  std::uint64_t seen = 0;
  for (;;) {
    SpinBackoff backoff;
    std::uint64_t epoch;
    while ((epoch = go_epoch_.load(std::memory_order_acquire)) == seen) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      backoff.pause();
    }
    seen = epoch;
    run_shard(shard_idx, cycles_to_run_, base_cycle_);
  }
}

}  // namespace hal::sim
