// Topology-aware sharding of registered modules for the parallel stepper.
//
// The two-phase contract makes any partition *correct* (eval order within a
// phase is irrelevant), so partitioning is purely a locality/balance
// problem: a FIFO whose producer, consumer and own commit live on one
// thread never bounces its cache lines across cores. Engines declare the
// wiring with Simulator::link(a, b); the partitioner walks that graph
// depth-first from the first registered module (neighbors in registration
// order, so the walk follows construction order through each subtree) and
// cuts the walk into `num_shards` contiguous chunks of near-equal size.
// Depth-first keeps each distribution subtree, its cores and their result
// links adjacent in the order, which is what keeps producer/consumer FIFO
// endpoints co-sharded; the chunk boundaries are the only cut links.
//
// The result is a pure function of (registration order, link set,
// num_shards) — no randomness, no tie-breaking on addresses — so a given
// engine config always yields the same shards and the parallel run's
// schedule is reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hal::sim {

class Module;

struct Partition {
  // Exactly `num_shards` entries; trailing shards may be empty when there
  // are fewer modules than shards. Every registered module appears in
  // exactly one shard.
  std::vector<std::vector<Module*>> shards;
  // Declared links whose endpoints landed on different shards (deduped).
  std::size_t cut_links = 0;
  // Total distinct declared links (deduped), for the cut ratio.
  std::size_t total_links = 0;
};

// `links` entries must reference registered modules (HAL_CHECKed).
[[nodiscard]] Partition partition_modules(
    const std::vector<Module*>& modules,
    const std::vector<std::pair<const Module*, const Module*>>& links,
    std::uint32_t num_shards);

}  // namespace hal::sim
