#include "fqp/topology.h"

#include "common/assert.h"

namespace hal::fqp {

Topology::Topology(std::size_t num_blocks, std::size_t join_window_capacity) {
  HAL_CHECK(num_blocks >= 1, "a topology needs at least one OP-Block");
  blocks_.reserve(num_blocks);
  for (std::size_t i = 0; i < num_blocks; ++i) {
    blocks_.emplace_back("op" + std::to_string(i),
                         static_cast<std::uint32_t>(i),
                         join_window_capacity);
  }
  block_routes_.resize(num_blocks);
}

void Topology::route_stream(const std::string& stream, PortRef dst) {
  HAL_CHECK(dst.block < blocks_.size(), "route to nonexistent block");
  stream_routes_[stream].push_back(dst);
}

void Topology::route_block(std::size_t block, Destination dst) {
  HAL_CHECK(block < blocks_.size(), "route from nonexistent block");
  if (dst.kind == Destination::Kind::kBlock) {
    HAL_CHECK(dst.ref.block < blocks_.size(), "route to nonexistent block");
    // The bridge is feed-forward: data flows toward the collector, so a
    // destination block must sit strictly downstream. This structurally
    // excludes routing cycles.
    HAL_CHECK(dst.ref.block != block, "block cannot feed itself");
  }
  block_routes_[block].push_back(std::move(dst));
}

void Topology::clear_routing() {
  stream_routes_.clear();
  for (auto& routes : block_routes_) routes.clear();
}

void Topology::reset() {
  clear_routing();
  outputs_.clear();
  for (auto& b : blocks_) b.program(Instruction{});
}

void Topology::deliver(const PortRef& dst, const Record& r,
                       std::size_t depth) {
  // Depth bounds the path length through the fabric; with one operator per
  // block a legal route can traverse each block at most once.
  HAL_CHECK(depth <= blocks_.size(),
            "routing loop detected in the programmable bridge");
  std::vector<Record> emitted = blocks_[dst.block].process(r, dst.port);
  for (const Record& e : emitted) {
    for (const Destination& next : block_routes_[dst.block]) {
      if (next.kind == Destination::Kind::kOutput) {
        outputs_[next.output].push_back(e);
      } else {
        deliver(next.ref, e, depth + 1);
      }
    }
  }
}

void Topology::process(const std::string& stream, const Record& r) {
  const auto it = stream_routes_.find(stream);
  if (it == stream_routes_.end()) return;  // unrouted stream: dropped
  for (const PortRef& dst : it->second) deliver(dst, r, 1);
}

const std::vector<Record>& Topology::output(const std::string& name) const {
  static const std::vector<Record> kEmpty;
  const auto it = outputs_.find(name);
  return it == outputs_.end() ? kEmpty : it->second;
}

}  // namespace hal::fqp
