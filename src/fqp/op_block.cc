#include "fqp/op_block.h"

namespace hal::fqp {

namespace {

[[nodiscard]] bool compare(std::uint32_t lhs, stream::CmpOp op,
                           std::uint32_t rhs) noexcept {
  switch (op) {
    case stream::CmpOp::Eq: return lhs == rhs;
    case stream::CmpOp::Ne: return lhs != rhs;
    case stream::CmpOp::Lt: return lhs < rhs;
    case stream::CmpOp::Le: return lhs <= rhs;
    case stream::CmpOp::Gt: return lhs > rhs;
    case stream::CmpOp::Ge: return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool SelectInstruction::matches(const Record& r) const {
  for (const auto& c : conjuncts) {
    if (!compare(r.at(c.field), c.op, c.operand)) return false;
  }
  return true;
}

bool TruthTableInstruction::matches(const Record& r) const {
  // The hardware path: k parallel comparators form the LUT address.
  std::size_t address = 0;
  for (std::size_t i = 0; i < atoms.size(); ++i) {
    SelectInstruction one;
    one.conjuncts = {atoms[i]};
    if (one.matches(r)) address |= std::size_t{1} << i;
  }
  HAL_ASSERT(address < table.size());
  return table[address];
}

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kUnprogrammed: return "unprogrammed";
    case OpKind::kSelect: return "select";
    case OpKind::kProject: return "project";
    case OpKind::kJoin: return "join";
    case OpKind::kTruthTableSelect: return "truth-table-select";
  }
  return "?";
}

void OpBlock::program(Instruction instr) {
  if (const auto* join = std::get_if<JoinInstruction>(&instr)) {
    HAL_CHECK(join->window_size <= join_window_capacity_,
              "join window exceeds this OP-Block's synthesized capacity");
  }
  instr_ = std::move(instr);
  window_left_.clear();
  window_right_.clear();
}

OpKind OpBlock::kind() const noexcept {
  if (std::holds_alternative<SelectInstruction>(instr_)) {
    return OpKind::kSelect;
  }
  if (std::holds_alternative<ProjectInstruction>(instr_)) {
    return OpKind::kProject;
  }
  if (std::holds_alternative<JoinInstruction>(instr_)) return OpKind::kJoin;
  if (std::holds_alternative<TruthTableInstruction>(instr_)) {
    return OpKind::kTruthTableSelect;
  }
  return OpKind::kUnprogrammed;
}

std::vector<Record> OpBlock::process(const Record& r, std::uint8_t port) {
  ++tuples_processed_;
  std::vector<Record> out;
  if (const auto* sel = std::get_if<SelectInstruction>(&instr_)) {
    HAL_CHECK(port == 0, "selection blocks have a single input port");
    if (sel->matches(r)) out.push_back(r);
    return out;
  }
  if (const auto* tt = std::get_if<TruthTableInstruction>(&instr_)) {
    HAL_CHECK(port == 0, "selection blocks have a single input port");
    if (tt->matches(r)) out.push_back(r);
    return out;
  }
  if (const auto* proj = std::get_if<ProjectInstruction>(&instr_)) {
    HAL_CHECK(port == 0, "projection blocks have a single input port");
    Record projected;
    projected.seq = r.seq;
    projected.fields.reserve(proj->keep.size());
    for (const std::size_t f : proj->keep) projected.fields.push_back(r.at(f));
    out.push_back(std::move(projected));
    return out;
  }
  if (const auto* join = std::get_if<JoinInstruction>(&instr_)) {
    HAL_CHECK(port <= 1, "join blocks have two input ports");
    const bool is_left = port == 0;
    auto& own = is_left ? window_left_ : window_right_;
    const auto& other = is_left ? window_right_ : window_left_;
    const std::size_t own_field =
        is_left ? join->left_field : join->right_field;
    const std::size_t other_field =
        is_left ? join->right_field : join->left_field;
    for (const Record& o : other) {
      if (r.at(own_field) == o.at(other_field)) {
        const Record& left = is_left ? r : o;
        const Record& right = is_left ? o : r;
        Record joined;
        joined.seq = std::max(left.seq, right.seq);
        joined.fields = left.fields;
        joined.fields.insert(joined.fields.end(), right.fields.begin(),
                             right.fields.end());
        out.push_back(std::move(joined));
      }
    }
    own.push_back(r);
    if (own.size() > join->window_size) own.pop_front();
    return out;
  }
  HAL_CHECK(false, "tuple routed to an unprogrammed OP-Block");
  return out;
}

}  // namespace hal::fqp
