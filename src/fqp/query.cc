#include "fqp/query.h"

#include "common/assert.h"

namespace hal::fqp {

std::size_t PlanNode::operator_count() const {
  std::size_t count = kind == Kind::kSource ? 0 : 1;
  if (left) count += left->operator_count();
  if (right) count += right->operator_count();
  return count;
}

QueryBuilder QueryBuilder::from(const std::string& stream, Schema schema) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kSource;
  node->stream_name = stream;
  node->schema = std::move(schema);
  QueryBuilder b;
  b.node_ = std::move(node);
  return b;
}

QueryBuilder& QueryBuilder::select(const std::string& field,
                                   stream::CmpOp op, std::uint32_t operand) {
  const auto idx = node_->schema.index_of(field);
  HAL_CHECK(idx.has_value(), "unknown attribute in select: " + field);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kSelect;
  node->schema = node_->schema;
  SelectInstruction instr;
  instr.conjuncts.push_back(SelectCondition{*idx, op, operand});
  // Merge consecutive selections into one conjunction (one OP-Block).
  if (node_->kind == PlanNode::Kind::kSelect) {
    const auto& prev = std::get<SelectInstruction>(node_->instr);
    instr.conjuncts.insert(instr.conjuncts.begin(), prev.conjuncts.begin(),
                           prev.conjuncts.end());
    node->left = node_->left;
  } else {
    node->left = node_;
  }
  node->instr = std::move(instr);
  node_ = std::move(node);
  return *this;
}

QueryBuilder& QueryBuilder::select_where(const BoolExpr& expr) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kTruthSelect;
  node->schema = node_->schema;
  TruthTableInstruction instr = compile_boolean(expr);
  for (const auto& atom : instr.atoms) {
    HAL_CHECK(atom.field < node_->schema.width(),
              "boolean atom references a field outside the schema");
  }
  node->instr = std::move(instr);
  node->left = node_;
  node_ = std::move(node);
  return *this;
}

QueryBuilder& QueryBuilder::project(const std::vector<std::string>& fields) {
  ProjectInstruction instr;
  std::vector<std::string> names;
  for (const auto& f : fields) {
    const auto idx = node_->schema.index_of(f);
    HAL_CHECK(idx.has_value(), "unknown attribute in project: " + f);
    instr.keep.push_back(*idx);
    names.push_back(f);
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kProject;
  node->schema = Schema(node_->schema.name() + "_proj", std::move(names));
  node->instr = std::move(instr);
  node->left = node_;
  node_ = std::move(node);
  return *this;
}

QueryBuilder& QueryBuilder::join(const QueryBuilder& right,
                                 const std::string& left_field,
                                 const std::string& right_field,
                                 std::size_t window) {
  const auto li = node_->schema.index_of(left_field);
  const auto ri = right.node_->schema.index_of(right_field);
  HAL_CHECK(li.has_value(), "unknown left join attribute: " + left_field);
  HAL_CHECK(ri.has_value(), "unknown right join attribute: " + right_field);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->schema = Schema::joined(node_->schema, right.node_->schema);
  node->instr = JoinInstruction{*li, *ri, window};
  node->left = node_;
  node->right = right.node_;
  node_ = std::move(node);
  return *this;
}

Query QueryBuilder::output(const std::string& name) const {
  HAL_CHECK(node_ != nullptr, "empty plan");
  return Query{node_, name};
}

PlanInterpreter::PlanInterpreter(std::vector<Query> queries)
    : queries_(std::move(queries)) {}

const std::vector<Record>& PlanInterpreter::evaluate(const PlanNode* node,
                                                     const std::string& stream,
                                                     const Record& r) {
  // One evaluation per node per arrival: a node shared by several queries
  // (or appearing on both sides of a self-join) must see the arrival —
  // and mutate its join state — exactly once; consumers fan out from the
  // memoized output. std::map references stay valid across the recursive
  // inserts below.
  if (const auto hit = arrival_memo_.find(node); hit != arrival_memo_.end()) {
    return hit->second;
  }
  std::vector<Record> result = [&]() -> std::vector<Record> {
  switch (node->kind) {
    case PlanNode::Kind::kSource:
      return node->stream_name == stream ? std::vector<Record>{r}
                                         : std::vector<Record>{};
    case PlanNode::Kind::kSelect: {
      const auto& instr = std::get<SelectInstruction>(node->instr);
      std::vector<Record> out;
      for (const Record& e : evaluate(node->left.get(), stream, r)) {
        if (instr.matches(e)) out.push_back(e);
      }
      return out;
    }
    case PlanNode::Kind::kTruthSelect: {
      const auto& instr = std::get<TruthTableInstruction>(node->instr);
      std::vector<Record> out;
      for (const Record& e : evaluate(node->left.get(), stream, r)) {
        if (instr.matches(e)) out.push_back(e);
      }
      return out;
    }
    case PlanNode::Kind::kProject: {
      const auto& instr = std::get<ProjectInstruction>(node->instr);
      std::vector<Record> out;
      for (const Record& e : evaluate(node->left.get(), stream, r)) {
        Record projected;
        projected.seq = e.seq;
        for (const std::size_t f : instr.keep) {
          projected.fields.push_back(e.at(f));
        }
        out.push_back(std::move(projected));
      }
      return out;
    }
    case PlanNode::Kind::kJoin: {
      const auto& instr = std::get<JoinInstruction>(node->instr);
      JoinState& state = join_state_[node];
      std::vector<Record> out;
      auto probe_and_store = [&](const Record& e, bool from_left) {
        auto& own = from_left ? state.left : state.right;
        const auto& other = from_left ? state.right : state.left;
        const std::size_t own_field =
            from_left ? instr.left_field : instr.right_field;
        const std::size_t other_field =
            from_left ? instr.right_field : instr.left_field;
        for (const Record& o : other) {
          if (e.at(own_field) == o.at(other_field)) {
            const Record& l = from_left ? e : o;
            const Record& rr = from_left ? o : e;
            Record joined;
            joined.seq = std::max(l.seq, rr.seq);
            joined.fields = l.fields;
            joined.fields.insert(joined.fields.end(), rr.fields.begin(),
                                 rr.fields.end());
            out.push_back(std::move(joined));
          }
        }
        own.push_back(e);
        if (own.size() > instr.window_size) own.pop_front();
      };
      // A single arrival can reach both sides only if both sub-plans
      // consume the same stream; process left first, then right, matching
      // the topology's routing order.
      for (const Record& e : evaluate(node->left.get(), stream, r)) {
        probe_and_store(e, /*from_left=*/true);
      }
      for (const Record& e : evaluate(node->right.get(), stream, r)) {
        probe_and_store(e, /*from_left=*/false);
      }
      return out;
    }
  }
  return {};
  }();
  return arrival_memo_[node] = std::move(result);
}

void PlanInterpreter::process(const std::string& stream, const Record& r) {
  arrival_memo_.clear();
  for (const Query& q : queries_) {
    for (const Record& e : evaluate(q.root.get(), stream, r)) {
      outputs_[q.output_name].push_back(e);
    }
  }
}

const std::vector<Record>& PlanInterpreter::output(
    const std::string& name) const {
  static const std::vector<Record> kEmpty;
  const auto it = outputs_.find(name);
  return it == outputs_.end() ? kEmpty : it->second;
}

}  // namespace hal::fqp
