// Q100-style temporal/spatial instruction scheduling (the
// "Temporal/Spatial Instructions (Q100)" entry of the representational
// model, Fig. 4): "Q100 supports query plans of arbitrary size by
// horizontally partitioning them into fixed sets of pipelined stages of
// SQL operators using the proposed temporal and spatial instructions."
//
// When a workload needs more operators than the fabric has OP-Blocks, the
// plan is partitioned into *rounds*: stateful operators (windowed joins)
// are pinned to dedicated blocks for the workload's lifetime (spatial —
// their windows must survive), while the stateless operators (σ, π) are
// time-multiplexed over the remaining blocks, re-programmed between
// rounds (temporal). The schedule respects dependencies (an operator runs
// no earlier than the round after its producers), and the cost model
// prices the re-programming overhead against the batch period — the
// quantitative form of the flexibility/size trade Q100 makes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fqp/query.h"

namespace hal::fqp {

struct TemporalSchedule {
  bool feasible = false;
  std::string reason;  // when infeasible

  // Operators pinned to dedicated blocks for the whole workload.
  std::vector<const PlanNode*> pinned_joins;
  // Stateless operators per round, dependency-ordered.
  std::vector<std::vector<const PlanNode*>> rounds;

  [[nodiscard]] std::size_t num_rounds() const noexcept {
    return rounds.size();
  }
  // Blocks a single-pass (purely spatial) mapping would need.
  std::size_t operators_total = 0;

  // Throughput multiplier ≥ 1 relative to a fabric large enough for a
  // single pass: each extra round costs one re-programming sweep of the
  // temporal blocks plus a pass over the batch.
  [[nodiscard]] double overhead_factor(double reprogram_us_per_block,
                                       std::size_t temporal_blocks,
                                       double batch_period_us) const {
    if (rounds.size() <= 1) return 1.0;
    const double reprogram =
        static_cast<double>(rounds.size() - 1) *
        static_cast<double>(temporal_blocks) * reprogram_us_per_block;
    const double passes =
        static_cast<double>(rounds.size()) * batch_period_us;
    return (passes + reprogram) / batch_period_us;
  }
};

// Schedules `queries` onto a fabric of `num_blocks` OP-Blocks. Feasible
// iff every pinned join gets a dedicated block and at least one block
// remains for the temporal pool (or no stateless operators exist).
[[nodiscard]] TemporalSchedule temporal_schedule(
    const std::vector<Query>& queries, std::size_t num_blocks);

}  // namespace hal::fqp
