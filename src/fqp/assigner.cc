#include "fqp/assigner.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/assert.h"

namespace hal::fqp {

namespace {

[[nodiscard]] bool block_can_run(const OpBlock& block, const PlanNode& op) {
  if (op.kind == PlanNode::Kind::kJoin) {
    const auto& join = std::get<JoinInstruction>(op.instr);
    return join.window_size <= block.join_window_capacity();
  }
  return true;
}

// Distance of one edge under a (possibly partial) placement. Unplaced
// endpoints contribute 0 (used by the greedy's incremental scoring).
[[nodiscard]] double edge_cost(
    const Topology& topology,
    const std::map<const PlanNode*, std::size_t>& placement,
    const PlanNode* producer, const PlanNode* consumer) {
  const double entry = -1.0;  // distributor position
  const double exit = static_cast<double>(topology.size());  // collector
  double from = entry;
  double to = exit;
  if (producer != nullptr) {
    const auto it = placement.find(producer);
    if (it == placement.end()) return 0.0;
    from = static_cast<double>(topology.block(it->second).position());
  }
  if (consumer != nullptr) {
    const auto it = placement.find(consumer);
    if (it == placement.end()) return 0.0;
    to = static_cast<double>(topology.block(it->second).position());
  }
  return std::abs(to - from);
}

}  // namespace

void Assigner::collect(const std::vector<Query>& queries,
                       std::vector<const PlanNode*>& ops,
                       std::vector<Edge>& edges) {
  std::set<const PlanNode*> seen;
  std::set<std::pair<const PlanNode*, const PlanNode*>> seen_edges;

  auto add_edge = [&](const PlanNode* producer, const PlanNode* consumer) {
    if (seen_edges.insert({producer, consumer}).second) {
      edges.push_back(Edge{producer, consumer});
    }
  };

  // Post-order walk: children placed before parents.
  auto walk = [&](auto&& self, const PlanNode* node) -> void {
    if (node == nullptr || node->kind == PlanNode::Kind::kSource) return;
    self(self, node->left.get());
    self(self, node->right.get());
    if (!seen.insert(node).second) return;  // shared sub-plan: once
    ops.push_back(node);
    auto child_edge = [&](const PlanNode* child) {
      if (child == nullptr) return;
      add_edge(child->kind == PlanNode::Kind::kSource ? nullptr : child,
               node);
    };
    child_edge(node->left.get());
    child_edge(node->right.get());
  };
  for (const Query& q : queries) {
    HAL_CHECK(q.root && q.root->kind != PlanNode::Kind::kSource,
              "a query must contain at least one operator");
    walk(walk, q.root.get());
    add_edge(q.root.get(), nullptr);  // root → collector
  }
}

double Assigner::cost_of(
    const Topology& topology, const std::vector<Query>& queries,
    const std::map<const PlanNode*, std::size_t>& placement) const {
  std::vector<const PlanNode*> ops;
  std::vector<Edge> edges;
  collect(queries, ops, edges);
  double total = 0.0;
  for (const Edge& e : edges) {
    total += edge_cost(topology, placement, e.producer, e.consumer);
  }
  return total;
}

Assignment Assigner::assign(const Topology& topology,
                            const std::vector<Query>& queries,
                            Strategy strategy) const {
  std::vector<const PlanNode*> ops;
  std::vector<Edge> edges;
  collect(queries, ops, edges);

  Assignment result;
  if (ops.size() > topology.size()) {
    result.reason = "not enough OP-Blocks: need " +
                    std::to_string(ops.size()) + ", have " +
                    std::to_string(topology.size());
    return result;
  }
  for (const PlanNode* op : ops) {
    bool any = false;
    for (std::size_t b = 0; b < topology.size(); ++b) {
      if (block_can_run(topology.block(b), *op)) {
        any = true;
        break;
      }
    }
    if (!any) {
      result.reason = "no OP-Block can host an operator (join window "
                      "exceeds every block's capacity)";
      return result;
    }
  }

  // Greedy: place each operator (children first) on the free feasible
  // block minimizing the cost of its already-placeable edges.
  auto greedy = [&]() -> std::map<const PlanNode*, std::size_t> {
    std::map<const PlanNode*, std::size_t> placement;
    std::vector<bool> used(topology.size(), false);
    for (const PlanNode* op : ops) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_block = topology.size();
      for (std::size_t b = 0; b < topology.size(); ++b) {
        if (used[b] || !block_can_run(topology.block(b), *op)) continue;
        placement[op] = b;
        double local = 0.0;
        for (const Edge& e : edges) {
          if (e.producer == op || e.consumer == op) {
            local += edge_cost(topology, placement, e.producer, e.consumer);
          }
        }
        placement.erase(op);
        if (local < best) {
          best = local;
          best_block = b;
        }
      }
      HAL_ASSERT(best_block < topology.size());
      placement[op] = best_block;
      used[best_block] = true;
    }
    return placement;
  };

  result.placement = greedy();
  result.cost = cost_of(topology, queries, result.placement);
  result.feasible = true;

  if (strategy == Strategy::kExhaustive) {
    // Branch-and-bound over all injective placements, seeded with the
    // greedy incumbent. Placement order = dependency order, so partial
    // cost is monotone.
    std::map<const PlanNode*, std::size_t> current;
    std::vector<bool> used(topology.size(), false);
    double best_cost = result.cost;
    auto best_placement = result.placement;

    auto recurse = [&](auto&& self, std::size_t i, double cost_so_far) -> void {
      if (cost_so_far >= best_cost) return;  // bound
      if (i == ops.size()) {
        best_cost = cost_so_far;
        best_placement = current;
        return;
      }
      const PlanNode* op = ops[i];
      for (std::size_t b = 0; b < topology.size(); ++b) {
        if (used[b] || !block_can_run(topology.block(b), *op)) continue;
        current[op] = b;
        used[b] = true;
        double delta = 0.0;
        for (const Edge& e : edges) {
          // Count an edge when its later endpoint is placed (all earlier
          // endpoints already are, by dependency order; collector edges
          // close when the producer is placed).
          const bool closes =
              (e.consumer == op) ||
              (e.producer == op && e.consumer == nullptr);
          if (closes) {
            delta += edge_cost(topology, current, e.producer, e.consumer);
          }
        }
        self(self, i + 1, cost_so_far + delta);
        used[b] = false;
        current.erase(op);
      }
    };
    recurse(recurse, 0, 0.0);
    result.placement = best_placement;
    result.cost = best_cost;
  }
  return result;
}

Assigner::TopologySuggestion Assigner::suggest_topology(
    const std::vector<Query>& queries, std::size_t headroom_blocks) {
  std::vector<const PlanNode*> ops;
  std::vector<Edge> edges;
  collect(queries, ops, edges);
  TopologySuggestion s;
  s.num_blocks = ops.size() + headroom_blocks;
  s.join_window_capacity = 1;  // blocks are useful even for pure selections
  for (const PlanNode* op : ops) {
    if (op->kind == PlanNode::Kind::kJoin) {
      s.join_window_capacity =
          std::max(s.join_window_capacity,
                   std::get<JoinInstruction>(op->instr).window_size);
    }
  }
  return s;
}

void Assigner::apply(Topology& topology, const std::vector<Query>& queries,
                     const Assignment& assignment) const {
  HAL_CHECK(assignment.feasible, "cannot apply an infeasible assignment");
  topology.reset();

  std::vector<const PlanNode*> ops;
  std::vector<Edge> edges;
  collect(queries, ops, edges);

  for (const PlanNode* op : ops) {
    const std::size_t b = assignment.placement.at(op);
    topology.block(b).program(op->instr);
  }

  // Wire children into parents. Port convention: a join's left child
  // feeds port 0 and its right child port 1; unary operators use port 0.
  std::set<std::tuple<std::string, std::size_t, std::uint8_t>> stream_wired;
  std::set<std::tuple<std::size_t, std::size_t, std::uint8_t>> block_wired;
  auto wire_child = [&](const PlanNode* parent, const PlanNode* child,
                        std::uint8_t port) {
    if (child == nullptr) return;
    const std::size_t pb = assignment.placement.at(parent);
    if (child->kind == PlanNode::Kind::kSource) {
      if (stream_wired.insert({child->stream_name, pb, port}).second) {
        topology.route_stream(child->stream_name, PortRef{pb, port});
      }
    } else {
      const std::size_t cb = assignment.placement.at(child);
      if (block_wired.insert({cb, pb, port}).second) {
        topology.route_block(cb, Destination::to_block(pb, port));
      }
    }
  };
  for (const PlanNode* op : ops) {
    wire_child(op, op->left.get(), 0);
    if (op->kind == PlanNode::Kind::kJoin) {
      wire_child(op, op->right.get(), 1);
    }
  }
  for (const Query& q : queries) {
    topology.route_block(assignment.placement.at(q.root.get()),
                         Destination::to_output(q.output_name));
  }
}

}  // namespace hal::fqp
