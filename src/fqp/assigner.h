// Query-to-OP-Block assignment (open problems 1-3 of §VI).
//
// Given a synthesized topology and a set of query plans, choose which
// OP-Block runs which operator. A poor assignment "may increase query
// execution time, leave some blocks un-utilized ... and degrade the
// overall processing performance" (open problem 1); we formalize the cost
// model of open problem 2 as total wire distance on the linear fabric:
//
//   cost = Σ_edges distance(producer, consumer)
//
// where streams enter at the distributor (before position 0), results
// leave at the collector (after the last position), and block-to-block
// hops cost their position distance. Two strategies are provided: a
// locality-greedy heuristic and exhaustive branch-and-bound (the general
// problem contains quadratic assignment, hence NP-hard — the paper's
// complexity question).
//
// Operator nodes shared between queries (same PlanNode) are placed once
// and their output fanned out through the bridge — the multi-query
// sharing of the paper's Rete-like global query plan discussion.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fqp/query.h"
#include "fqp/topology.h"

namespace hal::fqp {

enum class Strategy : std::uint8_t { kGreedy, kExhaustive };

struct Assignment {
  bool feasible = false;
  std::string reason;  // set when infeasible
  double cost = 0.0;
  std::map<const PlanNode*, std::size_t> placement;  // operator → block
};

class Assigner {
 public:
  // Computes an assignment; does not modify the topology.
  [[nodiscard]] Assignment assign(const Topology& topology,
                                  const std::vector<Query>& queries,
                                  Strategy strategy) const;

  // Wire-distance cost of a complete placement.
  [[nodiscard]] double cost_of(
      const Topology& topology, const std::vector<Query>& queries,
      const std::map<const PlanNode*, std::size_t>& placement) const;

  // Programs blocks and bridge routing per the assignment. The topology's
  // previous program/routing is cleared first.
  void apply(Topology& topology, const std::vector<Query>& queries,
             const Assignment& assignment) const;

  // Open problem 3: "What is the best initial topology given a sample
  // query workload?" — sizes a fabric for the workload. `headroom_blocks`
  // reserves spare OP-Blocks for future queries (maximizing utilization
  // vs. leaving room to grow is exactly the trade-off the paper poses).
  struct TopologySuggestion {
    std::size_t num_blocks = 0;
    std::size_t join_window_capacity = 0;
  };
  [[nodiscard]] static TopologySuggestion suggest_topology(
      const std::vector<Query>& queries, std::size_t headroom_blocks = 0);

 private:
  struct Edge {
    const PlanNode* producer;  // nullptr = stream entry (distributor)
    const PlanNode* consumer;  // nullptr = collector
  };

  // Unique operator nodes in dependency order, plus the data edges.
  static void collect(const std::vector<Query>& queries,
                      std::vector<const PlanNode*>& ops,
                      std::vector<Edge>& edges);
};

}  // namespace hal::fqp
