#include "fqp/temporal.h"

#include <algorithm>
#include <map>
#include <set>

namespace hal::fqp {

TemporalSchedule temporal_schedule(const std::vector<Query>& queries,
                                   std::size_t num_blocks) {
  TemporalSchedule schedule;

  // Collect unique operators in dependency (post-) order.
  std::vector<const PlanNode*> ops;
  std::set<const PlanNode*> seen;
  auto walk = [&](auto&& self, const PlanNode* n) -> void {
    if (n == nullptr || n->kind == PlanNode::Kind::kSource) return;
    self(self, n->left.get());
    self(self, n->right.get());
    if (seen.insert(n).second) ops.push_back(n);
  };
  for (const Query& q : queries) walk(walk, q.root.get());
  schedule.operators_total = ops.size();

  for (const PlanNode* op : ops) {
    if (op->kind == PlanNode::Kind::kJoin) {
      schedule.pinned_joins.push_back(op);
    }
  }
  if (schedule.pinned_joins.size() > num_blocks) {
    schedule.reason = "more stateful joins (" +
                      std::to_string(schedule.pinned_joins.size()) +
                      ") than OP-Blocks (" + std::to_string(num_blocks) +
                      "): joins cannot be time-multiplexed without losing "
                      "their windows";
    return schedule;
  }
  const std::size_t temporal_blocks =
      num_blocks - schedule.pinned_joins.size();

  // Stateless operators, dependency-ordered.
  std::vector<const PlanNode*> stateless;
  for (const PlanNode* op : ops) {
    if (op->kind != PlanNode::Kind::kJoin) stateless.push_back(op);
  }
  if (!stateless.empty() && temporal_blocks == 0) {
    schedule.reason = "every block is pinned to a join; no temporal pool "
                      "left for the stateless operators";
    return schedule;
  }

  // Round assignment: an operator runs in the earliest round after all of
  // its stateless producers, subject to the per-round capacity.
  std::map<const PlanNode*, std::size_t> round_of;
  std::vector<std::size_t> load;  // operators per round
  for (const PlanNode* op : stateless) {
    std::size_t earliest = 0;
    for (const PlanNode* child : {op->left.get(), op->right.get()}) {
      if (child == nullptr || child->kind == PlanNode::Kind::kSource ||
          child->kind == PlanNode::Kind::kJoin) {
        continue;  // joins are resident every round
      }
      earliest = std::max(earliest, round_of.at(child) + 1);
    }
    while (earliest < load.size() && load[earliest] >= temporal_blocks) {
      ++earliest;
    }
    if (earliest >= load.size()) load.resize(earliest + 1, 0);
    round_of[op] = earliest;
    ++load[earliest];
  }

  schedule.rounds.assign(std::max<std::size_t>(load.size(), 1), {});
  for (const PlanNode* op : stateless) {
    schedule.rounds[round_of.at(op)].push_back(op);
  }
  if (stateless.empty()) schedule.rounds.assign(1, {});
  schedule.feasible = true;
  return schedule;
}

}  // namespace hal::fqp
