// Ibex-style Boolean selection (§II): "To avoid designing complex
// adaptive circuitry, Ibex proposes precomputation of a truth table for
// Boolean expressions in software first and transfer the truth table into
// hardware during FPGA configuration when a new query is inserted."
//
// An arbitrary Boolean expression over atomic comparisons (field <op>
// constant) is compiled *in software* into a truth table indexed by the
// atoms' outcomes; the "hardware" then needs only k comparators and a
// 2^k-entry lookup — no expression-specific logic. This extends OP-Block
// selection beyond plain conjunctions (OR / NOT become expressible) while
// keeping the block's circuit fixed, exactly the hardware/software
// co-operation pattern the paper classifies under the algorithmic model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fqp/op_block.h"
#include "fqp/record.h"

namespace hal::fqp {

// Expression tree over SelectCondition atoms.
class BoolExpr {
 public:
  [[nodiscard]] static BoolExpr atom(std::size_t field, stream::CmpOp op,
                                     std::uint32_t operand);
  [[nodiscard]] static BoolExpr conjunction(BoolExpr a, BoolExpr b);
  [[nodiscard]] static BoolExpr disjunction(BoolExpr a, BoolExpr b);
  [[nodiscard]] static BoolExpr negation(BoolExpr a);

  // Direct (software) evaluation — the specification the compiled truth
  // table is validated against.
  [[nodiscard]] bool evaluate(const Record& r) const;

  // Evaluation with atom outcomes supplied by an oracle instead of a
  // record; the truth-table compiler uses this to enumerate combinations.
  [[nodiscard]] bool evaluate_forced(
      const std::function<bool(const SelectCondition&)>& oracle) const;

  // Distinct atoms in first-appearance order.
  [[nodiscard]] std::vector<SelectCondition> atoms() const;

 private:
  enum class Kind : std::uint8_t { kAtom, kAnd, kOr, kNot };

  struct Node {
    Kind kind;
    SelectCondition cond;  // kAtom
    std::shared_ptr<const Node> left;
    std::shared_ptr<const Node> right;  // null for kNot
  };

  [[nodiscard]] static bool eval_node(const Node& n, const Record& r);
  [[nodiscard]] static bool eval_node_forced(
      const Node& n,
      const std::function<bool(const SelectCondition&)>& oracle);
  static void collect_atoms(const Node& n,
                            std::vector<SelectCondition>& out);

  std::shared_ptr<const Node> root_;
};

// Software precomputation: enumerates all 2^k atom outcomes and evaluates
// the expression once per combination. Throws if the expression uses more
// than kMaxAtoms distinct atoms (the size of the synthesized LUT).
[[nodiscard]] TruthTableInstruction compile_boolean(const BoolExpr& expr);

}  // namespace hal::fqp
