#include "fqp/boolean_select.h"

#include <algorithm>

#include "common/assert.h"

namespace hal::fqp {

namespace {

[[nodiscard]] bool atom_equal(const SelectCondition& a,
                              const SelectCondition& b) noexcept {
  return a.field == b.field && a.op == b.op && a.operand == b.operand;
}

[[nodiscard]] bool eval_condition(const SelectCondition& c,
                                  const Record& r) {
  SelectInstruction one;
  one.conjuncts = {c};
  return one.matches(r);
}

}  // namespace

BoolExpr BoolExpr::atom(std::size_t field, stream::CmpOp op,
                        std::uint32_t operand) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAtom;
  node->cond = SelectCondition{field, op, operand};
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::conjunction(BoolExpr a, BoolExpr b) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::move(a.root_);
  node->right = std::move(b.root_);
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::disjunction(BoolExpr a, BoolExpr b) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::move(a.root_);
  node->right = std::move(b.root_);
  e.root_ = std::move(node);
  return e;
}

BoolExpr BoolExpr::negation(BoolExpr a) {
  BoolExpr e;
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::move(a.root_);
  e.root_ = std::move(node);
  return e;
}

bool BoolExpr::eval_node(const Node& n, const Record& r) {
  switch (n.kind) {
    case Kind::kAtom: return eval_condition(n.cond, r);
    case Kind::kAnd: return eval_node(*n.left, r) && eval_node(*n.right, r);
    case Kind::kOr: return eval_node(*n.left, r) || eval_node(*n.right, r);
    case Kind::kNot: return !eval_node(*n.left, r);
  }
  return false;
}

bool BoolExpr::evaluate(const Record& r) const {
  HAL_CHECK(root_ != nullptr, "empty boolean expression");
  return eval_node(*root_, r);
}

bool BoolExpr::eval_node_forced(
    const Node& n, const std::function<bool(const SelectCondition&)>& oracle) {
  switch (n.kind) {
    case Kind::kAtom: return oracle(n.cond);
    case Kind::kAnd:
      return eval_node_forced(*n.left, oracle) &&
             eval_node_forced(*n.right, oracle);
    case Kind::kOr:
      return eval_node_forced(*n.left, oracle) ||
             eval_node_forced(*n.right, oracle);
    case Kind::kNot: return !eval_node_forced(*n.left, oracle);
  }
  return false;
}

bool BoolExpr::evaluate_forced(
    const std::function<bool(const SelectCondition&)>& oracle) const {
  HAL_CHECK(root_ != nullptr, "empty boolean expression");
  return eval_node_forced(*root_, oracle);
}

void BoolExpr::collect_atoms(const Node& n,
                             std::vector<SelectCondition>& out) {
  if (n.kind == Kind::kAtom) {
    for (const auto& existing : out) {
      if (atom_equal(existing, n.cond)) return;
    }
    out.push_back(n.cond);
    return;
  }
  if (n.left) collect_atoms(*n.left, out);
  if (n.right) collect_atoms(*n.right, out);
}

std::vector<SelectCondition> BoolExpr::atoms() const {
  HAL_CHECK(root_ != nullptr, "empty boolean expression");
  std::vector<SelectCondition> out;
  collect_atoms(*root_, out);
  return out;
}

TruthTableInstruction compile_boolean(const BoolExpr& expr) {
  TruthTableInstruction out;
  out.atoms = expr.atoms();
  HAL_CHECK(out.atoms.size() <= TruthTableInstruction::kMaxAtoms,
            "expression uses more atoms than the synthesized LUT holds");

  // Enumerate every combination of atom outcomes and record the
  // expression's value. (Combinations of mutually unsatisfiable atoms get
  // table entries too — they are simply unreachable addresses in
  // operation.)
  const std::size_t k = out.atoms.size();
  out.table.assign(std::size_t{1} << k, false);
  for (std::size_t address = 0; address < out.table.size(); ++address) {
    out.table[address] =
        expr.evaluate_forced([&](const SelectCondition& c) -> bool {
          for (std::size_t i = 0; i < out.atoms.size(); ++i) {
            if (atom_equal(out.atoms[i], c)) return (address >> i) & 1u;
          }
          HAL_ASSERT_MSG(false, "atom not collected");
          return false;
        });
  }
  return out;
}

}  // namespace hal::fqp
