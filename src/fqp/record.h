// Multi-attribute records for the FQP layer.
//
// The stream-join case study (hal::hw, hal::sw) uses the paper's 64-bit
// evaluation tuples; FQP queries (Fig. 7: Customer/Product streams with
// Age, Gender, ProductID attributes) need named attributes. A Record is a
// flat vector of 32-bit fields described by a Schema — the hardware
// analogue being the parametrized data segments that let FQP support
// schemas of varying size on a fixed wiring budget (§II).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.h"

namespace hal::fqp {

class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<std::string> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t width() const noexcept { return fields_.size(); }
  [[nodiscard]] const std::vector<std::string>& fields() const noexcept {
    return fields_;
  }

  [[nodiscard]] std::optional<std::size_t> index_of(
      const std::string& field) const {
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i] == field) return i;
    }
    return std::nullopt;
  }

  // Schema of a join result: concatenation, fields prefixed by source.
  [[nodiscard]] static Schema joined(const Schema& left,
                                     const Schema& right) {
    std::vector<std::string> fields;
    for (const auto& f : left.fields()) fields.push_back(left.name() + "." + f);
    for (const auto& f : right.fields()) {
      fields.push_back(right.name() + "." + f);
    }
    return Schema(left.name() + "x" + right.name(), std::move(fields));
  }

 private:
  std::string name_;
  std::vector<std::string> fields_;
};

struct Record {
  std::vector<std::uint32_t> fields;
  std::uint64_t seq = 0;

  Record() = default;
  Record(std::initializer_list<std::uint32_t> f, std::uint64_t s = 0)
      : fields(f), seq(s) {}

  [[nodiscard]] std::uint32_t at(std::size_t i) const {
    HAL_ASSERT(i < fields.size());
    return fields[i];
  }

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace hal::fqp
