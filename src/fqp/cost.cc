#include "fqp/cost.h"

#include <variant>

namespace hal::fqp {

namespace {

// Returns the node's output rate (records emitted per input tuple of the
// workload) and accumulates the cost of every node not yet in `priced`.
// `priced` doubles as the visited set: it stores each node's output rate
// so a later marginal walk can price a consumer of an already-running
// node without re-deriving (or re-charging) the producer.
double walk(const PlanNode* n, const CostParams& p,
            std::map<const PlanNode*, double>& priced, CostEstimate& est) {
  if (n == nullptr) return 0.0;
  if (const auto it = priced.find(n); it != priced.end()) return it->second;
  double rate = 0.0;
  switch (n->kind) {
    case PlanNode::Kind::kSource:
      rate = 1.0;
      break;
    case PlanNode::Kind::kSelect:
    case PlanNode::Kind::kTruthSelect: {
      const double in = walk(n->left.get(), p, priced, est);
      est.ops_per_tuple += in;
      ++est.operators;
      rate = in * p.select_selectivity;
      break;
    }
    case PlanNode::Kind::kProject: {
      const double in = walk(n->left.get(), p, priced, est);
      est.ops_per_tuple += in;
      ++est.operators;
      rate = in;
      break;
    }
    case PlanNode::Kind::kJoin: {
      const double l = walk(n->left.get(), p, priced, est);
      const double r = walk(n->right.get(), p, priced, est);
      const auto& instr = std::get<JoinInstruction>(n->instr);
      // Each arriving record pays one insert plus its expected matches;
      // both sides' windows are resident state.
      est.ops_per_tuple += (l + r) * (1.0 + p.join_hit_rate);
      est.state_records += 2.0 * static_cast<double>(instr.window_size);
      ++est.operators;
      rate = (l + r) * p.join_hit_rate;
      break;
    }
  }
  priced[n] = rate;
  return rate;
}

}  // namespace

CostEstimate estimate_cost(const PlanNode& node, const CostParams& params) {
  std::map<const PlanNode*, double> priced;
  CostEstimate est;
  walk(&node, params, priced, est);
  return est;
}

CostEstimate estimate_marginal_cost(
    const PlanNode& node, std::map<const PlanNode*, double>& already_priced,
    const CostParams& params) {
  CostEstimate est;
  walk(&node, params, already_priced, est);
  return est;
}

}  // namespace hal::fqp
