// Multi-query optimization: Rete-like sharing of common sub-plans (§II:
// "to support multi-query optimization, a global query plan based on a
// Rete-like network is constructed to exploit both inter- and intra-query
// parallelism").
//
// The Assigner already places a *pointer-shared* sub-plan once; this pass
// goes further and detects *structurally equal* sub-plans across
// independently built queries (same operator, same parameters, same
// inputs) and rewrites the queries to share one node — turning a set of
// separate plans into the global plan whose common prefixes execute once
// per tuple on one OP-Block, with the bridge fanning the output out to
// every consumer.
#pragma once

#include <vector>

#include "fqp/query.h"

namespace hal::fqp {

// Structural equality of plans (operator kind + instruction + recursively
// equal children; sources compare by stream name).
[[nodiscard]] bool plans_equal(const PlanNode& a, const PlanNode& b);

struct SharingReport {
  // Operator count before/after sharing (sources excluded).
  std::size_t operators_before = 0;
  std::size_t operators_after = 0;

  [[nodiscard]] std::size_t saved() const noexcept {
    return operators_before - operators_after;
  }
};

// Rewrites `queries` in place so that structurally equal sub-plans are
// represented by a single shared node. Returns how many operators the
// global plan saved.
SharingReport share_common_subplans(std::vector<Query>& queries);

}  // namespace hal::fqp
