// Multi-query optimization: Rete-like sharing of common sub-plans (§II:
// "to support multi-query optimization, a global query plan based on a
// Rete-like network is constructed to exploit both inter- and intra-query
// parallelism").
//
// The Assigner already places a *pointer-shared* sub-plan once; this pass
// goes further and detects *structurally equal* sub-plans across
// independently built queries (same operator, same parameters, same
// inputs) and rewrites the queries to share one node — turning a set of
// separate plans into the global plan whose common prefixes execute once
// per tuple on one OP-Block, with the bridge fanning the output out to
// every consumer.
#pragma once

#include <vector>

#include "fqp/query.h"

namespace hal::fqp {

// Structural equality of plans (operator kind + instruction + recursively
// equal children; sources compare by stream name).
[[nodiscard]] bool plans_equal(const PlanNode& a, const PlanNode& b);

// Incremental hash-consing of plan nodes: canonical() maps a plan tree to
// a DAG in which structurally equal sub-plans are one shared node, reusing
// nodes interned by earlier calls. share_common_subplans() runs one pass
// over a fixed query set; hal::serve keeps a canonicalizer alive across
// live submissions so a hot-added query lands on the running global plan's
// nodes (and therefore on their shared runtime state).
class PlanCanonicalizer {
 public:
  PlanPtr canonical(const PlanPtr& node);

  // Interned nodes, in first-seen order (children before parents).
  [[nodiscard]] const std::vector<PlanPtr>& nodes() const noexcept {
    return interned_;
  }

 private:
  std::vector<PlanPtr> interned_;
};

// Operator nodes (sources excluded) reachable from `queries`, counted
// once per distinct node pointer — the size of the global plan.
[[nodiscard]] std::size_t unique_operator_count(
    const std::vector<Query>& queries);

struct SharingReport {
  // Operator count before/after sharing (sources excluded).
  std::size_t operators_before = 0;
  std::size_t operators_after = 0;

  [[nodiscard]] std::size_t saved() const noexcept {
    return operators_before - operators_after;
  }
};

// Rewrites `queries` in place so that structurally equal sub-plans are
// represented by a single shared node. Returns how many operators the
// global plan saved.
SharingReport share_common_subplans(std::vector<Query>& queries);

}  // namespace hal::fqp
