// FQP topology: a synthesized fabric of OP-Blocks plus the custom blocks
// around them (Fig. 5: Distributor, Programmable Bridge, Result
// Collector).
//
// The fabric is fixed at synthesis time: the number of OP-Blocks, their
// physical positions, and their window memory capacities. Everything else
// is runtime state: which operator each block runs (micro changes) and how
// streams and block outputs are wired to block inputs and external outputs
// (macro changes through the programmable bridge) — the *parametrized
// topology* level of the representational model, which is what lets FQP
// "map new operators and apply them in microseconds" (Fig. 6) instead of
// re-synthesizing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fqp/op_block.h"
#include "fqp/record.h"

namespace hal::fqp {

struct PortRef {
  std::size_t block = 0;
  std::uint8_t port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

// A routing destination of the programmable bridge: another block's input
// port, or a named external output at the result collector.
struct Destination {
  enum class Kind : std::uint8_t { kBlock, kOutput } kind = Kind::kBlock;
  PortRef ref;
  std::string output;

  static Destination to_block(std::size_t block, std::uint8_t port) {
    Destination d;
    d.kind = Kind::kBlock;
    d.ref = PortRef{block, port};
    return d;
  }
  static Destination to_output(std::string name) {
    Destination d;
    d.kind = Kind::kOutput;
    d.output = std::move(name);
    return d;
  }
};

class Topology {
 public:
  // A linear fabric of `num_blocks` OP-Blocks at positions 0..n-1, each
  // synthesized with `join_window_capacity` window memory.
  Topology(std::size_t num_blocks, std::size_t join_window_capacity);

  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }
  [[nodiscard]] OpBlock& block(std::size_t i) { return blocks_.at(i); }
  [[nodiscard]] const OpBlock& block(std::size_t i) const {
    return blocks_.at(i);
  }

  // -- programmable bridge (runtime re-wiring) --
  void route_stream(const std::string& stream, PortRef dst);
  void route_block(std::size_t block, Destination dst);
  void clear_routing();
  // Un-programs every block and clears routing.
  void reset();

  [[nodiscard]] const std::vector<Destination>& routes_of(
      std::size_t block) const {
    return block_routes_.at(block);
  }
  [[nodiscard]] const std::map<std::string, std::vector<PortRef>>&
  stream_routes() const noexcept {
    return stream_routes_;
  }

  // -- execution --
  // Feeds one record from the named external stream; all records reaching
  // named outputs are appended to the collector.
  void process(const std::string& stream, const Record& r);

  [[nodiscard]] const std::vector<Record>& output(
      const std::string& name) const;
  void clear_outputs() { outputs_.clear(); }

  // Utilization statistics (open problem 1: a poor assignment may "leave
  // some blocks un-utilized"): fraction of blocks that processed at least
  // one tuple, and per-block tuple counts.
  [[nodiscard]] double utilization() const {
    std::size_t active = 0;
    for (const auto& b : blocks_) {
      if (b.tuples_processed() > 0) ++active;
    }
    return static_cast<double>(active) / static_cast<double>(blocks_.size());
  }

 private:
  void deliver(const PortRef& dst, const Record& r, std::size_t depth);

  std::vector<OpBlock> blocks_;
  std::map<std::string, std::vector<PortRef>> stream_routes_;
  std::vector<std::vector<Destination>> block_routes_;
  std::map<std::string, std::vector<Record>> outputs_;
};

}  // namespace hal::fqp
