#include "fqp/multi_query.h"

#include <memory>

namespace hal::fqp {

namespace {

// Shallow equality given already-canonicalized children (pointer compare).
[[nodiscard]] bool shallow_equal(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PlanNode::Kind::kSource) {
    return a.stream_name == b.stream_name &&
           a.schema.width() == b.schema.width();
  }
  return a.instr == b.instr && a.left == b.left && a.right == b.right;
}

}  // namespace

PlanPtr PlanCanonicalizer::canonical(const PlanPtr& node) {
  if (node == nullptr) return nullptr;
  const PlanPtr left = canonical(node->left);
  const PlanPtr right = canonical(node->right);

  // Rebuild only if a child was replaced.
  PlanPtr candidate = node;
  if (left != node->left || right != node->right) {
    auto rebuilt = std::make_shared<PlanNode>(*node);
    rebuilt->left = left;
    rebuilt->right = right;
    candidate = rebuilt;
  }
  for (const PlanPtr& existing : interned_) {
    if (shallow_equal(*existing, *candidate)) return existing;
  }
  interned_.push_back(candidate);
  return candidate;
}

bool plans_equal(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PlanNode::Kind::kSource) {
    return a.stream_name == b.stream_name &&
           a.schema.width() == b.schema.width();
  }
  if (!(a.instr == b.instr)) return false;
  const bool left_ok =
      (a.left == nullptr) == (b.left == nullptr) &&
      (a.left == nullptr || plans_equal(*a.left, *b.left));
  const bool right_ok =
      (a.right == nullptr) == (b.right == nullptr) &&
      (a.right == nullptr || plans_equal(*a.right, *b.right));
  return left_ok && right_ok;
}

std::size_t unique_operator_count(const std::vector<Query>& queries) {
  std::vector<const PlanNode*> seen;
  auto count = [&](auto&& self, const PlanNode* n) -> void {
    if (n == nullptr || n->kind == PlanNode::Kind::kSource) return;
    for (const PlanNode* s : seen) {
      if (s == n) return;
    }
    seen.push_back(n);
    self(self, n->left.get());
    self(self, n->right.get());
  };
  for (const Query& q : queries) count(count, q.root.get());
  return seen.size();
}

SharingReport share_common_subplans(std::vector<Query>& queries) {
  // Count distinct nodes, not per-tree totals: on input that already
  // shares nodes (a second pass, or pointer-shared builders) a per-query
  // sum would overcount the shared prefixes and report phantom savings.
  SharingReport report;
  report.operators_before = unique_operator_count(queries);

  PlanCanonicalizer canon;
  for (Query& q : queries) {
    q.root = canon.canonical(q.root);
  }
  report.operators_after = unique_operator_count(queries);
  return report;
}

}  // namespace hal::fqp
