#include "fqp/multi_query.h"

#include <memory>

namespace hal::fqp {

namespace {

// Shallow equality given already-canonicalized children (pointer compare).
[[nodiscard]] bool shallow_equal(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PlanNode::Kind::kSource) {
    return a.stream_name == b.stream_name &&
           a.schema.width() == b.schema.width();
  }
  return a.instr == b.instr && a.left == b.left && a.right == b.right;
}

class Canonicalizer {
 public:
  PlanPtr canonical(const PlanPtr& node) {
    if (node == nullptr) return nullptr;
    const PlanPtr left = canonical(node->left);
    const PlanPtr right = canonical(node->right);

    // Rebuild only if a child was replaced.
    PlanPtr candidate = node;
    if (left != node->left || right != node->right) {
      auto rebuilt = std::make_shared<PlanNode>(*node);
      rebuilt->left = left;
      rebuilt->right = right;
      candidate = rebuilt;
    }
    for (const PlanPtr& existing : canon_) {
      if (shallow_equal(*existing, *candidate)) return existing;
    }
    canon_.push_back(candidate);
    return candidate;
  }

 private:
  std::vector<PlanPtr> canon_;
};

}  // namespace

bool plans_equal(const PlanNode& a, const PlanNode& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == PlanNode::Kind::kSource) {
    return a.stream_name == b.stream_name &&
           a.schema.width() == b.schema.width();
  }
  if (!(a.instr == b.instr)) return false;
  const bool left_ok =
      (a.left == nullptr) == (b.left == nullptr) &&
      (a.left == nullptr || plans_equal(*a.left, *b.left));
  const bool right_ok =
      (a.right == nullptr) == (b.right == nullptr) &&
      (a.right == nullptr || plans_equal(*a.right, *b.right));
  return left_ok && right_ok;
}

SharingReport share_common_subplans(std::vector<Query>& queries) {
  SharingReport report;
  for (const Query& q : queries) {
    report.operators_before += q.root->operator_count();
  }

  Canonicalizer canon;
  for (Query& q : queries) {
    q.root = canon.canonical(q.root);
  }

  // Count unique operators in the rewritten global plan.
  std::vector<const PlanNode*> seen;
  auto count = [&](auto&& self, const PlanNode* n) -> void {
    if (n == nullptr || n->kind == PlanNode::Kind::kSource) return;
    for (const PlanNode* s : seen) {
      if (s == n) return;
    }
    seen.push_back(n);
    self(self, n->left.get());
    self(self, n->right.get());
  };
  for (const Query& q : queries) count(count, q.root.get());
  report.operators_after = seen.size();
  return report;
}

}  // namespace hal::fqp
