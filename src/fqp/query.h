// Declarative query plans for FQP, and a reference interpreter.
//
// The programming-model layer of the landscape (§II): users express
// SQL-like continuous queries; a compiler maps them onto the fabric at
// runtime (the FQP path of Fig. 4, in contrast to Glacier's synthesize-
// per-query path). A QueryPlan is a small operator tree over named
// streams; the builder resolves attribute names against stream schemas.
// PlanInterpreter executes plans directly in software — it is the oracle
// the assigned topology is validated against.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fqp/boolean_select.h"
#include "fqp/op_block.h"
#include "fqp/record.h"

namespace hal::fqp {

struct PlanNode {
  enum class Kind : std::uint8_t {
    kSource,
    kSelect,
    kTruthSelect,  // Ibex-style compiled Boolean selection
    kProject,
    kJoin,
  };

  Kind kind = Kind::kSource;
  Schema schema;  // output schema of this node

  // kSource:
  std::string stream_name;
  // kSelect / kProject / kJoin — instruction resolved against child
  // schema(s):
  Instruction instr;

  std::shared_ptr<const PlanNode> left;
  std::shared_ptr<const PlanNode> right;

  // Number of operator nodes (excludes sources).
  [[nodiscard]] std::size_t operator_count() const;
};

using PlanPtr = std::shared_ptr<const PlanNode>;

struct Query {
  PlanPtr root;
  std::string output_name;
};

// Fluent builder; throws PreconditionError on unknown attribute names.
class QueryBuilder {
 public:
  // Starts from a named input stream with the given schema.
  static QueryBuilder from(const std::string& stream, Schema schema);

  QueryBuilder& select(const std::string& field, stream::CmpOp op,
                       std::uint32_t operand);
  // Arbitrary Boolean selection (OR/NOT supported), compiled to an
  // Ibex-style truth table in software (fqp/boolean_select.h). The
  // expression's atoms reference fields by index into this plan's schema.
  QueryBuilder& select_where(const BoolExpr& expr);
  QueryBuilder& project(const std::vector<std::string>& fields);
  // Windowed equi-join with another sub-plan.
  QueryBuilder& join(const QueryBuilder& right, const std::string& left_field,
                     const std::string& right_field, std::size_t window);

  [[nodiscard]] Query output(const std::string& name) const;
  [[nodiscard]] PlanPtr plan() const noexcept { return node_; }

 private:
  PlanPtr node_;
};

// Reference execution of a set of queries, independent of the topology
// machinery (per-join windows keyed by plan node).
//
// Plans may form a DAG (share_common_subplans rewrites structurally equal
// sub-plans to one shared node): every node is evaluated exactly once per
// arrival and its output fanned out to all consumers, so a shared join
// node probes and stores each arrival once — the Rete semantics the
// sharing pass assumes. Per-query results are therefore identical before
// and after the rewrite.
class PlanInterpreter {
 public:
  explicit PlanInterpreter(std::vector<Query> queries);

  void process(const std::string& stream, const Record& r);

  [[nodiscard]] const std::vector<Record>& output(
      const std::string& name) const;

 private:
  struct JoinState {
    std::deque<Record> left;
    std::deque<Record> right;
  };

  // Pushes `r` (arriving from `stream`) through `node`; returns the
  // records the node emits for this arrival. Memoized per arrival so DAG
  // nodes run once.
  const std::vector<Record>& evaluate(const PlanNode* node,
                                      const std::string& stream,
                                      const Record& r);

  std::vector<Query> queries_;
  std::map<const PlanNode*, JoinState> join_state_;
  std::map<const PlanNode*, std::vector<Record>> arrival_memo_;
  std::map<std::string, std::vector<Record>> outputs_;
};

}  // namespace hal::fqp
