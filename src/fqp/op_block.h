// Online-Programmable Block (OP-Block) — the processing element of the
// Flexible Query Processor (§II, [13][15]).
//
// An OP-Block is synthesized once and from then on programmed at runtime:
// its instruction registers select which SQL operator it executes
// (selection, projection, or windowed equi-join) and with which
// parameters. Re-programming takes effect between tuples — the
// "microseconds, not re-synthesis" path of Fig. 6's flexible pipeline,
// versus hours of synthesis for a static circuit. These are the *micro*
// changes of the parametrized-circuits level of the representational
// model; re-wiring blocks into a different query shape is the
// ProgrammableBridge's job (parametrized topology).
//
// This layer models FQP's programming/assignment problem functionally
// (tuple-in/tuples-out); the cycle-level behavior of a hardware join core
// is the subject of hal::hw.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <variant>
#include <vector>

#include "common/assert.h"
#include "fqp/record.h"
#include "stream/join_spec.h"

namespace hal::fqp {

// Selection: conjunction of comparisons field <op> constant.
struct SelectCondition {
  std::size_t field = 0;
  stream::CmpOp op = stream::CmpOp::Eq;
  std::uint32_t operand = 0;

  friend bool operator==(const SelectCondition&,
                         const SelectCondition&) = default;
};

struct SelectInstruction {
  std::vector<SelectCondition> conjuncts;

  [[nodiscard]] bool matches(const Record& r) const;

  friend bool operator==(const SelectInstruction&,
                         const SelectInstruction&) = default;
};

// Ibex-style compiled Boolean selection: k comparators address a
// 2^k-entry lookup table precomputed in software (see
// fqp/boolean_select.h for the expression language and compiler). This is
// how an OP-Block supports arbitrary Boolean conditions — OR and NOT, not
// just conjunctions — with a fixed circuit.
struct TruthTableInstruction {
  std::vector<SelectCondition> atoms;  // k ≤ kMaxAtoms
  std::vector<bool> table;             // 2^k entries

  static constexpr std::size_t kMaxAtoms = 16;

  [[nodiscard]] bool matches(const Record& r) const;

  friend bool operator==(const TruthTableInstruction&,
                         const TruthTableInstruction&) = default;
};

// Projection: keep the listed fields, in order.
struct ProjectInstruction {
  std::vector<std::size_t> keep;

  friend bool operator==(const ProjectInstruction&,
                         const ProjectInstruction&) = default;
};

// Windowed equi-join over one field per side (count-based windows, the
// case-study semantics). Port 0 carries the left stream, port 1 the right.
struct JoinInstruction {
  std::size_t left_field = 0;
  std::size_t right_field = 0;
  std::size_t window_size = 1024;

  friend bool operator==(const JoinInstruction&,
                         const JoinInstruction&) = default;
};

using Instruction =
    std::variant<std::monostate, SelectInstruction, ProjectInstruction,
                 JoinInstruction, TruthTableInstruction>;

enum class OpKind : std::uint8_t {
  kUnprogrammed,
  kSelect,
  kProject,
  kJoin,
  kTruthTableSelect,
};

[[nodiscard]] const char* to_string(OpKind k) noexcept;

class OpBlock {
 public:
  // `position` is the block's physical location on the fabric; the
  // assigner's routing cost is measured in position distance.
  // `join_window_capacity` is the block's synthesized window memory; a
  // JoinInstruction with a larger window cannot be mapped onto it (the
  // resource constraint of open problem 1).
  OpBlock(std::string name, std::uint32_t position,
          std::size_t join_window_capacity)
      : name_(std::move(name)),
        position_(position),
        join_window_capacity_(join_window_capacity) {}

  // Runtime programming; clears operator state (join windows).
  void program(Instruction instr);

  [[nodiscard]] OpKind kind() const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint32_t position() const noexcept { return position_; }
  [[nodiscard]] std::size_t join_window_capacity() const noexcept {
    return join_window_capacity_;
  }

  // Processes one record arriving on `port` (0 unless kJoin), returning
  // the records the block emits.
  [[nodiscard]] std::vector<Record> process(const Record& r,
                                            std::uint8_t port);

  [[nodiscard]] std::uint64_t tuples_processed() const noexcept {
    return tuples_processed_;
  }

 private:
  std::string name_;
  std::uint32_t position_;
  std::size_t join_window_capacity_;
  Instruction instr_;
  std::deque<Record> window_left_;
  std::deque<Record> window_right_;
  std::uint64_t tuples_processed_ = 0;
};

}  // namespace hal::fqp
