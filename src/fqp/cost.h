// Estimated execution cost of FQP plans, in operator evaluations per
// input tuple ("ops/tuple").
//
// The assigner's cost model (open problem 2) prices *wire distance* on
// the fabric; this one prices *work*, which is what a serving layer must
// budget: how much CPU does admitting one more tenant query cost per
// arriving record? The estimate walks the plan DAG once per node —
// shared nodes (share_common_subplans / hal::serve's live canonicalizer)
// are counted once, so the marginal cost of a query that shares a warm
// prefix is only its private residual operators. hal::serve admission
// control compares these estimates against a fabric capacity and against
// per-tenant quotas (serve/serve_engine.h).
//
// The model is deliberately simple and fully deterministic:
//   * every operator costs 1 evaluation per record reaching it;
//   * selections pass `select_selectivity` of their input on;
//   * a windowed equi-join additionally pays `join_hit_rate` emissions
//     per probing record (the expected indexed-bucket probe: with the
//     KeyBucketIndex the probe touches O(bucket) ≈ O(matches) residents,
//     so expected matches is the right unit, not the window size).
#pragma once

#include <cstddef>
#include <map>

#include "fqp/query.h"

namespace hal::fqp {

struct CostParams {
  double select_selectivity = 0.5;  // fraction a σ / truth-σ passes on
  double join_hit_rate = 4.0;       // expected matches per probing record
};

struct CostEstimate {
  double ops_per_tuple = 0.0;     // Σ operator evaluations per arrival
  double state_records = 0.0;     // Σ resident window slots (both sides)
  std::size_t operators = 0;      // operator nodes priced (shared: once)

  CostEstimate& operator+=(const CostEstimate& other) noexcept {
    ops_per_tuple += other.ops_per_tuple;
    state_records += other.state_records;
    operators += other.operators;
    return *this;
  }
};

// Cost of the sub-plan rooted at `node`, every reachable node counted
// once (DAG-aware).
[[nodiscard]] CostEstimate estimate_cost(const PlanNode& node,
                                         const CostParams& params = {});

// Cost of the sub-plan rooted at `node`, skipping nodes present in
// `already_priced` — the *marginal* cost of installing this plan on a
// fabric that is already running those nodes. Every newly priced node is
// added to `already_priced`.
[[nodiscard]] CostEstimate estimate_marginal_cost(
    const PlanNode& node, std::map<const PlanNode*, double>& already_priced,
    const CostParams& params = {});

}  // namespace hal::fqp
