// Socket transports (AF_INET / AF_UNIX) for hal::net.
//
// Each connection is a reliable, credit-windowed message channel over a
// nonblocking stream socket:
//
//   * Writes are coalesced: try_send() enqueues encoded frames; the I/O
//     loop assembles every eligible frame into one contiguous wire buffer
//     and hands it to write() in as few syscalls as the socket accepts —
//     the software analog of the hardware engines' batched bus words.
//   * Flow control is credit-based and absolute: the receiver grants
//     "data seq <= G" (Hello/Credit messages), the sender refuses to send
//     past G, and every refusal is counted as a credit stall — the
//     ready/valid handshake, stretched across the wire.
//   * Reliability is retransmit-on-reconnect: data frames stay in a
//     retransmit buffer until cumulatively acked; a sequence gap or CRC
//     failure at the receiver severs the link; the dialer redials with
//     exponential backoff and both sides replay unacked frames from the
//     peer's Hello.resume_seq. Duplicates from replay overlap are dropped
//     by sequence, so delivery is exactly-once in-order end to end.
//   * Faults (net/fault.h) are injected where real networks fail — on the
//     wire copy only — so recovery, not the application, absorbs them.
//
// Threading: a dialer connection runs its own I/O thread; a listener runs
// one I/O thread servicing the accept socket and every accepted
// connection (a small poll()-based event loop). All shared state is
// guarded by each connection's mutex; sockets are touched only by the
// servicing thread.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "net/transport.h"

namespace hal::net {

namespace {

[[nodiscard]] bool is_data(MsgType t) noexcept {
  return t == MsgType::kTupleBatch || t == MsgType::kResultBatch ||
         t == MsgType::kWatermark || t == MsgType::kCheckpoint;
}

[[nodiscard]] double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void tune_stream_socket(int fd, bool tcp) {
  set_nonblocking(fd);
  if (tcp) {
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

// --- Address handling ------------------------------------------------------

struct SockAddr {
  union {
    sockaddr base;
    sockaddr_in in;
    sockaddr_un un;
  } addr{};
  socklen_t len = 0;
};

// "ip:port" with a numeric IPv4 ip; port 0 asks for an ephemeral port.
[[nodiscard]] bool parse_tcp_address(const std::string& text, SockAddr& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = text.substr(0, colon);
  const std::string port = text.substr(colon + 1);
  if (host.empty() || port.empty()) return false;
  char* end = nullptr;
  const unsigned long p = std::strtoul(port.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p > 65535) return false;
  out.addr.in.sin_family = AF_INET;
  out.addr.in.sin_port = htons(static_cast<std::uint16_t>(p));
  if (::inet_pton(AF_INET, host.c_str(), &out.addr.in.sin_addr) != 1) {
    return false;
  }
  out.len = sizeof(sockaddr_in);
  return true;
}

// A leading '@' selects the Linux abstract namespace (no filesystem node
// to unlink); otherwise the address is a filesystem path.
[[nodiscard]] bool parse_unix_address(const std::string& text, SockAddr& out) {
  if (text.empty()) return false;
  const bool abstract = text[0] == '@';
  const std::string name = abstract ? text.substr(1) : text;
  if (name.empty() || name.size() >= sizeof(out.addr.un.sun_path) - 1) {
    return false;
  }
  out.addr.un.sun_family = AF_UNIX;
  char* path = out.addr.un.sun_path;
  if (abstract) {
    path[0] = '\0';
    std::memcpy(path + 1, name.data(), name.size());
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                     name.size());
  } else {
    std::memcpy(path, name.data(), name.size());
    path[name.size()] = '\0';
    out.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                     name.size() + 1);
  }
  return true;
}

[[nodiscard]] bool parse_address(TransportKind kind, const std::string& text,
                                 SockAddr& out) {
  return kind == TransportKind::kTcp ? parse_tcp_address(text, out)
                                     : parse_unix_address(text, out);
}

struct WakePipe {
  WakePipe() {
    int fds[2] = {-1, -1};
    HAL_ASSERT(::pipe(fds) == 0);
    read_fd = fds[0];
    write_fd = fds[1];
    set_nonblocking(read_fd);
    set_nonblocking(write_fd);
  }
  ~WakePipe() {
    ::close(read_fd);
    ::close(write_fd);
  }
  void wake() const {
    const char byte = 'w';
    (void)::write(write_fd, &byte, 1);
  }
  void drain() const {
    char buf[64];
    while (::read(read_fd, buf, sizeof(buf)) > 0) {
    }
  }
  int read_fd;
  int write_fd;
};

// --- Connection ------------------------------------------------------------

class SocketConnection final : public Connection {
 public:
  // Dialer: owns an I/O thread that (re)connects to `address`.
  SocketConnection(TransportKind kind, std::string address,
                   const EndpointOptions& opts)
      : kind_(kind),
        opts_(opts),
        fault_(opts.fault),
        dial_address_(std::move(address)),
        dialer_(true),
        wake_(std::make_unique<WakePipe>()) {
    io_thread_ = std::thread([this] { dial_loop(); });
  }

  // Acceptor: serviced by the listener's loop; `wake_fd` pokes that loop.
  SocketConnection(TransportKind kind, const EndpointOptions& opts,
                   int wake_fd)
      : kind_(kind),
        opts_(opts),
        fault_(opts.fault),
        dialer_(false),
        listener_wake_fd_(wake_fd) {}

  ~SocketConnection() override {
    close();
    if (io_thread_.joinable()) io_thread_.join();
    std::scoped_lock lock(mu_);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool try_send(MsgType type, std::span<const std::uint8_t> payload) override {
    {
      std::scoped_lock lock(mu_);
      if (stopping_ || peer_closed_ || gave_up_) {
        ++stats_.send_stalls;
        return false;
      }
      if (is_data(type)) {
        if (fd_ < 0 || !handshake_done_) {
          ++stats_.send_stalls;
          return false;
        }
        if (next_seq_ > credit_limit_) {
          ++stats_.credit_stalls;
          return false;
        }
        const std::uint64_t seq = next_seq_++;
        std::vector<std::uint8_t> wire;
        append_frame(wire, type, seq, payload);
        if (retransmit_.empty()) last_ack_progress_ms_ = now_ms();
        retransmit_.push_back({seq, wire});
        pending_.push_back({seq, std::move(wire), true});
        ++stats_.msgs_sent;
      } else {
        std::vector<std::uint8_t> wire;
        append_frame(wire, type, 0, payload);
        pending_.push_back({0, std::move(wire), false});
      }
    }
    wake_io();
    return true;
  }

  bool try_recv(Frame& out) override {
    bool granted = false;
    {
      std::scoped_lock lock(mu_);
      if (inbox_.empty()) return false;
      out = std::move(inbox_.front());
      inbox_.pop_front();
      ++consumed_;
      ++stats_.msgs_delivered;
      granted = maybe_grant_credit_locked();
    }
    if (granted) wake_io();
    return true;
  }

  [[nodiscard]] bool connected() const override {
    std::scoped_lock lock(mu_);
    return fd_ >= 0 && handshake_done_;
  }

  [[nodiscard]] bool peer_closed() const override {
    std::scoped_lock lock(mu_);
    return (peer_closed_ || gave_up_) && inbox_.empty();
  }

  void close() override {
    {
      std::scoped_lock lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      if (fd_ >= 0 && handshake_done_) {
        std::vector<std::uint8_t> wire;
        append_frame(wire, MsgType::kShutdown, 0, encode(ShutdownMsg{}));
        pending_.push_back({0, std::move(wire), false});
      }
    }
    wake_io();
  }

  [[nodiscard]] NetStats stats() const override {
    std::scoped_lock lock(mu_);
    return stats_;
  }

  [[nodiscard]] std::uint32_t peer_node_id() const {
    std::scoped_lock lock(mu_);
    return peer_node_id_;
  }
  [[nodiscard]] std::uint32_t peer_shard() const {
    std::scoped_lock lock(mu_);
    return peer_shard_;
  }

  // --- Listener-loop interface (acceptor connections) ----------------------

  // Splices a freshly accepted socket (whose Hello already arrived) into
  // this logical connection; `decoder` may hold frames that followed the
  // Hello in the same read.
  void install_socket(int fd, FrameDecoder decoder, const HelloMsg& hello) {
    std::scoped_lock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    if (fd_ >= 0) {
      ::close(fd_);  // stale socket superseded by the reconnect
      ++stats_.reconnects;
    }
    fd_ = fd;
    decoder_ = std::move(decoder);
    pending_.clear();
    out_wire_.clear();
    handshake_done_ = false;
    peer_node_id_ = hello.node_id;
    peer_shard_ = hello.shard;
    queue_hello_locked();
    apply_peer_hello_locked(hello);
    (void)drain_decoder_locked();
  }

  // (fd, wants_write) for the poll set; fd < 0 means nothing to poll.
  [[nodiscard]] std::pair<int, bool> poll_info() {
    std::scoped_lock lock(mu_);
    check_stall_locked();
    assemble_wire_locked();
    return {fd_, !out_wire_.empty()};
  }

  void on_readable() {
    int fd = -1;
    {
      std::scoped_lock lock(mu_);
      fd = fd_;
    }
    if (fd < 0) return;
    std::uint8_t buf[64 * 1024];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        std::scoped_lock lock(mu_);
        if (fd_ != fd) return;  // link was reset while reading
        stats_.bytes_received += static_cast<std::uint64_t>(n);
        decoder_.feed({buf, static_cast<std::size_t>(n)});
        if (!drain_decoder_locked()) return;
        continue;
      }
      if (n == 0) {  // peer hung up
        std::scoped_lock lock(mu_);
        if (fd_ == fd) reset_link_locked();
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      std::scoped_lock lock(mu_);
      if (fd_ == fd) reset_link_locked();
      return;
    }
  }

  void on_writable() {
    int fd = -1;
    std::vector<std::uint8_t> chunk;
    {
      std::scoped_lock lock(mu_);
      assemble_wire_locked();
      if (fd_ < 0 || out_wire_.empty()) return;
      fd = fd_;
      chunk.swap(out_wire_);
    }
    std::size_t off = 0;
    while (off < chunk.size()) {
      const ssize_t n = ::send(fd, chunk.data() + off, chunk.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: keep the tail; hard error: reset below
    }
    std::scoped_lock lock(mu_);
    if (fd_ != fd) return;
    stats_.bytes_sent += off;
    if (off < chunk.size()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Unwritten tail goes back to the front of the wire buffer.
        out_wire_.insert(out_wire_.begin(), chunk.begin() + off, chunk.end());
      } else {
        reset_link_locked();
      }
    }
  }

  [[nodiscard]] bool finished() {
    std::scoped_lock lock(mu_);
    return stopping_ && pending_.empty() && out_wire_.empty();
  }

 private:
  struct PendingFrame {
    std::uint64_t seq;
    std::vector<std::uint8_t> wire;
    bool data;
  };
  struct RetransmitEntry {
    std::uint64_t seq;
    std::vector<std::uint8_t> wire;
  };

  void wake_io() const {
    if (dialer_) {
      wake_->wake();
    } else if (listener_wake_fd_ >= 0) {
      const char byte = 'w';
      (void)::write(listener_wake_fd_, &byte, 1);
    }
  }

  void queue_control_locked(MsgType type, std::vector<std::uint8_t> payload) {
    std::vector<std::uint8_t> wire;
    append_frame(wire, type, 0, payload);
    pending_.push_back({0, std::move(wire), false});
  }

  void queue_hello_locked() {
    HelloMsg hello;
    hello.node_id = opts_.node_id;
    hello.shard = opts_.shard;
    hello.resume_seq = expected_seq_;
    hello.granted_through_seq = consumed_ + opts_.window_frames;
    last_granted_ = hello.granted_through_seq;
    queue_control_locked(MsgType::kHello, encode(hello));
  }

  void apply_peer_hello_locked(const HelloMsg& hello) {
    if (hello.granted_through_seq > credit_limit_) {
      credit_limit_ = hello.granted_through_seq;
    }
    // Everything below resume_seq was delivered before the link died.
    while (!retransmit_.empty() &&
           retransmit_.front().seq < hello.resume_seq) {
      retransmit_.pop_front();
    }
    for (const RetransmitEntry& e : retransmit_) {
      pending_.push_back({e.seq, e.wire, true});
      ++stats_.retransmits;
    }
    last_ack_progress_ms_ = now_ms();  // fresh replay; restart the watchdog
    handshake_done_ = true;
  }

  // Tail-loss watchdog. Gap detection needs a *later* frame to arrive and
  // CRC detection needs corrupted bytes on the wire — a frame that was
  // dropped with nothing behind it produces neither, and both ends would
  // wait forever (e.g. an epoch's final watermark). If everything queued
  // has been written yet data stays unacknowledged past the deadline,
  // force the reconnect path; the Hello exchange replays it.
  void check_stall_locked() {
    if (fd_ < 0 || !handshake_done_ || retransmit_.empty()) return;
    if (!pending_.empty() || !out_wire_.empty()) return;  // still writing
    if (now_ms() - last_ack_progress_ms_ <= opts_.stall_timeout_ms) return;
    ++stats_.stall_resets;
    reset_link_locked();
  }

  [[nodiscard]] bool maybe_grant_credit_locked() {
    const std::uint64_t grant = consumed_ + opts_.window_frames;
    const std::uint64_t step =
        opts_.window_frames > 4
            ? static_cast<std::uint64_t>(opts_.window_frames) / 4
            : 1;
    if (grant >= last_granted_ + step) {
      last_granted_ = grant;
      queue_control_locked(MsgType::kCredit, encode(CreditMsg{grant}));
      return true;
    }
    return false;
  }

  // Returns false when the link was reset (decoder/frames invalidated).
  [[nodiscard]] bool drain_decoder_locked() {
    while (true) {
      Frame frame;
      const DecodeStatus status = decoder_.next(frame);
      if (status == DecodeStatus::kNeedMore) return true;
      if (status != DecodeStatus::kOk) {
        // Corrupted or unframeable byte stream: the connection has lost
        // integrity; reset and recover through replay.
        ++stats_.crc_errors;
        reset_link_locked();
        return false;
      }
      ++stats_.frames_received;
      if (!process_frame_locked(std::move(frame))) return false;
    }
  }

  [[nodiscard]] bool process_frame_locked(Frame&& frame) {
    switch (frame.header.type) {
      case MsgType::kHello: {
        HelloMsg hello;
        if (!decode(frame.payload, hello)) {
          ++stats_.crc_errors;
          reset_link_locked();
          return false;
        }
        peer_node_id_ = hello.node_id;
        peer_shard_ = hello.shard;
        apply_peer_hello_locked(hello);
        return true;
      }
      case MsgType::kCredit: {
        CreditMsg credit;
        if (decode(frame.payload, credit) &&
            credit.granted_through_seq > credit_limit_) {
          credit_limit_ = credit.granted_through_seq;
        }
        return true;
      }
      case MsgType::kAck: {
        AckMsg ack;
        if (decode(frame.payload, ack)) {
          ++stats_.acks_received;
          last_ack_progress_ms_ = now_ms();
          while (!retransmit_.empty() &&
                 retransmit_.front().seq <= ack.cumulative_seq) {
            retransmit_.pop_front();
          }
        }
        return true;
      }
      case MsgType::kShutdown:
        peer_closed_ = true;
        return true;
      case MsgType::kWatermark:
      case MsgType::kTupleBatch:
      case MsgType::kResultBatch:
      case MsgType::kCheckpoint: {
        const std::uint64_t seq = frame.header.seq;
        if (seq < expected_seq_) {
          ++stats_.duplicates_dropped;  // replay overlap
          return true;
        }
        if (seq > expected_seq_) {
          // A frame was lost (injected drop): framing is intact but the
          // data stream is not; force a reconnect-and-replay.
          ++stats_.gap_resets;
          reset_link_locked();
          return false;
        }
        ++expected_seq_;
        const bool barrier = frame.header.type == MsgType::kWatermark;
        inbox_.push_back(std::move(frame));
        const std::uint64_t ack_every =
            opts_.window_frames > 4
                ? static_cast<std::uint64_t>(opts_.window_frames) / 4
                : 1;
        if (barrier || expected_seq_ - 1 - last_acked_ >= ack_every) {
          last_acked_ = expected_seq_ - 1;
          queue_control_locked(MsgType::kAck, encode(AckMsg{last_acked_}));
          ++stats_.acks_sent;
        }
        return true;
      }
    }
    return true;  // unreachable: decoder validated the type
  }

  void reset_link_locked() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    handshake_done_ = false;
    decoder_.reset();
    pending_.clear();  // control frames regenerate; data replays via Hello
    out_wire_.clear();
  }

  // Moves eligible pending frames into the contiguous wire buffer,
  // applying sender-side faults to data frames. One poll cycle then
  // writes the whole buffer: write coalescing.
  void assemble_wire_locked() {
    if (fd_ < 0) return;
    const double now = now_ms();
    if (now < hold_writes_until_ms_) return;
    while (!pending_.empty()) {
      PendingFrame f = std::move(pending_.front());
      pending_.pop_front();
      if (f.data) {
        if (fault_.partition_now()) {
          ++stats_.faults_injected;
          redial_not_before_ms_ =
              now + fault_.plan().partition_seconds * 1e3;
          reset_link_locked();
          return;
        }
        const double delay = fault_.flush_delay_ms();
        switch (fault_.on_data_frame()) {
          case FaultInjector::Action::kDrop:
            ++stats_.faults_injected;
            continue;  // never reaches the wire; replay will deliver it
          case FaultInjector::Action::kCorrupt: {
            ++stats_.faults_injected;
            // Flip one byte of the wire copy; the retransmit buffer keeps
            // the clean original.
            f.wire[f.wire.size() - 1] ^= 0x20;
            break;
          }
          case FaultInjector::Action::kPass:
            break;
        }
        if (delay > 0.0) hold_writes_until_ms_ = now + delay;
      }
      ++stats_.frames_sent;
      out_wire_.insert(out_wire_.end(), f.wire.begin(), f.wire.end());
      if (hold_writes_until_ms_ > now) return;  // delay applies after frame
    }
  }

  // --- Dialer I/O thread ----------------------------------------------------

  [[nodiscard]] int try_connect_once() {
    SockAddr addr;
    if (!parse_address(kind_, dial_address_, addr)) return -1;
    const int domain = kind_ == TransportKind::kTcp ? AF_INET : AF_UNIX;
    const int fd = ::socket(domain, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    tune_stream_socket(fd, kind_ == TransportKind::kTcp);
    if (::connect(fd, &addr.addr.base, addr.len) == 0) return fd;
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, 250) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  void dial_loop() {
    double backoff_ms = opts_.backoff_initial_ms;
    double disconnected_since_ms = now_ms();
    bool ever_connected = false;
    while (true) {
      int fd = -1;
      bool stopping = false;
      {
        std::scoped_lock lock(mu_);
        fd = fd_;
        stopping = stopping_;
        if (stopping && pending_.empty() && out_wire_.empty()) break;
        if (stopping && fd < 0) break;  // nothing left to flush
      }
      if (fd < 0) {
        const double now = now_ms();
        if (now - disconnected_since_ms > opts_.connect_timeout_s * 1e3) {
          std::scoped_lock lock(mu_);
          gave_up_ = true;
          return;
        }
        if (now < redial_not_before_ms_) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        {
          std::scoped_lock lock(mu_);
          ++stats_.connect_attempts;
        }
        const int new_fd = try_connect_once();
        if (new_fd < 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(backoff_ms));
          backoff_ms = std::min(backoff_ms * 2.0, opts_.backoff_max_ms);
          continue;
        }
        std::scoped_lock lock(mu_);
        if (ever_connected) ++stats_.reconnects;
        ever_connected = true;
        backoff_ms = opts_.backoff_initial_ms;
        fd_ = new_fd;
        decoder_.reset();
        pending_.clear();
        out_wire_.clear();
        handshake_done_ = false;
        queue_hello_locked();
        continue;
      }

      bool want_write = false;
      {
        std::scoped_lock lock(mu_);
        check_stall_locked();
        assemble_wire_locked();
        want_write = !out_wire_.empty();
        if (fd_ < 0) {  // stall watchdog or partition fault fired
          disconnected_since_ms = now_ms();
          continue;
        }
      }
      pollfd pfds[2] = {
          {fd, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)), 0},
          {wake_->read_fd, POLLIN, 0},
      };
      (void)::poll(pfds, 2, 5);
      if (pfds[1].revents & POLLIN) wake_->drain();
      if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) on_readable();
      if (pfds[0].revents & POLLOUT) on_writable();
      {
        std::scoped_lock lock(mu_);
        if (fd_ < 0) disconnected_since_ms = now_ms();
      }
    }
    // Final flush attempt for the shutdown frame, then hang up.
    for (int i = 0; i < 10; ++i) {
      on_writable();
      std::scoped_lock lock(mu_);
      if (out_wire_.empty() && pending_.empty()) break;
    }
    std::scoped_lock lock(mu_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  const TransportKind kind_;
  const EndpointOptions opts_;
  FaultInjector fault_;
  const std::string dial_address_;
  const bool dialer_;
  std::unique_ptr<WakePipe> wake_;   // dialer only
  int listener_wake_fd_ = -1;        // acceptor only
  std::thread io_thread_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool handshake_done_ = false;
  bool stopping_ = false;
  bool peer_closed_ = false;
  bool gave_up_ = false;
  std::uint32_t peer_node_id_ = 0;
  std::uint32_t peer_shard_ = 0;

  FrameDecoder decoder_;
  std::deque<PendingFrame> pending_;
  std::vector<std::uint8_t> out_wire_;
  std::deque<RetransmitEntry> retransmit_;
  std::deque<Frame> inbox_;

  std::uint64_t next_seq_ = 1;      // sender: next data seq to assign
  std::uint64_t credit_limit_ = 0;  // sender: may send seq <= this
  std::uint64_t expected_seq_ = 1;  // receiver: next data seq expected
  std::uint64_t consumed_ = 0;      // receiver: frames popped by the app
  std::uint64_t last_granted_ = 0;
  std::uint64_t last_acked_ = 0;

  double hold_writes_until_ms_ = 0.0;
  double redial_not_before_ms_ = 0.0;
  double last_ack_progress_ms_ = 0.0;  // stall-watchdog clock

  NetStats stats_;
};

// --- Listener --------------------------------------------------------------

class SocketListener final : public Listener {
 public:
  SocketListener(TransportKind kind, const std::string& address,
                 const EndpointOptions& opts)
      : kind_(kind), opts_(opts) {
    SockAddr addr;
    HAL_CHECK(parse_address(kind, address, addr),
              "unparseable listen address");
    const int domain = kind == TransportKind::kTcp ? AF_INET : AF_UNIX;
    listen_fd_ = ::socket(domain, SOCK_STREAM, 0);
    HAL_CHECK(listen_fd_ >= 0, "socket() failed");
    if (kind == TransportKind::kTcp) {
      int one = 1;
      (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
    } else if (!address.empty() && address[0] != '@') {
      (void)::unlink(address.c_str());
      unlink_path_ = address;
    }
    HAL_CHECK(::bind(listen_fd_, &addr.addr.base, addr.len) == 0,
              "bind() failed");
    HAL_CHECK(::listen(listen_fd_, 64) == 0, "listen() failed");
    set_nonblocking(listen_fd_);
    resolved_ = resolve_address(address);
    thread_ = std::thread([this] { loop(); });
  }

  ~SocketListener() override {
    stop_.store(true, std::memory_order_release);
    wake_.wake();
    thread_.join();
    ::close(listen_fd_);
    for (const Pending& p : pending_) ::close(p.fd);
    conns_.clear();  // connection destructors close their sockets
    if (!unlink_path_.empty()) (void)::unlink(unlink_path_.c_str());
  }

  Connection* accept(double timeout_s) override {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                      [this] { return !accept_queue_.empty(); })) {
      return nullptr;
    }
    Connection* conn = accept_queue_.front();
    accept_queue_.pop_front();
    return conn;
  }

  [[nodiscard]] std::string address() const override { return resolved_; }

 private:
  struct Pending {
    int fd;
    FrameDecoder decoder;
  };

  [[nodiscard]] std::string resolve_address(const std::string& requested) {
    if (kind_ != TransportKind::kTcp) return requested;
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return requested;
    }
    char ip[INET_ADDRSTRLEN] = {};
    (void)::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
    return std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  }

  void loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      std::vector<pollfd> pfds;
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfds.push_back({wake_.read_fd, POLLIN, 0});
      // The pfds layout is fixed at build time; accept_new_sockets() below
      // grows pending_, so every index past this point must use this
      // snapshot, not pending_.size().
      const std::size_t pending_snapshot = pending_.size();
      for (const Pending& p : pending_) pfds.push_back({p.fd, POLLIN, 0});
      std::vector<SocketConnection*> polled;
      {
        std::scoped_lock lock(mu_);
        for (const auto& conn : conns_) {
          const auto [fd, want_write] = conn->poll_info();
          if (fd < 0) continue;
          pfds.push_back(
              {fd, static_cast<short>(POLLIN | (want_write ? POLLOUT : 0)),
               0});
          polled.push_back(conn.get());
        }
      }
      (void)::poll(pfds.data(), pfds.size(), 5);
      if (pfds[1].revents & POLLIN) wake_.drain();
      if (pfds[0].revents & POLLIN) accept_new_sockets();
      const std::size_t pending_base = 2;
      for (std::size_t i = 0; i < pending_snapshot; ++i) {
        if (pfds[pending_base + i].revents & (POLLIN | POLLHUP | POLLERR)) {
          service_pending(i);
        }
      }
      // Sockets accepted this iteration (beyond the snapshot) get polled
      // next time around; abandoned ones (fd < 0) are dropped here.
      prune_pending();
      const std::size_t conn_base = pending_base + pending_snapshot;
      for (std::size_t i = 0; i < polled.size(); ++i) {
        const short revents = pfds[conn_base + i].revents;
        if (revents & (POLLIN | POLLHUP | POLLERR)) polled[i]->on_readable();
        if (revents & POLLOUT) polled[i]->on_writable();
      }
    }
  }

  void accept_new_sockets() {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      tune_stream_socket(fd, kind_ == TransportKind::kTcp);
      pending_.push_back({fd, FrameDecoder{}});
    }
  }

  // Reads from a not-yet-identified socket until its Hello arrives, then
  // routes it to the matching logical connection (or creates one).
  void service_pending(std::size_t index) {
    Pending& p = pending_[index];
    std::uint8_t buf[16 * 1024];
    while (true) {
      const ssize_t n = ::read(p.fd, buf, sizeof(buf));
      if (n > 0) {
        p.decoder.feed({buf, static_cast<std::size_t>(n)});
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error before identification: abandon the socket.
      ::close(p.fd);
      p.fd = -1;
      return;
    }
    Frame frame;
    const DecodeStatus status = p.decoder.next(frame);
    if (status == DecodeStatus::kNeedMore) return;
    HelloMsg hello;
    if (status != DecodeStatus::kOk || frame.header.type != MsgType::kHello ||
        !decode(frame.payload, hello)) {
      ::close(p.fd);
      p.fd = -1;
      return;
    }
    SocketConnection* conn = nullptr;
    bool fresh = false;
    {
      std::scoped_lock lock(mu_);
      for (const auto& c : conns_) {
        if (c->peer_node_id() == hello.node_id &&
            c->peer_shard() == hello.shard) {
          conn = c.get();
          break;
        }
      }
      if (conn == nullptr) {
        conns_.push_back(std::make_unique<SocketConnection>(
            kind_, opts_, wake_.write_fd));
        conn = conns_.back().get();
        fresh = true;
      }
    }
    conn->install_socket(p.fd, std::move(p.decoder), hello);
    p.fd = -1;
    if (fresh) {
      {
        std::scoped_lock lock(mu_);
        accept_queue_.push_back(conn);
      }
      cv_.notify_all();
    }
  }

  void prune_pending() {
    std::erase_if(pending_, [](const Pending& p) { return p.fd < 0; });
  }

  const TransportKind kind_;
  const EndpointOptions opts_;
  int listen_fd_ = -1;
  std::string resolved_;
  std::string unlink_path_;
  WakePipe wake_;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::vector<Pending> pending_;  // listener-thread-owned

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<SocketConnection>> conns_;
  std::deque<Connection*> accept_queue_;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(TransportKind kind) : kind_(kind) {}

  [[nodiscard]] TransportKind kind() const override { return kind_; }

  std::unique_ptr<Listener> listen(const std::string& address,
                                   const EndpointOptions& opts) override {
    return std::make_unique<SocketListener>(kind_, address, opts);
  }

  std::unique_ptr<Connection> connect(const std::string& address,
                                      const EndpointOptions& opts) override {
    return std::make_unique<SocketConnection>(kind_, address, opts);
  }

 private:
  const TransportKind kind_;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(TransportKind kind) {
  return std::make_unique<SocketTransport>(kind);
}

}  // namespace hal::net
