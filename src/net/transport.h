// hal::net transport layer — one interface, two realizations.
//
// A Transport hands out point-to-point, message-oriented Connections that
// carry the wire codec's frames (net/wire.h) with exactly-once, in-order
// delivery of *data* messages (tuple batches, result batches, watermarks)
// and a credit-based send window that mirrors the hardware ready/valid
// handshake: when the receiver's window is exhausted, try_send refuses and
// the stall is counted, exactly like a full FIFO stalling an upstream
// engine stage.
//
//   kLoopback — in-process rendezvous. Every message still round-trips
//               through the codec (encode → frame → decode), so a loopback
//               run validates the wire format on every send while staying
//               bit-exact with the cluster's raw SPSC path.
//   kTcp/kUnix— real sockets driven by a nonblocking poll loop with
//               coalesced writes, cumulative acks, retransmit-on-reconnect
//               (sequence gaps or CRC failures reset the link; the dialer
//               redials with exponential backoff and the sender replays
//               unacknowledged frames), and deterministic fault injection
//               (net/fault.h).
//
// Delivery contract shared by all transports: data frames are delivered to
// try_recv exactly once, in send order, regardless of injected drops,
// corruption, or partitions — the cluster on top never sees the faults,
// only the stall/retry counters do.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "net/fault.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace hal::net {

enum class TransportKind : std::uint8_t {
  kInProcess,  // the cluster's raw SPSC links — no codec, no sockets
  kLoopback,   // in-process, full codec round-trip
  kUnix,       // AF_UNIX stream sockets ('@name' = abstract namespace)
  kTcp,        // AF_INET stream sockets, "ip:port" ("...:0" = ephemeral)
};

[[nodiscard]] const char* to_string(TransportKind k) noexcept;
// Accepts "in-process", "loopback", "unix", "tcp". False on anything else.
[[nodiscard]] bool parse_transport_kind(const std::string& text,
                                        TransportKind& out) noexcept;

// Connection-level counters, all cumulative. Updated under the
// connection's lock; read via stats() from any thread.
struct NetStats {
  std::uint64_t frames_sent = 0;      // wire frames written (control + data)
  std::uint64_t frames_received = 0;  // wire frames parsed
  std::uint64_t bytes_sent = 0;       // wire bytes incl. headers
  std::uint64_t bytes_received = 0;
  std::uint64_t msgs_sent = 0;        // data messages accepted by try_send
  std::uint64_t msgs_delivered = 0;   // data messages handed to try_recv
  std::uint64_t retransmits = 0;      // data frames replayed after a reset
  std::uint64_t reconnects = 0;       // re-establishments after the first
  std::uint64_t connect_attempts = 0;
  std::uint64_t crc_errors = 0;       // framing/CRC failures forcing a reset
  std::uint64_t gap_resets = 0;       // sequence gaps forcing a reset
  std::uint64_t stall_resets = 0;     // unacked-data watchdog forced a reset
  std::uint64_t duplicates_dropped = 0;  // replay overlap discarded
  std::uint64_t credit_stalls = 0;    // try_send refused: window exhausted
  std::uint64_t send_stalls = 0;      // try_send refused: link not ready
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t faults_injected = 0;  // drops + corruptions + partitions

  void add(const NetStats& o) noexcept;
};

// Folds every counter into `registry` under `prefix` (all kRuntime: wire
// traffic interleaves with thread scheduling).
void collect_metrics(obs::MetricRegistry& registry, const std::string& prefix,
                     const NetStats& stats);

// Options shared by listen() and connect() endpoints.
struct EndpointOptions {
  std::uint32_t node_id = 0;
  std::uint32_t shard = 0;
  // Credit window granted to the peer, in data frames.
  std::size_t window_frames = 64;
  // Dialer: give up after this long without an established connection.
  double connect_timeout_s = 10.0;
  // Dialer: exponential redial backoff bounds.
  double backoff_initial_ms = 0.5;
  double backoff_max_ms = 100.0;
  // Tail-loss watchdog: a lost frame with no traffic behind it causes
  // neither a sequence gap nor a CRC error, so nothing would ever trigger
  // recovery. If fully written data stays unacknowledged this long, the
  // link is reset and the reconnect handshake replays it.
  double stall_timeout_ms = 200.0;
  // Outbound wire-fault injection for this endpoint.
  FaultPlan fault;
};

class Connection {
 public:
  virtual ~Connection() = default;

  // Nonblocking send of one message. Data types (kTupleBatch,
  // kResultBatch, kWatermark) consume send-window credit and are
  // sequenced/retransmittable; control types bypass the window. Returns
  // false — and counts the stall — when the window is exhausted or the
  // link is not ready; the caller retries (backpressure, never loss).
  [[nodiscard]] virtual bool try_send(MsgType type,
                                      std::span<const std::uint8_t> payload) = 0;

  // Nonblocking receive of the next delivered data message.
  [[nodiscard]] virtual bool try_recv(Frame& out) = 0;

  [[nodiscard]] virtual bool connected() const = 0;
  // Peer sent an orderly shutdown (or is known to be permanently gone).
  [[nodiscard]] virtual bool peer_closed() const = 0;
  // Orderly teardown: flush, send kShutdown, stop reconnecting.
  virtual void close() = 0;

  [[nodiscard]] virtual NetStats stats() const = 0;

  // Blocking conveniences (yield-spin; timeout < 0 waits forever).
  // send() gives up early when the peer closed.
  bool send(MsgType type, std::span<const std::uint8_t> payload,
            double timeout_s = -1.0);
  bool recv(Frame& out, double timeout_s = -1.0);

  template <typename Msg>
  bool send_msg(MsgType type, const Msg& m, double timeout_s = -1.0) {
    const std::vector<std::uint8_t> payload = net::encode(m);
    return send(type, payload, timeout_s);
  }
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Waits up to timeout_s for a connection from a *new* logical peer
  // (identified by the Hello's node_id/shard); reconnects of known peers
  // are spliced into their existing Connection internally. The returned
  // pointer is owned by the listener and valid for its lifetime; nullptr
  // on timeout.
  [[nodiscard]] virtual Connection* accept(double timeout_s) = 0;

  // Resolved address (e.g. the actual port after binding ":0").
  [[nodiscard]] virtual std::string address() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const = 0;
  [[nodiscard]] virtual std::unique_ptr<Listener> listen(
      const std::string& address, const EndpointOptions& opts) = 0;
  [[nodiscard]] virtual std::unique_ptr<Connection> connect(
      const std::string& address, const EndpointOptions& opts) = 0;
};

// kLoopback, kUnix or kTcp (kInProcess has no Transport — it is the
// cluster's native SPSC path). Loopback endpoints rendezvous through the
// returned instance, so dial and listen on the same Transport object.
[[nodiscard]] std::unique_ptr<Transport> make_transport(TransportKind kind);

}  // namespace hal::net
