// In-process loopback transport: the codec-faithful twin of the cluster's
// raw SPSC links. Every try_send encodes a full wire frame and the
// receiving side decodes it through FrameDecoder, so a loopback run
// exercises byte-for-byte the same serialization path a socket run does —
// minus the socket. Delivery is trivially reliable and in-order; the
// credit window is still enforced so backpressure behavior (and its
// stall accounting) matches the socket transports.
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

#include "common/assert.h"
#include "net/transport.h"

namespace hal::net {

namespace {

[[nodiscard]] bool is_data(MsgType t) noexcept {
  return t == MsgType::kTupleBatch || t == MsgType::kResultBatch ||
         t == MsgType::kWatermark || t == MsgType::kCheckpoint;
}

// One direction of a loopback connection. The sender encodes into the
// pipe; the receiver decodes out of it. `consumed` drives the credit
// window: the sender may hold at most `window` undelivered data frames.
struct LoopbackPipe {
  explicit LoopbackPipe(std::size_t window) : window(window) {}

  std::mutex mu;
  std::deque<Frame> frames;
  const std::size_t window;
  std::uint64_t next_seq = 1;   // sender-assigned data sequence
  std::uint64_t consumed = 0;   // data frames popped by the receiver
  bool closed = false;
};

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<LoopbackPipe> tx,
                     std::shared_ptr<LoopbackPipe> rx)
      : tx_(std::move(tx)), rx_(std::move(rx)) {}

  ~LoopbackConnection() override { close(); }

  bool try_send(MsgType type, std::span<const std::uint8_t> payload) override {
    std::scoped_lock lock(tx_->mu, stats_mu_);
    if (tx_->closed) {
      ++stats_.send_stalls;
      return false;
    }
    std::uint64_t seq = 0;
    if (is_data(type)) {
      if (tx_->next_seq > tx_->consumed + tx_->window) {
        ++stats_.credit_stalls;
        return false;
      }
      seq = tx_->next_seq++;
    }
    // Full codec round trip: encode the frame, then decode it on the spot
    // into the peer's inbox. A loopback message that survives is exactly
    // the byte stream a socket peer would have received.
    std::vector<std::uint8_t> wire;
    append_frame(wire, type, seq, payload);
    FrameDecoder decoder;
    decoder.feed(wire);
    Frame frame;
    const DecodeStatus status = decoder.next(frame);
    HAL_ASSERT_MSG(status == DecodeStatus::kOk,
                   "loopback codec round trip failed");
    ++stats_.frames_sent;
    stats_.bytes_sent += wire.size();
    if (is_data(type)) ++stats_.msgs_sent;
    tx_->frames.push_back(std::move(frame));
    return true;
  }

  bool try_recv(Frame& out) override {
    std::scoped_lock lock(rx_->mu, stats_mu_);
    while (!rx_->frames.empty()) {
      Frame frame = std::move(rx_->frames.front());
      rx_->frames.pop_front();
      ++stats_.frames_received;
      stats_.bytes_received += kHeaderSize + frame.payload.size();
      if (frame.header.type == MsgType::kShutdown) {
        rx_->closed = true;
        continue;
      }
      if (is_data(frame.header.type)) {
        ++rx_->consumed;
        ++stats_.msgs_delivered;
        out = std::move(frame);
        return true;
      }
      // Control frames (hello/credit/ack) are transport-internal; the
      // loopback needs none of them.
    }
    return false;
  }

  [[nodiscard]] bool connected() const override {
    std::scoped_lock lock(tx_->mu);
    return !tx_->closed;
  }

  [[nodiscard]] bool peer_closed() const override {
    std::scoped_lock lock(rx_->mu);
    return rx_->closed && rx_->frames.empty();
  }

  void close() override {
    {
      std::scoped_lock lock(tx_->mu);
      if (!tx_->closed) {
        std::vector<std::uint8_t> wire;
        Frame frame;
        frame.header.type = MsgType::kShutdown;
        frame.payload = encode(ShutdownMsg{});
        tx_->frames.push_back(std::move(frame));
        tx_->closed = true;
      }
    }
  }

  [[nodiscard]] NetStats stats() const override {
    std::scoped_lock lock(stats_mu_);
    return stats_;
  }

 private:
  std::shared_ptr<LoopbackPipe> tx_;
  std::shared_ptr<LoopbackPipe> rx_;
  mutable std::mutex stats_mu_;
  NetStats stats_;
};

class LoopbackTransport;

class LoopbackListener final : public Listener {
 public:
  LoopbackListener(LoopbackTransport* hub, std::string address)
      : hub_(hub), address_(std::move(address)) {}
  ~LoopbackListener() override;

  Connection* accept(double timeout_s) override;
  [[nodiscard]] std::string address() const override { return address_; }

  void enqueue(std::unique_ptr<Connection> conn) {
    {
      std::scoped_lock lock(mu_);
      pending_.push_back(std::move(conn));
    }
    cv_.notify_one();
  }

 private:
  LoopbackTransport* hub_;
  const std::string address_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Connection>> pending_;
  std::vector<std::unique_ptr<Connection>> accepted_;
};

// The rendezvous hub: connect() pairs two pipe ends and hands the far end
// to the listener registered under the address.
class LoopbackTransport final : public Transport {
 public:
  [[nodiscard]] TransportKind kind() const override {
    return TransportKind::kLoopback;
  }

  std::unique_ptr<Listener> listen(const std::string& address,
                                   const EndpointOptions&) override {
    std::scoped_lock lock(mu_);
    HAL_CHECK(!listeners_.contains(address),
              "loopback address already has a listener");
    auto listener = std::make_unique<LoopbackListener>(this, address);
    listeners_[address] = listener.get();
    return listener;
  }

  std::unique_ptr<Connection> connect(const std::string& address,
                                      const EndpointOptions& opts) override {
    LoopbackListener* listener = nullptr;
    {
      std::scoped_lock lock(mu_);
      const auto it = listeners_.find(address);
      HAL_CHECK(it != listeners_.end(),
                "loopback connect to an address nobody listens on");
      listener = it->second;
    }
    auto a_to_b = std::make_shared<LoopbackPipe>(opts.window_frames);
    auto b_to_a = std::make_shared<LoopbackPipe>(opts.window_frames);
    auto dialer = std::make_unique<LoopbackConnection>(a_to_b, b_to_a);
    listener->enqueue(
        std::make_unique<LoopbackConnection>(b_to_a, a_to_b));
    return dialer;
  }

  void unregister(const std::string& address) {
    std::scoped_lock lock(mu_);
    listeners_.erase(address);
  }

 private:
  std::mutex mu_;
  std::map<std::string, LoopbackListener*> listeners_;
};

LoopbackListener::~LoopbackListener() { hub_->unregister(address_); }

Connection* LoopbackListener::accept(double timeout_s) {
  std::unique_lock lock(mu_);
  if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                    [this] { return !pending_.empty(); })) {
    return nullptr;
  }
  accepted_.push_back(std::move(pending_.front()));
  pending_.pop_front();
  return accepted_.back().get();
}

}  // namespace

// Defined in socket_transport.cc.
std::unique_ptr<Transport> make_socket_transport(TransportKind kind);

std::unique_ptr<Transport> make_transport(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInProcess:
      HAL_CHECK(false,
                "kInProcess is the cluster's native SPSC path, not a "
                "net::Transport");
      return nullptr;
    case TransportKind::kLoopback:
      return std::make_unique<LoopbackTransport>();
    case TransportKind::kUnix:
    case TransportKind::kTcp:
      return make_socket_transport(kind);
  }
  return nullptr;
}

}  // namespace hal::net
