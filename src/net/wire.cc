#include "net/wire.h"

#include <array>

#include "common/assert.h"

namespace hal::net {

namespace {

// --- Little-endian primitives ---------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked sequential reader: every accessor refuses to read past
// the span's end, which is what makes decode() total on arbitrary bytes.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool read_u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool read_u16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>(data_[pos_]) |
        static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool read_u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// --- Tuple wire layout -----------------------------------------------------

// 17 bytes per tuple: key u32 | value u32 | seq u64 | origin u8. seq and
// origin are simulator metadata (tuple.h), but the distributed runtime
// ships them so the merger's window filter and ordering contract work
// across the process boundary exactly as they do in-process.
constexpr std::size_t kTupleWireSize = 17;

void put_tuple(std::vector<std::uint8_t>& out, const stream::Tuple& t) {
  put_u32(out, t.key);
  put_u32(out, t.value);
  put_u64(out, t.seq);
  put_u8(out, t.origin == stream::StreamId::R ? 0 : 1);
}

[[nodiscard]] bool read_tuple(Reader& r, stream::Tuple& t) {
  std::uint8_t origin = 0;
  if (!r.read_u32(t.key) || !r.read_u32(t.value) || !r.read_u64(t.seq) ||
      !r.read_u8(origin)) {
    return false;
  }
  if (origin > 1) return false;
  t.origin = origin == 0 ? stream::StreamId::R : stream::StreamId::S;
  return true;
}

constexpr std::uint32_t kFlagEndOfEpoch = 1u << 0;
constexpr std::uint32_t kFlagDied = 1u << 1;

// --- CRC32C table ----------------------------------------------------------

constexpr std::uint32_t kCrcPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrcPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFFu];
  }
  return ~crc;
}

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kHello: return "hello";
    case MsgType::kCredit: return "credit";
    case MsgType::kAck: return "ack";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kWatermark: return "watermark";
    case MsgType::kTupleBatch: return "tuple-batch";
    case MsgType::kResultBatch: return "result-batch";
    case MsgType::kCheckpoint: return "checkpoint";
  }
  return "?";
}

const char* to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kBadCrc: return "bad-crc";
    case DecodeStatus::kMalformed: return "malformed";
  }
  return "?";
}

void append_frame(std::vector<std::uint8_t>& wire, MsgType type,
                  std::uint64_t seq, std::span<const std::uint8_t> payload,
                  std::uint16_t channel) {
  HAL_CHECK(payload.size() <= kMaxPayload, "frame payload exceeds kMaxPayload");
  wire.reserve(wire.size() + kHeaderSize + payload.size());
  wire.insert(wire.end(), std::begin(kMagic), std::end(kMagic));
  put_u8(wire, kProtocolVersion);
  put_u8(wire, static_cast<std::uint8_t>(type));
  put_u16(wire, channel);
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  put_u32(wire, crc32c(payload));
  put_u64(wire, seq);
  wire.insert(wire.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't grow its receive buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (error_ != DecodeStatus::kOk) return error_;
  if (buffered() < kHeaderSize) return DecodeStatus::kNeedMore;

  const std::uint8_t* h = buf_.data() + pos_;
  for (std::size_t i = 0; i < 4; ++i) {
    if (h[i] != kMagic[i]) return error_ = DecodeStatus::kBadMagic;
  }
  if (h[4] != kProtocolVersion) return error_ = DecodeStatus::kBadVersion;
  if (!valid_msg_type(h[5])) return error_ = DecodeStatus::kBadType;

  Reader r(std::span<const std::uint8_t>(h + 6, kHeaderSize - 6));
  FrameHeader header;
  header.version = h[4];
  header.type = static_cast<MsgType>(h[5]);
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  const bool ok = r.read_u16(header.channel) && r.read_u32(len) &&
                  r.read_u32(crc) && r.read_u64(header.seq);
  HAL_ASSERT(ok);  // header span is exactly kHeaderSize - 6 bytes
  if (len > kMaxPayload) return error_ = DecodeStatus::kOversized;
  if (buffered() < kHeaderSize + len) return DecodeStatus::kNeedMore;

  const std::span<const std::uint8_t> payload(h + kHeaderSize, len);
  if (crc32c(payload) != crc) return error_ = DecodeStatus::kBadCrc;

  header.payload_len = len;
  header.payload_crc = crc;
  out.header = header;
  out.payload.assign(payload.begin(), payload.end());
  pos_ += kHeaderSize + len;
  compact();
  return DecodeStatus::kOk;
}

void FrameDecoder::reset() {
  buf_.clear();
  pos_ = 0;
  error_ = DecodeStatus::kOk;
}

// --- Message codecs --------------------------------------------------------

std::vector<std::uint8_t> encode(const HelloMsg& m) {
  std::vector<std::uint8_t> out;
  put_u32(out, m.node_id);
  put_u32(out, m.shard);
  put_u64(out, m.resume_seq);
  put_u64(out, m.granted_through_seq);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, HelloMsg& m) {
  Reader r(payload);
  return r.read_u32(m.node_id) && r.read_u32(m.shard) &&
         r.read_u64(m.resume_seq) && r.read_u64(m.granted_through_seq) &&
         r.done();
}

std::vector<std::uint8_t> encode(const CreditMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.granted_through_seq);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, CreditMsg& m) {
  Reader r(payload);
  return r.read_u64(m.granted_through_seq) && r.done();
}

std::vector<std::uint8_t> encode(const AckMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.cumulative_seq);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, AckMsg& m) {
  Reader r(payload);
  return r.read_u64(m.cumulative_seq) && r.done();
}

std::vector<std::uint8_t> encode(const ShutdownMsg& m) {
  std::vector<std::uint8_t> out;
  put_u32(out, m.reason);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, ShutdownMsg& m) {
  Reader r(payload);
  return r.read_u32(m.reason) && r.done();
}

std::vector<std::uint8_t> encode(const WatermarkMsg& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.epoch);
  put_u64(out, m.r_count);
  put_u64(out, m.s_count);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, WatermarkMsg& m) {
  Reader r(payload);
  return r.read_u64(m.epoch) && r.read_u64(m.r_count) &&
         r.read_u64(m.s_count) && r.done();
}

std::vector<std::uint8_t> encode(const TupleBatchMsg& m) {
  std::vector<std::uint8_t> out;
  out.reserve(24 + m.tuples.size() * kTupleWireSize);
  put_u64(out, m.epoch);
  put_u64(out, m.link_seq);
  put_u32(out, m.end_of_epoch ? kFlagEndOfEpoch : 0);
  put_u32(out, static_cast<std::uint32_t>(m.tuples.size()));
  for (const stream::Tuple& t : m.tuples) put_tuple(out, t);
  return out;
}

bool decode(std::span<const std::uint8_t> payload, TupleBatchMsg& m) {
  Reader r(payload);
  std::uint32_t flags = 0;
  std::uint32_t count = 0;
  if (!r.read_u64(m.epoch) || !r.read_u64(m.link_seq) || !r.read_u32(flags) ||
      !r.read_u32(count)) {
    return false;
  }
  if ((flags & ~kFlagEndOfEpoch) != 0) return false;
  m.end_of_epoch = (flags & kFlagEndOfEpoch) != 0;
  // Count must match the remaining bytes exactly; checking before the
  // reserve keeps a corrupt count from over-allocating.
  if (r.remaining() != static_cast<std::size_t>(count) * kTupleWireSize) {
    return false;
  }
  m.tuples.clear();
  m.tuples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    stream::Tuple t;
    if (!read_tuple(r, t)) return false;
    m.tuples.push_back(t);
  }
  return r.done();
}

std::vector<std::uint8_t> encode(const ResultBatchMsg& m) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + m.results.size() * 2 * kTupleWireSize);
  put_u64(out, m.epoch);
  std::uint32_t flags = 0;
  if (m.end_of_epoch) flags |= kFlagEndOfEpoch;
  if (m.died) flags |= kFlagDied;
  put_u32(out, flags);
  put_u32(out, static_cast<std::uint32_t>(m.results.size()));
  for (const stream::ResultTuple& rt : m.results) {
    put_tuple(out, rt.r);
    put_tuple(out, rt.s);
  }
  return out;
}

bool decode(std::span<const std::uint8_t> payload, ResultBatchMsg& m) {
  Reader r(payload);
  std::uint32_t flags = 0;
  std::uint32_t count = 0;
  if (!r.read_u64(m.epoch) || !r.read_u32(flags) || !r.read_u32(count)) {
    return false;
  }
  if ((flags & ~(kFlagEndOfEpoch | kFlagDied)) != 0) return false;
  m.end_of_epoch = (flags & kFlagEndOfEpoch) != 0;
  m.died = (flags & kFlagDied) != 0;
  if (r.remaining() != static_cast<std::size_t>(count) * 2 * kTupleWireSize) {
    return false;
  }
  m.results.clear();
  m.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    stream::ResultTuple rt;
    if (!read_tuple(r, rt.r) || !read_tuple(r, rt.s)) return false;
    m.results.push_back(rt);
  }
  return r.done();
}

}  // namespace hal::net
