// Deterministic wire-fault injection for the socket transports.
//
// Faults model the failure modes a real distributed data path exhibits
// between the NICs and the switch: lost frames, corrupted frames, bursty
// serialization delay, and short partitions. Injection happens on the
// sender side, after the clean frame has been captured for retransmission,
// so every fault exercises the recovery machinery (CRC detection, gap
// reset, reconnect + replay) rather than silently losing data.
//
// All triggers count *wire* frames (frames actually assembled for the
// socket, replays included), so a replayed frame lands on a different
// counter value than the original and eventually passes; `max_fires`
// additionally bounds the total number of injected faults, making every
// faulted run converge.
#pragma once

#include <cstdint>

namespace hal::net {

struct FaultPlan {
  // Drop: the nth, 2nth, ... outbound data frame is never written to the
  // wire (0 disables). The receiver sees a sequence gap and forces a
  // reconnect; the sender replays from the last acknowledgement.
  std::uint64_t drop_every = 0;
  // Corrupt: flip one payload byte of the wire copy (0 disables). The
  // receiver's CRC32C check fails and the connection resets.
  std::uint64_t corrupt_every = 0;
  // Delay: hold the write-side flush for `delay_ms` when triggered.
  std::uint64_t delay_every = 0;
  double delay_ms = 0.0;
  // Partition: after this many outbound wire frames, sever the link and
  // refuse to redial for `partition_seconds` (one-shot; 0 disables).
  std::uint64_t partition_after_frames = 0;
  double partition_seconds = 0.05;
  // Upper bound on drop+corrupt firings combined.
  std::uint64_t max_fires = 8;

  [[nodiscard]] bool any() const noexcept {
    return drop_every != 0 || corrupt_every != 0 || delay_every != 0 ||
           partition_after_frames != 0;
  }
};

// Per-connection fault state. Not thread-safe; owned by the I/O loop.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  enum class Action : std::uint8_t { kPass, kDrop, kCorrupt };

  // Called once per outbound data frame assembled for the wire.
  [[nodiscard]] Action on_data_frame() noexcept {
    ++wire_frames_;
    if (fires_ < plan_.max_fires) {
      if (plan_.drop_every != 0 && wire_frames_ % plan_.drop_every == 0) {
        ++fires_;
        return Action::kDrop;
      }
      if (plan_.corrupt_every != 0 &&
          wire_frames_ % plan_.corrupt_every == 0) {
        ++fires_;
        return Action::kCorrupt;
      }
    }
    return Action::kPass;
  }

  // Extra flush delay (ms) to apply for this frame; 0 almost always.
  [[nodiscard]] double flush_delay_ms() noexcept {
    if (plan_.delay_every != 0 && wire_frames_ != 0 &&
        wire_frames_ % plan_.delay_every == 0) {
      return plan_.delay_ms;
    }
    return 0.0;
  }

  // True exactly once, when the partition trigger is crossed.
  [[nodiscard]] bool partition_now() noexcept {
    if (!partition_fired_ && plan_.partition_after_frames != 0 &&
        wire_frames_ >= plan_.partition_after_frames) {
      partition_fired_ = true;
      return true;
    }
    return false;
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t fires() const noexcept {
    return fires_ + (partition_fired_ ? 1 : 0);
  }

 private:
  FaultPlan plan_;
  std::uint64_t wire_frames_ = 0;
  std::uint64_t fires_ = 0;
  bool partition_fired_ = false;
};

}  // namespace hal::net
