#include "net/transport.h"

#include <thread>

#include "common/timer.h"

namespace hal::net {

const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::kInProcess: return "in-process";
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kUnix: return "unix";
    case TransportKind::kTcp: return "tcp";
  }
  return "?";
}

bool parse_transport_kind(const std::string& text,
                          TransportKind& out) noexcept {
  if (text == "in-process") {
    out = TransportKind::kInProcess;
  } else if (text == "loopback") {
    out = TransportKind::kLoopback;
  } else if (text == "unix") {
    out = TransportKind::kUnix;
  } else if (text == "tcp") {
    out = TransportKind::kTcp;
  } else {
    return false;
  }
  return true;
}

void NetStats::add(const NetStats& o) noexcept {
  frames_sent += o.frames_sent;
  frames_received += o.frames_received;
  bytes_sent += o.bytes_sent;
  bytes_received += o.bytes_received;
  msgs_sent += o.msgs_sent;
  msgs_delivered += o.msgs_delivered;
  retransmits += o.retransmits;
  reconnects += o.reconnects;
  connect_attempts += o.connect_attempts;
  crc_errors += o.crc_errors;
  gap_resets += o.gap_resets;
  stall_resets += o.stall_resets;
  duplicates_dropped += o.duplicates_dropped;
  credit_stalls += o.credit_stalls;
  send_stalls += o.send_stalls;
  acks_sent += o.acks_sent;
  acks_received += o.acks_received;
  faults_injected += o.faults_injected;
}

void collect_metrics(obs::MetricRegistry& registry, const std::string& prefix,
                     const NetStats& s) {
  const auto set = [&](const char* name, std::uint64_t v) {
    registry.set_counter(prefix + name, v, obs::Stability::kRuntime);
  };
  set("frames_sent", s.frames_sent);
  set("frames_received", s.frames_received);
  set("bytes_sent", s.bytes_sent);
  set("bytes_received", s.bytes_received);
  set("msgs_sent", s.msgs_sent);
  set("msgs_delivered", s.msgs_delivered);
  set("retransmits", s.retransmits);
  set("reconnects", s.reconnects);
  set("connect_attempts", s.connect_attempts);
  set("crc_errors", s.crc_errors);
  set("gap_resets", s.gap_resets);
  set("stall_resets", s.stall_resets);
  set("duplicates_dropped", s.duplicates_dropped);
  set("credit_stalls", s.credit_stalls);
  set("send_stalls", s.send_stalls);
  set("acks_sent", s.acks_sent);
  set("acks_received", s.acks_received);
  set("faults_injected", s.faults_injected);
}

bool Connection::send(MsgType type, std::span<const std::uint8_t> payload,
                      double timeout_s) {
  Timer timer;
  while (!try_send(type, payload)) {
    if (peer_closed()) return false;
    if (timeout_s >= 0.0 && timer.elapsed_seconds() > timeout_s) return false;
    std::this_thread::yield();
  }
  return true;
}

bool Connection::recv(Frame& out, double timeout_s) {
  Timer timer;
  while (!try_recv(out)) {
    if (peer_closed()) {
      // One final drain: a shutdown may have raced a delivered frame.
      return try_recv(out);
    }
    if (timeout_s >= 0.0 && timer.elapsed_seconds() > timeout_s) return false;
    std::this_thread::yield();
  }
  return true;
}

}  // namespace hal::net
