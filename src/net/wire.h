// hal::net wire codec — the cluster runtime's network data path, layer 1.
//
// The paper's system model (Fig. 2/3) treats the network elements between
// nodes — NICs, the switch, custom offload — as first-class stages of the
// active data path. This codec defines what actually crosses that path: a
// versioned, length-prefixed frame carrying one message, integrity-checked
// with CRC32C (the same polynomial NICs and switches implement in
// hardware, which is the point: every field here is cheap to parse or
// check in an FPGA/NIC offload).
//
// Frame layout (all integers little-endian):
//
//   offset size  field
//   0      4     magic 'H''A''L''N'
//   4      1     protocol version (kProtocolVersion)
//   5      1     message type (MsgType)
//   6      2     logical channel id
//   8      4     payload length N (<= kMaxPayload)
//   12     4     CRC32C of the N payload bytes
//   16     8     sequence number (data frames; 0 on unsequenced control)
//   24     N     payload
//
// Decoding is fuzz-safe by construction: every read is bounds-checked
// against the buffered byte count, truncated input parks as kNeedMore,
// and any malformed header or payload yields a typed error — never
// undefined behavior. The differential fuzz tests bit-flip and truncate
// encoded frames and assert exactly this contract.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "stream/tuple.h"

namespace hal::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
// Caps a frame's payload so a corrupted length field can never trigger an
// unbounded allocation (16 MiB >> any batch the cluster ships).
inline constexpr std::size_t kMaxPayload = std::size_t{1} << 24;
inline constexpr std::uint8_t kMagic[4] = {'H', 'A', 'L', 'N'};

enum class MsgType : std::uint8_t {
  kHello = 1,        // connection (re)establishment + resume/credit state
  kCredit = 2,       // flow-control window advance
  kAck = 3,          // cumulative receipt acknowledgement
  kShutdown = 4,     // orderly connection teardown
  kWatermark = 5,    // epoch barrier with per-stream arrival counts
  kTupleBatch = 6,   // input tuples routed to a shard
  kResultBatch = 7,  // joined results returned from a shard
  kCheckpoint = 8,   // serialized WindowImage (hal::recovery)
};

[[nodiscard]] constexpr bool valid_msg_type(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint8_t>(MsgType::kCheckpoint);
}

[[nodiscard]] const char* to_string(MsgType t) noexcept;

enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMore,   // incomplete frame buffered; not an error
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,  // payload length exceeds kMaxPayload
  kBadCrc,
  kMalformed,  // payload structure inconsistent with its message type
};

[[nodiscard]] const char* to_string(DecodeStatus s) noexcept;

// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
// iSCSI/ext4/NVMe and NIC offloads standardize on. Table-driven software
// implementation; `seed` allows incremental computation.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0) noexcept;

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  MsgType type = MsgType::kHello;
  std::uint16_t channel = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
  std::uint64_t seq = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// Appends one encoded frame (header + payload) to `wire`.
void append_frame(std::vector<std::uint8_t>& wire, MsgType type,
                  std::uint64_t seq, std::span<const std::uint8_t> payload,
                  std::uint16_t channel = 0);

// Incremental frame decoder: feed() arbitrary byte chunks (a TCP stream
// has no message boundaries), then next() until it returns kNeedMore.
// A fatal status poisons the decoder — the byte stream has lost framing
// and the connection must be reset — until reset() is called.
class FrameDecoder {
 public:
  void feed(std::span<const std::uint8_t> data);
  [[nodiscard]] DecodeStatus next(Frame& out);
  void reset();

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool poisoned() const noexcept {
    return error_ != DecodeStatus::kOk;
  }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  DecodeStatus error_ = DecodeStatus::kOk;
};

// --- Message payloads ------------------------------------------------------

struct HelloMsg {
  std::uint32_t node_id = 0;
  std::uint32_t shard = 0;
  // Next data-frame sequence number this side expects to receive; the
  // peer replays its unacknowledged frames from here after a reconnect.
  std::uint64_t resume_seq = 1;
  // Absolute credit grant: the peer may send data frames with
  // seq <= granted_through_seq (credit-based backpressure, the network
  // mirror of the hardware ready/valid handshake).
  std::uint64_t granted_through_seq = 0;

  friend bool operator==(const HelloMsg&, const HelloMsg&) = default;
};

struct CreditMsg {
  std::uint64_t granted_through_seq = 0;

  friend bool operator==(const CreditMsg&, const CreditMsg&) = default;
};

struct AckMsg {
  std::uint64_t cumulative_seq = 0;  // all data frames <= this delivered

  friend bool operator==(const AckMsg&, const AckMsg&) = default;
};

struct ShutdownMsg {
  std::uint32_t reason = 0;  // 0 = orderly

  friend bool operator==(const ShutdownMsg&, const ShutdownMsg&) = default;
};

// Epoch barrier. Carries how many R/S tuples the sender routed to this
// connection within the epoch, so the receiver can audit delivery.
struct WatermarkMsg {
  std::uint64_t epoch = 0;
  std::uint64_t r_count = 0;
  std::uint64_t s_count = 0;

  friend bool operator==(const WatermarkMsg&, const WatermarkMsg&) = default;
};

struct TupleBatchMsg {
  std::uint64_t epoch = 0;
  // Per-link batch sequence number assigned by the cluster replay log
  // (hal::recovery); 0 when replay is disabled. Distinct from the frame
  // seq, which the transport renumbers per connection.
  std::uint64_t link_seq = 0;
  bool end_of_epoch = false;
  std::vector<stream::Tuple> tuples;

  friend bool operator==(const TupleBatchMsg&, const TupleBatchMsg&) =
      default;
};

struct ResultBatchMsg {
  std::uint64_t epoch = 0;
  bool end_of_epoch = false;
  bool died = false;  // worker announced fail-stop
  std::vector<stream::ResultTuple> results;

  friend bool operator==(const ResultBatchMsg&, const ResultBatchMsg&) =
      default;
};

// Every encode produces exactly the payload bytes (no frame header);
// every decode returns false on any structural inconsistency (short
// buffer, trailing bytes, bad enum value, count/length mismatch).
[[nodiscard]] std::vector<std::uint8_t> encode(const HelloMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const CreditMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const AckMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ShutdownMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const WatermarkMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const TupleBatchMsg& m);
[[nodiscard]] std::vector<std::uint8_t> encode(const ResultBatchMsg& m);

[[nodiscard]] bool decode(std::span<const std::uint8_t> payload, HelloMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload,
                          CreditMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload, AckMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload,
                          ShutdownMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload,
                          WatermarkMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload,
                          TupleBatchMsg& m);
[[nodiscard]] bool decode(std::span<const std::uint8_t> payload,
                          ResultBatchMsg& m);

// Convenience: encode a message and append it as one framed wire record.
template <typename Msg>
void append_message(std::vector<std::uint8_t>& wire, MsgType type,
                    std::uint64_t seq, const Msg& m,
                    std::uint16_t channel = 0) {
  const std::vector<std::uint8_t> payload = encode(m);
  append_frame(wire, type, seq, payload, channel);
}

}  // namespace hal::net
