// Software realization of the bi-flow model: handshake join on a
// multi-core CPU (Teubner & Mueller, SIGMOD'11 — the paper's [33]).
//
// One thread per join core, arranged in a chain. R tuples enter at core 0
// and flow right, S tuples enter at core N-1 and flow left. The shared
// state between adjacent cores lives on the *boundary*: a mutex (the
// paper's "locks needed to avoid race conditions") plus the two eviction
// queues whose occupants are still logically resident in their source
// core's window. A tuple entering a core through a boundary is scanned
// against the core's opposite sub-window and that boundary's opposite
// eviction queue while the boundary lock is held, which makes every R/S
// crossing observable exactly once — the same discipline the hardware
// HandshakeChannel enforces with its one-transfer-at-a-time lock.
//
// Lock acquisition is ordered (entry boundary first, eviction boundary
// second; R operations lean rightward, S leftward), which excludes
// deadlock cycles on the boundary mutexes.
//
// The batched data path (`process_batched`) feeds the chain ends one
// TupleBatch per SPSC push instead of one tuple; the consuming end core
// enters the batch's tuples in arrival order and retires the whole batch
// with a single release RMW on `pending_`. Entry scans use the same
// vectorized contiguous-key kernel as SplitJoin when the spec is a pure
// key equi-join. Batching widens the feeder decoupling (the ordering-
// precision knob below now counts batches, not tuples), which multi-core
// tests must absorb with the usual window tolerance; a 1-core chain
// consumes mixed batches in exact arrival order and stays an exact oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "core/window_image.h"
#include "obs/enabled.h"
#include "obs/metrics.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"
#include "stream/tuple_batch.h"
#include "sw/indexed_window.h"
#include "sw/probe_path.h"
#include "sw/splitjoin.h"  // SwRunReport

namespace hal::sw {

struct HandshakeJoinConfig {
  std::uint32_t num_cores = 4;
  std::size_t window_size = 1 << 12;  // per stream, summed across cores
  // Deliberately small: the feeder blocks on a full end queue, which keeps
  // the two streams' processing order close to their merged arrival order.
  // This is the software analogue of the hardware chain's rendezvous
  // backpressure, and the knob behind "adjustable ordering precision" in
  // the SplitJoin paper's terminology — a larger queue trades window-
  // semantics fidelity for feeder decoupling.
  std::size_t input_queue_capacity = 4;
  // Equi-probe strategy of the sub-window entry scan (see
  // sw/probe_path.h); boundary-queue scans stay scalar either way.
  ProbePath probe = ProbePath::kIndexed;
};

class HandshakeJoinEngine {
 public:
  HandshakeJoinEngine(HandshakeJoinConfig cfg, stream::JoinSpec spec);
  ~HandshakeJoinEngine();

  HandshakeJoinEngine(const HandshakeJoinEngine&) = delete;
  HandshakeJoinEngine& operator=(const HandshakeJoinEngine&) = delete;

  // Feeds the batch and blocks until the chain is fully drained (all
  // queues empty, all cores idle). Results accumulate across calls.
  SwRunReport process(const std::vector<stream::Tuple>& tuples);

  // Batched feed: slices `tuples` into arrival-order spans of
  // `batch_size`. With one core the mixed span enters as-is (exact
  // arrival order, same results as `process`); with more cores each span
  // is split per stream and handed to its chain end as one batch.
  SwRunReport process_batched(const std::vector<stream::Tuple>& tuples,
                              std::size_t batch_size);

  // Results collected so far (call only between process() calls).
  [[nodiscard]] std::vector<stream::ResultTuple> results() const;
  [[nodiscard]] const HandshakeJoinConfig& config() const noexcept {
    return cfg_;
  }

  // Checkpoint/restore of the chain state (hal::recovery): per-core
  // sub-windows in age order plus the boundary eviction queues (whose
  // occupants are still logically resident). Both wait for a drained chain
  // (pending_ == 0) before touching state; restore_state returns false
  // (chain untouched) on a core-count/window-size/shape mismatch.
  void snapshot_state(core::WindowImage& out);
  [[nodiscard]] bool restore_state(const core::WindowImage& image);

  // Publishes per-core probe/match/handover tallies. Everything here is
  // kRuntime: with more than one core the chain's window semantics depend
  // on thread interleaving (crossings race against arrivals), so even the
  // total result count varies run to run. Call only between process()
  // calls (quiescent chain).
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  using BatchPtr = std::shared_ptr<const stream::TupleBatch>;

  struct Boundary {
    std::mutex mu;
    std::deque<stream::Tuple> r_q;  // evicted from core b, visible, → b+1
    std::deque<stream::Tuple> s_q;  // evicted from core b+1, visible, → b
  };

  struct Core {
    Core(std::size_t sub_window, std::size_t queue_capacity, ProbePath probe)
        : win_r(sub_window, probe),
          win_s(sub_window, probe),
          input(queue_capacity),
          batch_input(queue_capacity) {}
    IndexedSoaWindow win_r;
    IndexedSoaWindow win_s;
    SpscQueue<stream::Tuple> input;  // driver feed (used at chain ends)
    SpscQueue<BatchPtr> batch_input;  // batched driver feed (chain ends)
    std::vector<stream::ResultTuple> local_results;
    // Core-thread-owned tallies, read at quiescence (published by the
    // pending_ release/acquire pair).
    std::uint64_t probes = 0;
    std::uint64_t entries = 0;
    std::uint64_t handovers = 0;
  };

  void core_loop(std::uint32_t i);
  // Scans `t` against core i's opposite residents (own sub-window plus the
  // boundary eviction queue `extra`, which must be guarded by a lock the
  // caller already holds when non-null), then stores and evicts.
  void enter(std::uint32_t i, const stream::Tuple& t,
             const std::deque<stream::Tuple>* extra);

  HandshakeJoinConfig cfg_;
  stream::JoinSpec spec_;
  bool pure_key_equi_ = false;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<Boundary>> boundaries_;  // size N-1
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> results_count_{0};
  // Tuples in flight anywhere in the chain (fresh input + handovers);
  // zero ⇔ the chain is drained and all results are visible. Per-match
  // results_count_ adds are relaxed; the release edge that publishes them
  // (and local_results) is the fetch_sub on pending_ when an entry or a
  // whole batch retires, paired with process()'s acquire load of zero.
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace hal::sw
