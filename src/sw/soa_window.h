// Structure-of-arrays sub-window for the software join cores.
//
// Drop-in replacement for the AoS `hw::SubWindow` storage with the same
// count-based semantics (insert overwrites the oldest entry once full;
// `at(i)` is age-ordered), plus a contiguous key lane in *storage order*
// for the batched probe kernels. Scanning in storage order instead of age
// order is sound for windowed joins: every slot in [0, size) is a resident
// tuple, candidate order affects neither the match count nor the result
// multiset, and the probe/match tallies the deterministic obs projection
// publishes are order-independent sums. What storage order buys is a probe
// loop over a dense `uint32_t` array with no modular index arithmetic —
// the shape compilers auto-vectorize.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "stream/tuple.h"

namespace hal::sw {

class SoaWindow {
 public:
  explicit SoaWindow(std::size_t capacity)
      : slots_(capacity), keys_(capacity, 0) {
    HAL_CHECK(capacity > 0, "sub-window capacity must be positive");
  }

  void insert(const stream::Tuple& t) noexcept {
    slots_[write_pos_] = t;
    keys_[write_pos_] = t.key;
    write_pos_ = (write_pos_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  // Logical index 0 = oldest resident tuple (the tuple-at-a-time oracle
  // path and the handshake eviction both want age order).
  [[nodiscard]] const stream::Tuple& at(std::size_t i) const noexcept {
    HAL_ASSERT(i < size_);
    const std::size_t oldest = size_ < slots_.size() ? 0 : write_pos_;
    return slots_[(oldest + i) % slots_.size()];
  }

  [[nodiscard]] const stream::Tuple& oldest() const noexcept { return at(0); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() noexcept {
    size_ = 0;
    write_pos_ = 0;
  }

  // Storage-order access for the batched kernels. Slots [0, size) are all
  // resident; keys()[i] is the key of slot(i).
  [[nodiscard]] const std::uint32_t* keys() const noexcept {
    return keys_.data();
  }
  [[nodiscard]] const stream::Tuple& slot(std::size_t i) const noexcept {
    HAL_ASSERT(i < size_);
    return slots_[i];
  }

  // Branchless equi-probe count over the contiguous key lane. This is the
  // hot loop of the batched data path: one compare + add per resident
  // tuple, no data-dependent branch, auto-vectorizable.
  [[nodiscard]] std::size_t count_equal(std::uint32_t key) const noexcept {
    const std::uint32_t* k = keys_.data();
    const std::size_t n = size_;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      hits += static_cast<std::size_t>(k[i] == key);
    }
    return hits;
  }

  // Two-pass equi-probe: vectorized count first, scalar materialization
  // only when the count is non-zero (rare at low selectivity, so the
  // common case never leaves the dense count loop). `emit` receives the
  // matching resident tuple; returns the match count.
  template <typename Emit>
  std::size_t collect_equal(std::uint32_t key, Emit&& emit) const {
    const std::size_t hits = count_equal(key);
    if (hits == 0) return 0;
    const std::uint32_t* k = keys_.data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (k[i] == key) emit(slots_[i]);
    }
    return hits;
  }

  // Generic-predicate scan in storage order (non-equi specs take this
  // path; same candidate set as the oracle, different visit order).
  template <typename Pred, typename Emit>
  std::size_t collect_matching(Pred&& pred, Emit&& emit) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const stream::Tuple& candidate = slots_[i];
      if (pred(candidate)) {
        ++hits;
        emit(candidate);
      }
    }
    return hits;
  }

 private:
  std::vector<stream::Tuple> slots_;
  std::vector<std::uint32_t> keys_;  // keys_[i] mirrors slots_[i].key
  std::size_t write_pos_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hal::sw
