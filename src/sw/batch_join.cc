#include "sw/batch_join.h"

#include "common/assert.h"
#include "common/backoff.h"
#include "common/timer.h"

namespace hal::sw {

using stream::ResultTuple;
using stream::StreamId;
using stream::Tuple;

BatchJoinEngine::BatchJoinEngine(BatchJoinConfig cfg, stream::JoinSpec spec)
    : cfg_(cfg), spec_(std::move(spec)) {
  HAL_CHECK(cfg_.num_workers >= 1, "need at least one worker");
  HAL_CHECK(cfg_.batch_size >= 1, "batch size must be positive");
  HAL_CHECK(cfg_.window_size >= cfg_.num_workers,
            "window must hold at least one tuple per worker");
  HAL_CHECK(cfg_.window_size % cfg_.num_workers == 0,
            "window_size must be a multiple of num_workers");
  HAL_CHECK(cfg_.batch_size <= cfg_.window_size,
            "batch larger than the window would let in-batch pairs expire "
            "mid-batch");
  pure_key_equi_ = spec_.is_pure_key_equi();
  sub_window_ = cfg_.window_size / cfg_.num_workers;
  for (std::uint32_t i = 0; i < cfg_.num_workers; ++i) {
    slices_.push_back(std::make_unique<WorkerSlice>(sub_window_));
  }
  for (std::uint32_t i = 0; i < cfg_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

BatchJoinEngine::~BatchJoinEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w.join();
}

void BatchJoinEngine::insert_into_slice(WorkerSlice& slice, const Tuple& t,
                                        std::uint64_t arrival) {
  const bool is_r = t.origin == StreamId::R;
  auto& win = is_r ? slice.win_r : slice.win_s;
  auto& keys = is_r ? slice.keys_r : slice.keys_s;
  auto& arrivals = is_r ? slice.arrivals_r : slice.arrivals_s;
  KeyBucketIndex& idx = is_r ? slice.idx_r : slice.idx_s;
  std::size_t& head = is_r ? slice.head_r : slice.head_s;
  std::size_t& size = is_r ? slice.size_r : slice.size_s;
  if (size == sub_window_) {
    // Overwriting a resident entry: unhook its old key from the index.
    idx.remove(keys[head], static_cast<std::uint32_t>(head));
  }
  win[head] = Entry{t, arrival};
  keys[head] = t.key;
  arrivals[head] = arrival;
  idx.add(t.key, static_cast<std::uint32_t>(head));
  head = (head + 1) % sub_window_;
  if (size < sub_window_) ++size;
}

void BatchJoinEngine::worker_loop(std::uint32_t index) {
  WorkerSlice& slice = *slices_[index];
  std::uint64_t seen_generation = 0;
  SpinBackoff backoff;
  while (true) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen_generation) {
      if (stop_.load(std::memory_order_acquire)) return;
      backoff.pause();
      continue;
    }
    seen_generation = gen;
    backoff.reset();

    // The batch kernel: every batch tuple probes this worker's slices of
    // the pre-batch window state. Logical expiry: for the batch tuple at
    // position i, only window entries that would still be in the window —
    // arrival >= (pre-batch stream count + same-stream arrivals earlier
    // in the batch) - W — are valid candidates. Earlier-in-batch pairs
    // are handled centrally by the dispatcher.
    slice.out.clear();
    for (std::size_t i = 0; i < batch_count_; ++i) {
      // Hide the bucket-lane miss of the probe a few tuples ahead (no-op
      // in the HAL_SIMD=OFF build; harmless on the kScan path).
      constexpr std::size_t kPrefetchDistance = 8;
      if (pure_key_equi_ && cfg_.probe == ProbePath::kIndexed &&
          i + kPrefetchDistance < batch_count_) {
        const Tuple& ahead = batch_data_[i + kPrefetchDistance];
        (ahead.origin == StreamId::R ? slice.idx_s : slice.idx_r)
            .prefetch(ahead.key);
      }
      const Tuple& t = batch_data_[i];
      const bool is_r = t.origin == StreamId::R;
      const auto& win = is_r ? slice.win_s : slice.win_r;
      const std::size_t size = is_r ? slice.size_s : slice.size_r;
      const std::uint64_t opposite_total =
          is_r ? batch_base_s_ + s_before_[i] : batch_base_r_ + r_before_[i];
      const std::uint64_t cutoff = opposite_total > cfg_.window_size
                                       ? opposite_total - cfg_.window_size
                                       : 0;
      if (pure_key_equi_ && cfg_.probe == ProbePath::kIndexed) {
        // Bucket probe: gather the slots whose key matches, then filter
        // the few candidates by the logical-expiry cutoff in scalar code.
        const KeyBucketIndex& idx = is_r ? slice.idx_s : slice.idx_r;
        const std::uint64_t* arrivals =
            (is_r ? slice.arrivals_s : slice.arrivals_r).data();
        const std::size_t b = idx.bucket_of(t.key);
        const std::size_t hits =
            simd::probe_collect(idx.bucket_keys(b), idx.bucket_size(b),
                                t.key, slice.scratch.data());
        const std::uint32_t* bucket_slots = idx.bucket_slots(b);
        for (std::size_t j = 0; j < hits; ++j) {
          const std::uint32_t k = bucket_slots[slice.scratch[j]];
          if (arrivals[k] < cutoff) continue;  // logically expired
          const Entry& candidate = win[k];
          const Tuple& r = is_r ? t : candidate.tuple;
          const Tuple& s = is_r ? candidate.tuple : t;
          slice.out.push_back(ResultTuple{r, s});
        }
        continue;
      }
      if (pure_key_equi_) {
        // kScan: two-pass equi kernel over the dense key/arrival lanes —
        // an explicit-SIMD count (key match AND still resident), then a
        // materialization pass only when something hit.
        const std::uint32_t* keys =
            (is_r ? slice.keys_s : slice.keys_r).data();
        const std::uint64_t* arrivals =
            (is_r ? slice.arrivals_s : slice.arrivals_r).data();
        const std::size_t hits =
            simd::probe_count_since(keys, arrivals, size, t.key, cutoff);
        if (hits == 0) continue;
        const std::size_t found = simd::probe_collect_since(
            keys, arrivals, size, t.key, cutoff, slice.scratch.data());
        for (std::size_t j = 0; j < found; ++j) {
          const Entry& candidate = win[slice.scratch[j]];
          const Tuple& r = is_r ? t : candidate.tuple;
          const Tuple& s = is_r ? candidate.tuple : t;
          slice.out.push_back(ResultTuple{r, s});
        }
        continue;
      }
      for (std::size_t k = 0; k < size; ++k) {
        const Entry& candidate = win[k];
        if (candidate.arrival < cutoff) continue;  // logically expired
        const Tuple& r = is_r ? t : candidate.tuple;
        const Tuple& s = is_r ? candidate.tuple : t;
        if (spec_.matches(r, s)) slice.out.push_back(ResultTuple{r, s});
      }
    }
    done_count_.fetch_add(1, std::memory_order_release);
  }
}

void BatchJoinEngine::run_batch(const Tuple* data, std::size_t count) {
  Timer timer;
  batch_data_ = data;
  batch_count_ = count;
  batch_base_r_ = count_r_;
  batch_base_s_ = count_s_;
  r_before_.assign(count, 0);
  s_before_.assign(count, 0);
  std::uint64_t r_seen = 0;
  std::uint64_t s_seen = 0;
  for (std::size_t i = 0; i < count; ++i) {
    r_before_[i] = r_seen;
    s_before_[i] = s_seen;
    ++(data[i].origin == StreamId::R ? r_seen : s_seen);
  }
  done_count_.store(0, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);

  // Meanwhile handle the intra-batch pairs on the host thread: tuple i vs
  // earlier opposite-stream batch tuples (exact eager semantics).
  std::vector<ResultTuple> intra;
  for (std::size_t i = 0; i < count; ++i) {
    const Tuple& t = data[i];
    const bool is_r = t.origin == StreamId::R;
    for (std::size_t j = 0; j < i; ++j) {
      const Tuple& o = data[j];
      if ((o.origin == StreamId::R) == is_r) continue;
      const Tuple& r = is_r ? t : o;
      const Tuple& s = is_r ? o : t;
      if (spec_.matches(r, s)) intra.push_back(ResultTuple{r, s});
    }
  }

  {
    SpinBackoff backoff;
    while (done_count_.load(std::memory_order_acquire) < cfg_.num_workers) {
      backoff.pause();
    }
  }

  // Collect worker results, then append the batch to the windows
  // (round-robin slices, continuing the global turn counters).
  for (auto& slice : slices_) {
    results_.insert(results_.end(), slice->out.begin(), slice->out.end());
  }
  results_.insert(results_.end(), intra.begin(), intra.end());
  for (std::size_t i = 0; i < count; ++i) {
    const Tuple& t = data[i];
    std::uint64_t& turn = t.origin == StreamId::R ? count_r_ : count_s_;
    insert_into_slice(*slices_[turn % cfg_.num_workers], t, turn);
    ++turn;
  }

  last_kernel_seconds_ = timer.elapsed_seconds();
  total_kernel_seconds_ += last_kernel_seconds_;
  ++batches_run_;
  if constexpr (obs::kEnabled) batch_fills_.push_back(count);
}

void BatchJoinEngine::snapshot_state(core::WindowImage& out) {
  out.num_cores = cfg_.num_workers;
  out.window_size = cfg_.window_size;
  out.count_r = count_r_;
  out.count_s = count_s_;
  out.results_emitted = results_.size();
  out.cores.assign(cfg_.num_workers, {});
  out.boundaries.clear();
  for (std::uint32_t i = 0; i < cfg_.num_workers; ++i) {
    const WorkerSlice& slice = *slices_[i];
    auto& dst = out.cores[i];
    // Age order, oldest first, with the per-entry arrival indices the
    // logical-expiry cutoff needs.
    const std::size_t oldest_r =
        slice.size_r < sub_window_ ? 0 : slice.head_r;
    for (std::size_t k = 0; k < slice.size_r; ++k) {
      const Entry& e = slice.win_r[(oldest_r + k) % sub_window_];
      dst.win_r.push_back(e.tuple);
      dst.arr_r.push_back(e.arrival);
    }
    const std::size_t oldest_s =
        slice.size_s < sub_window_ ? 0 : slice.head_s;
    for (std::size_t k = 0; k < slice.size_s; ++k) {
      const Entry& e = slice.win_s[(oldest_s + k) % sub_window_];
      dst.win_s.push_back(e.tuple);
      dst.arr_s.push_back(e.arrival);
    }
  }
}

bool BatchJoinEngine::restore_state(const core::WindowImage& image) {
  if (image.num_cores != cfg_.num_workers ||
      image.window_size != cfg_.window_size ||
      image.cores.size() != slices_.size() || !image.boundaries.empty()) {
    return false;
  }
  for (const auto& src : image.cores) {
    if (src.win_r.size() > sub_window_ || src.win_s.size() > sub_window_ ||
        src.arr_r.size() != src.win_r.size() ||
        src.arr_s.size() != src.win_s.size()) {
      return false;
    }
  }
  for (std::uint32_t i = 0; i < cfg_.num_workers; ++i) {
    WorkerSlice& slice = *slices_[i];
    const auto& src = image.cores[i];
    // Age-ordered images bulk-load into the dense lanes, then each bucket
    // index is rebuilt in one exact-reserve pass — the batched rebuild
    // path (no per-tuple hook/unhook as in the old tuple-at-a-time loop).
    const auto load_side = [&](const std::vector<Tuple>& win,
                               const std::vector<std::uint64_t>& arr,
                               std::vector<Entry>& dst_win,
                               std::vector<std::uint32_t>& dst_keys,
                               std::vector<std::uint64_t>& dst_arrivals,
                               KeyBucketIndex& idx, std::size_t& head,
                               std::size_t& size) {
      for (std::size_t k = 0; k < win.size(); ++k) {
        dst_win[k] = Entry{win[k], arr[k]};
        dst_keys[k] = win[k].key;
        dst_arrivals[k] = arr[k];
      }
      size = win.size();
      head = size % sub_window_;
      idx.rebuild(dst_keys.data(), size);
    };
    load_side(src.win_r, src.arr_r, slice.win_r, slice.keys_r,
              slice.arrivals_r, slice.idx_r, slice.head_r, slice.size_r);
    load_side(src.win_s, src.arr_s, slice.win_s, slice.keys_s,
              slice.arrivals_s, slice.idx_s, slice.head_s, slice.size_s);
  }
  count_r_ = image.count_r;
  count_s_ = image.count_s;
  return true;
}

SwRunReport BatchJoinEngine::process(const std::vector<Tuple>& tuples) {
  return process_batched(tuples, cfg_.batch_size);
}

SwRunReport BatchJoinEngine::process_batched(const std::vector<Tuple>& tuples,
                                             std::size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  HAL_CHECK(batch_size <= cfg_.window_size,
            "batch larger than the window would let in-batch pairs expire "
            "mid-batch");
  Timer timer;
  const std::uint64_t before = results_.size();
  for (std::size_t pos = 0; pos < tuples.size(); pos += batch_size) {
    const std::size_t count = std::min(batch_size, tuples.size() - pos);
    run_batch(tuples.data() + pos, count);
  }
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = results_.size() - before;
  return report;
}

void BatchJoinEngine::collect_metrics(obs::MetricRegistry& registry,
                                      const std::string& prefix) const {
  registry.set_counter(prefix + "batches_run", batches_run_);
  registry.set_counter(prefix + "tuples_processed", count_r_ + count_s_);
  registry.set_counter(prefix + "results", results_.size());
  registry.set_gauge(prefix + "kernel.total_seconds", total_kernel_seconds_,
                     obs::Stability::kRuntime);
  registry.set_gauge(prefix + "kernel.last_seconds", last_kernel_seconds_,
                     obs::Stability::kRuntime);
  // Fill distribution: powers of two up to the configured batch size, so
  // a flushed partial batch is visibly separated from the full ones.
  std::vector<double> bounds;
  for (std::size_t b = 1; b < cfg_.batch_size; b *= 2) {
    bounds.push_back(static_cast<double>(b));
  }
  bounds.push_back(static_cast<double>(cfg_.batch_size));
  auto& fill = registry.histogram(prefix + "batch.fill", std::move(bounds),
                                  obs::Stability::kDeterministic);
  for (const std::size_t f : batch_fills_) {
    fill.record(static_cast<double>(f));
  }
}

double BatchJoinEngine::batch_latency_seconds(double input_rate_tps) const {
  HAL_CHECK(input_rate_tps > 0.0, "input rate must be positive");
  const double fill_seconds =
      static_cast<double>(cfg_.batch_size) / input_rate_tps;
  const double kernel = batches_run_ > 0
                            ? total_kernel_seconds_ /
                                  static_cast<double>(batches_run_)
                            : 0.0;
  // A batch's first tuple waits for the batch to fill, then for the
  // kernel; that is the structural latency floor of batched processing.
  return fill_seconds + kernel;
}

}  // namespace hal::sw
