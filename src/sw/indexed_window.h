// Indexed structure-of-arrays sub-window: SoaWindow's storage and API
// with a hash-partitioned key index (KeyBucketIndex) layered on top and
// the probe loops routed through the hal::simd kernels.
//
// Two batched equi-probe paths, selected per window at construction
// (ProbePath, threaded down from the engine configs):
//   kIndexed — probe only the bucket the key hashes to: O(bucket+matches)
//     per probe instead of O(W). Matches are emitted in bucket order,
//     not storage order; windowed equi-join results are order-free
//     multisets and the deterministic obs tallies are sums, so this is
//     observationally identical (the differential suite pins it).
//   kScan    — full dense-lane scan through simd::probe_* (the PR-4 loop
//     shape, now explicitly vectorized); emission stays in storage order.
// The `*_scan_oracle` variants always run the plain scalar scan loop
// regardless of path or active ISA — the ground truth for property and
// fuzz tests.
//
// Not thread-safe (each join core owns its windows); the const probe
// methods reuse a mutable scratch buffer, so even concurrent reads of
// one window are not allowed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "simd/probe.h"
#include "stream/tuple.h"
#include "sw/key_bucket_index.h"
#include "sw/probe_path.h"

namespace hal::sw {

class IndexedSoaWindow {
 public:
  explicit IndexedSoaWindow(std::size_t capacity,
                            ProbePath path = ProbePath::kIndexed)
      : slots_(capacity),
        keys_(capacity, 0),
        index_(capacity),
        scratch_(capacity, 0),
        path_(path) {
    HAL_CHECK(capacity > 0, "sub-window capacity must be positive");
  }

  void insert(const stream::Tuple& t) {
    const std::uint32_t slot = static_cast<std::uint32_t>(write_pos_);
    if (size_ == slots_.size()) {
      // Overwriting the oldest resident: unhook its key first.
      index_.remove(keys_[write_pos_], slot);
    }
    slots_[write_pos_] = t;
    keys_[write_pos_] = t.key;
    index_.add(t.key, slot);
    write_pos_ = (write_pos_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  // Logical index 0 = oldest resident tuple (age order, like SoaWindow).
  [[nodiscard]] const stream::Tuple& at(std::size_t i) const noexcept {
    HAL_ASSERT(i < size_);
    const std::size_t oldest = size_ < slots_.size() ? 0 : write_pos_;
    return slots_[(oldest + i) % slots_.size()];
  }

  [[nodiscard]] const stream::Tuple& oldest() const noexcept { return at(0); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] ProbePath path() const noexcept { return path_; }

  void clear() noexcept {
    size_ = 0;
    write_pos_ = 0;
    index_.clear();
  }

  // Bulk (re)load from an age-ordered tuple sequence — the batched path
  // of the recovery/elastic rebuild loops. Equivalent to clear() plus
  // insert() of every tuple in order (tuples beyond the capacity evict
  // the oldest, exactly like the circular store), but fills the dense
  // lanes first and rebuilds the bucket index in one exact-reserve pass
  // instead of hooking/unhooking per insert.
  void load(const stream::Tuple* tuples, std::size_t n) {
    const std::size_t keep = n < slots_.size() ? n : slots_.size();
    const stream::Tuple* src = tuples + (n - keep);
    for (std::size_t i = 0; i < keep; ++i) {
      slots_[i] = src[i];
      keys_[i] = src[i].key;
    }
    size_ = keep;
    write_pos_ = keep % slots_.size();
    index_.rebuild(keys_.data(), keep);
  }

  // Prefetch hint for a probe of `key` a few iterations ahead (kIndexed
  // bucket lanes; the kScan dense lane streams linearly and needs none).
  // No-op in the HAL_SIMD=OFF build.
  void prefetch_equal(std::uint32_t key) const noexcept {
    if (path_ == ProbePath::kIndexed) index_.prefetch(key);
  }

  // Storage-order access (slots [0, size) are all resident).
  [[nodiscard]] const std::uint32_t* keys() const noexcept {
    return keys_.data();
  }
  [[nodiscard]] const stream::Tuple& slot(std::size_t i) const noexcept {
    HAL_ASSERT(i < size_);
    return slots_[i];
  }

  [[nodiscard]] std::size_t count_equal(std::uint32_t key) const noexcept {
    if (path_ == ProbePath::kIndexed) {
      const std::size_t b = index_.bucket_of(key);
      return simd::probe_count(index_.bucket_keys(b), index_.bucket_size(b),
                               key);
    }
    return simd::probe_count(keys_.data(), size_, key);
  }

  // Equi-probe with materialization. kIndexed gathers the bucket's match
  // positions and emits via the slot ids; kScan gathers over the dense
  // lane (storage order). Returns the match count.
  template <typename Emit>
  std::size_t collect_equal(std::uint32_t key, Emit&& emit) const {
    if (path_ == ProbePath::kIndexed) {
      const std::size_t b = index_.bucket_of(key);
      const std::size_t hits =
          simd::probe_collect(index_.bucket_keys(b), index_.bucket_size(b),
                              key, scratch_.data());
      const std::uint32_t* bucket_slots = index_.bucket_slots(b);
      for (std::size_t j = 0; j < hits; ++j) {
        emit(slots_[bucket_slots[scratch_[j]]]);
      }
      return hits;
    }
    const std::size_t hits =
        simd::probe_collect(keys_.data(), size_, key, scratch_.data());
    for (std::size_t j = 0; j < hits; ++j) emit(slots_[scratch_[j]]);
    return hits;
  }

  // Generic-predicate scan in storage order (non-equi specs; identical to
  // SoaWindow::collect_matching — the index cannot help here).
  template <typename Pred, typename Emit>
  std::size_t collect_matching(Pred&& pred, Emit&& emit) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const stream::Tuple& candidate = slots_[i];
      if (pred(candidate)) {
        ++hits;
        emit(candidate);
      }
    }
    return hits;
  }

  // Scan oracles: the plain scalar loops of SoaWindow, untouched by
  // ProbePath and ISA dispatch. Property/fuzz tests compare against these.
  [[nodiscard]] std::size_t count_equal_scan_oracle(
      std::uint32_t key) const noexcept {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      hits += static_cast<std::size_t>(keys_[i] == key);
    }
    return hits;
  }

  template <typename Emit>
  std::size_t collect_equal_scan_oracle(std::uint32_t key,
                                        Emit&& emit) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (keys_[i] == key) {
        ++hits;
        emit(slots_[i]);
      }
    }
    return hits;
  }

 private:
  std::vector<stream::Tuple> slots_;
  std::vector<std::uint32_t> keys_;  // keys_[i] mirrors slots_[i].key
  KeyBucketIndex index_;
  mutable std::vector<std::uint32_t> scratch_;  // probe_collect landing pad
  std::size_t write_pos_ = 0;
  std::size_t size_ = 0;
  ProbePath path_;
};

}  // namespace hal::sw
