#include "sw/handshake_join.h"

#include <span>

#include "common/assert.h"
#include "common/backoff.h"
#include "common/timer.h"

namespace hal::sw {

using stream::StreamId;
using stream::Tuple;
using stream::TupleBatch;

HandshakeJoinEngine::HandshakeJoinEngine(HandshakeJoinConfig cfg,
                                         stream::JoinSpec spec)
    : cfg_(cfg), spec_(std::move(spec)) {
  HAL_CHECK(cfg_.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.window_size >= cfg_.num_cores,
            "window must hold at least one tuple per core");
  HAL_CHECK(cfg_.window_size % cfg_.num_cores == 0,
            "window_size must be a multiple of num_cores");
  pure_key_equi_ = spec_.is_pure_key_equi();
  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(
        sub_window, cfg_.input_queue_capacity, cfg_.probe));
  }
  for (std::uint32_t i = 0; i + 1 < cfg_.num_cores; ++i) {
    boundaries_.push_back(std::make_unique<Boundary>());
  }
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    threads_.emplace_back([this, i] { core_loop(i); });
  }
}

HandshakeJoinEngine::~HandshakeJoinEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
}

void HandshakeJoinEngine::enter(std::uint32_t i, const Tuple& t,
                                const std::deque<Tuple>* extra) {
  Core& core = *cores_[i];
  const bool is_r = t.origin == StreamId::R;

  // Entry scan: opposite sub-window plus the still-resident occupants of
  // the opposite eviction queue on the entry boundary. The sub-window leg
  // takes the vectorized contiguous-key kernel on pure equi-joins; the
  // per-match counter add is relaxed (see pending_'s ordering note).
  const IndexedSoaWindow& opposite = is_r ? core.win_s : core.win_r;
  std::uint64_t hits = 0;
  auto emit = [&](const Tuple& candidate) {
    const Tuple& r = is_r ? t : candidate;
    const Tuple& s = is_r ? candidate : t;
    core.local_results.push_back(stream::ResultTuple{r, s});
  };
  if (pure_key_equi_) {
    hits += opposite.collect_equal(t.key, emit);
  } else {
    hits += opposite.collect_matching(
        [&](const Tuple& candidate) {
          const Tuple& r = is_r ? t : candidate;
          const Tuple& s = is_r ? candidate : t;
          return spec_.matches(r, s);
        },
        emit);
  }
  if (extra != nullptr) {
    for (const Tuple& candidate : *extra) {
      const Tuple& r = is_r ? t : candidate;
      const Tuple& s = is_r ? candidate : t;
      if (spec_.matches(r, s)) {
        emit(candidate);
        ++hits;
      }
    }
  }
  if (hits > 0) results_count_.fetch_add(hits, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    core.probes += opposite.size() + (extra != nullptr ? extra->size() : 0);
    ++core.entries;
  }

  // Store + evict. R evicts rightward onto boundary[i], S leftward onto
  // boundary[i-1]; past the chain ends the tuple expires.
  IndexedSoaWindow& own = is_r ? core.win_r : core.win_s;
  if (own.size() == own.capacity()) {
    const Tuple evicted = own.oldest();
    if (is_r && i + 1 < cfg_.num_cores) {
      // The handover stays in flight: count it before this entry retires
      // so the pending count can never dip to zero mid-chain.
      pending_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (obs::kEnabled) ++core.handovers;
      std::lock_guard<std::mutex> lk(boundaries_[i]->mu);
      boundaries_[i]->r_q.push_back(evicted);
    } else if (!is_r && i > 0) {
      pending_.fetch_add(1, std::memory_order_relaxed);
      if constexpr (obs::kEnabled) ++core.handovers;
      std::lock_guard<std::mutex> lk(boundaries_[i - 1]->mu);
      boundaries_[i - 1]->s_q.push_back(evicted);
    }
    // else: traversed the full window — expired.
  }
  own.insert(t);
}

void HandshakeJoinEngine::core_loop(std::uint32_t i) {
  Core& core = *cores_[i];
  const bool leftmost = i == 0;
  const bool rightmost = i + 1 == cfg_.num_cores;
  bool prefer_r = true;

  // Every completed entry releases one unit of `pending_`; the matching
  // acquisition happened either in process() (fresh input) or in enter()
  // (handover). The release ordering makes all of the entry's effects —
  // stored results included — visible to whoever observes pending_ == 0.
  // A whole input batch retires with a single release RMW: its batch
  // boundary, which is what lets the per-match adds above stay relaxed.
  auto retire = [this](std::uint64_t n) {
    pending_.fetch_sub(n, std::memory_order_release);
  };

  SpinBackoff backoff;
  while (true) {
    bool did_work = false;
    const bool r_first = prefer_r;
    prefer_r = !prefer_r;

    // Fresh input at the chain ends (either stream for a 1-core chain).
    auto try_input = [&] {
      if (!leftmost && !rightmost) return false;
      BatchPtr batch;
      if (core.batch_input.try_pop(batch)) {
        for (std::size_t k = 0; k < batch->size(); ++k) {
          enter(i, batch->tuple_at(k), nullptr);
        }
        retire(batch->size());
        return true;
      }
      Tuple t;
      if (!core.input.try_pop(t)) return false;
      enter(i, t, nullptr);
      retire(1);
      return true;
    };
    auto try_r = [&] {
      if (leftmost) return false;
      Boundary& b = *boundaries_[i - 1];
      std::unique_lock<std::mutex> lk(b.mu);
      if (b.r_q.empty()) return false;
      const Tuple t = b.r_q.front();
      b.r_q.pop_front();
      enter(i, t, &b.s_q);  // lock held across the scan: atomic crossing
      lk.unlock();
      retire(1);
      return true;
    };
    auto try_s = [&] {
      if (rightmost) return false;
      Boundary& b = *boundaries_[i];
      std::unique_lock<std::mutex> lk(b.mu);
      if (b.s_q.empty()) return false;
      const Tuple t = b.s_q.front();
      b.s_q.pop_front();
      enter(i, t, &b.r_q);
      lk.unlock();
      retire(1);
      return true;
    };

    // Rotate fairly over the three sources so neither fresh input nor
    // either ripple direction can starve the others (unbounded starvation
    // would skew the two streams' windows apart).
    if (r_first) {
      did_work = try_r() || try_input() || try_s();
    } else {
      did_work = try_s() || try_input() || try_r();
    }

    if (did_work) {
      backoff.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    backoff.pause();
  }
}

SwRunReport HandshakeJoinEngine::process(const std::vector<Tuple>& tuples) {
  Timer timer;
  Core& left = *cores_.front();
  Core& right = *cores_.back();
  for (const Tuple& t : tuples) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    auto& q = t.origin == StreamId::R ? left.input : right.input;
    SpinBackoff backoff;
    while (!q.try_push(t)) backoff.pause();
  }
  {
    SpinBackoff backoff;
    while (pending_.load(std::memory_order_acquire) != 0) backoff.pause();
  }
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = results_count_.load(std::memory_order_acquire);
  return report;
}

SwRunReport HandshakeJoinEngine::process_batched(
    const std::vector<Tuple>& tuples, std::size_t batch_size) {
  const std::size_t step = batch_size == 0 ? 1 : batch_size;
  Timer timer;
  Core& left = *cores_.front();
  Core& right = *cores_.back();
  auto feed = [this](Core& core, TupleBatch&& span) {
    if (span.empty()) return;
    const std::uint64_t n = span.size();
    pending_.fetch_add(n, std::memory_order_relaxed);
    auto batch = std::make_shared<const TupleBatch>(std::move(span));
    SpinBackoff backoff;
    BatchPtr to_push = batch;
    while (!core.batch_input.try_push(std::move(to_push))) backoff.pause();
  };
  for (std::size_t pos = 0; pos < tuples.size(); pos += step) {
    const std::size_t count = std::min(step, tuples.size() - pos);
    const std::span<const Tuple> span(tuples.data() + pos, count);
    if (cfg_.num_cores == 1) {
      // One core is both chain ends: the mixed span enters in exact
      // arrival order, keeping the 1-core chain an exact oracle.
      feed(left, TupleBatch::from(span));
    } else {
      TupleBatch r_span;
      TupleBatch s_span;
      for (const Tuple& t : span) {
        (t.origin == StreamId::R ? r_span : s_span).push_back(t);
      }
      feed(left, std::move(r_span));
      feed(right, std::move(s_span));
    }
  }
  {
    SpinBackoff backoff;
    while (pending_.load(std::memory_order_acquire) != 0) backoff.pause();
  }
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = results_count_.load(std::memory_order_acquire);
  return report;
}

void HandshakeJoinEngine::collect_metrics(obs::MetricRegistry& registry,
                                          const std::string& prefix) const {
  std::uint64_t probes = 0;
  std::uint64_t entries = 0;
  std::uint64_t handovers = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const Core& core = *cores_[i];
    const std::string core_prefix =
        prefix + "core." + std::to_string(i) + ".";
    registry.set_counter(core_prefix + "probes", core.probes,
                         obs::Stability::kRuntime);
    registry.set_counter(core_prefix + "matches", core.local_results.size(),
                         obs::Stability::kRuntime);
    registry.set_counter(core_prefix + "entries", core.entries,
                         obs::Stability::kRuntime);
    registry.set_counter(core_prefix + "handovers", core.handovers,
                         obs::Stability::kRuntime);
    probes += core.probes;
    entries += core.entries;
    handovers += core.handovers;
  }
  registry.set_counter(prefix + "probes", probes, obs::Stability::kRuntime);
  registry.set_counter(prefix + "entries", entries, obs::Stability::kRuntime);
  registry.set_counter(prefix + "handovers", handovers,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "results",
                       results_count_.load(std::memory_order_acquire),
                       obs::Stability::kRuntime);
}

void HandshakeJoinEngine::snapshot_state(core::WindowImage& out) {
  SpinBackoff backoff;
  while (pending_.load(std::memory_order_acquire) != 0) backoff.pause();
  out.num_cores = cfg_.num_cores;
  out.window_size = cfg_.window_size;
  out.count_r = 0;  // the chain has no global turn counters
  out.count_s = 0;
  out.results_emitted = results_count_.load(std::memory_order_acquire);
  out.cores.assign(cfg_.num_cores, {});
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    const Core& core = *cores_[i];
    auto& dst = out.cores[i];
    dst.win_r.reserve(core.win_r.size());
    for (std::size_t k = 0; k < core.win_r.size(); ++k) {
      dst.win_r.push_back(core.win_r.at(k));
    }
    dst.win_s.reserve(core.win_s.size());
    for (std::size_t k = 0; k < core.win_s.size(); ++k) {
      dst.win_s.push_back(core.win_s.at(k));
    }
  }
  // Handovers count toward pending_, so the eviction queues have drained
  // by now; captured anyway so the image shape matches the chain and a
  // future mid-flight snapshot would not silently lose occupants.
  out.boundaries.assign(boundaries_.size(), {});
  for (std::size_t b = 0; b < boundaries_.size(); ++b) {
    Boundary& boundary = *boundaries_[b];
    std::lock_guard<std::mutex> lock(boundary.mu);
    out.boundaries[b].r_q.assign(boundary.r_q.begin(), boundary.r_q.end());
    out.boundaries[b].s_q.assign(boundary.s_q.begin(), boundary.s_q.end());
  }
}

bool HandshakeJoinEngine::restore_state(const core::WindowImage& image) {
  if (image.num_cores != cfg_.num_cores ||
      image.window_size != cfg_.window_size ||
      image.cores.size() != cores_.size() ||
      image.boundaries.size() != boundaries_.size()) {
    return false;
  }
  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  for (const auto& src : image.cores) {
    if (src.win_r.size() > sub_window || src.win_s.size() > sub_window ||
        !src.arr_r.empty() || !src.arr_s.empty()) {
      return false;
    }
  }
  SpinBackoff backoff;
  while (pending_.load(std::memory_order_acquire) != 0) backoff.pause();
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    Core& core = *cores_[i];
    const auto& src = image.cores[i];
    // Age-ordered images bulk-load straight into the lanes + one index
    // rebuild (the batched rebuild path, as in SplitJoin's restore).
    core.win_r.load(src.win_r.data(), src.win_r.size());
    core.win_s.load(src.win_s.data(), src.win_s.size());
  }
  for (std::size_t b = 0; b < boundaries_.size(); ++b) {
    Boundary& boundary = *boundaries_[b];
    std::lock_guard<std::mutex> lock(boundary.mu);
    boundary.r_q.assign(image.boundaries[b].r_q.begin(),
                        image.boundaries[b].r_q.end());
    boundary.s_q.assign(image.boundaries[b].s_q.begin(),
                        image.boundaries[b].s_q.end());
  }
  return true;
}

std::vector<stream::ResultTuple> HandshakeJoinEngine::results() const {
  std::vector<stream::ResultTuple> all;
  for (const auto& c : cores_) {
    all.insert(all.end(), c->local_results.begin(), c->local_results.end());
  }
  return all;
}

}  // namespace hal::sw
