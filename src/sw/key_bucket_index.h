// Hash-partitioned key index over a circular slot store (PanJoin-style
// sub-window indexing, PAPERS.md).
//
// The index maintains, per hash bucket, a dense `uint32_t` key lane plus
// the parallel slot ids — the same SoA shape the probe kernels want, just
// restricted to one bucket. An equi-probe then runs `simd::probe_*` over
// ~W/B keys instead of W. Buckets are assigned with the Fibonacci hash
// the cluster keyspace uses, masked to a power-of-two bucket count.
//
// Removal (a slot being overwritten by the circular window) is O(1):
// `pos_of_slot_` remembers where each resident slot sits inside its
// bucket, and removal swaps with the bucket's last element.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "simd/probe.h"

// The hal_simd target defines HAL_SIMD_ENABLED=0 (PUBLIC) when built with
// -DHAL_SIMD=OFF; the default build leaves it undefined, meaning on. The
// prefetch hints below ride the same knob so the scalar-only build stays
// byte-for-byte untouched.
#if !defined(HAL_SIMD_ENABLED)
#define HAL_SIMD_ENABLED 1
#endif

namespace hal::sw {

class KeyBucketIndex {
 public:
  // `capacity` = number of slots in the window this index mirrors.
  // Bucket count ≈ capacity / kTargetFill, clamped to a power of two, so
  // a full uniform window keeps ~kTargetFill residents per bucket.
  explicit KeyBucketIndex(std::size_t capacity)
      : bucket_mask_(bucket_count_for(capacity) - 1),
        buckets_(bucket_mask_ + 1),
        pos_of_slot_(capacity, 0) {
    HAL_CHECK(capacity > 0, "index capacity must be positive");
    // Reserve 2× the uniform fill up front so steady-state inserts stay
    // allocation-free (skewed keys may still grow individual buckets).
    const std::size_t reserve_per_bucket =
        2 * kTargetFill + 2;
    for (Bucket& b : buckets_) {
      b.keys.reserve(reserve_per_bucket);
      b.slots.reserve(reserve_per_bucket);
    }
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bucket_mask_ + 1;
  }

  [[nodiscard]] std::size_t bucket_of(std::uint32_t key) const noexcept {
    const std::uint32_t h = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(key) * 2654435761ULL) >> 16);
    return h & bucket_mask_;
  }

  void add(std::uint32_t key, std::uint32_t slot) {
    Bucket& b = buckets_[bucket_of(key)];
    HAL_ASSERT(slot < pos_of_slot_.size());
    pos_of_slot_[slot] = static_cast<std::uint32_t>(b.keys.size());
    b.keys.push_back(key);
    b.slots.push_back(slot);
  }

  // Removes the (old_key, slot) pairing before the slot is overwritten.
  void remove(std::uint32_t old_key, std::uint32_t slot) noexcept {
    Bucket& b = buckets_[bucket_of(old_key)];
    const std::uint32_t pos = pos_of_slot_[slot];
    HAL_ASSERT(pos < b.slots.size() && b.slots[pos] == slot);
    const std::uint32_t last = static_cast<std::uint32_t>(b.slots.size() - 1);
    if (pos != last) {
      b.keys[pos] = b.keys[last];
      b.slots[pos] = b.slots[last];
      pos_of_slot_[b.slots[pos]] = pos;
    }
    b.keys.pop_back();
    b.slots.pop_back();
  }

  void clear() noexcept {
    for (Bucket& b : buckets_) {
      b.keys.clear();
      b.slots.clear();
    }
  }

  // Bulk (re)build from a dense key lane: keys[i] is the resident key of
  // slot i, for i < count. Equivalent to clear() followed by add(keys[i],
  // i) for every i, but sizes each bucket exactly first, so a rebuild of
  // a skewed window performs no incremental growth and no per-insert
  // unhooking — the batched path of the recovery/elastic rebuild loops.
  void rebuild(const std::uint32_t* keys, std::size_t count) {
    HAL_ASSERT(count <= pos_of_slot_.size());
    for (Bucket& b : buckets_) {
      b.keys.clear();
      b.slots.clear();
    }
    std::vector<std::uint32_t> fill(buckets_.size(), 0);
    for (std::size_t i = 0; i < count; ++i) ++fill[bucket_of(keys[i])];
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (fill[b] > buckets_[b].keys.capacity()) {
        buckets_[b].keys.reserve(fill[b]);
        buckets_[b].slots.reserve(fill[b]);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      Bucket& b = buckets_[bucket_of(keys[i])];
      pos_of_slot_[i] = static_cast<std::uint32_t>(b.keys.size());
      b.keys.push_back(keys[i]);
      b.slots.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Software prefetch of the lanes `key` hashes to, for a probe a few
  // iterations ahead (the bucket header plus the front of both lanes —
  // short buckets, the kTargetFill design point, fit the first lines).
  // Compiles to nothing in the HAL_SIMD=OFF scalar-only build.
  void prefetch(std::uint32_t key) const noexcept {
#if HAL_SIMD_ENABLED
    const Bucket& b = buckets_[bucket_of(key)];
    __builtin_prefetch(b.keys.data(), 0, 1);
    __builtin_prefetch(b.slots.data(), 0, 1);
#else
    (void)key;
#endif
  }

  // Dense lanes of the bucket `key` hashes to, for the probe kernels.
  // keys()[i] pairs with slots()[i]; entries appear in insertion order
  // (oldest first within the bucket, since removal preserves no order —
  // callers must not rely on any particular order).
  [[nodiscard]] const std::uint32_t* bucket_keys(std::size_t b) const noexcept {
    return buckets_[b].keys.data();
  }
  [[nodiscard]] const std::uint32_t* bucket_slots(
      std::size_t b) const noexcept {
    return buckets_[b].slots.data();
  }
  [[nodiscard]] std::size_t bucket_size(std::size_t b) const noexcept {
    return buckets_[b].keys.size();
  }

 private:
  static constexpr std::size_t kTargetFill = 8;

  struct Bucket {
    std::vector<std::uint32_t> keys;
    std::vector<std::uint32_t> slots;
  };

  static std::size_t bucket_count_for(std::size_t capacity) noexcept {
    std::size_t want = capacity / kTargetFill;
    std::size_t buckets = 1;
    while (buckets < want) buckets <<= 1;
    return buckets;
  }

  std::size_t bucket_mask_;
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> pos_of_slot_;  // position inside its bucket
};

}  // namespace hal::sw
