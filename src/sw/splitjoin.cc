#include "sw/splitjoin.h"

#include <chrono>
#include <span>
#include <utility>

#include "common/assert.h"
#include "common/backoff.h"
#include "common/timer.h"

namespace hal::sw {

using stream::ResultTuple;
using stream::StreamId;
using stream::Tuple;
using stream::TupleBatch;

SplitJoinEngine::SplitJoinEngine(SplitJoinConfig cfg, stream::JoinSpec spec)
    : cfg_(cfg), spec_(std::move(spec)) {
  HAL_CHECK(cfg_.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.window_size >= cfg_.num_cores,
            "window must hold at least one tuple per core");
  HAL_CHECK(cfg_.window_size % cfg_.num_cores == 0,
            "window_size must be a multiple of num_cores");
  pure_key_equi_ = spec_.is_pure_key_equi();
  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  cores_.reserve(cfg_.num_cores);
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(
        std::make_unique<Core>(sub_window, cfg_.queue_capacity, cfg_.probe));
  }
  threads_.reserve(cfg_.num_cores);
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    threads_.emplace_back([this, i] { core_loop(i); });
  }
  collector_ = std::thread([this] { collector_loop(); });
}

SplitJoinEngine::~SplitJoinEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  collector_.join();
}

void SplitJoinEngine::process_one(Core& core, std::uint32_t index,
                                  const Tuple& t) {
  const bool is_r = t.origin == StreamId::R;
  const IndexedSoaWindow& opposite = is_r ? core.win_s : core.win_r;
  if constexpr (obs::kEnabled) {
    // +1 for the tuple just popped: the depth the broadcaster saw.
    const std::size_t depth = core.inbox.size_approx() + 1;
    if (depth > core.inbox_high_water) core.inbox_high_water = depth;
    core.probes += opposite.size();
  }
  // Probe: nested-loop scan over the local sub-window, exactly the
  // hardware Processing Core's job on this fraction of the window.
  for (std::size_t i = 0; i < opposite.size(); ++i) {
    const Tuple& candidate = opposite.at(i);
    const Tuple& r = is_r ? t : candidate;
    const Tuple& s = is_r ? candidate : t;
    if (spec_.matches(r, s)) {
      if constexpr (obs::kEnabled) ++core.matches;
      ResultTuple result{r, s};
      SpinBackoff backoff;  // gatherer backpressure
      while (!core.outbox.try_push(result)) backoff.pause();
      result_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Store: round-robin turn counting, identical to the Storage Core.
  IndexedSoaWindow& own = is_r ? core.win_r : core.win_s;
  std::uint64_t& count = is_r ? core.count_r : core.count_s;
  if (count % cfg_.num_cores == index) own.insert(t);
  ++count;

  // The size-1 "batch boundary": this release RMW publishes the relaxed
  // result_count_ add and the window/tally writes above.
  core.processed.fetch_add(1, std::memory_order_release);
}

void SplitJoinEngine::process_batch(Core& core, std::uint32_t index,
                                    const TupleBatch& batch) {
  const bool count_only = !cfg_.collect_results;
  core.match_buf.clear();
  std::size_t batch_matches = 0;
  const std::size_t n = batch.size();
  if constexpr (obs::kEnabled) {
    const std::size_t depth = core.batch_inbox.size_approx() + 1;
    if (depth > core.inbox_high_water) core.inbox_high_water = depth;
  }
  // Tuples are consumed in arrival order with the same probe-then-insert
  // step as process_one — batching changes the dispatch and flush
  // granularity, never the per-tuple semantics, which is what keeps the
  // deterministic obs projection byte-identical to the oracle path.
  for (std::size_t i = 0; i < n; ++i) {
    // Hide the bucket-lane miss of a probe a few tuples ahead (no-op in
    // the HAL_SIMD=OFF build and on the kScan path).
    constexpr std::size_t kPrefetchDistance = 8;
    if (i + kPrefetchDistance < n) {
      const bool pf_r = batch.origin_at(i + kPrefetchDistance) == StreamId::R;
      (pf_r ? core.win_s : core.win_r)
          .prefetch_equal(batch.key_at(i + kPrefetchDistance));
    }
    const bool is_r = batch.origin_at(i) == StreamId::R;
    const IndexedSoaWindow& opposite = is_r ? core.win_s : core.win_r;
    if constexpr (obs::kEnabled) core.probes += opposite.size();
    std::size_t hits = 0;
    if (pure_key_equi_ && count_only) {
      // Pure count kernel: one vectorized pass, nothing materialized.
      hits = opposite.count_equal(batch.key_at(i));
    } else if (pure_key_equi_) {
      const Tuple t = batch.tuple_at(i);
      hits = opposite.collect_equal(batch.key_at(i), [&](const Tuple& c) {
        core.match_buf.push_back(is_r ? ResultTuple{t, c}
                                      : ResultTuple{c, t});
      });
    } else {
      const Tuple t = batch.tuple_at(i);
      hits = opposite.collect_matching(
          [&](const Tuple& c) {
            const Tuple& r = is_r ? t : c;
            const Tuple& s = is_r ? c : t;
            return spec_.matches(r, s);
          },
          [&](const Tuple& c) {
            if (!count_only) {
              core.match_buf.push_back(is_r ? ResultTuple{t, c}
                                            : ResultTuple{c, t});
            }
          });
    }
    if constexpr (obs::kEnabled) core.matches += hits;
    batch_matches += hits;

    IndexedSoaWindow& own = is_r ? core.win_r : core.win_s;
    std::uint64_t& count = is_r ? core.count_r : core.count_s;
    if (count % cfg_.num_cores == index) own.insert(batch.tuple_at(i));
    ++count;
  }
  // Flush: one outbox push + one relaxed counter add for the whole batch.
  // In count-only mode the collector is bypassed entirely — the core
  // settles both counters itself (they are multi-producer atomics; the
  // "collector-owned" convention only applies to the materializing path).
  if (batch_matches > 0) {
    if (count_only) {
      result_count_.fetch_add(batch_matches, std::memory_order_relaxed);
      collected_count_.fetch_add(batch_matches, std::memory_order_relaxed);
    } else {
      std::vector<ResultTuple> flush;
      flush.swap(core.match_buf);
      SpinBackoff backoff;  // gatherer backpressure
      while (!core.batch_outbox.try_push(std::move(flush))) backoff.pause();
      result_count_.fetch_add(batch_matches, std::memory_order_relaxed);
    }
  }
  // Batch boundary: one release RMW publishes everything above.
  core.processed.fetch_add(n, std::memory_order_release);
}

void SplitJoinEngine::core_loop(std::uint32_t index) {
  Core& core = *cores_[index];
  SpinBackoff backoff;
  while (true) {
    bool did_work = false;
    BatchPtr batch;
    if (core.batch_inbox.try_pop(batch)) {
      process_batch(core, index, *batch);
      did_work = true;
    }
    Tuple t;
    if (core.inbox.try_pop(t)) {
      process_one(core, index, t);
      did_work = true;
    }
    if (did_work) {
      backoff.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    backoff.pause();
  }
}

void SplitJoinEngine::collector_loop() {
  SpinBackoff backoff;
  while (true) {
    std::size_t drained = 0;
    for (auto& core : cores_) {
      std::uint64_t from_core = 0;
      ResultTuple result;
      while (core->outbox.try_pop(result)) {
        ++from_core;
        if (cfg_.collect_results) collected_.push_back(result);
      }
      std::vector<ResultTuple> flush;
      while (core->batch_outbox.try_pop(flush)) {
        from_core += flush.size();
        if (cfg_.collect_results) {
          collected_.insert(collected_.end(), flush.begin(), flush.end());
        }
      }
      if (from_core > 0) {
        // One release add per drained core: publishes the collected_
        // appends to whoever acquires collected_count_ (wait_quiescent).
        collected_count_.fetch_add(from_core, std::memory_order_release);
        drained += from_core;
      }
    }
    if (drained > 0) {
      backoff.reset();
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    backoff.pause();
  }
}

void SplitJoinEngine::broadcast(const Tuple& t) {
  for (auto& core : cores_) {
    SpinBackoff backoff;
    while (!core->inbox.try_push(t)) backoff.pause();
  }
  broadcast_count_.fetch_add(1, std::memory_order_release);
}

void SplitJoinEngine::broadcast_batch(const BatchPtr& batch) {
  for (auto& core : cores_) {
    SpinBackoff backoff;
    BatchPtr copy = batch;  // refcount bump, not a data copy
    while (!core->batch_inbox.try_push(std::move(copy))) backoff.pause();
  }
  broadcast_count_.fetch_add(batch->size(), std::memory_order_release);
}

// Ordering contract. Per-match result_count_ adds and per-tuple tallies
// are relaxed / plain; the only release edges on the processing side are
// (a) each core's `processed.fetch_add(n, release)` at its batch boundary
// (n == 1 on the tuple path) and (b) the collector's per-sweep
// `collected_count_` release add. Correspondingly this function:
//   1. acquires `processed` per core until it reaches broadcast_count_ —
//      that acquire pairs with (a) and makes every relaxed result_count_
//      add, window write, and obs tally of those tuples visible here, so
//      result_count_ read afterwards is final for this quiescent period;
//   2. acquires `collected_count_` until it catches result_count_ — that
//      pairs with (b) and publishes the collector's `collected_` appends
//      to the caller.
// A release RMW (not a standalone fence) is used at the batch boundary so
// the contract is visible to TSan, which does not model bare fences.
void SplitJoinEngine::wait_quiescent() {
  const std::uint64_t target = broadcast_count_.load(std::memory_order_acquire);
  SpinBackoff backoff;
  for (auto& core : cores_) {
    while (core->processed.load(std::memory_order_acquire) < target) {
      backoff.pause();
    }
    backoff.reset();
  }
  while (collected_count_.load(std::memory_order_acquire) <
         result_count_.load(std::memory_order_acquire)) {
    backoff.pause();
  }
}

void SplitJoinEngine::prefill(const std::vector<Tuple>& tuples) {
  wait_quiescent();
  // Deal round-robin per stream into per-core age-ordered runs, then
  // bulk-load each sub-window (one exact-reserve index rebuild per core
  // instead of a hook/unhook per tuple — the elastic rebuild hot path).
  std::vector<std::vector<Tuple>> runs_r(cfg_.num_cores);
  std::vector<std::vector<Tuple>> runs_s(cfg_.num_cores);
  std::uint64_t idx_r = 0;
  std::uint64_t idx_s = 0;
  for (const Tuple& t : tuples) {
    const bool is_r = t.origin == StreamId::R;
    std::uint64_t& idx = is_r ? idx_r : idx_s;
    (is_r ? runs_r : runs_s)[idx % cfg_.num_cores].push_back(t);
    ++idx;
  }
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    Core& core = *cores_[i];
    core.win_r.load(runs_r[i].data(), runs_r[i].size());
    core.win_s.load(runs_s[i].data(), runs_s[i].size());
    core.count_r = idx_r;
    core.count_s = idx_s;
  }
}

void SplitJoinEngine::snapshot_state(core::WindowImage& out) {
  wait_quiescent();
  out.num_cores = cfg_.num_cores;
  out.window_size = cfg_.window_size;
  // Every core tracks the same global per-stream counts (it sees every
  // tuple and stores on its round-robin turn), so core 0's are canonical.
  out.count_r = cores_[0]->count_r;
  out.count_s = cores_[0]->count_s;
  out.results_emitted = collected_count_.load(std::memory_order_acquire);
  out.cores.assign(cfg_.num_cores, {});
  out.boundaries.clear();
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    const Core& core = *cores_[i];
    auto& dst = out.cores[i];
    dst.win_r.reserve(core.win_r.size());
    for (std::size_t k = 0; k < core.win_r.size(); ++k) {
      dst.win_r.push_back(core.win_r.at(k));
    }
    dst.win_s.reserve(core.win_s.size());
    for (std::size_t k = 0; k < core.win_s.size(); ++k) {
      dst.win_s.push_back(core.win_s.at(k));
    }
  }
}

bool SplitJoinEngine::restore_state(const core::WindowImage& image) {
  if (image.num_cores != cfg_.num_cores ||
      image.window_size != cfg_.window_size ||
      image.cores.size() != cores_.size() || !image.boundaries.empty()) {
    return false;
  }
  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  for (const auto& src : image.cores) {
    if (src.win_r.size() > sub_window || src.win_s.size() > sub_window ||
        !src.arr_r.empty() || !src.arr_s.empty()) {
      return false;
    }
  }
  wait_quiescent();
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    Core& core = *cores_[i];
    const auto& src = image.cores[i];
    // Image windows are age-ordered; bulk-load rebuilds lanes + index in
    // one pass (recovery restores sit on the supervised-restart MTTR
    // path).
    core.win_r.load(src.win_r.data(), src.win_r.size());
    core.win_s.load(src.win_s.data(), src.win_s.size());
    core.count_r = image.count_r;
    core.count_s = image.count_s;
  }
  return true;
}

SwRunReport SplitJoinEngine::process(const std::vector<Tuple>& tuples) {
  Timer timer;
  for (const Tuple& t : tuples) broadcast(t);
  wait_quiescent();
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = collected_count_.load(std::memory_order_acquire);
  return report;
}

SwRunReport SplitJoinEngine::process_batched(const std::vector<Tuple>& tuples,
                                             std::size_t batch_size) {
  const std::size_t step = batch_size == 0 ? 1 : batch_size;
  Timer timer;
  for (std::size_t pos = 0; pos < tuples.size(); pos += step) {
    const std::size_t count = std::min(step, tuples.size() - pos);
    auto batch = std::make_shared<TupleBatch>(
        TupleBatch::from(std::span(tuples.data() + pos, count)));
    broadcast_batch(batch);
  }
  wait_quiescent();
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = collected_count_.load(std::memory_order_acquire);
  return report;
}

void SplitJoinEngine::collect_metrics(obs::MetricRegistry& registry,
                                      const std::string& prefix) const {
  std::uint64_t probes = 0;
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const Core& core = *cores_[i];
    const std::string core_prefix =
        prefix + "core." + std::to_string(i) + ".";
    registry.set_counter(core_prefix + "probes", core.probes);
    registry.set_counter(core_prefix + "matches", core.matches);
    registry.set_counter(core_prefix + "inbox.high_water",
                         core.inbox_high_water, obs::Stability::kRuntime);
    probes += core.probes;
    matches += core.matches;
  }
  registry.set_counter(prefix + "probes", probes);
  registry.set_counter(prefix + "matches", matches);
  registry.set_counter(prefix + "tuples_broadcast",
                       broadcast_count_.load(std::memory_order_acquire));
  registry.set_counter(prefix + "results",
                       collected_count_.load(std::memory_order_acquire));
}

double SplitJoinEngine::measure_tuple_latency_seconds(const Tuple& t) {
  wait_quiescent();
  Timer timer;
  broadcast(t);
  wait_quiescent();
  return timer.elapsed_seconds();
}

}  // namespace hal::sw
