#include "sw/splitjoin.h"

#include <chrono>

#include "common/assert.h"
#include "common/timer.h"

namespace hal::sw {

using stream::ResultTuple;
using stream::StreamId;
using stream::Tuple;

SplitJoinEngine::SplitJoinEngine(SplitJoinConfig cfg, stream::JoinSpec spec)
    : cfg_(cfg), spec_(std::move(spec)) {
  HAL_CHECK(cfg_.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.window_size >= cfg_.num_cores,
            "window must hold at least one tuple per core");
  HAL_CHECK(cfg_.window_size % cfg_.num_cores == 0,
            "window_size must be a multiple of num_cores");
  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  cores_.reserve(cfg_.num_cores);
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(sub_window, cfg_.queue_capacity));
  }
  threads_.reserve(cfg_.num_cores);
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    threads_.emplace_back([this, i] { core_loop(i); });
  }
  collector_ = std::thread([this] { collector_loop(); });
}

SplitJoinEngine::~SplitJoinEngine() {
  stop_.store(true, std::memory_order_release);
  for (auto& t : threads_) t.join();
  collector_.join();
}

void SplitJoinEngine::core_loop(std::uint32_t index) {
  Core& core = *cores_[index];
  while (true) {
    Tuple t;
    if (!core.inbox.try_pop(t)) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
      continue;
    }

    const bool is_r = t.origin == StreamId::R;
    const hw::SubWindow& opposite = is_r ? core.win_s : core.win_r;
    if constexpr (obs::kEnabled) {
      // +1 for the tuple just popped: the depth the broadcaster saw.
      const std::size_t depth = core.inbox.size_approx() + 1;
      if (depth > core.inbox_high_water) core.inbox_high_water = depth;
      core.probes += opposite.size();
    }
    // Probe: nested-loop scan over the local sub-window, exactly the
    // hardware Processing Core's job on this fraction of the window.
    for (std::size_t i = 0; i < opposite.size(); ++i) {
      const Tuple& candidate = opposite.at(i);
      const Tuple& r = is_r ? t : candidate;
      const Tuple& s = is_r ? candidate : t;
      if (spec_.matches(r, s)) {
        if constexpr (obs::kEnabled) ++core.matches;
        ResultTuple result{r, s};
        while (!core.outbox.try_push(result)) {
          std::this_thread::yield();  // gatherer backpressure
        }
        result_count_.fetch_add(1, std::memory_order_release);
      }
    }
    // Store: round-robin turn counting, identical to the Storage Core.
    hw::SubWindow& own = is_r ? core.win_r : core.win_s;
    std::uint64_t& count = is_r ? core.count_r : core.count_s;
    if (count % cfg_.num_cores == index) own.insert(t);
    ++count;

    core.processed.fetch_add(1, std::memory_order_release);
  }
}

void SplitJoinEngine::collector_loop() {
  while (true) {
    bool any = false;
    for (auto& core : cores_) {
      ResultTuple result;
      while (core->outbox.try_pop(result)) {
        any = true;
        if (cfg_.collect_results) collected_.push_back(result);
        collected_count_.fetch_add(1, std::memory_order_release);
      }
    }
    if (!any) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
  }
}

void SplitJoinEngine::broadcast(const Tuple& t) {
  for (auto& core : cores_) {
    while (!core->inbox.try_push(t)) std::this_thread::yield();
  }
  broadcast_count_.fetch_add(1, std::memory_order_release);
}

void SplitJoinEngine::wait_quiescent() {
  const std::uint64_t target = broadcast_count_.load(std::memory_order_acquire);
  for (auto& core : cores_) {
    while (core->processed.load(std::memory_order_acquire) < target) {
      std::this_thread::yield();
    }
  }
  while (collected_count_.load(std::memory_order_acquire) <
         result_count_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void SplitJoinEngine::prefill(const std::vector<Tuple>& tuples) {
  wait_quiescent();
  std::uint64_t idx_r = 0;
  std::uint64_t idx_s = 0;
  for (const Tuple& t : tuples) {
    const bool is_r = t.origin == StreamId::R;
    std::uint64_t& idx = is_r ? idx_r : idx_s;
    Core& core = *cores_[idx % cfg_.num_cores];
    (is_r ? core.win_r : core.win_s).insert(t);
    ++idx;
  }
  for (auto& core : cores_) {
    core->count_r = idx_r;
    core->count_s = idx_s;
  }
}

SwRunReport SplitJoinEngine::process(const std::vector<Tuple>& tuples) {
  Timer timer;
  for (const Tuple& t : tuples) broadcast(t);
  wait_quiescent();
  SwRunReport report;
  report.elapsed_seconds = timer.elapsed_seconds();
  report.tuples_processed = tuples.size();
  report.results_emitted = collected_count_.load(std::memory_order_acquire);
  return report;
}

void SplitJoinEngine::collect_metrics(obs::MetricRegistry& registry,
                                      const std::string& prefix) const {
  std::uint64_t probes = 0;
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const Core& core = *cores_[i];
    const std::string core_prefix =
        prefix + "core." + std::to_string(i) + ".";
    registry.set_counter(core_prefix + "probes", core.probes);
    registry.set_counter(core_prefix + "matches", core.matches);
    registry.set_counter(core_prefix + "inbox.high_water",
                         core.inbox_high_water, obs::Stability::kRuntime);
    probes += core.probes;
    matches += core.matches;
  }
  registry.set_counter(prefix + "probes", probes);
  registry.set_counter(prefix + "matches", matches);
  registry.set_counter(prefix + "tuples_broadcast",
                       broadcast_count_.load(std::memory_order_acquire));
  registry.set_counter(prefix + "results",
                       collected_count_.load(std::memory_order_acquire));
}

double SplitJoinEngine::measure_tuple_latency_seconds(const Tuple& t) {
  wait_quiescent();
  Timer timer;
  broadcast(t);
  wait_quiescent();
  return timer.elapsed_seconds();
}

}  // namespace hal::sw
