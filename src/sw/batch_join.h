// Batch-parallel stream join — the GPU/Cell column of the accelerator
// spectrum (Figs. 1/3; the paper cites CellJoin [35] as the batched
// data-parallel realization of windowed stream joins).
//
// GPU-class accelerators process streams in *batches*: tuples accumulate
// until a batch fills, then a data-parallel kernel joins the whole batch
// against the windows at once. Compared to the per-tuple engines this
// trades latency for throughput — results for a tuple appear only when
// its batch completes, but the per-tuple synchronization cost is
// amortized over the batch (one dispatch per batch instead of one queue
// round trip per tuple), and the inner loop is a dense, vectorizable
// scan. That positioning (throughput above the CPU engines, latency above
// the FPGA engines) is exactly where Fig. 1 places GPUs.
//
// Semantics remain *exactly* the eager oracle's: within a batch, tuple i
// probes the window state plus the earlier-in-batch tuples of the
// opposite stream, so batching changes when results appear, never which.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "core/window_image.h"
#include "obs/enabled.h"
#include "obs/metrics.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"
#include "sw/key_bucket_index.h"
#include "sw/probe_path.h"
#include "sw/splitjoin.h"  // SwRunReport

namespace hal::sw {

struct BatchJoinConfig {
  std::uint32_t num_workers = 4;  // "streaming multiprocessors"
  std::size_t window_size = 1 << 12;  // per stream
  std::size_t batch_size = 1 << 10;
  // Equi-probe strategy of the batch kernel (see sw/probe_path.h).
  // kIndexed probes the key bucket and filters the few candidates by the
  // logical-expiry cutoff; kScan runs the masked simd kernels over the
  // full dense lanes.
  ProbePath probe = ProbePath::kIndexed;
};

class BatchJoinEngine {
 public:
  BatchJoinEngine(BatchJoinConfig cfg, stream::JoinSpec spec);
  ~BatchJoinEngine();

  BatchJoinEngine(const BatchJoinEngine&) = delete;
  BatchJoinEngine& operator=(const BatchJoinEngine&) = delete;

  // Processes the tuples (padding the final partial batch is not needed —
  // it is flushed) and blocks until every batch completed.
  SwRunReport process(const std::vector<stream::Tuple>& tuples);

  // Same, but with an explicit dispatch granularity overriding the
  // configured batch_size for this call (still capped by the window —
  // larger batches would let in-batch pairs expire mid-batch). Batch size
  // changes when results appear, never which: the result multiset is
  // identical for every granularity, including 1 (the tuple-at-a-time
  // oracle).
  SwRunReport process_batched(const std::vector<stream::Tuple>& tuples,
                              std::size_t batch_size);

  // Latency of the first result of a batch: seconds from the arrival of a
  // batch's first tuple until the batch's results are available, at the
  // given sustained input rate (tuples/s). Computed from the measured
  // batch kernel time plus the accumulation delay — the structural
  // latency floor of batched processing.
  [[nodiscard]] double batch_latency_seconds(double input_rate_tps) const;

  [[nodiscard]] const std::vector<stream::ResultTuple>& results() const {
    return results_;
  }
  void clear_results() { results_.clear(); }
  [[nodiscard]] double last_kernel_seconds() const {
    return last_kernel_seconds_;
  }
  [[nodiscard]] const BatchJoinConfig& config() const noexcept { return cfg_; }

  // Checkpoint/restore of the windowed state (hal::recovery): per-slice
  // entries in age order with their arrival indices (the logical-expiry
  // cursors) plus the global per-stream turn counters. The engine is
  // quiescent between process() calls (batch dispatch is synchronous), so
  // no waiting is needed; the next dispatch's generation release/acquire
  // publishes restored state to the workers. restore_state returns false
  // (engine untouched) on a worker-count/window-size/shape mismatch.
  void snapshot_state(core::WindowImage& out);
  [[nodiscard]] bool restore_state(const core::WindowImage& image);

  // Publishes batch counts, a batch-fill histogram (how full each
  // dispatched batch was — partial flushes show up as underfilled
  // buckets) and kernel timing. Fill/result metrics are deterministic;
  // kernel seconds are wall-clock and therefore kRuntime. The fill
  // histogram accumulates records, so call at most once per registry.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  // A windowed tuple tagged with its per-stream arrival index, so the
  // batch kernel can apply *logical expiry*: a batch tuple at position i
  // must not see window entries that the earlier same-batch arrivals of
  // the candidate's stream would already have evicted.
  struct Entry {
    stream::Tuple tuple;
    std::uint64_t arrival = 0;
  };

  struct WorkerSlice {
    // Sub-windows owned by this worker (round-robin slices, as in
    // SplitJoin, so the union is the exact count-based window). The key
    // and arrival lanes mirror the Entry array in storage order so the
    // equi-join kernel can run a branchless count pass over dense arrays
    // (key match AND not logically expired) before the rare scalar
    // materialization pass; the bucket indices serve the kIndexed path.
    explicit WorkerSlice(std::size_t sub_window)
        : win_r(sub_window),
          win_s(sub_window),
          keys_r(sub_window, 0),
          keys_s(sub_window, 0),
          arrivals_r(sub_window, 0),
          arrivals_s(sub_window, 0),
          idx_r(sub_window),
          idx_s(sub_window),
          scratch(sub_window, 0) {}
    std::vector<Entry> win_r;
    std::vector<Entry> win_s;
    std::vector<std::uint32_t> keys_r;
    std::vector<std::uint32_t> keys_s;
    std::vector<std::uint64_t> arrivals_r;
    std::vector<std::uint64_t> arrivals_s;
    KeyBucketIndex idx_r;
    KeyBucketIndex idx_s;
    std::vector<std::uint32_t> scratch;  // probe_collect landing pad
    std::size_t head_r = 0;  // circular
    std::size_t head_s = 0;
    std::size_t size_r = 0;
    std::size_t size_s = 0;
    std::vector<stream::ResultTuple> out;
  };

  void worker_loop(std::uint32_t index);
  void run_batch(const stream::Tuple* data, std::size_t count);
  void insert_into_slice(WorkerSlice& slice, const stream::Tuple& t,
                         std::uint64_t arrival);

  BatchJoinConfig cfg_;
  stream::JoinSpec spec_;
  bool pure_key_equi_ = false;
  std::size_t sub_window_ = 0;

  std::vector<std::unique_ptr<WorkerSlice>> slices_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};

  // Batch dispatch: generation counter the workers watch; the batch data
  // pointer/count and the prefix counts are published before the
  // generation bump.
  const stream::Tuple* batch_data_ = nullptr;
  std::size_t batch_count_ = 0;
  std::vector<std::uint64_t> r_before_;  // R tuples at positions < i
  std::vector<std::uint64_t> s_before_;
  std::uint64_t batch_base_r_ = 0;  // per-stream counts before the batch
  std::uint64_t batch_base_s_ = 0;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> generation_{0};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> done_count_{0};

  std::uint64_t count_r_ = 0;  // round-robin turn counters
  std::uint64_t count_s_ = 0;
  std::vector<stream::ResultTuple> results_;
  double last_kernel_seconds_ = 0.0;
  double total_kernel_seconds_ = 0.0;
  std::uint64_t batches_run_ = 0;
  std::vector<std::size_t> batch_fills_;  // per-batch tuple counts (obs)
};

}  // namespace hal::sw
