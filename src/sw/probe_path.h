// Probe-path selector for the software engines' equi-join windows.
#pragma once

namespace hal::sw {

// Which probe strategy the batched equi path of a window uses.
//   kIndexed — hash-partitioned bucket probe (PanJoin-style): only the
//     residents whose key hashes to the probe key's bucket are touched,
//     O(bucket + matches) instead of O(W). The default.
//   kScan    — full scan of the dense key lane through the hal::simd
//     kernels (the PR-4 shape, now explicitly vectorized). Kept as the
//     measured contrast and as the differential oracle for kIndexed.
// Both paths produce the same match multiset and the same deterministic
// obs tallies; the tuple-at-a-time path is unaffected either way.
enum class ProbePath { kIndexed, kScan };

[[nodiscard]] constexpr const char* to_string(ProbePath p) noexcept {
  return p == ProbePath::kIndexed ? "indexed" : "scan";
}

}  // namespace hal::sw
