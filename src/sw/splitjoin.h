// Software realization of the uni-flow model: SplitJoin on a multi-core
// CPU (the system the paper benchmarks in Figs. 14d and 16; original
// design in [34], Najafi et al., ATC'16).
//
// Architecture mirrors the hardware engine: the caller thread plays the
// distribution network (broadcasting every tuple to every join core's
// inbox — the paper notes the distribution/result-gathering networks
// "consume a portion of the processors' capacity", which is why 28 of 32
// cores was their sweet spot); N join-core threads each own a sub-window
// pair and process every tuple, storing in round-robin turn; a collector
// thread plays the result gathering network, draining the outboxes.
//
// Communication uses bounded lock-free SPSC rings, the software analogue
// of the hardware FIFO links. The sliding window lives in ordinary heap
// memory — the paper's point that the software variant pays main-memory
// traffic for every probe while the FPGA couples each sub-window to its
// core's BRAM.
//
// Two data paths share the engine:
//   - tuple-at-a-time (`process`): one SPSC push per core per tuple, one
//     branchy probe per candidate. This is the correctness oracle and the
//     cost model of the paper's measured software baseline.
//   - batched (`process_batched`): arrival-order tuple batches travel as
//     one SPSC push per core per batch; each core runs a vectorizable
//     probe kernel over its contiguous sub-window key lane and flushes
//     buffered matches with one outbox push + one counter add per batch.
//     Per-tuple semantics (probe-then-insert, round-robin store) are
//     preserved exactly, so the result multiset and the deterministic obs
//     projection are byte-identical to the oracle path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "common/stats.h"
#include "core/window_image.h"
#include "obs/enabled.h"
#include "obs/metrics.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"
#include "stream/tuple_batch.h"
#include "sw/indexed_window.h"
#include "sw/probe_path.h"

namespace hal::sw {

struct SplitJoinConfig {
  std::uint32_t num_cores = 4;
  // Per-stream window size summed across cores; multiple of num_cores.
  std::size_t window_size = 1 << 12;
  std::size_t queue_capacity = 1 << 10;
  // Collect full result tuples (tests) or count only (benchmarks, where
  // materializing hundreds of millions of results would swamp memory).
  bool collect_results = true;
  // Equi-probe strategy of the batched path (see sw/probe_path.h). The
  // tuple-at-a-time oracle is unaffected.
  ProbePath probe = ProbePath::kIndexed;
};

struct SwRunReport {
  double elapsed_seconds = 0.0;
  std::uint64_t tuples_processed = 0;
  std::uint64_t results_emitted = 0;
  [[nodiscard]] double throughput_tuples_per_sec() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(tuples_processed) / elapsed_seconds
               : 0.0;
  }
};

class SplitJoinEngine {
 public:
  SplitJoinEngine(SplitJoinConfig cfg, stream::JoinSpec spec);
  ~SplitJoinEngine();

  SplitJoinEngine(const SplitJoinEngine&) = delete;
  SplitJoinEngine& operator=(const SplitJoinEngine&) = delete;

  // Feeds the batch through the engine and blocks until every tuple is
  // fully processed and every result collected.
  SwRunReport process(const std::vector<stream::Tuple>& tuples);

  // Batched data path: slices `tuples` into arrival-order TupleBatches of
  // `batch_size` and feeds each as a unit (batch_size == 0 or 1 degrades
  // to per-tuple batches, still through the batched machinery). Blocks
  // until quiescent, like `process`. Results and deterministic metrics
  // are identical to `process` on the same input.
  SwRunReport process_batched(const std::vector<stream::Tuple>& tuples,
                              std::size_t batch_size);

  // Warm-start: loads tuples into the sliding windows (round-robin
  // storage) without streaming them, so large-window benches start from
  // the steady state the paper measures. Must be called while the engine
  // is idle and before any subsequent `process` call that should observe
  // the prefilled windows (the inbox push/pop pair publishes the writes).
  void prefill(const std::vector<stream::Tuple>& tuples);

  // Checkpoint/restore of the windowed state (hal::recovery). Both block
  // until the engine is quiescent, then touch the core-owned windows from
  // the caller thread — sound under the same publication argument as
  // `prefill` (the next inbox push/pop pair publishes the writes).
  // snapshot captures per-core windows in age order plus the round-robin
  // store counters; restore_state replaces them, returning false (engine
  // untouched) on a core-count/window-size/shape mismatch.
  void snapshot_state(core::WindowImage& out);
  [[nodiscard]] bool restore_state(const core::WindowImage& image);

  // Latency of a single tuple against the current window contents: feeds
  // one tuple and blocks until every core finished its scan and all its
  // results were collected. Call after `process()` has filled the windows.
  double measure_tuple_latency_seconds(const stream::Tuple& t);

  [[nodiscard]] const std::vector<stream::ResultTuple>& results() const {
    return collected_;
  }
  void clear_results() { collected_.clear(); }
  [[nodiscard]] std::uint64_t result_count() const {
    return result_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const SplitJoinConfig& config() const noexcept { return cfg_; }

  // Publishes per-core probe/match counters (deterministic: every core
  // scans its full sub-window for every tuple regardless of thread
  // timing) and inbox-depth high-water marks (runtime: they depend on
  // scheduling races). Call only while the engine is idle.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  using BatchPtr = std::shared_ptr<const stream::TupleBatch>;

  struct Core {
    Core(std::size_t sub_window, std::size_t queue_capacity, ProbePath probe)
        : win_r(sub_window, probe),
          win_s(sub_window, probe),
          inbox(queue_capacity),
          batch_inbox(queue_capacity),
          outbox(queue_capacity),
          batch_outbox(queue_capacity) {}
    IndexedSoaWindow win_r;
    IndexedSoaWindow win_s;
    SpscQueue<stream::Tuple> inbox;        // tuple-at-a-time path
    SpscQueue<BatchPtr> batch_inbox;       // batched path
    SpscQueue<stream::ResultTuple> outbox;
    SpscQueue<std::vector<stream::ResultTuple>> batch_outbox;
    std::uint64_t count_r = 0;
    std::uint64_t count_s = 0;
    std::vector<stream::ResultTuple> match_buf;  // core-owned flush buffer
    // Core-thread-owned observability tallies; read at quiescence only
    // (the processed counter's release/acquire pair publishes them).
    std::uint64_t probes = 0;
    std::uint64_t matches = 0;
    std::size_t inbox_high_water = 0;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> processed{0};
  };

  void core_loop(std::uint32_t index);
  void process_one(Core& core, std::uint32_t index, const stream::Tuple& t);
  void process_batch(Core& core, std::uint32_t index,
                     const stream::TupleBatch& batch);
  void collector_loop();
  void broadcast(const stream::Tuple& t);
  void broadcast_batch(const BatchPtr& batch);
  void wait_quiescent();

  SplitJoinConfig cfg_;
  stream::JoinSpec spec_;
  bool pure_key_equi_ = false;  // fixed at construction; spec_ is immutable
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::thread> threads_;
  std::thread collector_;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> broadcast_count_{0};
  std::atomic<std::uint64_t> result_count_{0};
  std::atomic<std::uint64_t> collected_count_{0};
  std::vector<stream::ResultTuple> collected_;  // collector-thread-owned
                                                // while running
};

}  // namespace hal::sw
