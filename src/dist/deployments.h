// The three acceleration deployment modes of the system model (§II,
// Fig. 4 top layer; Fig. 18), instantiated for a canonical IoT analytics
// pipeline:
//
//   sensors → ingress link → datacenter switch → host NIC/PCIe → compute
//
// * kCpuOnly       — passive path, join runs in software on the host.
// * kStandalone    — the entire engine lives on an FPGA at the switch
//                    ("the entire software stack is embedded on
//                    hardware"); filtered results travel to the consumer.
// * kCoPlacement   — an accelerator *on the data path* (at the switch)
//                    performs partial/best-effort filtering (selection
//                    pushdown); the host joins the surviving traffic
//                    (IBM Netezza style).
// * kCoProcessor   — the host offloads the join to an attached FPGA
//                    across PCIe (Amazon F1 style [41]): full line rate to
//                    the host, plus a PCIe round trip on the offload.
//
// Throughput/latency parameters for the engine stages come from this
// repository's own measurements and models (uni-flow engine throughput,
// software SplitJoin, timing model clocks), so the comparison composes
// the case study's results into the landscape's top layer.
#pragma once

#include "dist/path_model.h"

namespace hal::dist {

enum class Deployment : std::uint8_t {
  kCpuOnly,
  kStandalone,
  kCoPlacement,
  kCoProcessor,
};

[[nodiscard]] constexpr const char* to_string(Deployment d) noexcept {
  switch (d) {
    case Deployment::kCpuOnly: return "cpu-only";
    case Deployment::kStandalone: return "standalone";
    case Deployment::kCoPlacement: return "co-placement";
    case Deployment::kCoProcessor: return "co-processor";
  }
  return "?";
}

struct PipelineParams {
  // Infrastructure.
  double ingress_link_tps = 50e6;    // sensor aggregation link
  double ingress_latency_us = 200.0; // WAN/edge hop
  double switch_tps = 100e6;         // line rate through the switch
  double switch_latency_us = 5.0;
  double nic_tps = 30e6;             // host NIC + kernel path
  double nic_latency_us = 20.0;
  double pcie_latency_us = 3.0;      // one PCIe crossing
  double pcie_tps = 60e6;

  // Workload: fraction of traffic that survives the selection predicate
  // (pushed down when an accelerator sits on the path).
  double filter_selectivity = 0.05;
  // Join output per input tuple after filtering.
  double join_selectivity = 0.2;

  // Engine capacities (tuples/s), typically taken from this repo's
  // harness: hardware uni-flow = N*F/W; software SplitJoin = measured.
  double fpga_join_tps = 5e6;
  double fpga_filter_tps = 100e6;  // selection at line rate (Ibex-style)
  double cpu_join_tps = 0.2e6;
  double cpu_filter_tps = 2e6;
  double fpga_join_latency_us = 2.0;   // Fig. 15 scale
  double cpu_join_latency_us = 2000.0; // Fig. 16 scale
  double cpu_filter_latency_us = 50.0;
  double fpga_filter_latency_us = 1.0;
};

// Builds the end-to-end path for a deployment mode.
[[nodiscard]] PathModel make_pipeline(Deployment d,
                                      const PipelineParams& params);

}  // namespace hal::dist
