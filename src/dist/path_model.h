// Active data path modeling (§II, system model layer).
//
// "In a distributed setting, each piece of data travels from a source
// (data producer) to a destination (data consumer), passing through the
// network and temporarily residing in storage and memory of intermediate
// nodes. Usually, the actual data computation task is performed close to
// the destination using CPUs. Instead, an active data path distributes
// processing tasks along the entire length to various network, storage,
// and memory components by making them 'active', i.e., coupled with an
// accelerator."
//
// A PathModel is a pipeline of stages (links, switches, storage hops,
// compute elements), each with a processing capacity, a traversal
// latency, and a selectivity (the fraction of traffic it lets through —
// an *active* stage with a pushed-down filter has selectivity < 1, a
// passive hop has 1). The composition rules:
//
//   sustainable input rate  R* = min_j  capacity_j / Π_{i<j} selectivity_i
//   end-to-end latency      L  = Σ_j latency_j
//
// i.e., filtering early multiplies every downstream stage's effective
// capacity — the quantitative core of the paper's co-placement argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.h"

namespace hal::dist {

struct Stage {
  std::string name;
  // Tuples/s this stage can process at its input (link bandwidth, switch
  // line rate, engine throughput, ...).
  double capacity_tps = 0.0;
  // Added traversal latency in microseconds (wire + processing).
  double latency_us = 0.0;
  // Fraction of input traffic forwarded downstream (1.0 = passive hop).
  double selectivity = 1.0;
};

class PathModel {
 public:
  explicit PathModel(std::string name) : name_(std::move(name)) {}

  PathModel& add_stage(Stage s) {
    HAL_CHECK(s.capacity_tps > 0.0, "stage capacity must be positive");
    HAL_CHECK(s.selectivity > 0.0 && s.selectivity <= 1.0,
              "selectivity must be in (0, 1]");
    stages_.push_back(std::move(s));
    return *this;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Stage>& stages() const noexcept {
    return stages_;
  }

  // Maximum source rate the path sustains without any stage saturating.
  [[nodiscard]] double sustainable_input_tps() const;

  // One-tuple traversal latency, source to consumer.
  [[nodiscard]] double end_to_end_latency_us() const;

  // The stage that saturates first at the sustainable rate.
  [[nodiscard]] const Stage& bottleneck() const;

  // Traffic arriving at the consumer per unit input (Π selectivity).
  [[nodiscard]] double delivered_fraction() const;

 private:
  std::string name_;
  std::vector<Stage> stages_;
};

}  // namespace hal::dist
