#include "dist/path_model.h"

#include <limits>

namespace hal::dist {

double PathModel::sustainable_input_tps() const {
  HAL_CHECK(!stages_.empty(), "empty path");
  double rate = std::numeric_limits<double>::infinity();
  double volume = 1.0;  // traffic per unit input reaching the next stage
  for (const Stage& s : stages_) {
    rate = std::min(rate, s.capacity_tps / volume);
    volume *= s.selectivity;
  }
  return rate;
}

double PathModel::end_to_end_latency_us() const {
  HAL_CHECK(!stages_.empty(), "empty path");
  double total = 0.0;
  for (const Stage& s : stages_) total += s.latency_us;
  return total;
}

const Stage& PathModel::bottleneck() const {
  HAL_CHECK(!stages_.empty(), "empty path");
  const Stage* worst = &stages_.front();
  double worst_rate = std::numeric_limits<double>::infinity();
  double volume = 1.0;
  for (const Stage& s : stages_) {
    const double rate = s.capacity_tps / volume;
    if (rate < worst_rate) {
      worst_rate = rate;
      worst = &s;
    }
    volume *= s.selectivity;
  }
  return *worst;
}

double PathModel::delivered_fraction() const {
  double volume = 1.0;
  for (const Stage& s : stages_) volume *= s.selectivity;
  return volume;
}

}  // namespace hal::dist
