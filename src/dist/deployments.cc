#include "dist/deployments.h"

namespace hal::dist {

PathModel make_pipeline(Deployment d, const PipelineParams& p) {
  PathModel path(to_string(d));
  path.add_stage({"ingress link", p.ingress_link_tps, p.ingress_latency_us,
                  1.0});

  switch (d) {
    case Deployment::kCpuOnly:
      path.add_stage({"switch (passive)", p.switch_tps, p.switch_latency_us,
                      1.0});
      path.add_stage({"host NIC", p.nic_tps, p.nic_latency_us, 1.0});
      path.add_stage({"cpu filter", p.cpu_filter_tps,
                      p.cpu_filter_latency_us, p.filter_selectivity});
      path.add_stage({"cpu join", p.cpu_join_tps, p.cpu_join_latency_us,
                      p.join_selectivity});
      break;

    case Deployment::kStandalone:
      // The whole engine is embedded at the switch; only results continue.
      path.add_stage({"switch FPGA filter", p.fpga_filter_tps,
                      p.fpga_filter_latency_us, p.filter_selectivity});
      path.add_stage({"switch FPGA join", p.fpga_join_tps,
                      p.fpga_join_latency_us, p.join_selectivity});
      path.add_stage({"host NIC (results)", p.nic_tps, p.nic_latency_us,
                      1.0});
      break;

    case Deployment::kCoPlacement:
      // Best-effort filtering on the path; the join stays on the host.
      path.add_stage({"switch FPGA filter", p.fpga_filter_tps,
                      p.fpga_filter_latency_us, p.filter_selectivity});
      path.add_stage({"host NIC", p.nic_tps, p.nic_latency_us, 1.0});
      path.add_stage({"cpu join", p.cpu_join_tps, p.cpu_join_latency_us,
                      p.join_selectivity});
      break;

    case Deployment::kCoProcessor:
      // Everything reaches the host, which ships work to its FPGA over
      // PCIe (filter + join on the card) and reads results back.
      path.add_stage({"switch (passive)", p.switch_tps, p.switch_latency_us,
                      1.0});
      path.add_stage({"host NIC", p.nic_tps, p.nic_latency_us, 1.0});
      path.add_stage({"PCIe to card", p.pcie_tps, p.pcie_latency_us, 1.0});
      path.add_stage({"card filter", p.fpga_filter_tps,
                      p.fpga_filter_latency_us, p.filter_selectivity});
      path.add_stage({"card join", p.fpga_join_tps, p.fpga_join_latency_us,
                      p.join_selectivity});
      path.add_stage({"PCIe results", p.pcie_tps, p.pcie_latency_us, 1.0});
      break;
  }
  return path;
}

}  // namespace hal::dist
