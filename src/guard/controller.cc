#include "guard/controller.h"

#include <algorithm>

namespace hal::guard {

GuardController::GuardController(cluster::ClusterEngine& engine,
                                 elastic::Controller& elastic,
                                 GuardControllerConfig cfg)
    : engine_(engine), elastic_(elastic), cfg_(cfg),
      detector_(cfg.detector) {}

GuardController::GuardController(cluster::ClusterEngine& engine,
                                 elastic::Controller& elastic)
    : GuardController(engine, elastic,
                      GuardControllerConfig{
                          .detector = engine.config().guard.detector}) {}

std::vector<std::uint32_t> GuardController::step() {
  ++steps_;
  const cluster::ClusterReport rep = engine_.report();

  // Feed per-slot service deltas. Evidence comes from the slot's active
  // replica view: every live replica of a slot processes the same
  // traffic, so summing replicas would just double the busy time —
  // instead take the max (µs/tuple of the slowest replica is what the
  // epoch barrier actually waits for).
  for (const cluster::WorkerReport& w : rep.workers) {
    if (w.index >= prev_busy_.size()) {
      prev_busy_.resize(w.index + 1, 0.0);
      prev_tuples_.resize(w.index + 1, 0);
    }
  }
  const std::uint32_t slots = engine_.slot_count();
  for (std::uint32_t slot = 0; slot < slots; ++slot) {
    if (engine_.slot_retired(slot)) continue;
    double worst_us_per_tuple = -1.0;
    double best_busy_us = 0.0;
    std::uint64_t best_tuples = 0;
    for (const cluster::WorkerReport& w : rep.workers) {
      if (w.slot != slot || w.dropped) continue;
      const double busy_us =
          (w.busy_seconds - prev_busy_[w.index]) * 1e6;
      const std::uint64_t tuples = w.tuples_in - prev_tuples_[w.index];
      if (tuples == 0) continue;
      const double us_per_tuple = busy_us / static_cast<double>(tuples);
      if (us_per_tuple > worst_us_per_tuple) {
        worst_us_per_tuple = us_per_tuple;
        best_busy_us = busy_us;
        best_tuples = tuples;
      }
    }
    if (best_tuples > 0) detector_.observe(slot, best_busy_us, best_tuples);
  }
  for (const cluster::WorkerReport& w : rep.workers) {
    prev_busy_[w.index] = w.busy_seconds;
    prev_tuples_[w.index] = w.tuples_in;
  }

  detector_.end_epoch();

  std::vector<std::uint32_t> evicted;
  if (!cfg_.auto_quarantine) return evicted;
  for (const std::uint32_t slot : detector_.suspects()) {
    if (quarantines_.size() >= cfg_.max_quarantines) break;
    if (engine_.active_slot_count() <= cfg_.min_live_slots) break;
    const ShardHealth* h = detector_.find(slot);
    const double suspicion = h != nullptr ? h->suspicion : 0.0;
    const elastic::MigrationReport mig = elastic_.drain_slot(slot);
    detector_.forget(slot);
    quarantines_.push_back(QuarantineEvent{
        .slot = slot,
        .suspicion = suspicion,
        .step = steps_,
        .pause_seconds = mig.pause_seconds,
        .moved_keyslots = mig.moved_keyslots,
        .moved_tuples = mig.moved_tuples,
    });
    evicted.push_back(slot);
  }
  return evicted;
}

void GuardController::collect_metrics(obs::MetricRegistry& registry,
                                      const std::string& prefix) const {
  std::uint64_t moved_tuples = 0;
  std::uint64_t moved_keyslots = 0;
  double pause = 0.0;
  for (const QuarantineEvent& q : quarantines_) {
    moved_tuples += q.moved_tuples;
    moved_keyslots += q.moved_keyslots;
    pause += q.pause_seconds;
  }
  // Everything here rides on measured service times, so none of it
  // belongs in the deterministic projection.
  registry.set_counter(prefix + "quarantines", quarantines_.size(),
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "quarantine_moved_keyslots", moved_keyslots,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "quarantine_moved_tuples", moved_tuples,
                       obs::Stability::kRuntime);
  registry.set_gauge(prefix + "quarantine_pause_seconds_total", pause);
  std::uint64_t suspected = 0;
  for (const ShardHealth& h : detector_.health()) {
    registry.set_gauge(prefix + "shard" + std::to_string(h.slot) +
                           ".ewma_us_per_tuple",
                       h.ewma_us_per_tuple);
    registry.set_gauge(prefix + "shard" + std::to_string(h.slot) +
                           ".suspicion",
                       h.suspicion);
    if (h.suspected) ++suspected;
  }
  registry.set_gauge(prefix + "suspected_shards",
                     static_cast<double>(suspected));
}

}  // namespace hal::guard
