// GuardController — closes the gray-failure loop: detect, quarantine,
// re-route.
//
// The cluster already had every mechanism a slow shard needs *except* the
// decision: replica failover handles crash-stop, elastic migration moves
// keyslots between live slots, and the per-worker report carries the
// service-time evidence. The controller runs at the epoch barrier (same
// thread and same freeze point as elastic::Controller), feeds each live
// slot's busy-time/tuple deltas into the SlowShardDetector, and when a
// shard's suspicion croses the threshold it:
//
//   1. drains the suspect: elastic::Controller::drain_slot() re-routes its
//      keyslots to the healthy peers (full migration protocol — freeze,
//      ship, rebuild, swap) and retires the slot, and
//   2. forgets the slot in the detector so the peer median is computed
//      over the survivors only.
//
// The result is the acceptance contract: a gray-slow shard is removed
// from the serving path within `threshold/add` epochs of turning slow,
// output stays exact (the migration is byte-identical to a fixed-topology
// oracle), and full-rate service resumes on the survivors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "elastic/controller.h"
#include "guard/detector.h"

namespace hal::guard {

struct QuarantineEvent {
  std::uint32_t slot = 0;
  double suspicion = 0.0;
  std::uint64_t step = 0;        // step() call index that quarantined it
  double pause_seconds = 0.0;    // migration pause (the MTTR numerator)
  std::uint32_t moved_keyslots = 0;
  std::uint64_t moved_tuples = 0;
};

struct GuardControllerConfig {
  // Detector tuning; defaulted from the engine's GuardConfig when
  // constructed through the two-argument constructor.
  DetectorConfig detector;
  // Quarantine suspects automatically during step(). Off = detect-only
  // (suspects surface in health()/obs, nothing migrates).
  bool auto_quarantine = true;
  // Never quarantine below this many surviving live slots.
  std::uint32_t min_live_slots = 2;
  // Ceiling on total quarantines (a runaway detector must not evict the
  // whole cluster).
  std::uint32_t max_quarantines = 1;
};

class GuardController {
 public:
  // Both references must outlive the controller; all calls must happen on
  // the thread that calls engine.process(), between process() calls.
  GuardController(cluster::ClusterEngine& engine,
                  elastic::Controller& elastic,
                  GuardControllerConfig cfg);
  // Detector config taken from engine.config().guard.detector.
  GuardController(cluster::ClusterEngine& engine,
                  elastic::Controller& elastic);

  GuardController(const GuardController&) = delete;
  GuardController& operator=(const GuardController&) = delete;

  // One control-loop tick at the epoch barrier: feed per-slot service
  // deltas, update suspicion, quarantine newly suspected slots (subject
  // to config). Returns the slots quarantined by this call.
  std::vector<std::uint32_t> step();

  [[nodiscard]] const SlowShardDetector& detector() const noexcept {
    return detector_;
  }
  [[nodiscard]] const std::vector<QuarantineEvent>& quarantines()
      const noexcept {
    return quarantines_;
  }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

  // Totals under `prefix` ("guard."): quarantine counts and moved state
  // are deterministic for a fixed fault schedule; pause time is not.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  cluster::ClusterEngine& engine_;
  elastic::Controller& elastic_;
  GuardControllerConfig cfg_;
  SlowShardDetector detector_;
  std::uint64_t steps_ = 0;
  std::vector<QuarantineEvent> quarantines_;

  // Previous-epoch per-worker totals (indexed by worker index) so step()
  // feeds deltas, not lifetime sums.
  std::vector<double> prev_busy_;
  std::vector<std::uint64_t> prev_tuples_;
};

}  // namespace hal::guard
