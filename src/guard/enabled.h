// Compile-time switch for the hal::guard overload-control layer.
//
// Build with -DHAL_GUARD=0 (CMake: -DHAL_GUARD=OFF) to compile the guard
// out entirely: the facade never wraps engines in a guarded ingress and
// the cluster's admission hook short-circuits at a constexpr branch, so a
// disabled build carries zero runtime and zero memory overhead — the same
// contract hal::obs gives the figure benches (src/obs/enabled.h).
//
// Kept dependency-free so any header can include it.
#pragma once

#ifndef HAL_GUARD
#define HAL_GUARD 1
#endif

namespace hal::guard {

inline constexpr bool kEnabled = (HAL_GUARD != 0);

}  // namespace hal::guard
