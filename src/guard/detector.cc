#include "guard/detector.h"

#include <algorithm>

namespace hal::guard {

ShardHealth& SlowShardDetector::slot_entry(std::uint32_t slot) {
  for (auto& h : health_) {
    if (h.slot == slot) return h;
  }
  health_.push_back(ShardHealth{.slot = slot});
  return health_.back();
}

void SlowShardDetector::observe(std::uint32_t slot, double busy_us,
                                std::uint64_t tuples) {
  if (tuples == 0) return;  // idle shard: no service-time evidence
  auto& h = slot_entry(slot);
  const double sample = busy_us / static_cast<double>(tuples);
  if (h.epochs_observed == 0) {
    h.ewma_us_per_tuple = sample;
  } else {
    h.ewma_us_per_tuple += cfg_.alpha * (sample - h.ewma_us_per_tuple);
  }
  ++h.epochs_observed;
  touched_.push_back(slot);
}

bool SlowShardDetector::end_epoch() {
  // Count the shards with enough history; a lone shard has no peers to
  // be judged against, so nothing is ever suspected below two.
  std::size_t eligible = 0;
  for (const auto& h : health_) {
    if (h.epochs_observed >= cfg_.min_epochs) ++eligible;
  }
  bool newly_suspected = false;
  if (eligible < 2) {
    touched_.clear();
    return false;
  }

  for (auto& h : health_) {
    const bool observed =
        std::find(touched_.begin(), touched_.end(), h.slot) != touched_.end();
    if (!observed || h.epochs_observed < cfg_.min_epochs) continue;
    // Peer baseline: median EWMA over the *other* eligible shards. A
    // median (not mean) keeps one pathological shard from dragging the
    // baseline up, and excluding self means even a two-shard cluster's
    // sick half cannot mask itself behind its own sample.
    scratch_.clear();
    for (const auto& peer : health_) {
      if (peer.slot != h.slot && peer.epochs_observed >= cfg_.min_epochs) {
        scratch_.push_back(peer.ewma_us_per_tuple);
      }
    }
    std::nth_element(scratch_.begin(),
                     scratch_.begin() + static_cast<long>(scratch_.size() / 2),
                     scratch_.end());
    const double median = scratch_[scratch_.size() / 2];
    h.slow_epoch = median > 0.0 &&
                   h.ewma_us_per_tuple > cfg_.slow_ratio * median;
    if (h.slow_epoch) {
      h.suspicion += cfg_.suspicion_add;
    } else {
      h.suspicion = std::max(0.0, h.suspicion - cfg_.suspicion_decay);
    }
    const bool was = h.suspected;
    h.suspected = h.suspicion >= cfg_.suspicion_threshold;
    if (h.suspected && !was) newly_suspected = true;
  }
  touched_.clear();
  return newly_suspected;
}

void SlowShardDetector::forget(std::uint32_t slot) {
  health_.erase(std::remove_if(health_.begin(), health_.end(),
                               [slot](const ShardHealth& h) {
                                 return h.slot == slot;
                               }),
                health_.end());
}

std::vector<std::uint32_t> SlowShardDetector::suspects() const {
  std::vector<const ShardHealth*> s;
  for (const auto& h : health_) {
    if (h.suspected) s.push_back(&h);
  }
  std::sort(s.begin(), s.end(), [](const ShardHealth* a, const ShardHealth* b) {
    return a->suspicion != b->suspicion ? a->suspicion > b->suspicion
                                        : a->slot < b->slot;
  });
  std::vector<std::uint32_t> out;
  out.reserve(s.size());
  for (const auto* h : s) out.push_back(h->slot);
  return out;
}

const ShardHealth* SlowShardDetector::find(std::uint32_t slot) const {
  for (const auto& h : health_) {
    if (h.slot == slot) return &h;
  }
  return nullptr;
}

}  // namespace hal::guard
