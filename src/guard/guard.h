// hal::guard — SLO-bounded admission control with exact shed accounting.
//
// The runtime's only native answer to sustained overload is backpressure:
// bounded queues stall the producer, latency grows without bound, and a
// *real-time* result (the paper's whole premise) arrives too late to be
// worth computing. hal::guard turns that failure mode into a contract:
//
//   * A per-stage queue-delay estimate (EWMA of observed service time,
//     scaled by the pending tuple count) is compared against a watermark
//     pair derived from the SLO. Crossing the high watermark latches the
//     stage into shedding; the latch releases only below the low
//     watermark, so the guard cannot flap on a noisy boundary.
//   * While latched, a deterministic seeded policy sheds arriving tuples
//     BEFORE they reach any window: tail-drop (drop everything until the
//     backlog drains) or per-key probabilistic sampling (a seeded hash
//     sheds a fixed fraction of the key domain — both streams of a shed
//     key vanish together, so surviving keys keep exact join results).
//   * Every shed tuple is appended to a ShedLog. Because shedding happens
//     before window insertion, the guarded engine's output is *exactly*
//     the reference join of (input − shed log), whatever the timing that
//     produced the shed set. That identity — not any statistical bound —
//     is what the differential tests assert across every backend and
//     transport.
//
// The guard is compiled out by -DHAL_GUARD=OFF (guard/enabled.h) and
// costs one branch per epoch when compiled in but disabled at runtime —
// the same zero-overhead discipline as hal::obs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "guard/enabled.h"
#include "stream/tuple.h"

namespace hal::guard {

enum class ShedPolicy : std::uint8_t {
  kOff,        // never shed; watermarks/stats still tracked (observe mode)
  kTailDrop,   // while latched, shed every arriving tuple
  kKeySample,  // while latched, shed a seeded fixed fraction of keys
};

[[nodiscard]] const char* to_string(ShedPolicy p) noexcept;

// Slow-shard detector tuning (guard/detector.h). Lives here so one
// GuardConfig carries the whole guard layer's knobs through the facade.
struct DetectorConfig {
  // EWMA smoothing factor for per-shard service time (µs/tuple).
  double alpha = 0.3;
  // A shard is "slow this epoch" when its EWMA exceeds slow_ratio × the
  // median of its peers' EWMAs.
  double slow_ratio = 3.0;
  // Phi-accrual-style suspicion: add per slow epoch, decay per healthy
  // epoch, suspect at the threshold. With the defaults a shard must be
  // slow ≥ 3 consecutive epochs (or 3-of-4, ...) before quarantine, so a
  // single GC-like stutter never triggers a migration.
  double suspicion_add = 1.0;
  double suspicion_decay = 0.5;
  double suspicion_threshold = 3.0;
  // Epochs of data required per shard before it can be judged.
  std::uint32_t min_epochs = 2;
};

struct GuardConfig {
  // Master runtime switch; everything below is inert while false.
  bool enabled = false;

  // --- Admission -------------------------------------------------------
  ShedPolicy policy = ShedPolicy::kTailDrop;
  // Seed for the per-key sampling hash (kKeySample). Deterministic: the
  // same (seed, drop_permille) sheds the same key set on every backend.
  std::uint64_t seed = 1;
  // kKeySample: fraction of the key domain shed while latched, in ‰.
  std::uint32_t drop_permille = 500;
  // The latency bound: estimated queue delay a tuple may experience at
  // this stage before its result is considered late.
  double slo_delay_us = 5000.0;
  // Hysteresis watermarks on the delay estimate. 0 derives them from the
  // SLO (high = slo, low = slo/2).
  double high_watermark_us = 0.0;
  double low_watermark_us = 0.0;
  // EWMA smoothing for the per-tuple service-time estimate.
  double service_alpha = 0.2;
  // Test hook: hold the overload latch closed regardless of the measured
  // delay, making the shed *set* (not just the accounting) reproducible.
  bool force_overload = false;

  // --- Gray-failure detection / mitigation (cluster only) --------------
  // Feed per-shard service times into the SlowShardDetector and surface
  // ShardHealth in ClusterReport/obs.
  bool detect = true;
  DetectorConfig detector;

  [[nodiscard]] double high_us() const noexcept {
    return high_watermark_us > 0.0 ? high_watermark_us : slo_delay_us;
  }
  [[nodiscard]] double low_us() const noexcept {
    return low_watermark_us > 0.0 ? low_watermark_us : slo_delay_us * 0.5;
  }
};

// One shed tuple. `seq` is the global arrival index — the identity the
// differential contract subtracts from the oracle input.
struct ShedRecord {
  std::uint64_t seq = 0;
  std::uint32_t key = 0;
  stream::StreamId origin = stream::StreamId::R;

  friend bool operator==(const ShedRecord&, const ShedRecord&) = default;
};

// Exact accounting of everything the guard dropped, in shed order.
class ShedLog {
 public:
  void append(const stream::Tuple& t) {
    records_.push_back(ShedRecord{t.seq, t.key, t.origin});
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  [[nodiscard]] const std::vector<ShedRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

  // Seq set for minus_shed; rebuilt on demand.
  [[nodiscard]] std::unordered_set<std::uint64_t> seq_set() const;

 private:
  std::vector<ShedRecord> records_;
};

// The differential contract's left-hand side: the input stream with every
// logged tuple removed. guarded_output == ReferenceJoin(minus_shed(input))
// must hold exactly, on every backend, whatever timing produced the log.
[[nodiscard]] std::vector<stream::Tuple> minus_shed(
    const std::vector<stream::Tuple>& input, const ShedLog& log);

struct GuardStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t observations = 0;        // observe_delay_us() calls
  std::uint64_t overload_observations = 0;  // observations while latched
  std::uint64_t latch_transitions = 0;   // off→on edges
  [[nodiscard]] std::uint64_t offered() const noexcept {
    return admitted + shed;
  }
};

// Stateless per-key shed decision (kKeySample): a seeded SplitMix64 hash
// maps the key into [0, 1000) and sheds it below drop_permille. Exposed so
// tests can predict the shed key set independently of the guard.
[[nodiscard]] bool key_sheds(std::uint32_t key, std::uint64_t seed,
                             std::uint32_t drop_permille) noexcept;

// Per-stage admission guard: watermark hysteresis latch + shedding policy
// + exact shed log. Single-threaded — each stage owns its own instance
// (the facade's GuardedEngine, the cluster router's ingress).
class AdmissionGuard {
 public:
  explicit AdmissionGuard(const GuardConfig& cfg) : cfg_(cfg) {}

  // Feed the stage's current queue-delay estimate (µs); updates the
  // hysteresis latch. Call once per batch/epoch before admitting it.
  void observe_delay_us(double delay_us);

  // Convenience: estimated delay for `pending` tuples at the smoothed
  // service rate. Returns 0 until the first update_service_rate() call.
  [[nodiscard]] double estimate_delay_us(std::size_t pending) const noexcept {
    return ewma_us_per_tuple_ * static_cast<double>(pending);
  }
  // Feed a measured (busy µs, tuples) sample into the service-rate EWMA.
  void update_service_rate(double busy_us, std::uint64_t tuples);

  [[nodiscard]] bool overloaded() const noexcept {
    return cfg_.enabled && (cfg_.force_overload || latched_);
  }

  // Per-tuple admission. False ⇒ the tuple was appended to the shed log
  // and must not reach any window or router.
  bool admit(const stream::Tuple& t);

  // Filters a span: admitted tuples are appended to `out` (not cleared).
  void filter(const std::vector<stream::Tuple>& in,
              std::vector<stream::Tuple>& out);

  [[nodiscard]] const GuardConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const ShedLog& log() const noexcept { return log_; }
  [[nodiscard]] ShedLog& log() noexcept { return log_; }
  [[nodiscard]] const GuardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double ewma_us_per_tuple() const noexcept {
    return ewma_us_per_tuple_;
  }
  [[nodiscard]] double last_delay_us() const noexcept {
    return last_delay_us_;
  }

 private:
  GuardConfig cfg_;
  bool latched_ = false;
  bool have_rate_ = false;
  double ewma_us_per_tuple_ = 0.0;
  double last_delay_us_ = 0.0;
  ShedLog log_;
  GuardStats stats_;
};

}  // namespace hal::guard
