#include "guard/guard.h"

#include <algorithm>

namespace hal::guard {

const char* to_string(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::kOff:
      return "off";
    case ShedPolicy::kTailDrop:
      return "tail-drop";
    case ShedPolicy::kKeySample:
      return "key-sample";
  }
  return "?";
}

std::unordered_set<std::uint64_t> ShedLog::seq_set() const {
  std::unordered_set<std::uint64_t> seqs;
  seqs.reserve(records_.size());
  for (const auto& r : records_) seqs.insert(r.seq);
  return seqs;
}

std::vector<stream::Tuple> minus_shed(const std::vector<stream::Tuple>& input,
                                      const ShedLog& log) {
  if (log.empty()) return input;
  const auto shed = log.seq_set();
  std::vector<stream::Tuple> kept;
  kept.reserve(input.size() - std::min(input.size(), shed.size()));
  for (const auto& t : input) {
    if (!shed.contains(t.seq)) kept.push_back(t);
  }
  return kept;
}

bool key_sheds(std::uint32_t key, std::uint64_t seed,
               std::uint32_t drop_permille) noexcept {
  // SplitMix64 finalizer over (seed ^ key): cheap, seed-sensitive, and
  // independent of the router's keyslot hash so sampling never aliases
  // with shard placement.
  std::uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (key + 1ULL));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return (z % 1000) < drop_permille;
}

void AdmissionGuard::observe_delay_us(double delay_us) {
  if (!cfg_.enabled) return;
  last_delay_us_ = delay_us;
  ++stats_.observations;
  if (latched_) {
    if (delay_us <= cfg_.low_us()) latched_ = false;
  } else if (delay_us >= cfg_.high_us()) {
    latched_ = true;
    ++stats_.latch_transitions;
  }
  if (overloaded()) ++stats_.overload_observations;
}

void AdmissionGuard::update_service_rate(double busy_us,
                                         std::uint64_t tuples) {
  if (!cfg_.enabled || tuples == 0) return;
  const double sample = busy_us / static_cast<double>(tuples);
  if (!have_rate_) {
    ewma_us_per_tuple_ = sample;
    have_rate_ = true;
  } else {
    ewma_us_per_tuple_ +=
        cfg_.service_alpha * (sample - ewma_us_per_tuple_);
  }
}

bool AdmissionGuard::admit(const stream::Tuple& t) {
  if (!overloaded() || cfg_.policy == ShedPolicy::kOff) {
    ++stats_.admitted;
    return true;
  }
  bool shed = false;
  switch (cfg_.policy) {
    case ShedPolicy::kOff:
      break;
    case ShedPolicy::kTailDrop:
      shed = true;
      break;
    case ShedPolicy::kKeySample:
      shed = key_sheds(t.key, cfg_.seed, cfg_.drop_permille);
      break;
  }
  if (shed) {
    log_.append(t);
    ++stats_.shed;
    return false;
  }
  ++stats_.admitted;
  return true;
}

void AdmissionGuard::filter(const std::vector<stream::Tuple>& in,
                            std::vector<stream::Tuple>& out) {
  for (const auto& t : in) {
    if (admit(t)) out.push_back(t);
  }
}

}  // namespace hal::guard
