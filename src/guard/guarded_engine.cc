#include "guard/guarded_engine.h"

namespace hal::guard {

core::RunReport GuardedEngine::process(
    const std::vector<stream::Tuple>& tuples) {
  // Delay estimate for this batch at the smoothed service rate, observed
  // BEFORE admission so the latch decision applies to the whole span.
  guard_.observe_delay_us(guard_.estimate_delay_us(tuples.size()));

  admitted_.clear();
  admitted_.reserve(tuples.size());
  guard_.filter(tuples, admitted_);

  core::RunReport report = inner_->process(admitted_);
  guard_.update_service_rate(report.elapsed_seconds * 1e6,
                             report.tuples_processed);
  return report;
}

void GuardedEngine::collect_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) const {
  inner_->collect_metrics(registry, prefix);
  if constexpr (!kEnabled) return;
  const GuardStats& s = guard_.stats();
  // Admission totals are deterministic only under force_overload or a
  // fixed latch history; tag them runtime so determinism snapshots skip
  // them (cf. the cluster's stall counters).
  registry.set_counter(prefix + "guard.admitted", s.admitted,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "guard.shed", s.shed,
                       obs::Stability::kRuntime);
  registry.set_counter(prefix + "guard.latch_transitions",
                       s.latch_transitions, obs::Stability::kRuntime);
  registry.set_counter(prefix + "guard.overload_observations",
                       s.overload_observations, obs::Stability::kRuntime);
  registry.set_gauge(prefix + "guard.ewma_us_per_tuple",
                     guard_.ewma_us_per_tuple());
  registry.set_gauge(prefix + "guard.last_delay_us", guard_.last_delay_us());
}

}  // namespace hal::guard
