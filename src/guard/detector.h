// Windowed slow-shard (gray-failure) detector.
//
// Crash-stop failures announce themselves: the worker thread exits and the
// merger sees a died marker. Gray failures do not — a shard that turned
// 10× slower (thermal throttle, noisy neighbor, half-broken NIC) still
// answers every epoch, it just drags the whole epoch barrier down with it.
// The detector finds those by *comparison against peers*, not absolute
// thresholds, so it needs no calibration per machine or workload:
//
//   per epoch, per live shard:  service = busy_µs / tuples   (EWMA-smoothed)
//   peer baseline            =  median of all live shards' EWMAs
//   slow this epoch          ⇔  ewma > slow_ratio × median
//
// A phi-accrual-style suspicion score accumulates over slow epochs and
// decays over healthy ones; only a *sustained* degradation crosses the
// quarantine threshold. That asymmetry is deliberate: a single stutter
// (one suspicious epoch) decays away, while suspicion from a genuinely
// sick shard ratchets up in a few epochs — detection latency is
// `threshold / add` consecutive slow epochs at the defaults.
//
// The detector is passive bookkeeping on epoch-report deltas; it runs on
// the main thread between epochs and costs nothing in any hot loop.
#pragma once

#include <cstdint>
#include <vector>

#include "guard/guard.h"

namespace hal::guard {

struct ShardHealth {
  std::uint32_t slot = 0;
  double ewma_us_per_tuple = 0.0;
  double suspicion = 0.0;
  std::uint32_t epochs_observed = 0;
  bool slow_epoch = false;  // flagged slow in the most recent epoch
  bool suspected = false;   // suspicion crossed the threshold
};

class SlowShardDetector {
 public:
  explicit SlowShardDetector(const DetectorConfig& cfg) : cfg_(cfg) {}

  // Feed one shard's epoch delta (inner-engine busy time and tuples
  // processed this epoch). Call for every live shard, then end_epoch().
  void observe(std::uint32_t slot, double busy_us, std::uint64_t tuples);

  // Compares every observed shard against the peer median and updates
  // suspicion scores. Returns true when any shard is newly suspected.
  bool end_epoch();

  // Remove a shard from the peer set (quarantined or retired).
  void forget(std::uint32_t slot);

  [[nodiscard]] const std::vector<ShardHealth>& health() const noexcept {
    return health_;
  }
  // Suspected shards, most suspicious first.
  [[nodiscard]] std::vector<std::uint32_t> suspects() const;
  [[nodiscard]] const ShardHealth* find(std::uint32_t slot) const;

 private:
  ShardHealth& slot_entry(std::uint32_t slot);

  DetectorConfig cfg_;
  std::vector<ShardHealth> health_;
  std::vector<std::uint32_t> touched_;  // slots observed this epoch
  std::vector<double> scratch_;         // median scratch
};

}  // namespace hal::guard
