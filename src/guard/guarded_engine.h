// Guarded ingress for single-node engines: a core::StreamJoinEngine
// decorator that runs every process() batch through an AdmissionGuard
// before the inner engine sees it.
//
// The overload signal at this stage is the engine's own measured service
// rate: the guard keeps an EWMA of µs/tuple from each batch's RunReport
// and, before admitting the next batch, estimates its queue delay as
// batch_size × ewma. When that estimate crosses the high watermark the
// stage is latched into shedding until it falls below the low watermark.
// Shed tuples never touch a window, so the inner engine's output is
// exactly ReferenceJoin(minus_shed(input)) — see guard/guard.h for why
// that identity is timing-independent.
//
// prefill() bypasses the guard (warm-up is not offered load); program(),
// snapshot/restore and take_results() delegate unchanged. make_engine()
// wraps sw backends in this decorator iff cfg.guard.enabled — a disabled
// guard costs nothing because the decorator is never constructed.
#pragma once

#include <memory>

#include "core/stream_join.h"
#include "guard/guard.h"

namespace hal::guard {

class GuardedEngine final : public core::StreamJoinEngine {
 public:
  GuardedEngine(std::unique_ptr<core::StreamJoinEngine> inner,
                const GuardConfig& cfg)
      : inner_(std::move(inner)), guard_(cfg) {}

  core::RunReport process(const std::vector<stream::Tuple>& tuples) override;
  void prefill(const std::vector<stream::Tuple>& tuples) override {
    inner_->prefill(tuples);
  }
  void program(const stream::JoinSpec& spec) override {
    inner_->program(spec);
  }
  std::vector<stream::ResultTuple> take_results() override {
    return inner_->take_results();
  }
  [[nodiscard]] core::Backend backend() const noexcept override {
    return inner_->backend();
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return inner_->design_stats();
  }
  [[nodiscard]] bool snapshot(core::WindowImage& out) override {
    return inner_->snapshot(out);
  }
  [[nodiscard]] bool restore(const core::WindowImage& image) override {
    return inner_->restore(image);
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override;

  [[nodiscard]] const AdmissionGuard* admission_guard() const noexcept
      override {
    return &guard_;
  }
  [[nodiscard]] core::StreamJoinEngine& inner() noexcept { return *inner_; }

 private:
  std::unique_ptr<core::StreamJoinEngine> inner_;
  AdmissionGuard guard_;
  std::vector<stream::Tuple> admitted_;  // reused per batch
};

}  // namespace hal::guard
