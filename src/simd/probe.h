// hal::simd — explicit, runtime-dispatched SIMD probe kernels.
//
// The batched data path (PR 4) leaned on auto-vectorization: dense
// `uint32_t` key lanes shaped so the compiler *may* vectorize the compare
// loop. This module replaces that hope with hand-written kernels — AVX2 on
// x86, NEON on aarch64, and a scalar fallback that is bit-for-bit the old
// branchless loop — behind one entry point per kernel with runtime CPU
// dispatch. The Hardware-Conscious Stream Processing survey's checklist
// (PAPERS.md) motivates the shapes: key-equality probe (count + index
// gather), the masked variant fused with the logical-expiry arrival
// cutoff, and the ingress keyslot hash.
//
// Contract shared by every kernel:
//   * Pointers need no particular alignment; `n` may be any size
//     (unaligned tails are handled in-kernel). n == 0 is valid.
//   * Every ISA variant returns byte-identical results for identical
//     inputs — the differential kernel suite (tests/simd/) pins this
//     across batch shapes, unaligned offsets, duplicate-heavy lanes and
//     empty buckets. Only speed may differ between ISAs.
//   * Kernels are pure functions of their arguments: safe to call from
//     any thread concurrently.
//
// Dispatch:
//   * detected_isa() — best ISA the CPU and the build support.
//   * active_isa()   — what the kernels currently run; defaults to
//     detected_isa(), overridable by force_isa() (tests) or the
//     HAL_SIMD_ISA environment variable ("scalar" | "avx2" | "neon"),
//     read once at first use. Forcing an ISA the platform cannot run
//     clamps to the best available — force_isa(kScalar) always sticks,
//     which is the fallback guarantee the dispatch test exercises.
//   * Building with -DHAL_SIMD=OFF compiles the scalar kernels only;
//     detection then reports kScalar regardless of the CPU.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hal::simd {

enum class Isa : std::uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

[[nodiscard]] const char* to_string(Isa isa) noexcept;

// Best ISA this CPU + build supports (HAL_SIMD=OFF ⇒ always kScalar).
[[nodiscard]] Isa detected_isa() noexcept;
// The ISA the kernels dispatch to right now.
[[nodiscard]] Isa active_isa() noexcept;
// Override dispatch (clamped to what the platform can run); returns the
// ISA actually installed. Thread-safe; takes effect for subsequent calls.
Isa force_isa(Isa isa) noexcept;
// Drop any override and re-resolve from HAL_SIMD_ISA / detection.
void reset_isa() noexcept;
// False iff the build was configured with -DHAL_SIMD=OFF.
[[nodiscard]] bool compiled_with_simd() noexcept;

// --- Probe kernels ---------------------------------------------------------

// Number of i in [0, n) with keys[i] == key.
[[nodiscard]] std::size_t probe_count(const std::uint32_t* keys,
                                      std::size_t n,
                                      std::uint32_t key) noexcept;

// Writes the matching positions (ascending) to idx_out, which must hold at
// least n entries; returns the match count.
std::size_t probe_collect(const std::uint32_t* keys, std::size_t n,
                          std::uint32_t key,
                          std::uint32_t* idx_out) noexcept;

// Masked variants fused with the logical-expiry predicate of the batch
// engine: a lane matches iff keys[i] == key AND arrivals[i] >= cutoff.
[[nodiscard]] std::size_t probe_count_since(const std::uint32_t* keys,
                                            const std::uint64_t* arrivals,
                                            std::size_t n, std::uint32_t key,
                                            std::uint64_t cutoff) noexcept;
std::size_t probe_collect_since(const std::uint32_t* keys,
                                const std::uint64_t* arrivals, std::size_t n,
                                std::uint32_t key, std::uint64_t cutoff,
                                std::uint32_t* idx_out) noexcept;

// Ingress keyslot hash: out[i] = (uint32_t)((keys[i] * 2654435761) >> 16)
// — the Fibonacci hash the cluster KeyspaceMap uses (keyslot = out[i] %
// kKeyslots; the caller applies the modulus so this kernel stays free of
// cluster-layer constants).
void hash_fib_hi16(const std::uint32_t* keys, std::size_t n,
                   std::uint32_t* out) noexcept;

// --- Cycle counting (bench/kernel_cycles methodology) ----------------------

// Monotonic cycle counter: RDTSC on x86-64 (invariant-TSC ticks at the
// base frequency — "cycles" below means TSC ticks), CNTVCT_EL0 on aarch64
// (a constant-rate timer, not core cycles; the bench reports the counter
// name so tables are comparable), steady_clock nanoseconds elsewhere.
[[nodiscard]] std::uint64_t cycles_now() noexcept;
[[nodiscard]] const char* cycle_counter_name() noexcept;

}  // namespace hal::simd
