#include "simd/probe.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(HAL_SIMD_ENABLED)
#define HAL_SIMD_ENABLED 1
#endif

#if HAL_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__))
#define HAL_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define HAL_SIMD_HAVE_AVX2 0
#endif

#if HAL_SIMD_ENABLED && defined(__ARM_NEON)
#define HAL_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#else
#define HAL_SIMD_HAVE_NEON 0
#endif

#if defined(__x86_64__)
#include <x86intrin.h>
#endif
#if !defined(__x86_64__) && !defined(__aarch64__)
#include <chrono>
#endif

namespace hal::simd {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernels — the reference every other ISA must match byte-for-byte.
// These are the PR-4 branchless loops lifted verbatim out of SoaWindow; the
// differential suite treats them as ground truth, so keep them boring.
// ---------------------------------------------------------------------------

std::size_t scalar_probe_count(const std::uint32_t* keys, std::size_t n,
                               std::uint32_t key) noexcept {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) hits += (keys[i] == key);
  return hits;
}

std::size_t scalar_probe_collect(const std::uint32_t* keys, std::size_t n,
                                 std::uint32_t key,
                                 std::uint32_t* idx_out) noexcept {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += (keys[i] == key);
  }
  return hits;
}

std::size_t scalar_probe_count_since(const std::uint32_t* keys,
                                     const std::uint64_t* arrivals,
                                     std::size_t n, std::uint32_t key,
                                     std::uint64_t cutoff) noexcept {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

std::size_t scalar_probe_collect_since(const std::uint32_t* keys,
                                       const std::uint64_t* arrivals,
                                       std::size_t n, std::uint32_t key,
                                       std::uint64_t cutoff,
                                       std::uint32_t* idx_out) noexcept {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

void scalar_hash_fib_hi16(const std::uint32_t* keys, std::size_t n,
                          std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(keys[i]) * 2654435761ULL) >> 16);
  }
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a per-function target attribute so the rest of
// the TU (and the build) stays baseline-ISA; only ever called after
// __builtin_cpu_supports("avx2") said yes.
// ---------------------------------------------------------------------------

#if HAL_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) std::size_t avx2_probe_count(
    const std::uint32_t* keys, std::size_t n, std::uint32_t key) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    // cmpeq lanes are 0 or -1; subtracting accumulates +1 per hit.
    acc = _mm256_sub_epi32(acc, _mm256_cmpeq_epi32(lane, needle));
  }
  alignas(32) std::uint32_t partial[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(partial), acc);
  std::size_t hits = 0;
  for (int l = 0; l < 8; ++l) hits += partial[l];
  for (; i < n; ++i) hits += (keys[i] == key);
  return hits;
}

__attribute__((target("avx2"))) std::size_t avx2_probe_collect(
    const std::uint32_t* keys, std::size_t n, std::uint32_t key,
    std::uint32_t* idx_out) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, needle))));
    while (mask != 0) {
      idx_out[hits++] = static_cast<std::uint32_t>(
          i + static_cast<unsigned>(__builtin_ctz(mask)));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += (keys[i] == key);
  }
  return hits;
}

// Unsigned 64-bit >= via the sign-flip trick: x >= y  ⇔
// (x ^ MSB) >=signed (y ^ MSB). Keeps the kernel correct for arbitrary
// arrival counters, not just ones below 2^63.
__attribute__((target("avx2"))) inline unsigned avx2_arrival_ge_mask(
    const std::uint64_t* arrivals, __m256i cutoff_flipped) noexcept {
  const __m256i flip = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i lo = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arrivals)), flip);
  const __m256i hi = _mm256_xor_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arrivals + 4)),
      flip);
  // lt = arrival < cutoff (signed, post-flip); valid lanes are the rest.
  const unsigned lt_lo = static_cast<unsigned>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpgt_epi64(cutoff_flipped, lo))));
  const unsigned lt_hi = static_cast<unsigned>(_mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpgt_epi64(cutoff_flipped, hi))));
  return 0xFFu & ~(lt_lo | (lt_hi << 4));
}

__attribute__((target("avx2"))) std::size_t avx2_probe_count_since(
    const std::uint32_t* keys, const std::uint64_t* arrivals, std::size_t n,
    std::uint32_t key, std::uint64_t cutoff) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  const __m256i cutoff_flipped = _mm256_set1_epi64x(
      static_cast<long long>(cutoff ^ 0x8000000000000000ULL));
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const unsigned key_mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, needle))));
    const unsigned mask =
        key_mask & avx2_arrival_ge_mask(arrivals + i, cutoff_flipped);
    hits += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) {
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

__attribute__((target("avx2"))) std::size_t avx2_probe_collect_since(
    const std::uint32_t* keys, const std::uint64_t* arrivals, std::size_t n,
    std::uint32_t key, std::uint64_t cutoff,
    std::uint32_t* idx_out) noexcept {
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  const __m256i cutoff_flipped = _mm256_set1_epi64x(
      static_cast<long long>(cutoff ^ 0x8000000000000000ULL));
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const unsigned key_mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, needle))));
    unsigned mask =
        key_mask & avx2_arrival_ge_mask(arrivals + i, cutoff_flipped);
    while (mask != 0) {
      idx_out[hits++] = static_cast<std::uint32_t>(
          i + static_cast<unsigned>(__builtin_ctz(mask)));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

__attribute__((target("avx2"))) void avx2_hash_fib_hi16(
    const std::uint32_t* keys, std::size_t n, std::uint32_t* out) noexcept {
  const __m256i mult = _mm256_set1_epi64x(2654435761LL);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i lane =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    // vpmuludq multiplies the even 32-bit lanes into 64-bit products;
    // shift the odd lanes down to cover them with a second multiply.
    const __m256i prod_even = _mm256_mul_epu32(lane, mult);
    const __m256i prod_odd =
        _mm256_mul_epu32(_mm256_srli_epi64(lane, 32), mult);
    const __m256i even = _mm256_srli_epi64(prod_even, 16);
    const __m256i odd =
        _mm256_slli_epi64(_mm256_srli_epi64(prod_odd, 16), 32);
    // Even results sit in the low 32 bits of each 64-bit lane of `even`,
    // odd results in the high 32 bits of `odd`; interleave them back.
    const __m256i merged = _mm256_blend_epi32(even, odd, 0xAA);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), merged);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(keys[i]) * 2654435761ULL) >> 16);
  }
}

#endif  // HAL_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON kernels (aarch64). Same contracts as above; compile-guarded so x86
// builds never see them.
// ---------------------------------------------------------------------------

#if HAL_SIMD_HAVE_NEON

std::size_t neon_probe_count(const std::uint32_t* keys, std::size_t n,
                             std::uint32_t key) noexcept {
  const uint32x4_t needle = vdupq_n_u32(key);
  uint32x4_t acc = vdupq_n_u32(0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // vceqq lanes are all-ones on match; accumulate via subtract.
    acc = vsubq_u32(acc, vceqq_u32(vld1q_u32(keys + i), needle));
  }
  std::size_t hits = vaddvq_u32(acc);
  for (; i < n; ++i) hits += (keys[i] == key);
  return hits;
}

// Narrow a 4-lane u32 compare result into a 4-bit mask (bit l set iff
// lane l matched).
inline unsigned neon_mask4(uint32x4_t eq) noexcept {
  const uint32x4_t bits = {1u, 2u, 4u, 8u};
  return vaddvq_u32(vandq_u32(eq, bits));
}

std::size_t neon_probe_collect(const std::uint32_t* keys, std::size_t n,
                               std::uint32_t key,
                               std::uint32_t* idx_out) noexcept {
  const uint32x4_t needle = vdupq_n_u32(key);
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    unsigned mask = neon_mask4(vceqq_u32(vld1q_u32(keys + i), needle));
    while (mask != 0) {
      idx_out[hits++] = static_cast<std::uint32_t>(
          i + static_cast<unsigned>(__builtin_ctz(mask)));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += (keys[i] == key);
  }
  return hits;
}

// 4-bit validity mask for arrivals[0..4) >= cutoff (unsigned 64-bit).
inline unsigned neon_arrival_ge_mask4(const std::uint64_t* arrivals,
                                      uint64x2_t cutoff) noexcept {
  const uint64x2_t ge_lo = vcgeq_u64(vld1q_u64(arrivals), cutoff);
  const uint64x2_t ge_hi = vcgeq_u64(vld1q_u64(arrivals + 2), cutoff);
  return (vgetq_lane_u64(ge_lo, 0) & 1u) | ((vgetq_lane_u64(ge_lo, 1) & 1u) << 1) |
         ((vgetq_lane_u64(ge_hi, 0) & 1u) << 2) |
         ((vgetq_lane_u64(ge_hi, 1) & 1u) << 3);
}

std::size_t neon_probe_count_since(const std::uint32_t* keys,
                                   const std::uint64_t* arrivals,
                                   std::size_t n, std::uint32_t key,
                                   std::uint64_t cutoff) noexcept {
  const uint32x4_t needle = vdupq_n_u32(key);
  const uint64x2_t cut = vdupq_n_u64(cutoff);
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const unsigned mask =
        neon_mask4(vceqq_u32(vld1q_u32(keys + i), needle)) &
        neon_arrival_ge_mask4(arrivals + i, cut);
    hits += static_cast<std::size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) {
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

std::size_t neon_probe_collect_since(const std::uint32_t* keys,
                                     const std::uint64_t* arrivals,
                                     std::size_t n, std::uint32_t key,
                                     std::uint64_t cutoff,
                                     std::uint32_t* idx_out) noexcept {
  const uint32x4_t needle = vdupq_n_u32(key);
  const uint64x2_t cut = vdupq_n_u64(cutoff);
  std::size_t hits = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    unsigned mask = neon_mask4(vceqq_u32(vld1q_u32(keys + i), needle)) &
                    neon_arrival_ge_mask4(arrivals + i, cut);
    while (mask != 0) {
      idx_out[hits++] = static_cast<std::uint32_t>(
          i + static_cast<unsigned>(__builtin_ctz(mask)));
      mask &= mask - 1;
    }
  }
  for (; i < n; ++i) {
    idx_out[hits] = static_cast<std::uint32_t>(i);
    hits += static_cast<std::size_t>(keys[i] == key) &
            static_cast<std::size_t>(arrivals[i] >= cutoff);
  }
  return hits;
}

void neon_hash_fib_hi16(const std::uint32_t* keys, std::size_t n,
                        std::uint32_t* out) noexcept {
  const std::uint32_t mult = 2654435761u;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint32x4_t lane = vld1q_u32(keys + i);
    // Widening multiply: two u64x2 products, then (prod >> 16) narrowed
    // back to u32 via shift-right-narrow.
    const uint64x2_t lo = vmull_n_u32(vget_low_u32(lane), mult);
    const uint64x2_t hi = vmull_n_u32(vget_high_u32(lane), mult);
    const uint32x2_t lo32 = vmovn_u64(vshrq_n_u64(lo, 16));
    const uint32x2_t hi32 = vmovn_u64(vshrq_n_u64(hi, 16));
    vst1q_u32(out + i, vcombine_u32(lo32, hi32));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(keys[i]) * 2654435761ULL) >> 16);
  }
}

#endif  // HAL_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

Isa platform_best_isa() noexcept {
#if HAL_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if HAL_SIMD_HAVE_NEON
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

// True iff this build + CPU can actually execute kernels for `isa`.
bool isa_runnable(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if HAL_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
      return HAL_SIMD_HAVE_NEON != 0;
  }
  return false;
}

Isa env_or_detected_isa() noexcept {
  const char* env = std::getenv("HAL_SIMD_ISA");
  if (env != nullptr) {
    Isa want = Isa::kScalar;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      want = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = Isa::kAvx2;
    } else if (std::strcmp(env, "neon") == 0) {
      want = Isa::kNeon;
    } else {
      known = false;
    }
    if (known && isa_runnable(want)) return want;
    // Unknown or un-runnable request: fall through to detection rather
    // than crash on an illegal instruction.
  }
  return platform_best_isa();
}

constexpr std::uint8_t kIsaUnresolved = 0xFF;

std::atomic<std::uint8_t> g_active{kIsaUnresolved};

Isa resolve_active() noexcept {
  std::uint8_t cur = g_active.load(std::memory_order_acquire);
  if (cur != kIsaUnresolved) return static_cast<Isa>(cur);
  const Isa resolved = env_or_detected_isa();
  std::uint8_t expected = kIsaUnresolved;
  // A racing first-use resolves to the same value; either store wins.
  g_active.compare_exchange_strong(expected,
                                   static_cast<std::uint8_t>(resolved),
                                   std::memory_order_acq_rel);
  return static_cast<Isa>(g_active.load(std::memory_order_acquire));
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa detected_isa() noexcept { return platform_best_isa(); }

Isa active_isa() noexcept { return resolve_active(); }

Isa force_isa(Isa isa) noexcept {
  const Isa installed = isa_runnable(isa) ? isa : platform_best_isa();
  g_active.store(static_cast<std::uint8_t>(installed),
                 std::memory_order_release);
  return installed;
}

void reset_isa() noexcept {
  g_active.store(static_cast<std::uint8_t>(env_or_detected_isa()),
                 std::memory_order_release);
}

bool compiled_with_simd() noexcept { return HAL_SIMD_ENABLED != 0; }

std::size_t probe_count(const std::uint32_t* keys, std::size_t n,
                        std::uint32_t key) noexcept {
  switch (resolve_active()) {
#if HAL_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      return avx2_probe_count(keys, n, key);
#endif
#if HAL_SIMD_HAVE_NEON
    case Isa::kNeon:
      return neon_probe_count(keys, n, key);
#endif
    default:
      return scalar_probe_count(keys, n, key);
  }
}

std::size_t probe_collect(const std::uint32_t* keys, std::size_t n,
                          std::uint32_t key,
                          std::uint32_t* idx_out) noexcept {
  switch (resolve_active()) {
#if HAL_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      return avx2_probe_collect(keys, n, key, idx_out);
#endif
#if HAL_SIMD_HAVE_NEON
    case Isa::kNeon:
      return neon_probe_collect(keys, n, key, idx_out);
#endif
    default:
      return scalar_probe_collect(keys, n, key, idx_out);
  }
}

std::size_t probe_count_since(const std::uint32_t* keys,
                              const std::uint64_t* arrivals, std::size_t n,
                              std::uint32_t key,
                              std::uint64_t cutoff) noexcept {
  switch (resolve_active()) {
#if HAL_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      return avx2_probe_count_since(keys, arrivals, n, key, cutoff);
#endif
#if HAL_SIMD_HAVE_NEON
    case Isa::kNeon:
      return neon_probe_count_since(keys, arrivals, n, key, cutoff);
#endif
    default:
      return scalar_probe_count_since(keys, arrivals, n, key, cutoff);
  }
}

std::size_t probe_collect_since(const std::uint32_t* keys,
                                const std::uint64_t* arrivals, std::size_t n,
                                std::uint32_t key, std::uint64_t cutoff,
                                std::uint32_t* idx_out) noexcept {
  switch (resolve_active()) {
#if HAL_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      return avx2_probe_collect_since(keys, arrivals, n, key, cutoff,
                                      idx_out);
#endif
#if HAL_SIMD_HAVE_NEON
    case Isa::kNeon:
      return neon_probe_collect_since(keys, arrivals, n, key, cutoff,
                                      idx_out);
#endif
    default:
      return scalar_probe_collect_since(keys, arrivals, n, key, cutoff,
                                        idx_out);
  }
}

void hash_fib_hi16(const std::uint32_t* keys, std::size_t n,
                   std::uint32_t* out) noexcept {
  switch (resolve_active()) {
#if HAL_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      avx2_hash_fib_hi16(keys, n, out);
      return;
#endif
#if HAL_SIMD_HAVE_NEON
    case Isa::kNeon:
      neon_hash_fib_hi16(keys, n, out);
      return;
#endif
    default:
      scalar_hash_fib_hi16(keys, n, out);
      return;
  }
}

std::uint64_t cycles_now() noexcept {
#if defined(__x86_64__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

const char* cycle_counter_name() noexcept {
#if defined(__x86_64__)
  return "rdtsc";
#elif defined(__aarch64__)
  return "cntvct_el0";
#else
  return "steady_clock_ns";
#endif
}

}  // namespace hal::simd
