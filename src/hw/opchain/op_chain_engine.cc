#include "hw/opchain/op_chain_engine.h"

#include <algorithm>

#include "common/assert.h"
#include "hw/common/network_builder.h"

namespace hal::hw {

OpChainEngine::OpChainEngine(OpChainConfig cfg) : cfg_(cfg) {
  HAL_CHECK(cfg_.num_select_cores >= 1, "need at least one selection core");
  HAL_CHECK(cfg_.join.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.join.window_size % cfg_.join.num_cores == 0,
            "window_size must be a multiple of num_cores");
  HAL_CHECK(cfg_.link_depth >= 2,
            "link depth < 2 cannot sustain one word per cycle");
  HAL_CHECK(cfg_.num_select_cores < kBroadcastTarget,
            "select core id collides with the broadcast target");

  const std::size_t sub_window = cfg_.join.window_size / cfg_.join.num_cores;

  sim_.configure(cfg_.sim);
  sim_.reserve(6 * static_cast<std::size_t>(cfg_.join.num_cores) +
               2 * static_cast<std::size_t>(cfg_.num_select_cores) + 8);

  stats_.flow = FlowModel::kUniflow;
  stats_.num_cores = cfg_.join.num_cores;
  stats_.sub_window_capacity = sub_window;
  stats_.distribution = cfg_.join.distribution;
  stats_.gathering = cfg_.join.gathering;
  stats_.fanout = cfg_.join.fanout;
  stats_.io_channels_per_core = 2;
  stats_.max_broadcast_fanout = 1;
  stats_.hash_index = cfg_.join.algorithm == JoinAlgorithm::kHash;
  stats_.num_select_cores = cfg_.num_select_cores;

  // Selection pipeline: input → σ_0 → σ_1 → ... → distributor input.
  auto& input = new_word_fifo("input");
  sim::Fifo<HwWord>* upstream = &input;
  for (std::uint32_t i = 0; i < cfg_.num_select_cores; ++i) {
    auto& next = new_word_fifo("sel_out" + std::to_string(i));
    select_cores_.push_back(std::make_unique<SelectCore>(
        "sel" + std::to_string(i), i, *upstream, next));
    sim_.add(*select_cores_.back());
    sim_.link(*select_cores_.back(), *upstream);
    sim_.link(*select_cores_.back(), next);
    upstream = &next;
  }

  // Join stage.
  std::vector<sim::Fifo<HwWord>*> fetchers;
  for (std::uint32_t i = 0; i < cfg_.join.num_cores; ++i) {
    fetchers.push_back(&new_word_fifo("fetcher" + std::to_string(i)));
  }
  auto dist = build_distribution(
      cfg_.join.distribution, cfg_.join.fanout, *upstream, fetchers,
      [this](const std::string& name) -> sim::Fifo<HwWord>& {
        return new_word_fifo(name);
      },
      sim_);
  dnodes_ = std::move(dist.nodes);
  stats_.num_dnodes = dist.counted_nodes;
  stats_.max_broadcast_fanout =
      std::max(stats_.max_broadcast_fanout, dist.max_fanout);

  std::vector<sim::Fifo<stream::ResultTuple>*> result_leaves;
  for (std::uint32_t i = 0; i < cfg_.join.num_cores; ++i) {
    auto& rf = new_result_fifo("results" + std::to_string(i));
    result_leaves.push_back(&rf);
    if (cfg_.join.algorithm == JoinAlgorithm::kHash) {
      join_cores_.push_back(std::make_unique<HashJoinCore>(
          "jc" + std::to_string(i), i, sub_window, *fetchers[i], rf));
    } else {
      join_cores_.push_back(std::make_unique<UniflowJoinCore>(
          "jc" + std::to_string(i), i, sub_window, *fetchers[i], rf));
    }
    sim_.add(*join_cores_.back());
    sim_.link(*join_cores_.back(), *fetchers[i]);
    sim_.link(*join_cores_.back(), rf);
  }

  auto& output = new_result_fifo("output");
  auto gather = build_gathering(
      cfg_.join.gathering, result_leaves, output,
      [this](const std::string& name) -> sim::Fifo<stream::ResultTuple>& {
        return new_result_fifo(name);
      },
      sim_);
  gnodes_ = std::move(gather.nodes);
  stats_.num_gnodes = gather.counted_nodes;
  stats_.max_broadcast_fanout =
      std::max(stats_.max_broadcast_fanout, gather.max_fanin);

  driver_ = std::make_unique<WordDriver>("driver", sim_, input);
  sim_.add(*driver_);
  sim_.link(*driver_, input);
  sink_ = std::make_unique<ResultSink>("sink", sim_, output);
  sim_.add(*sink_);
  sim_.link(*sink_, output);
}

sim::Fifo<HwWord>& OpChainEngine::new_word_fifo(std::string name) {
  word_fifos_.push_back(
      std::make_unique<sim::Fifo<HwWord>>(std::move(name), cfg_.link_depth));
  sim_.add(*word_fifos_.back());
  return *word_fifos_.back();
}

sim::Fifo<stream::ResultTuple>& OpChainEngine::new_result_fifo(
    std::string name) {
  result_fifos_.push_back(std::make_unique<sim::Fifo<stream::ResultTuple>>(
      std::move(name), cfg_.link_depth));
  sim_.add(*result_fifos_.back());
  return *result_fifos_.back();
}

void OpChainEngine::program_select(std::uint32_t core_id,
                                   const SelectSpec& spec) {
  HAL_CHECK(core_id < cfg_.num_select_cores, "no such selection core");
  for (const HwWord& w : make_select_words(spec, core_id)) {
    driver_->enqueue(w);
  }
}

void OpChainEngine::program_join(const stream::JoinSpec& spec) {
  for (const HwWord& w :
       make_operator_words(spec, cfg_.join.num_cores)) {
    driver_->enqueue(w);
  }
}

void OpChainEngine::step(std::uint64_t cycles) { sim_.step_n(cycles); }

bool OpChainEngine::quiescent() const {
  if (!driver_->done()) return false;
  for (const auto& f : word_fifos_) {
    if (!f->empty()) return false;
  }
  for (const auto& f : result_fifos_) {
    if (!f->empty()) return false;
  }
  if (!std::all_of(select_cores_.begin(), select_cores_.end(),
                   [](const auto& c) { return c->quiescent(); })) {
    return false;
  }
  return std::all_of(join_cores_.begin(), join_cores_.end(),
                     [](const auto& c) { return c->quiescent(); });
}

std::uint64_t OpChainEngine::run_to_quiescence(std::uint64_t max_cycles,
                                               bool require_quiescent) {
  const std::uint64_t stepped =
      sim_.run_until([this] { return quiescent(); }, max_cycles);
  if (require_quiescent) {
    HAL_ASSERT_MSG(quiescent(), "engine did not quiesce within max_cycles");
  }
  return stepped;
}

std::vector<stream::ResultTuple> OpChainEngine::result_tuples() const {
  std::vector<stream::ResultTuple> out;
  out.reserve(sink_->collected().size());
  for (const auto& tr : sink_->collected()) out.push_back(tr.result);
  return out;
}

}  // namespace hal::hw
