// OP-Chain pipeline engine: runtime-programmable selection cores in series
// ahead of a parallel uni-flow join stage, all on the cycle simulator.
//
// This is the hardware realization of an FQP query shape like Fig. 7's
// σ(Customer) ⋈ Product: selections execute at line rate on the data path
// (dropping tuples before they reach the window scans), the join stage is
// the Fig. 9 architecture. Selection pushdown multiplies the join stage's
// effective capacity by 1/selectivity — the cycle-accurate counterpart of
// the co-placement argument in hal::dist.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/common/drivers.h"
#include "hw/common/word.h"
#include "hw/model/design_stats.h"
#include "hw/opchain/select_core.h"
#include "hw/uniflow/dnode.h"
#include "hw/uniflow/gnode.h"
#include "hw/uniflow/hash_join_core.h"
#include "hw/uniflow/join_core.h"
#include "sim/simulator.h"

namespace hal::hw {

struct OpChainConfig {
  std::uint32_t num_select_cores = 1;
  // The join stage (cores, window, networks, algorithm).
  struct {
    std::uint32_t num_cores = 4;
    std::size_t window_size = 1024;
    NetworkKind distribution = NetworkKind::kScalable;
    NetworkKind gathering = NetworkKind::kScalable;
    std::uint32_t fanout = 2;
    JoinAlgorithm algorithm = JoinAlgorithm::kNestedLoop;
  } join;
  std::size_t link_depth = 2;
  // Simulation-kernel knobs (host-side execution only; never changes the
  // simulated design or any cycle count). threads=1 is the serial oracle.
  sim::SimConfig sim;
};

class OpChainEngine {
 public:
  explicit OpChainEngine(OpChainConfig cfg);

  // Programs selection core `core_id` (0 = first on the path). Takes
  // effect in stream order relative to offered tuples.
  void program_select(std::uint32_t core_id, const SelectSpec& spec);
  // Programs the join operator on every join core (broadcast target).
  void program_join(const stream::JoinSpec& spec);

  void offer(const stream::Tuple& t) { driver_->enqueue(make_tuple_word(t)); }
  void offer(const std::vector<stream::Tuple>& tuples) {
    for (const auto& t : tuples) offer(t);
  }

  void step(std::uint64_t cycles = 1);
  std::uint64_t run_to_quiescence(std::uint64_t max_cycles,
                                  bool require_quiescent = true);
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] std::uint64_t cycle() const { return sim_.cycle(); }
  [[nodiscard]] std::size_t module_count() const {
    return sim_.module_count();
  }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const std::vector<TimedResult>& results() const {
    return sink_->collected();
  }
  [[nodiscard]] std::vector<stream::ResultTuple> result_tuples() const;
  [[nodiscard]] bool input_drained() const { return driver_->done(); }
  [[nodiscard]] std::uint64_t last_injection_cycle() const {
    return driver_->last_push_cycle();
  }
  void set_record_injections(bool on) { driver_->set_record_injections(on); }

  [[nodiscard]] const OpChainConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] DesignStats design_stats() const noexcept { return stats_; }
  [[nodiscard]] const SelectCore& select_core(std::size_t i) const {
    return *select_cores_.at(i);
  }
  [[nodiscard]] const IUniflowCore& join_core(std::size_t i) const {
    return *join_cores_.at(i);
  }

 private:
  sim::Fifo<HwWord>& new_word_fifo(std::string name);
  sim::Fifo<stream::ResultTuple>& new_result_fifo(std::string name);

  OpChainConfig cfg_;
  DesignStats stats_;
  sim::Simulator sim_;

  std::vector<std::unique_ptr<sim::Fifo<HwWord>>> word_fifos_;
  std::vector<std::unique_ptr<sim::Fifo<stream::ResultTuple>>> result_fifos_;
  std::vector<std::unique_ptr<SelectCore>> select_cores_;
  std::vector<std::unique_ptr<DNode>> dnodes_;
  std::vector<std::unique_ptr<GNode>> gnodes_;
  std::vector<std::unique_ptr<IUniflowCore>> join_cores_;
  std::unique_ptr<WordDriver> driver_;
  std::unique_ptr<ResultSink> sink_;
};

}  // namespace hal::hw
