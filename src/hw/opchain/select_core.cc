#include "hw/opchain/select_core.h"

#include "common/assert.h"

namespace hal::hw {

using stream::StreamId;
using stream::Tuple;

std::uint64_t encode_select(const SelectCondition& c) noexcept {
  std::uint64_t word = 0;
  word |= static_cast<std::uint64_t>(c.op) & 0x7u;
  word |= (static_cast<std::uint64_t>(c.field) & 0x1u) << 3;
  word |= static_cast<std::uint64_t>(c.operand) << 32;
  return word;
}

std::optional<SelectCondition> decode_select(std::uint64_t word) noexcept {
  const auto op_raw = static_cast<std::uint8_t>(word & 0x7u);
  if (op_raw > static_cast<std::uint8_t>(stream::CmpOp::Ge)) {
    return std::nullopt;
  }
  if ((word & 0xfffffff0ULL) != 0) return std::nullopt;  // reserved bits
  SelectCondition c;
  c.op = static_cast<stream::CmpOp>(op_raw);
  c.field = static_cast<stream::Field>((word >> 3) & 0x1u);
  c.operand = static_cast<std::uint32_t>(word >> 32);
  return c;
}

bool SelectSpec::matches(const Tuple& t) const noexcept {
  for (const auto& c : conjuncts) {
    const std::uint32_t lhs =
        c.field == stream::Field::Key ? t.key : t.value;
    bool ok = false;
    switch (c.op) {
      case stream::CmpOp::Eq: ok = lhs == c.operand; break;
      case stream::CmpOp::Ne: ok = lhs != c.operand; break;
      case stream::CmpOp::Lt: ok = lhs < c.operand; break;
      case stream::CmpOp::Le: ok = lhs <= c.operand; break;
      case stream::CmpOp::Gt: ok = lhs > c.operand; break;
      case stream::CmpOp::Ge: ok = lhs >= c.operand; break;
    }
    if (!ok) return false;
  }
  return true;
}

std::vector<HwWord> make_select_words(const SelectSpec& spec,
                                      std::uint32_t target) {
  std::vector<HwWord> words;
  HwWord seg1;
  seg1.kind = WordKind::kOperator1;
  seg1.payload = encode_operator1(
      /*num_cores=*/1,
      static_cast<std::uint32_t>(spec.conjuncts.size()), target,
      static_cast<std::uint32_t>(spec.scope));
  words.push_back(seg1);
  for (const auto& c : spec.conjuncts) {
    HwWord seg2;
    seg2.kind = WordKind::kOperator2;
    seg2.payload = encode_select(c);
    words.push_back(seg2);
  }
  return words;
}

SelectCore::SelectCore(std::string name, std::uint32_t id,
                       sim::Fifo<HwWord>& in, sim::Fifo<HwWord>& out)
    : Module(std::move(name)), id_(id), in_(in), out_(out) {}

void SelectCore::eval() {
  switch (state_) {
    case State::kIdle: {
      if (!in_.can_pop()) break;
      const HwWord& front = in_.front();
      if (front.is_tuple()) {
        const Tuple& t = front.tuple;
        const bool drop = programmed_ && spec_.applies_to(t.origin) &&
                          !spec_.matches(t);
        if (drop) {
          (void)in_.pop();
          ++tuples_seen_;
          ++tuples_dropped_;
        } else if (out_.can_push()) {
          out_.push(in_.pop());
          ++tuples_seen_;
        }
        // else: stall on downstream backpressure.
        break;
      }
      if (front.kind == WordKind::kOperator1) {
        const Operator1 op = decode_operator1(front.payload);
        if (op.target == id_) {
          (void)in_.pop();
          pending_ = SelectSpec{};
          pending_.scope = static_cast<SelectScope>(op.scope);
          remaining_conditions_ = op.num_conditions;
          if (remaining_conditions_ == 0) {
            spec_ = pending_;
            programmed_ = true;
          } else {
            state_ = State::kProgram;
          }
        } else if (out_.can_push()) {
          remaining_conditions_ = op.num_conditions;
          out_.push(in_.pop());
          state_ = remaining_conditions_ > 0 ? State::kForward : State::kIdle;
        }
        break;
      }
      // A stray Operator2 word (not part of a sequence this core tracks)
      // is forwarded untouched.
      if (out_.can_push()) out_.push(in_.pop());
      break;
    }
    case State::kProgram: {
      if (!in_.can_pop()) break;
      const HwWord w = in_.pop();
      HAL_ASSERT_MSG(w.kind == WordKind::kOperator2,
                     "programming sequence interrupted");
      const auto cond = decode_select(w.payload);
      HAL_ASSERT_MSG(cond.has_value(), "malformed selection condition");
      pending_.conjuncts.push_back(*cond);
      if (--remaining_conditions_ == 0) {
        spec_ = pending_;
        programmed_ = true;
        state_ = State::kIdle;
      }
      break;
    }
    case State::kForward: {
      if (!in_.can_pop() || !out_.can_push()) break;
      const HwWord& front = in_.front();
      HAL_ASSERT_MSG(front.kind == WordKind::kOperator2,
                     "forwarded sequence interrupted");
      out_.push(in_.pop());
      if (--remaining_conditions_ == 0) state_ = State::kIdle;
      break;
    }
  }
}

}  // namespace hal::hw
