// Selection OP-Block for cycle-simulated pipelines (the σ element of
// FQP's OP-Chain, Figs. 5/7).
//
// A SelectCore sits in series on the tuple path ahead of the join stage
// and applies a runtime-programmable conjunction of comparisons (field
// <op> constant) to tuples of a chosen stream scope (R, S, or both);
// tuples outside the scope, and all tuples while unprogrammed, pass
// through untouched. One tuple flows per cycle.
//
// Programming uses the same two-segment instruction as the join cores,
// with the target-id addressing of encode_operator1: a core consumes the
// instruction sequence addressed to its own id and transparently forwards
// every other sequence downstream, which is how one serial instruction
// channel programs a whole chain (the OP-Chain analogue of Fig. 5's Query
// Assigner path).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/common/word.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::hw {

enum class SelectScope : std::uint8_t { kR = 0, kS = 1, kBoth = 2 };

// One comparison of a tuple field against an immediate operand.
struct SelectCondition {
  stream::Field field = stream::Field::Key;
  stream::CmpOp op = stream::CmpOp::Eq;
  std::uint32_t operand = 0;

  friend bool operator==(const SelectCondition&,
                         const SelectCondition&) = default;
};

// 64-bit instruction-word encoding: [0:2] op, [3] field, [32:63] operand.
[[nodiscard]] std::uint64_t encode_select(const SelectCondition& c) noexcept;
[[nodiscard]] std::optional<SelectCondition> decode_select(
    std::uint64_t word) noexcept;

// A full selection operator: scope + conjunction.
struct SelectSpec {
  SelectScope scope = SelectScope::kBoth;
  std::vector<SelectCondition> conjuncts;

  [[nodiscard]] bool applies_to(stream::StreamId id) const noexcept {
    return scope == SelectScope::kBoth ||
           (scope == SelectScope::kR) == (id == stream::StreamId::R);
  }
  [[nodiscard]] bool matches(const stream::Tuple& t) const noexcept;
};

// Instruction sequence programming select core `target` with `spec`.
[[nodiscard]] std::vector<HwWord> make_select_words(const SelectSpec& spec,
                                                    std::uint32_t target);

class SelectCore final : public sim::Module {
 public:
  SelectCore(std::string name, std::uint32_t id, sim::Fifo<HwWord>& in,
             sim::Fifo<HwWord>& out);

  void eval() override;

  [[nodiscard]] bool quiescent() const noexcept {
    return state_ == State::kIdle;
  }
  [[nodiscard]] bool programmed() const noexcept { return programmed_; }
  [[nodiscard]] const SelectSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint64_t tuples_seen() const noexcept {
    return tuples_seen_;
  }
  [[nodiscard]] std::uint64_t tuples_dropped() const noexcept {
    return tuples_dropped_;
  }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kProgram,  // consuming condition words addressed to this core
    kForward,  // forwarding a foreign instruction sequence
  };

  const std::uint32_t id_;
  sim::Fifo<HwWord>& in_;
  sim::Fifo<HwWord>& out_;

  State state_ = State::kIdle;
  bool programmed_ = false;
  SelectSpec spec_;
  SelectSpec pending_;
  std::uint32_t remaining_conditions_ = 0;

  std::uint64_t tuples_seen_ = 0;
  std::uint64_t tuples_dropped_ = 0;
};

}  // namespace hal::hw
