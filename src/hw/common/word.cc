#include "hw/common/word.h"

namespace hal::hw {

std::vector<HwWord> make_operator_words(const stream::JoinSpec& spec,
                                        std::uint32_t num_cores) {
  std::vector<HwWord> words;
  words.reserve(1 + spec.conjuncts().size());
  HwWord seg1;
  seg1.kind = WordKind::kOperator1;
  seg1.payload = encode_operator1(
      num_cores, static_cast<std::uint32_t>(spec.conjuncts().size()));
  words.push_back(seg1);
  for (const auto& c : spec.conjuncts()) {
    HwWord seg2;
    seg2.kind = WordKind::kOperator2;
    seg2.payload = stream::encode(c);
    words.push_back(seg2);
  }
  return words;
}

}  // namespace hal::hw
