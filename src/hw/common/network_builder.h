// Shared constructors for the distribution and gathering networks (§IV),
// used by every engine that assembles join/selection cores on the cycle
// simulator. The caller provides factories that allocate (and own) fifos,
// keeping module ownership with the engine.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "hw/common/word.h"
#include "hw/model/design_stats.h"
#include "hw/uniflow/dnode.h"
#include "hw/uniflow/gnode.h"
#include "sim/simulator.h"

namespace hal::hw {

using WordFifoFactory =
    std::function<sim::Fifo<HwWord>&(const std::string& name)>;
using ResultFifoFactory =
    std::function<sim::Fifo<stream::ResultTuple>&(const std::string& name)>;

struct DistributionBuild {
  std::vector<std::unique_ptr<DNode>> nodes;
  std::uint32_t max_fanout = 1;
  // DNodes that count toward resources (the lightweight broadcast's single
  // register stage does not).
  std::uint32_t counted_nodes = 0;
};

// Builds a distribution network of `kind` from `in` to `fetchers` and
// registers every created module with `sim`.
[[nodiscard]] DistributionBuild build_distribution(
    NetworkKind kind, std::uint32_t fanout, sim::Fifo<HwWord>& in,
    const std::vector<sim::Fifo<HwWord>*>& fetchers,
    const WordFifoFactory& new_fifo, sim::Simulator& sim);

struct GatheringBuild {
  std::vector<std::unique_ptr<GNode>> nodes;
  std::uint32_t max_fanin = 1;
  std::uint32_t counted_nodes = 0;
};

// Builds a gathering network of `kind` from `leaves` into `output`.
[[nodiscard]] GatheringBuild build_gathering(
    NetworkKind kind, const std::vector<sim::Fifo<stream::ResultTuple>*>& leaves,
    sim::Fifo<stream::ResultTuple>& output,
    const ResultFifoFactory& new_fifo, sim::Simulator& sim);

}  // namespace hal::hw
