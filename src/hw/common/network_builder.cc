#include "hw/common/network_builder.h"

#include <algorithm>

namespace hal::hw {

namespace {

// Partitioning hints for the parallel stepper: a node shares state with its
// input and output fifos, so declaring those wires lets the partitioner
// co-shard each subtree of the network (see sim/partition.h).
void link_dnode(sim::Simulator& sim, const DNode& node,
                const sim::Fifo<HwWord>& in,
                const std::vector<sim::Fifo<HwWord>*>& outs) {
  sim.link(node, in);
  for (const auto* f : outs) sim.link(node, *f);
}

void link_gnode(sim::Simulator& sim, const GNode& node,
                const std::vector<sim::Fifo<stream::ResultTuple>*>& ins,
                const sim::Fifo<stream::ResultTuple>& out) {
  for (const auto* f : ins) sim.link(node, *f);
  sim.link(node, out);
}

void build_tree(std::uint32_t fanout, sim::Fifo<HwWord>& in,
                std::vector<sim::Fifo<HwWord>*> leaves,
                const WordFifoFactory& new_fifo, sim::Simulator& sim,
                DistributionBuild& out, std::uint32_t depth) {
  HAL_ASSERT(!leaves.empty());
  if (leaves.size() <= fanout) {
    out.nodes.push_back(std::make_unique<DNode>(
        "dnode" + std::to_string(depth) + "_" +
            std::to_string(out.nodes.size()),
        in, leaves));
    sim.add(*out.nodes.back());
    link_dnode(sim, *out.nodes.back(), in, leaves);
    return;
  }
  const std::size_t groups = std::min<std::size_t>(fanout, leaves.size());
  std::vector<sim::Fifo<HwWord>*> intermediates;
  std::vector<std::vector<sim::Fifo<HwWord>*>> partitions(groups);
  const std::size_t base = leaves.size() / groups;
  const std::size_t extra = leaves.size() % groups;
  std::size_t pos = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t take = base + (g < extra ? 1 : 0);
    partitions[g].assign(
        leaves.begin() + static_cast<std::ptrdiff_t>(pos),
        leaves.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
    intermediates.push_back(&new_fifo("d" + std::to_string(depth) + "_" +
                                      std::to_string(g)));
  }
  out.nodes.push_back(std::make_unique<DNode>(
      "dnode" + std::to_string(depth) + "_" +
          std::to_string(out.nodes.size()),
      in, intermediates));
  sim.add(*out.nodes.back());
  link_dnode(sim, *out.nodes.back(), in, intermediates);
  for (std::size_t g = 0; g < groups; ++g) {
    build_tree(fanout, *intermediates[g], std::move(partitions[g]), new_fifo,
               sim, out, depth + 1);
  }
}

}  // namespace

DistributionBuild build_distribution(
    NetworkKind kind, std::uint32_t fanout, sim::Fifo<HwWord>& in,
    const std::vector<sim::Fifo<HwWord>*>& fetchers,
    const WordFifoFactory& new_fifo, sim::Simulator& sim) {
  DistributionBuild out;
  const auto n = static_cast<std::uint32_t>(fetchers.size());
  switch (kind) {
    case NetworkKind::kLightweight:
      out.nodes.push_back(std::make_unique<DNode>("broadcast", in, fetchers));
      sim.add(*out.nodes.back());
      link_dnode(sim, *out.nodes.back(), in, fetchers);
      out.max_fanout = n;
      out.counted_nodes = 0;  // pure wiring + the input register
      break;
    case NetworkKind::kChain: {
      sim::Fifo<HwWord>* upstream = &in;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::vector<sim::Fifo<HwWord>*> outs{fetchers[i]};
        if (i + 1 < n) outs.push_back(&new_fifo("chain" + std::to_string(i)));
        out.nodes.push_back(
            std::make_unique<DNode>("dchain" + std::to_string(i), *upstream,
                                    outs));
        sim.add(*out.nodes.back());
        link_dnode(sim, *out.nodes.back(), *upstream, outs);
        if (i + 1 < n) upstream = outs.back();
      }
      out.max_fanout = 2;
      out.counted_nodes = static_cast<std::uint32_t>(out.nodes.size());
      break;
    }
    case NetworkKind::kScalable:
      build_tree(fanout, in, fetchers, new_fifo, sim, out, 0);
      out.max_fanout = fanout;
      out.counted_nodes = static_cast<std::uint32_t>(out.nodes.size());
      break;
  }
  return out;
}

GatheringBuild build_gathering(
    NetworkKind kind,
    const std::vector<sim::Fifo<stream::ResultTuple>*>& leaves,
    sim::Fifo<stream::ResultTuple>& output,
    const ResultFifoFactory& new_fifo, sim::Simulator& sim) {
  GatheringBuild out;
  const auto n = static_cast<std::uint32_t>(leaves.size());
  switch (kind) {
    case NetworkKind::kLightweight:
      out.nodes.push_back(
          std::make_unique<GNode>("collector", leaves, output));
      sim.add(*out.nodes.back());
      link_gnode(sim, *out.nodes.back(), leaves, output);
      out.max_fanin = n;
      out.counted_nodes = 0;
      break;
    case NetworkKind::kChain: {
      sim::Fifo<stream::ResultTuple>* carry = leaves[0];
      if (n == 1) {
        out.nodes.push_back(std::make_unique<GNode>(
            "gchain0",
            std::vector<sim::Fifo<stream::ResultTuple>*>{carry}, output));
        sim.add(*out.nodes.back());
        link_gnode(sim, *out.nodes.back(), {carry}, output);
      }
      for (std::uint32_t i = 1; i < n; ++i) {
        auto& next = (i + 1 < n) ? new_fifo("gchain" + std::to_string(i))
                                 : output;
        out.nodes.push_back(std::make_unique<GNode>(
            "gchain" + std::to_string(i),
            std::vector<sim::Fifo<stream::ResultTuple>*>{carry, leaves[i]},
            next));
        sim.add(*out.nodes.back());
        link_gnode(sim, *out.nodes.back(), {carry, leaves[i]}, next);
        carry = &next;
      }
      out.max_fanin = 2;
      out.counted_nodes = static_cast<std::uint32_t>(out.nodes.size());
      break;
    }
    case NetworkKind::kScalable: {
      std::vector<sim::Fifo<stream::ResultTuple>*> level = leaves;
      std::uint32_t depth = 0;
      while (level.size() > 1) {
        std::vector<sim::Fifo<stream::ResultTuple>*> next_level;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          auto& parent = new_fifo("g" + std::to_string(depth) + "_" +
                                  std::to_string(i / 2));
          out.nodes.push_back(std::make_unique<GNode>(
              "gnode" + std::to_string(depth) + "_" + std::to_string(i / 2),
              std::vector<sim::Fifo<stream::ResultTuple>*>{level[i],
                                                           level[i + 1]},
              parent));
          sim.add(*out.nodes.back());
          link_gnode(sim, *out.nodes.back(), {level[i], level[i + 1]},
                     parent);
          next_level.push_back(&parent);
        }
        if (level.size() % 2 == 1) next_level.push_back(level.back());
        level = std::move(next_level);
        ++depth;
      }
      if (level.front() != &output) {
        out.nodes.push_back(std::make_unique<GNode>(
            "gnode_root",
            std::vector<sim::Fifo<stream::ResultTuple>*>{level.front()},
            output));
        sim.add(*out.nodes.back());
        link_gnode(sim, *out.nodes.back(), {level.front()}, output);
      }
      out.max_fanin = 2;
      out.counted_nodes = static_cast<std::uint32_t>(out.nodes.size());
      break;
    }
  }
  return out;
}

}  // namespace hal::hw
