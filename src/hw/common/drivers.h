// Input driver and result sink: the simulated test bench around an engine.
//
// The WordDriver models the stream source feeding the design's input port
// (one word per cycle when the input buffer has room); the ResultSink
// models the consumer draining the design's output port. Both timestamp
// their transfers so engines can report injection-to-emission latency and
// input-side throughput, which is what the paper measures (§V: "input
// throughput", "time it takes to process and emit all results for a newly
// inserted tuple").
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "hw/common/word.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "sim/simulator.h"
#include "stream/tuple.h"

namespace hal::hw {

class WordDriver final : public sim::Module {
 public:
  WordDriver(std::string name, const sim::Simulator& sim,
             sim::Fifo<HwWord>& out)
      : Module(std::move(name)), sim_(sim), out_(out) {}

  void enqueue(HwWord w) { pending_.push_back(std::move(w)); }

  void eval() override {
    if (pending_.empty() || !out_.can_push()) return;
    const HwWord& w = pending_.front();
    if (record_injections_ && w.is_tuple()) {
      injection_cycles_[w.tuple.seq] = sim_.cycle();
    }
    last_push_cycle_ = sim_.cycle();
    ++words_pushed_;
    out_.push(w);
    pending_.pop_front();
  }

  [[nodiscard]] bool done() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::uint64_t last_push_cycle() const noexcept {
    return last_push_cycle_;
  }
  [[nodiscard]] std::uint64_t words_pushed() const noexcept {
    return words_pushed_;
  }

  // Per-tuple injection timestamps (enabled by default; disable for large
  // throughput runs to save memory).
  void set_record_injections(bool on) noexcept { record_injections_ = on; }
  [[nodiscard]] bool has_injection_cycle(std::uint64_t seq) const {
    return injection_cycles_.contains(seq);
  }
  [[nodiscard]] std::uint64_t injection_cycle(std::uint64_t seq) const {
    return injection_cycles_.at(seq);
  }

 private:
  const sim::Simulator& sim_;
  sim::Fifo<HwWord>& out_;
  std::deque<HwWord> pending_;
  std::unordered_map<std::uint64_t, std::uint64_t> injection_cycles_;
  bool record_injections_ = true;
  std::uint64_t last_push_cycle_ = 0;
  std::uint64_t words_pushed_ = 0;
};

struct TimedResult {
  stream::ResultTuple result;
  std::uint64_t cycle = 0;
};

class ResultSink final : public sim::Module {
 public:
  ResultSink(std::string name, const sim::Simulator& sim,
             sim::Fifo<stream::ResultTuple>& in)
      : Module(std::move(name)), sim_(sim), in_(in) {}

  void eval() override {
    if (!in_.can_pop()) return;
    collected_.push_back(TimedResult{in_.pop(), sim_.cycle()});
  }

  [[nodiscard]] const std::vector<TimedResult>& collected() const noexcept {
    return collected_;
  }
  [[nodiscard]] std::uint64_t last_result_cycle() const noexcept {
    return collected_.empty() ? 0 : collected_.back().cycle;
  }
  void clear() noexcept { collected_.clear(); }

 private:
  const sim::Simulator& sim_;
  sim::Fifo<stream::ResultTuple>& in_;
  std::vector<TimedResult> collected_;
};

}  // namespace hal::hw
