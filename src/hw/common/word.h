// The bus word format of the hardware designs.
//
// §IV: "arrows in the distribution and result gathering network are data
// buses ... including their 2-bit headers. The header defines whether we
// are dealing with a new join operator or a tuple belonging to either the
// R or S stream."  The fourth header code distinguishes the two segments
// of the operator-programming instruction (Fig. 12: Operator Store 1 / 2).
#pragma once

#include <cstdint>
#include <vector>

#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::hw {

enum class WordKind : std::uint8_t {
  kTupleR = 0,
  kTupleS = 1,
  kOperator1 = 2,  // segment 1: join parameters (#cores, #conditions)
  kOperator2 = 3,  // segment 2: one join condition (repeated per conjunct)
};

struct HwWord {
  WordKind kind = WordKind::kTupleR;
  // Raw 64-bit payload as it would appear on the bus. For operator words
  // this is the encoded instruction segment; for tuple words it is
  // key<<32|value.
  std::uint64_t payload = 0;
  // Simulator-side tuple metadata (seq/origin) used for verification;
  // mirrors payload for tuple words and is unused for operator words.
  stream::Tuple tuple;

  [[nodiscard]] bool is_tuple() const noexcept {
    return kind == WordKind::kTupleR || kind == WordKind::kTupleS;
  }
};

// Target id addressing an operator instruction to one processing element
// on a pipeline (OP-Chain selection cores consume instructions addressed
// to them and forward the rest). The broadcast target reaches the join
// cores behind the distribution network.
inline constexpr std::uint32_t kBroadcastTarget = 0xffffu;

// Segment-1 payload layout: [0:15] number of join cores,
// [16:31] number of condition words that follow, [32:47] target block id,
// [48:49] stream scope (selection instructions: 0=R, 1=S, 2=both).
[[nodiscard]] inline std::uint64_t encode_operator1(
    std::uint32_t num_cores, std::uint32_t num_conditions,
    std::uint32_t target = kBroadcastTarget,
    std::uint32_t scope = 2) noexcept {
  return (static_cast<std::uint64_t>(scope & 0x3u) << 48) |
         (static_cast<std::uint64_t>(target & 0xffffu) << 32) |
         (static_cast<std::uint64_t>(num_conditions & 0xffffu) << 16) |
         (num_cores & 0xffffu);
}

struct Operator1 {
  std::uint32_t num_cores;
  std::uint32_t num_conditions;
  std::uint32_t target;
  std::uint32_t scope;
};

[[nodiscard]] inline Operator1 decode_operator1(std::uint64_t payload) noexcept {
  return Operator1{static_cast<std::uint32_t>(payload & 0xffffu),
                   static_cast<std::uint32_t>((payload >> 16) & 0xffffu),
                   static_cast<std::uint32_t>((payload >> 32) & 0xffffu),
                   static_cast<std::uint32_t>((payload >> 48) & 0x3u)};
}

[[nodiscard]] inline HwWord make_tuple_word(const stream::Tuple& t) noexcept {
  HwWord w;
  w.kind = t.origin == stream::StreamId::R ? WordKind::kTupleR
                                           : WordKind::kTupleS;
  w.payload = t.payload();
  w.tuple = t;
  return w;
}

// Builds the word sequence that programs a join operator at runtime
// (Fig. 6's "map new operators / apply it" path: microseconds, no
// re-synthesis).
[[nodiscard]] std::vector<HwWord> make_operator_words(
    const stream::JoinSpec& spec, std::uint32_t num_cores);

}  // namespace hal::hw
