// Sub-window storage: the BRAM-backed circular buffer inside a join core.
//
// Each join core owns one sub-window per stream (Figs. 10/11). Insertion
// overwrites the oldest entry once full (count-based sliding window); the
// processing core reads one slot per clock cycle (the FSM enforces the
// single-port access rate, this class only provides the storage).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "stream/tuple.h"

namespace hal::hw {

class SubWindow {
 public:
  explicit SubWindow(std::size_t capacity) : slots_(capacity) {
    HAL_CHECK(capacity > 0, "sub-window capacity must be positive");
  }

  void insert(const stream::Tuple& t) noexcept {
    slots_[write_pos_] = t;
    write_pos_ = (write_pos_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  // Logical index 0 = oldest resident tuple.
  [[nodiscard]] const stream::Tuple& at(std::size_t i) const noexcept {
    HAL_ASSERT(i < size_);
    const std::size_t oldest =
        size_ < slots_.size() ? 0 : write_pos_;  // wraparound start
    return slots_[(oldest + i) % slots_.size()];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  void clear() noexcept {
    size_ = 0;
    write_pos_ = 0;
  }

 private:
  std::vector<stream::Tuple> slots_;
  std::size_t write_pos_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hal::hw
