// GNode: the building block of the result gathering network (§IV, Fig. 9).
//
// "Each GNode collects resulting tuples from two sources connected to its
// two upper ports using a Toggle Grant mechanism that toggles the
// collection permission for its previous nodes in each clock cycle. ...
// The destination (next) GNode simply toggles this permission each cycle
// without the need for any special control unit."
//
// With two inputs this is exactly the paper's toggle grant (each source
// drains once every two cycles). Instantiated with N inputs it realizes
// the *lightweight* gathering network's round-robin collection "from join
// cores, one after another", whose O(N) polling latency the paper reports
// as the dominant cost at large core counts. The grant pointer advances
// every cycle unconditionally — there is deliberately no handshake.
#pragma once

#include <vector>

#include "common/assert.h"
#include "obs/enabled.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "stream/tuple.h"

namespace hal::hw {

class GNode final : public sim::Module {
 public:
  GNode(std::string name, std::vector<sim::Fifo<stream::ResultTuple>*> ins,
        sim::Fifo<stream::ResultTuple>& out)
      : Module(std::move(name)), ins_(std::move(ins)), out_(out) {
    HAL_CHECK(!ins_.empty(), "GNode needs at least one input");
  }

  void eval() override {
    auto* granted = ins_[grant_];
    if (granted->can_pop()) {
      if (out_.can_push()) {
        out_.push(granted->pop());
        ++forwarded_;
      } else if constexpr (obs::kEnabled) {
        ++stall_cycles_;  // granted source ready, downstream full
      }
    }
    grant_ = (grant_ + 1) % ins_.size();
  }

  [[nodiscard]] std::size_t fan_in() const noexcept { return ins_.size(); }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  // Cycles the granted input held a result but the downstream link was
  // full. Always 0 with HAL_OBS=0.
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept {
    return stall_cycles_;
  }

 private:
  std::vector<sim::Fifo<stream::ResultTuple>*> ins_;
  sim::Fifo<stream::ResultTuple>& out_;
  std::size_t grant_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace hal::hw
