// Interface of a uni-flow join core as seen by the engine: the paper's
// join core abstraction is agnostic to the local join algorithm (§IV:
// "Each join core individually implements the original join operator
// (without posing any limitation on the chosen join algorithm, e.g.,
// nested-loop join or hash join) but on a fraction of the original
// sliding window"). UniflowJoinCore scans its sub-window (nested loop,
// Fig. 13); HashJoinCore keeps a key index next to the sub-window.
#pragma once

#include <cstdint>

#include "sim/module.h"
#include "stream/tuple.h"

namespace hal::hw {

// Local join algorithm of each core (§IV: the abstraction poses no
// limitation — nested-loop or hash join).
enum class JoinAlgorithm : std::uint8_t { kNestedLoop, kHash };

[[nodiscard]] constexpr const char* to_string(JoinAlgorithm a) noexcept {
  return a == JoinAlgorithm::kNestedLoop ? "nested-loop" : "hash";
}

class IUniflowCore : public sim::Module {
 public:
  using sim::Module::Module;

  // Both controllers idle and nothing in flight.
  [[nodiscard]] virtual bool quiescent() const noexcept = 0;

  // Bench warm-start hooks (see UniflowEngine::prefill).
  virtual void prefill_store(const stream::Tuple& t) = 0;
  virtual void set_prefill_counts(std::uint64_t count_r,
                                  std::uint64_t count_s) = 0;

  // Introspection.
  [[nodiscard]] virtual std::size_t window_size(
      stream::StreamId id) const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t probes() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t matches() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t tuples_seen() const noexcept = 0;
};

}  // namespace hal::hw
