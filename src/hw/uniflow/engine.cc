#include "hw/uniflow/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "common/math_util.h"
#include "hw/common/network_builder.h"

namespace hal::hw {

UniflowEngine::UniflowEngine(UniflowConfig cfg) : cfg_(cfg) {
  HAL_CHECK(cfg_.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.window_size >= cfg_.num_cores,
            "window must hold at least one tuple per core");
  HAL_CHECK(cfg_.window_size % cfg_.num_cores == 0,
            "window_size must be a multiple of num_cores");
  HAL_CHECK(cfg_.fanout >= 2, "DNode fan-out must be at least 2");
  HAL_CHECK(cfg_.link_depth >= 2,
            "link depth < 2 cannot sustain one word per cycle");

  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;

  sim_.configure(cfg_.sim);
  // Fifos dominate the module count: one per core for fetch + result, the
  // network-internal links, plus nodes, driver and sink.
  sim_.reserve(6 * static_cast<std::size_t>(cfg_.num_cores) + 8);

  stats_.flow = FlowModel::kUniflow;
  stats_.num_cores = cfg_.num_cores;
  stats_.sub_window_capacity = sub_window;
  stats_.distribution = cfg_.distribution;
  stats_.gathering = cfg_.gathering;
  stats_.fanout = cfg_.fanout;
  stats_.io_channels_per_core = 2;  // in from distributor, out to gatherer
  stats_.max_broadcast_fanout = 1;
  stats_.hash_index = cfg_.algorithm == JoinAlgorithm::kHash;

  // Input port and per-core Fetchers.
  auto& input = new_word_fifo("input");
  std::vector<sim::Fifo<HwWord>*> fetchers;
  fetchers.reserve(cfg_.num_cores);
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    fetchers.push_back(&new_word_fifo("fetcher" + std::to_string(i)));
  }

  // Distribution network.
  auto dist = build_distribution(
      cfg_.distribution, cfg_.fanout, input, fetchers,
      [this](const std::string& name) -> sim::Fifo<HwWord>& {
        return new_word_fifo(name);
      },
      sim_);
  dnodes_ = std::move(dist.nodes);
  stats_.num_dnodes = dist.counted_nodes;
  stats_.max_broadcast_fanout =
      std::max(stats_.max_broadcast_fanout, dist.max_fanout);

  // Join cores and their result links.
  std::vector<sim::Fifo<stream::ResultTuple>*> result_leaves;
  for (std::uint32_t i = 0; i < cfg_.num_cores; ++i) {
    auto& rf = new_result_fifo("results" + std::to_string(i));
    result_leaves.push_back(&rf);
    if (cfg_.algorithm == JoinAlgorithm::kHash) {
      cores_.push_back(std::make_unique<HashJoinCore>(
          "jc" + std::to_string(i), i, sub_window, *fetchers[i], rf));
    } else {
      cores_.push_back(std::make_unique<UniflowJoinCore>(
          "jc" + std::to_string(i), i, sub_window, *fetchers[i], rf));
    }
    sim_.add(*cores_.back());
    sim_.link(*cores_.back(), *fetchers[i]);
    sim_.link(*cores_.back(), rf);
  }

  // Result gathering network.
  auto& output = new_result_fifo("output");
  auto gather = build_gathering(
      cfg_.gathering, result_leaves, output,
      [this](const std::string& name) -> sim::Fifo<stream::ResultTuple>& {
        return new_result_fifo(name);
      },
      sim_);
  gnodes_ = std::move(gather.nodes);
  stats_.num_gnodes = gather.counted_nodes;
  stats_.max_broadcast_fanout =
      std::max(stats_.max_broadcast_fanout, gather.max_fanin);

  driver_ = std::make_unique<WordDriver>("driver", sim_, input);
  sim_.add(*driver_);
  sim_.link(*driver_, input);
  sink_ = std::make_unique<ResultSink>("sink", sim_, output);
  sim_.add(*sink_);
  sim_.link(*sink_, output);
}

sim::Fifo<HwWord>& UniflowEngine::new_word_fifo(std::string name) {
  word_fifos_.push_back(
      std::make_unique<sim::Fifo<HwWord>>(std::move(name), cfg_.link_depth));
  sim_.add(*word_fifos_.back());
  return *word_fifos_.back();
}

sim::Fifo<stream::ResultTuple>& UniflowEngine::new_result_fifo(
    std::string name) {
  result_fifos_.push_back(std::make_unique<sim::Fifo<stream::ResultTuple>>(
      std::move(name), cfg_.link_depth));
  sim_.add(*result_fifos_.back());
  return *result_fifos_.back();
}

void UniflowEngine::prefill(const std::vector<stream::Tuple>& tuples) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent engine");
  // The round-robin turn is derived from per-stream arrival indices, so
  // prefill must precede any streamed tuples (otherwise the cores' private
  // counters could not be continued consistently).
  HAL_CHECK(cores_[0]->tuples_seen() == 0,
            "prefill must precede streamed tuples");
  std::uint64_t idx_r = 0;
  std::uint64_t idx_s = 0;
  for (const auto& t : tuples) {
    std::uint64_t& idx = t.origin == stream::StreamId::R ? idx_r : idx_s;
    const auto target = static_cast<std::uint32_t>(idx % cfg_.num_cores);
    cores_[target]->prefill_store(t);
    ++idx;
  }
  for (auto& core : cores_) core->set_prefill_counts(idx_r, idx_s);
}

void UniflowEngine::program(const stream::JoinSpec& spec) {
  for (const HwWord& w : make_operator_words(spec, cfg_.num_cores)) {
    driver_->enqueue(w);
  }
}

void UniflowEngine::offer(const stream::Tuple& t) {
  driver_->enqueue(make_tuple_word(t));
}

void UniflowEngine::offer(const std::vector<stream::Tuple>& tuples) {
  for (const auto& t : tuples) offer(t);
}

void UniflowEngine::step(std::uint64_t cycles) { sim_.step_n(cycles); }

bool UniflowEngine::quiescent() const {
  if (!driver_->done()) return false;
  for (const auto& f : word_fifos_) {
    if (!f->empty()) return false;
  }
  for (const auto& f : result_fifos_) {
    if (!f->empty()) return false;
  }
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->quiescent(); });
}

std::uint64_t UniflowEngine::run_to_quiescence(std::uint64_t max_cycles,
                                               bool require_quiescent) {
  const std::uint64_t stepped =
      sim_.run_until([this] { return quiescent(); }, max_cycles);
  if (require_quiescent) {
    HAL_ASSERT_MSG(quiescent(), "engine did not quiesce within max_cycles");
  }
  return stepped;
}

std::vector<stream::ResultTuple> UniflowEngine::result_tuples() const {
  std::vector<stream::ResultTuple> out;
  out.reserve(sink_->collected().size());
  for (const auto& tr : sink_->collected()) out.push_back(tr.result);
  return out;
}

std::uint64_t UniflowEngine::total_probes() const {
  std::uint64_t total = 0;
  for (const auto& c : cores_) total += c->probes();
  return total;
}

void UniflowEngine::collect_metrics(obs::MetricRegistry& registry,
                                    const std::string& prefix) const {
  sim_.collect_metrics(registry, prefix);

  // One reused key buffer for the whole snapshot; with thousands of cores
  // and fifos, rebuilding `prefix + name` per metric was the hot spot of
  // the collection path (set_counter only needs a string_view).
  std::string key;
  key.reserve(prefix.size() + 48);
  const auto with = [&](std::string_view suffix) -> const std::string& {
    key.assign(prefix);
    key.append(suffix);
    return key;
  };

  std::uint64_t probes = 0;
  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const IUniflowCore& c = *cores_[i];
    key.assign(prefix);
    key.append("core.");
    key.append(std::to_string(i));
    const std::size_t stem = key.size();
    key.append(".probes");
    registry.set_counter(key, c.probes());
    key.resize(stem);
    key.append(".matches");
    registry.set_counter(key, c.matches());
    key.resize(stem);
    key.append(".tuples_seen");
    registry.set_counter(key, c.tuples_seen());
    probes += c.probes();
    matches += c.matches();
  }
  registry.set_counter(with("probes"), probes);
  registry.set_counter(with("matches"), matches);
  registry.set_counter(with("results"), sink_->collected().size());

  std::uint64_t dist_stalls = 0;
  for (const auto& d : dnodes_) dist_stalls += d->stall_cycles();
  registry.set_counter(with("distribution.stall_cycles"), dist_stalls);
  std::uint64_t gather_stalls = 0;
  for (const auto& g : gnodes_) gather_stalls += g->stall_cycles();
  registry.set_counter(with("gathering.stall_cycles"), gather_stalls);

  const auto fifo_key = [&](std::string_view name) -> const std::string& {
    key.assign(prefix);
    key.append("fifo.");
    key.append(name);
    key.append(".high_water");
    return key;
  };
  for (const auto& f : word_fifos_) {
    registry.set_counter(fifo_key(f->name()), f->high_water());
  }
  for (const auto& f : result_fifos_) {
    registry.set_counter(fifo_key(f->name()), f->high_water());
  }
}

}  // namespace hal::hw
