// Uni-flow join core (Fig. 11) with the Storage Core and Processing Core
// controllers of Figs. 12 and 13.
//
// The core sits behind its Fetcher (a depth-2 input buffer that decouples
// it from the distribution network) and owns one sub-window per stream.
// A word is consumed from the Fetcher only when both controllers can
// accept it; the Storage Core then walks Fig. 12's states (round-robin
// turn counting, store/skip) while the Processing Core walks Fig. 13's
// (one sub-window read per cycle in Join Processing, one extra cycle in
// Emit Result per match, Processing Skip when there is nothing to scan).
//
// The join operator is runtime-programmable by a two-segment instruction:
// segment 1 carries the number of join cores and the number of condition
// words, segment 2 carries one condition per word (Operator Store 1/2 and
// Operator Read 1/2 states). The core's own position among its peers is a
// synthesis-time parameter, as in the modeled hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/common/sub_window.h"
#include "hw/common/word.h"
#include "hw/uniflow/core_interface.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "stream/join_spec.h"

namespace hal::hw {

enum class StorageState : std::uint8_t {
  kIdle,
  kOpStore1,
  kOpStore2,
  kStoreR,
  kStoreRDone,
  kStoreS,
  kStoreSDone,
};

enum class ProcState : std::uint8_t {
  kIdle,
  kOpRead1,
  kOpRead2,
  kJoinProc,
  kEmitResult,
  kJoinWait,
  kSkip,
};

[[nodiscard]] const char* to_string(StorageState s) noexcept;
[[nodiscard]] const char* to_string(ProcState s) noexcept;

class UniflowJoinCore final : public IUniflowCore {
 public:
  UniflowJoinCore(std::string name, std::uint32_t position,
                  std::size_t sub_window_capacity, sim::Fifo<HwWord>& fetcher,
                  sim::Fifo<stream::ResultTuple>& results);

  void eval() override;

  // Simulation-state injection (bench warm-start, see engine::prefill):
  // stores one tuple this core's round-robin turn selected, and afterwards
  // sets the turn counters every core advanced while the batch streamed
  // "past" it. Only valid while the core is quiescent and nothing has
  // streamed yet.
  void prefill_store(const stream::Tuple& t) override;
  void set_prefill_counts(std::uint64_t count_r,
                          std::uint64_t count_s) override;

  // -- introspection (tests, engine idle detection, power activity) --
  [[nodiscard]] StorageState storage_state() const noexcept { return sstate_; }
  [[nodiscard]] ProcState proc_state() const noexcept { return pstate_; }
  [[nodiscard]] bool quiescent() const noexcept override {
    return sstate_ == StorageState::kIdle &&
           (pstate_ == ProcState::kIdle || pstate_ == ProcState::kJoinWait);
  }
  [[nodiscard]] const SubWindow& window(stream::StreamId id) const noexcept {
    return id == stream::StreamId::R ? win_r_ : win_s_;
  }
  [[nodiscard]] std::size_t window_size(
      stream::StreamId id) const noexcept override {
    return window(id).size();
  }
  [[nodiscard]] const stream::JoinSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t programmed_cores() const noexcept {
    return num_cores_;
  }
  [[nodiscard]] std::uint64_t probes() const noexcept override {
    return probes_;
  }
  [[nodiscard]] std::uint64_t matches() const noexcept override {
    return matches_;
  }
  [[nodiscard]] std::uint64_t tuples_seen() const noexcept override {
    return count_r_ + count_s_;
  }
  [[nodiscard]] std::uint32_t position() const noexcept { return position_; }

 private:
  [[nodiscard]] bool ready_for_any_word() const noexcept;
  void intake(const HwWord& w);
  void advance_storage();
  void advance_processing();

  const std::uint32_t position_;
  SubWindow win_r_;
  SubWindow win_s_;
  sim::Fifo<HwWord>& fetcher_;
  sim::Fifo<stream::ResultTuple>& results_;

  // Controller state. Internal to this module (only fifo traffic crosses
  // module boundaries), so plain members are two-phase-safe.
  StorageState sstate_ = StorageState::kIdle;
  ProcState pstate_ = ProcState::kIdle;

  // Operator registers (segment 1 + accumulated segment-2 conditions).
  std::uint32_t num_cores_ = 0;  // 0 = unprogrammed: store/probe disabled
  std::uint32_t expected_conditions_ = 0;
  std::uint32_t pending_num_cores_ = 0;
  std::vector<stream::JoinCondition> pending_conditions_;
  stream::JoinSpec spec_;

  // Round-robin storage turn counters (Fig. 12: the core "remembers the
  // number of tuples received from each stream").
  std::uint64_t count_r_ = 0;
  std::uint64_t count_s_ = 0;

  // In-flight tuple being stored / probed.
  std::optional<stream::Tuple> store_pending_;
  std::optional<stream::Tuple> probe_tuple_;
  std::size_t scan_idx_ = 0;
  std::size_t scan_len_ = 0;
  std::optional<stream::ResultTuple> emit_pending_;

  // Activity counters for the power model.
  std::uint64_t probes_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace hal::hw
