// Top-level uni-flow parallel stream join (Fig. 9): distribution network →
// join cores → result gathering network, assembled over the cycle
// simulator.
//
// The engine owns every module and the Simulator; callers interact through
// tuples in / results out plus cycle-level observers, and the model layer
// consumes `design_stats()` for frequency / resource / power estimates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/common/drivers.h"
#include "hw/common/word.h"
#include "hw/model/design_stats.h"
#include "hw/uniflow/dnode.h"
#include "hw/uniflow/gnode.h"
#include "hw/uniflow/hash_join_core.h"
#include "hw/uniflow/join_core.h"
#include "obs/metrics.h"
#include "sim/fifo.h"
#include "sim/simulator.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::hw {

struct UniflowConfig {
  std::uint32_t num_cores = 4;
  // Per-stream sliding window size, summed across all join cores. Must be
  // a multiple of num_cores.
  std::size_t window_size = 1024;
  NetworkKind distribution = NetworkKind::kScalable;
  NetworkKind gathering = NetworkKind::kScalable;
  std::uint32_t fanout = 2;     // DNode fan-out in the scalable tree
  std::size_t link_depth = 2;   // pipeline buffer depth of every link
  // kHash accelerates pure key equi-joins (O(1+matches) per tuple instead
  // of O(W/N)) at the cost of an index memory bank per sub-window.
  JoinAlgorithm algorithm = JoinAlgorithm::kNestedLoop;
  // Simulation-kernel knobs (host-side execution only; never changes the
  // simulated design or any cycle count). threads=1 is the serial oracle.
  sim::SimConfig sim;
};

class UniflowEngine {
 public:
  explicit UniflowEngine(UniflowConfig cfg);

  // Enqueues the two-segment operator instruction (runtime programming;
  // takes effect in stream order relative to offered tuples).
  void program(const stream::JoinSpec& spec);

  void offer(const stream::Tuple& t);
  void offer(const std::vector<stream::Tuple>& tuples);

  // Warm-start: loads `tuples` into the sliding windows (round-robin
  // storage, arrival order preserved) as if they had streamed through a
  // quiescent design, without spending simulation cycles. Benches use this
  // to reach the steady state the paper measures in (full windows) for
  // window sizes where simulating the fill would take hundreds of millions
  // of cycles. Requires a programmed, quiescent engine.
  void prefill(const std::vector<stream::Tuple>& tuples);

  // Advance the clock.
  void step(std::uint64_t cycles = 1);

  // Run until the design is quiescent (input drained, controllers idle,
  // all pipeline buffers empty) or `max_cycles` elapse. Returns the number
  // of cycles stepped; asserts on timeout if `require_quiescent`.
  std::uint64_t run_to_quiescence(std::uint64_t max_cycles,
                                  bool require_quiescent = true);

  [[nodiscard]] bool quiescent() const;

  // -- observers -----------------------------------------------------------
  [[nodiscard]] std::uint64_t cycle() const { return sim_.cycle(); }
  [[nodiscard]] std::size_t module_count() const {
    return sim_.module_count();
  }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const std::vector<TimedResult>& results() const {
    return sink_->collected();
  }
  void clear_results() { sink_->clear(); }
  [[nodiscard]] std::vector<stream::ResultTuple> result_tuples() const;

  [[nodiscard]] bool input_drained() const { return driver_->done(); }
  [[nodiscard]] std::uint64_t last_injection_cycle() const {
    return driver_->last_push_cycle();
  }
  [[nodiscard]] std::uint64_t injection_cycle(std::uint64_t seq) const {
    return driver_->injection_cycle(seq);
  }
  void set_record_injections(bool on) { driver_->set_record_injections(on); }
  [[nodiscard]] std::uint64_t last_result_cycle() const {
    return sink_->last_result_cycle();
  }

  [[nodiscard]] const UniflowConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] DesignStats design_stats() const noexcept { return stats_; }
  [[nodiscard]] const IUniflowCore& core(std::size_t i) const {
    return *cores_.at(i);
  }
  [[nodiscard]] std::uint64_t total_probes() const;

  // Publishes cycle counts, per-core probe/match counters, network
  // stall cycles and per-FIFO occupancy high-water under `prefix`. All
  // values are deterministic (cycle-accurate simulation).
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  sim::Fifo<HwWord>& new_word_fifo(std::string name);
  sim::Fifo<stream::ResultTuple>& new_result_fifo(std::string name);

  UniflowConfig cfg_;
  DesignStats stats_;
  sim::Simulator sim_;

  // Ownership: modules are appended in construction order; the Simulator
  // holds non-owning pointers.
  std::vector<std::unique_ptr<sim::Fifo<HwWord>>> word_fifos_;
  std::vector<std::unique_ptr<sim::Fifo<stream::ResultTuple>>> result_fifos_;
  std::vector<std::unique_ptr<DNode>> dnodes_;
  std::vector<std::unique_ptr<GNode>> gnodes_;
  std::vector<std::unique_ptr<IUniflowCore>> cores_;
  std::unique_ptr<WordDriver> driver_;
  std::unique_ptr<ResultSink> sink_;
};

}  // namespace hal::hw
