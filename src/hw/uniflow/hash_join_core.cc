#include "hw/uniflow/hash_join_core.h"

#include "common/assert.h"

namespace hal::hw {

using stream::StreamId;
using stream::Tuple;

HashJoinCore::HashJoinCore(std::string name, std::uint32_t position,
                           std::size_t sub_window_capacity,
                           sim::Fifo<HwWord>& fetcher,
                           sim::Fifo<stream::ResultTuple>& results)
    : IUniflowCore(std::move(name)),
      position_(position),
      fetcher_(fetcher),
      results_(results) {
  win_r_.capacity = sub_window_capacity;
  win_s_.capacity = sub_window_capacity;
}

void HashJoinCore::IndexedWindow::insert(const Tuple& t) {
  if (window.size() == capacity) {
    const Tuple& oldest = window.front();
    auto it = index.find(oldest.key);
    HAL_ASSERT(it != index.end() && !it->second.empty());
    it->second.pop_front();
    if (it->second.empty()) index.erase(it);
    window.pop_front();
  }
  window.push_back(t);
  index[t.key].push_back(t);
}

void HashJoinCore::prefill_store(const Tuple& t) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent core");
  (t.origin == StreamId::R ? win_r_ : win_s_).insert(t);
}

void HashJoinCore::set_prefill_counts(std::uint64_t count_r,
                                      std::uint64_t count_s) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent core");
  count_r_ = count_r;
  count_s_ = count_s;
}

void HashJoinCore::intake(const HwWord& w) {
  switch (w.kind) {
    case WordKind::kOperator1: {
      const Operator1 op = decode_operator1(w.payload);
      HAL_CHECK(op.num_conditions == 1,
                "hash join core supports exactly one condition");
      num_cores_ = 0;  // disabled until the condition word validates
      expected_conditions_ = op.num_conditions;
      received_conditions_ = 0;
      // Stash the core count to activate once the condition arrives.
      pending_cores_ = op.num_cores;
      state_ = State::kOpStore1;
      return;
    }
    case WordKind::kOperator2:
      HAL_ASSERT_MSG(false, "Operator2 outside a programming sequence");
      return;
    case WordKind::kTupleR:
    case WordKind::kTupleS: {
      const Tuple& t = w.tuple;
      current_ = t;
      std::uint64_t& count = t.origin == StreamId::R ? count_r_ : count_s_;
      store_turn_ = num_cores_ > 0 && (count % num_cores_) == position_;
      ++count;
      state_ = State::kHashLookup;
      return;
    }
  }
}

void HashJoinCore::eval() {
  switch (state_) {
    case State::kIdle: {
      if (!fetcher_.can_pop()) break;
      const HwWord& front = fetcher_.front();
      if (front.kind == WordKind::kOperator2) break;  // not mid-programming
      intake(fetcher_.pop());
      break;
    }
    case State::kOpStore1:
      state_ = State::kOpStore2;
      break;
    case State::kOpStore2: {
      if (!fetcher_.can_pop()) break;
      const HwWord& front = fetcher_.front();
      if (front.kind != WordKind::kOperator2) break;
      const HwWord w = fetcher_.pop();
      const auto cond = stream::decode(w.payload);
      HAL_ASSERT_MSG(cond.has_value(), "malformed Operator2 word");
      // The hash index only accelerates an exact equi-join on the key.
      HAL_CHECK(cond->op == stream::CmpOp::Eq &&
                    cond->lhs == stream::Field::Key &&
                    cond->rhs == stream::Field::Key && cond->band == 0,
                "hash join core requires an equi-join on the key; use the "
                "nested-loop core for general operators");
      num_cores_ = pending_cores_;
      state_ = State::kIdle;
      break;
    }
    case State::kHashLookup: {
      HAL_ASSERT(current_.has_value());
      const IndexedWindow& opposite =
          current_->origin == StreamId::R ? win_s_ : win_r_;
      candidates_.clear();
      if (num_cores_ > 0) {
        const auto it = opposite.index.find(current_->key);
        if (it != opposite.index.end()) {
          candidates_.assign(it->second.begin(), it->second.end());
        }
      }
      probe_idx_ = 0;
      if (store_turn_) store_pending_ = current_;
      state_ = candidates_.empty() ? State::kStore : State::kProbe;
      break;
    }
    case State::kProbe: {
      HAL_ASSERT(probe_idx_ < candidates_.size());
      const Tuple& candidate = candidates_[probe_idx_];
      ++probe_idx_;
      ++probes_;
      HAL_ASSERT(candidate.key == current_->key);  // index invariant
      const bool is_r = current_->origin == StreamId::R;
      const Tuple& r = is_r ? *current_ : candidate;
      const Tuple& s = is_r ? candidate : *current_;
      ++matches_;
      emit_pending_ = stream::ResultTuple{r, s};
      state_ = State::kEmitResult;
      break;
    }
    case State::kEmitResult:
      HAL_ASSERT(emit_pending_.has_value());
      if (!results_.can_push()) break;  // gatherer backpressure
      results_.push(*emit_pending_);
      emit_pending_.reset();
      state_ =
          probe_idx_ < candidates_.size() ? State::kProbe : State::kStore;
      break;
    case State::kStore:
      if (store_pending_.has_value()) {
        (store_pending_->origin == StreamId::R ? win_r_ : win_s_)
            .insert(*store_pending_);
        store_pending_.reset();
      }
      state_ = State::kStoreDone;
      break;
    case State::kStoreDone:
      current_.reset();
      state_ = State::kIdle;
      break;
  }
}

}  // namespace hal::hw
