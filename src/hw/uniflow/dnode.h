// DNode: the building block of the distribution network (§IV, Fig. 9).
//
// "DNode receives a tuple in its input port and broadcasts it to all its
// output ports. ... DNodes store incoming tuples as long as their internal
// buffer is not full. As output, each DNode sends out the stored tuples,
// one tuple in each clock cycle, provided the next DNodes are not full."
//
// The internal buffer is the input Fifo (depth 2 sustains one word per
// cycle). A word advances only when *all* downstream buffers can accept it,
// which is exactly the broadcast backpressure of the hardware design. The
// same class with fan-out N and a single level realizes the *lightweight*
// distribution network; a cascade with fan-out k realizes the *scalable*
// one.
#pragma once

#include <vector>

#include "common/assert.h"
#include "hw/common/word.h"
#include "obs/enabled.h"
#include "sim/fifo.h"
#include "sim/module.h"

namespace hal::hw {

class DNode final : public sim::Module {
 public:
  DNode(std::string name, sim::Fifo<HwWord>& in,
        std::vector<sim::Fifo<HwWord>*> outs)
      : Module(std::move(name)), in_(in), outs_(std::move(outs)) {
    HAL_CHECK(!outs_.empty(), "DNode needs at least one output");
  }

  void eval() override {
    if (!in_.can_pop()) return;
    for (const auto* out : outs_) {
      if (!out->can_push()) {  // broadcast backpressure
        if constexpr (obs::kEnabled) ++stall_cycles_;
        return;
      }
    }
    const HwWord w = in_.pop();
    for (auto* out : outs_) out->push(w);
    ++forwarded_;
  }

  [[nodiscard]] std::size_t fan_out() const noexcept { return outs_.size(); }
  [[nodiscard]] std::uint64_t forwarded() const noexcept { return forwarded_; }
  // Cycles a word was ready but a downstream buffer was full. Always 0
  // with HAL_OBS=0.
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept {
    return stall_cycles_;
  }

 private:
  sim::Fifo<HwWord>& in_;
  std::vector<sim::Fifo<HwWord>*> outs_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

}  // namespace hal::hw
