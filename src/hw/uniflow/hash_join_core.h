// Hash-join variant of the uni-flow join core.
//
// §IV notes the join-core abstraction poses no limitation on the local
// join algorithm — "e.g., nested-loop join or hash join". This core keeps
// the same Fetcher / round-robin Storage discipline as the nested-loop
// core but pairs each sub-window with a key index in a second BRAM bank:
// a probe costs one hash-lookup cycle plus one cycle per *candidate with
// the same key* instead of one cycle per windowed tuple, so an equi-join's
// service time drops from O(W/N) to O(1 + matches) per tuple. The trade:
// the operator must be exactly an equi-join on the key (programming
// anything else is rejected at Operator-store time), and the index costs
// extra memory — the flexibility-vs-speed dial of the paper's
// representational model.
//
// Cycle accounting: intake (1) → OperatorRead/Store as in Figs. 12/13 →
// HashLookup (1) → one Probe cycle per same-key candidate → EmitResult
// (1 per match, stalls on gatherer backpressure) → storage pipeline
// (store + done), serialized with processing as in the nested-loop core.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hw/common/word.h"
#include "hw/uniflow/core_interface.h"
#include "sim/fifo.h"
#include "stream/join_spec.h"

namespace hal::hw {

class HashJoinCore final : public IUniflowCore {
 public:
  HashJoinCore(std::string name, std::uint32_t position,
               std::size_t sub_window_capacity, sim::Fifo<HwWord>& fetcher,
               sim::Fifo<stream::ResultTuple>& results);

  void eval() override;

  void prefill_store(const stream::Tuple& t) override;
  void set_prefill_counts(std::uint64_t count_r,
                          std::uint64_t count_s) override;

  [[nodiscard]] bool quiescent() const noexcept override {
    return state_ == State::kIdle && !store_pending_.has_value();
  }
  [[nodiscard]] std::size_t window_size(
      stream::StreamId id) const noexcept override {
    return (id == stream::StreamId::R ? win_r_ : win_s_).window.size();
  }
  [[nodiscard]] std::uint64_t probes() const noexcept override {
    return probes_;
  }
  [[nodiscard]] std::uint64_t matches() const noexcept override {
    return matches_;
  }
  [[nodiscard]] std::uint64_t tuples_seen() const noexcept override {
    return count_r_ + count_s_;
  }

 private:
  enum class State : std::uint8_t {
    kIdle,
    kOpStore1,
    kOpStore2,
    kHashLookup,
    kProbe,
    kEmitResult,
    kStore,
    kStoreDone,
  };

  // Sub-window with a key index: the window deque preserves eviction
  // order; the index maps key → windowed tuples with that key, kept
  // exactly in sync on insert/evict.
  struct IndexedWindow {
    std::deque<stream::Tuple> window;
    std::unordered_map<std::uint32_t, std::deque<stream::Tuple>> index;
    std::size_t capacity = 0;

    void insert(const stream::Tuple& t);
  };

  void intake(const HwWord& w);

  const std::uint32_t position_;
  IndexedWindow win_r_;
  IndexedWindow win_s_;
  sim::Fifo<HwWord>& fetcher_;
  sim::Fifo<stream::ResultTuple>& results_;

  State state_ = State::kIdle;
  std::uint32_t num_cores_ = 0;
  std::uint32_t pending_cores_ = 0;
  std::uint32_t expected_conditions_ = 0;
  std::uint32_t received_conditions_ = 0;
  std::uint64_t count_r_ = 0;
  std::uint64_t count_s_ = 0;

  std::optional<stream::Tuple> current_;
  bool store_turn_ = false;
  std::optional<stream::Tuple> store_pending_;
  std::vector<stream::Tuple> candidates_;  // same-key snapshot
  std::size_t probe_idx_ = 0;
  std::optional<stream::ResultTuple> emit_pending_;

  std::uint64_t probes_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace hal::hw
