#include "hw/uniflow/join_core.h"

#include "common/assert.h"

namespace hal::hw {

using stream::StreamId;
using stream::Tuple;

const char* to_string(StorageState s) noexcept {
  switch (s) {
    case StorageState::kIdle: return "IDLE";
    case StorageState::kOpStore1: return "OperatorStore1";
    case StorageState::kOpStore2: return "OperatorStore2";
    case StorageState::kStoreR: return "StoreInWindowR";
    case StorageState::kStoreRDone: return "RStoreDone";
    case StorageState::kStoreS: return "StoreInWindowS";
    case StorageState::kStoreSDone: return "SStoreDone";
  }
  return "?";
}

const char* to_string(ProcState s) noexcept {
  switch (s) {
    case ProcState::kIdle: return "IDLE";
    case ProcState::kOpRead1: return "OperatorRead1";
    case ProcState::kOpRead2: return "OperatorRead2";
    case ProcState::kJoinProc: return "JoinProcessing";
    case ProcState::kEmitResult: return "EmitResult";
    case ProcState::kJoinWait: return "JoinWait";
    case ProcState::kSkip: return "ProcessingSkip";
  }
  return "?";
}

UniflowJoinCore::UniflowJoinCore(std::string name, std::uint32_t position,
                                 std::size_t sub_window_capacity,
                                 sim::Fifo<HwWord>& fetcher,
                                 sim::Fifo<stream::ResultTuple>& results)
    : IUniflowCore(std::move(name)),
      position_(position),
      win_r_(sub_window_capacity),
      win_s_(sub_window_capacity),
      fetcher_(fetcher),
      results_(results) {}

void UniflowJoinCore::prefill_store(const Tuple& t) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent core");
  (t.origin == StreamId::R ? win_r_ : win_s_).insert(t);
}

void UniflowJoinCore::set_prefill_counts(std::uint64_t count_r,
                                         std::uint64_t count_s) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent core");
  count_r_ = count_r;
  count_s_ = count_s;
}

bool UniflowJoinCore::ready_for_any_word() const noexcept {
  return sstate_ == StorageState::kIdle &&
         (pstate_ == ProcState::kIdle || pstate_ == ProcState::kJoinWait);
}

void UniflowJoinCore::eval() {
  // Intake: pop a word from the Fetcher when the controllers can accept it.
  // The intake cycle only dispatches; the controllers start working on the
  // word in the following cycle.
  if (fetcher_.can_pop()) {
    const HwWord& front = fetcher_.front();
    if (front.kind == WordKind::kOperator2) {
      // Condition words are consumed while both controllers sit in their
      // OperatorStore2 / OperatorRead2 states (one word per cycle).
      if (sstate_ == StorageState::kOpStore2 &&
          pstate_ == ProcState::kOpRead2 &&
          pending_conditions_.size() < expected_conditions_) {
        const HwWord w = fetcher_.pop();
        const auto cond = stream::decode(w.payload);
        HAL_ASSERT_MSG(cond.has_value(), "malformed Operator2 word");
        pending_conditions_.push_back(*cond);
      }
    } else if (ready_for_any_word()) {
      intake(fetcher_.pop());
      return;
    }
  }
  advance_storage();
  advance_processing();
}

void UniflowJoinCore::intake(const HwWord& w) {
  switch (w.kind) {
    case WordKind::kOperator1: {
      const Operator1 op = decode_operator1(w.payload);
      pending_num_cores_ = op.num_cores;
      expected_conditions_ = op.num_conditions;
      pending_conditions_.clear();
      sstate_ = StorageState::kOpStore1;
      pstate_ = ProcState::kOpRead1;
      return;
    }
    case WordKind::kOperator2:
      HAL_ASSERT_MSG(false, "Operator2 word outside a programming sequence");
      return;
    case WordKind::kTupleR:
    case WordKind::kTupleS: {
      const Tuple& t = w.tuple;
      HAL_ASSERT((w.kind == WordKind::kTupleR) ==
                 (t.origin == StreamId::R));
      // Storage Core: round-robin turn decision (Fig. 12).
      std::uint64_t& count = t.origin == StreamId::R ? count_r_ : count_s_;
      const bool my_turn =
          num_cores_ > 0 && (count % num_cores_) == position_;
      ++count;
      if (my_turn) {
        store_pending_ = t;
        sstate_ = t.origin == StreamId::R ? StorageState::kStoreR
                                          : StorageState::kStoreS;
      } else {
        // "Not Store Turn": skip straight to the done state.
        sstate_ = t.origin == StreamId::R ? StorageState::kStoreRDone
                                          : StorageState::kStoreSDone;
      }
      // Processing Core: begin scanning the opposite sub-window (Fig. 13).
      const SubWindow& opposite =
          t.origin == StreamId::R ? win_s_ : win_r_;
      if (num_cores_ == 0 || opposite.size() == 0) {
        pstate_ = ProcState::kSkip;
      } else {
        probe_tuple_ = t;
        scan_idx_ = 0;
        scan_len_ = opposite.size();
        pstate_ = ProcState::kJoinProc;
      }
      return;
    }
  }
}

void UniflowJoinCore::advance_storage() {
  switch (sstate_) {
    case StorageState::kIdle:
      break;
    case StorageState::kOpStore1:
      sstate_ = StorageState::kOpStore2;
      break;
    case StorageState::kOpStore2:
      if (pending_conditions_.size() == expected_conditions_) {
        // Programming complete: swap in the new operator atomically.
        num_cores_ = pending_num_cores_;
        stream::JoinSpec spec;
        for (const auto& c : pending_conditions_) spec.add(c);
        spec_ = spec;
        sstate_ = StorageState::kIdle;
      }
      break;
    case StorageState::kStoreR:
      HAL_ASSERT(store_pending_.has_value());
      win_r_.insert(*store_pending_);
      store_pending_.reset();
      sstate_ = StorageState::kStoreRDone;
      break;
    case StorageState::kStoreS:
      HAL_ASSERT(store_pending_.has_value());
      win_s_.insert(*store_pending_);
      store_pending_.reset();
      sstate_ = StorageState::kStoreSDone;
      break;
    case StorageState::kStoreRDone:
    case StorageState::kStoreSDone:
      sstate_ = StorageState::kIdle;
      break;
  }
}

void UniflowJoinCore::advance_processing() {
  switch (pstate_) {
    case ProcState::kIdle:
    case ProcState::kJoinWait:
      break;  // waiting for intake
    case ProcState::kOpRead1:
      pstate_ = ProcState::kOpRead2;
      break;
    case ProcState::kOpRead2:
      if (pending_conditions_.size() == expected_conditions_ &&
          sstate_ != StorageState::kOpStore2) {
        // Storage side finalized the operator registers this cycle.
        pstate_ = ProcState::kJoinWait;
      }
      break;
    case ProcState::kJoinProc: {
      HAL_ASSERT(probe_tuple_.has_value());
      const SubWindow& opposite =
          probe_tuple_->origin == StreamId::R ? win_s_ : win_r_;
      HAL_ASSERT(scan_idx_ < scan_len_ && scan_len_ <= opposite.size());
      const Tuple& candidate = opposite.at(scan_idx_);
      ++scan_idx_;
      ++probes_;
      const Tuple& r =
          probe_tuple_->origin == StreamId::R ? *probe_tuple_ : candidate;
      const Tuple& s =
          probe_tuple_->origin == StreamId::R ? candidate : *probe_tuple_;
      if (spec_.matches(r, s)) {
        emit_pending_ = stream::ResultTuple{r, s};
        ++matches_;
        pstate_ = ProcState::kEmitResult;
      } else if (scan_idx_ == scan_len_) {
        probe_tuple_.reset();
        pstate_ = ProcState::kJoinWait;
      }
      break;
    }
    case ProcState::kEmitResult:
      HAL_ASSERT(emit_pending_.has_value());
      if (results_.can_push()) {
        results_.push(*emit_pending_);
        emit_pending_.reset();
        if (scan_idx_ == scan_len_) {
          probe_tuple_.reset();
          pstate_ = ProcState::kJoinWait;
        } else {
          pstate_ = ProcState::kJoinProc;
        }
      }
      // else: stall in EmitResult until the gathering network drains.
      break;
    case ProcState::kSkip:
      pstate_ = ProcState::kJoinWait;
      break;
  }
}

}  // namespace hal::hw
