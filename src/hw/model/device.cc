#include "hw/model/device.h"

namespace hal::hw {

const FpgaDevice& virtex5_xc5vlx50t() {
  static const FpgaDevice device{
      .name = "Virtex-5 XC5VLX50T (ML505)",
      .luts = 28'800,
      .lutram_capable_luts = 8'640,  // ~30% SLICEM
      .ffs = 28'800,
      .bram36 = 60,
      .max_clock_mhz = 200.0,
      .base_logic_delay_ns = 9.2,
      .fanout_log_delay_ns = 0.05,
      .fanout_linear_delay_ns = 0.004,
      .routing_log_delay_ns = 0.05,
      // Footnote 3 / Fig. 17: the heuristic mapper found a faster
      // placement for the 16-core design.
      .quirk_delay_ns = {{16u, -0.55}},
      .static_power_mw = 300.0,
  };
  return device;
}

const FpgaDevice& virtex7_xc7vx485t() {
  static const FpgaDevice device{
      .name = "Virtex-7 XC7VX485T (VC707)",
      .luts = 303'600,
      .lutram_capable_luts = 100'800,
      .ffs = 607'200,
      .bram36 = 1'030,
      .max_clock_mhz = 320.0,
      .base_logic_delay_ns = 3.25,
      .fanout_log_delay_ns = 0.12,
      .fanout_linear_delay_ns = 0.003,
      .routing_log_delay_ns = 0.008,
      .quirk_delay_ns = {},
      .static_power_mw = 1'200.0,
  };
  return device;
}

}  // namespace hal::hw
