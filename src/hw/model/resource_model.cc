#include "hw/model/resource_model.h"

#include "common/math_util.h"

namespace hal::hw {

ResourceUsage ResourceModel::estimate(const DesignStats& stats,
                                      const FpgaDevice* device) const {
  const std::uint64_t window_bits =
      static_cast<std::uint64_t>(stats.sub_window_capacity) *
      stats.tuple_bits;
  // Default placement heuristic. The bi-flow core's buffer-manager/shift
  // window organization is incompatible with BRAM circular buffers, so it
  // is always distributed RAM.
  const bool default_lutram = stats.flow == FlowModel::kBiflow ||
                              window_bits <= costs_.lutram_threshold_bits;
  ResourceUsage usage = estimate_with_placement(stats, default_lutram);
  if (device != nullptr && !usage.fits(*device) &&
      stats.flow != FlowModel::kBiflow) {
    // Tool-like retargeting: try the other memory type for the windows.
    const ResourceUsage alt =
        estimate_with_placement(stats, !default_lutram);
    if (alt.fits(*device)) return alt;
  }
  return usage;
}

ResourceUsage ResourceModel::estimate_with_placement(
    const DesignStats& stats, bool windows_in_lutram) const {
  ResourceUsage usage;
  const std::uint64_t n = stats.num_cores;

  // Core control logic.
  if (stats.flow == FlowModel::kUniflow) {
    usage.luts += n * costs_.uniflow_core_luts;
    usage.ffs += n * costs_.uniflow_core_ffs;
  } else {
    usage.luts += n * costs_.biflow_core_luts;
    usage.ffs += n * costs_.biflow_core_ffs;
  }

  // Windows: two sub-windows (one per stream) per core; a hash-join core
  // pairs every sub-window with an equally-sized key index bank.
  const std::uint64_t window_bits =
      static_cast<std::uint64_t>(stats.sub_window_capacity) *
      stats.tuple_bits;
  const std::uint64_t banks_per_core = stats.hash_index ? 4 : 2;
  if (windows_in_lutram) {
    const std::uint64_t lutram =
        banks_per_core * n * ceil_div(window_bits, costs_.lutram_bits_per_lut);
    usage.luts += lutram;
    usage.lutram_luts += lutram;
  } else {
    usage.bram36 +=
        banks_per_core * n * ceil_div(window_bits, costs_.bram36_bits);
  }

  // Networks.
  usage.luts += stats.num_dnodes * costs_.dnode_luts;
  usage.ffs += stats.num_dnodes * costs_.dnode_ffs;
  usage.luts += stats.num_gnodes * costs_.gnode_luts;
  usage.ffs += stats.num_gnodes * costs_.gnode_ffs;
  if (stats.flow == FlowModel::kBiflow && n > 1) {
    usage.luts += (n - 1) * costs_.channel_luts;
    usage.ffs += (n - 1) * costs_.channel_ffs;
  }
  usage.luts += stats.num_select_cores * costs_.select_core_luts;
  usage.ffs += stats.num_select_cores * costs_.select_core_ffs;

  // Fixed top-level overhead.
  usage.luts += costs_.aux_luts;
  usage.ffs += costs_.aux_ffs;

  usage.io_channels = n * stats.io_channels_per_core;
  return usage;
}

}  // namespace hal::hw
