// Resource estimation: LUTs, flip-flops, BRAM36 blocks and I/O channels of
// a synthesized design, derived from its DesignStats.
//
// Per-component costs are estimates calibrated against the instantiation
// outcomes §V reports, which this model reproduces exactly (see
// resource_model_test.cc):
//   * uni-flow on the Virtex-5 fits 16 cores at W=2^13 and 32/64 cores at
//     W=2^11, but not 32/64 cores at W=2^13;
//   * bi-flow on the Virtex-5 fits 16 cores at W=2^12 but not at W=2^13
//     ("each join core is more complex and requires a greater amount of
//     resources");
//   * uni-flow on the Virtex-7 fits 512 cores at W=2^18 (1,024 of the
//     1,030 BRAM36 blocks — the part's memory is the binding constraint).
//
// Window storage follows FPGA practice: small sub-windows live in
// distributed LUT RAM (one 6-LUT holds 64 bits), larger ones claim whole
// BRAM36 blocks. The bi-flow core's windows always use distributed RAM —
// its buffer-manager/shift organization (Fig. 10) is incompatible with a
// simple dual-port BRAM circular buffer, which is one of the resource
// asymmetries behind the paper's fit results.
#pragma once

#include <cstdint>

#include "hw/model/design_stats.h"
#include "hw/model/device.h"

namespace hal::hw {

struct ResourceUsage {
  std::uint64_t luts = 0;
  // Subset of `luts` used as distributed RAM (must fit the device's
  // SLICEM budget).
  std::uint64_t lutram_luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t bram36 = 0;
  std::uint64_t io_channels = 0;

  [[nodiscard]] bool fits(const FpgaDevice& device) const noexcept {
    return luts <= device.luts &&
           lutram_luts <= device.lutram_capable_luts &&
           ffs <= device.ffs && bram36 <= device.bram36;
  }
};

struct ResourceModelCosts {
  // Join-core control logic (fetcher + storage core + processing core +
  // comparator for uni-flow; 5-port buffer managers + coordinator +
  // processing unit for bi-flow).
  std::uint64_t uniflow_core_luts = 280;
  std::uint64_t uniflow_core_ffs = 350;
  std::uint64_t biflow_core_luts = 900;
  std::uint64_t biflow_core_ffs = 800;

  std::uint64_t dnode_luts = 150;
  std::uint64_t dnode_ffs = 200;
  std::uint64_t gnode_luts = 120;
  std::uint64_t gnode_ffs = 150;
  std::uint64_t channel_luts = 100;  // bi-flow handshake channel
  std::uint64_t channel_ffs = 120;
  std::uint64_t select_core_luts = 180;  // OP-Chain selection element
  std::uint64_t select_core_ffs = 220;

  // Fixed top-level overhead (input/output ports, clocking, reset tree).
  std::uint64_t aux_luts = 400;
  std::uint64_t aux_ffs = 600;

  // Windows: distributed RAM below the threshold, BRAM36 above.
  std::uint64_t lutram_threshold_bits = 4096;
  std::uint64_t lutram_bits_per_lut = 64;
  std::uint64_t bram36_bits = 36'864;
};

class ResourceModel {
 public:
  ResourceModel() = default;
  explicit ResourceModel(ResourceModelCosts costs) : costs_(costs) {}

  // Estimates with the default window placement heuristic (distributed
  // RAM below the threshold, BRAM above). When `device` is given, behaves
  // like the synthesis tools: if the heuristic placement does not fit but
  // forcing the windows into the other memory type does, the fitting
  // placement is returned.
  [[nodiscard]] ResourceUsage estimate(
      const DesignStats& stats, const FpgaDevice* device = nullptr) const;

  [[nodiscard]] const ResourceModelCosts& costs() const noexcept {
    return costs_;
  }

 private:
  [[nodiscard]] ResourceUsage estimate_with_placement(
      const DesignStats& stats, bool windows_in_lutram) const;

  ResourceModelCosts costs_;
};

}  // namespace hal::hw
