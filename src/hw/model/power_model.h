// Power estimation (§V "Power Consumption Evaluation").
//
//   P[mW] = P_static(device)
//         + F[MHz] · (LUTs·k_lut + FFs·k_ff + BRAM36·k_bram + IO·k_io) / 1000
//
// with per-resource dynamic-energy coefficients in µW/MHz. The
// coefficients are calibrated to the paper's two anchor measurements —
// 16 join cores, W = 2^13 per stream, on the Virtex-5 at 100 MHz:
// bi-flow 1647.53 mW vs uni-flow 800.35 mW (a >50% saving) — and the
// calibration is locked in by power_model_test.cc. The uni/bi ratio is
// not hard-coded: it emerges from the resource difference (the bi-flow
// core's five I/O channels, dual buffer managers, coordinator, and
// LUT-RAM windows vs. the uni-flow core's two channels and BRAM-coupled
// windows).
#pragma once

#include "hw/model/design_stats.h"
#include "hw/model/device.h"
#include "hw/model/resource_model.h"

namespace hal::hw {

struct PowerCoefficients {
  // µW per MHz per resource instance.
  double k_lut = 0.1275;
  double k_ff = 0.15;
  double k_bram36 = 20.0;
  double k_io_channel = 87.85;
};

class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(PowerCoefficients k) : k_(k) {}

  [[nodiscard]] double estimate_mw(const ResourceUsage& usage,
                                   const FpgaDevice& device,
                                   double clock_mhz) const {
    const double dynamic_uw_per_mhz =
        static_cast<double>(usage.luts) * k_.k_lut +
        static_cast<double>(usage.ffs) * k_.k_ff +
        static_cast<double>(usage.bram36) * k_.k_bram36 +
        static_cast<double>(usage.io_channels) * k_.k_io_channel;
    return device.static_power_mw + clock_mhz * dynamic_uw_per_mhz / 1000.0;
  }

 private:
  PowerCoefficients k_;
};

}  // namespace hal::hw
