// Maximum-clock-frequency estimation (the Fig. 17 "scalability" metric).
//
// The critical path of a synthesized design is modeled as
//
//   delay = base_logic
//         + fanout_log  * log2(max_broadcast_fanout)
//         + fanout_lin  * max_broadcast_fanout
//         + routing_log * log2(num_cores)
//         + quirk(num_cores)
//
// and F_max = min(device ceiling, 1000 / delay_ns) MHz.
//
// The fan-out terms are what separate the lightweight and scalable
// networks: a lightweight design drives all N fetchers (and polls all N
// result buffers) from single registers, so its widest net has fan-out N
// and the clock droops as the system scales — §V: "the clock frequency of
// the lightweight version drops as we increase the number of join cores",
// noticeable on the Virtex-7 "even when using 8 and 16 join cores" because
// the faster fabric is more sensitive to long nets. The scalable DNode /
// GNode trees keep every net at the tree fan-out (2 by default), which is
// why Fig. 17's V7s line is flat.
#pragma once

#include "hw/model/design_stats.h"
#include "hw/model/device.h"

namespace hal::hw {

class TimingModel {
 public:
  [[nodiscard]] double fmax_mhz(const DesignStats& stats,
                                const FpgaDevice& device) const;

  // The paper runs its V5 throughput experiments at a fixed 100 MHz and
  // the V7 ones at the 300 MHz the synthesis report supports; benches use
  // this helper to pick the paper's operating point given the model.
  [[nodiscard]] double operating_mhz(const DesignStats& stats,
                                     const FpgaDevice& device,
                                     double requested_mhz) const;
};

}  // namespace hal::hw
