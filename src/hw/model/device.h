// FPGA device models for the two parts the paper evaluates on:
// the ML505 board's Virtex-5 XC5VLX50T and the VC707 board's Virtex-7
// XC7VX485T (§V).
//
// Capacities are the published device totals. The timing coefficients
// parameterize the TimingModel's delay equation; they are calibrated so
// the model reproduces the clock-frequency behavior of Fig. 17 (V5 flat
// around 100 MHz, V7 scalable flat around 300 MHz, V7 lightweight drooping
// with fan-out). `quirk_delay_ns` encodes the paper's footnote 3: the V5
// synthesis heuristics happened to map the 16-core design to a *faster*
// clock than smaller designs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hal::hw {

struct FpgaDevice {
  std::string name;

  // Capacity.
  std::uint64_t luts;
  // LUTs in SLICEM positions that can be used as distributed RAM — a
  // fraction of the total, and the constraint that stops large windows
  // from simply spilling into LUT RAM when BRAM runs out.
  std::uint64_t lutram_capable_luts;
  std::uint64_t ffs;
  std::uint64_t bram36;

  // Timing model coefficients (delays in nanoseconds).
  double max_clock_mhz;          // device-family ceiling
  double base_logic_delay_ns;    // critical path of one join core
  double fanout_log_delay_ns;    // per log2(fan-out) of the widest net
  double fanout_linear_delay_ns; // per endpoint of the widest net
  double routing_log_delay_ns;   // placement spread, per log2(#cores)
  std::map<std::uint32_t, double> quirk_delay_ns;  // #cores → adjustment

  // Power model.
  double static_power_mw;
};

[[nodiscard]] const FpgaDevice& virtex5_xc5vlx50t();
[[nodiscard]] const FpgaDevice& virtex7_xc7vx485t();

}  // namespace hal::hw
