// Structural summary of a synthesized design, produced by the hardware
// engines and consumed by the resource / timing / power models. This is
// the simulator's stand-in for a synthesis report.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hal::hw {

enum class FlowModel : std::uint8_t { kUniflow, kBiflow };

enum class NetworkKind : std::uint8_t {
  kLightweight,  // pure wiring / polling, no pipeline nodes (§IV)
  kScalable,     // pipelined DNode / GNode trees (§IV, Fig. 9)
  // Linear daisy-chain: each stage forwards to its core and to the next
  // stage. This is the OP-Chain layout of FQP [15] and, applied to the
  // uni-flow engine, realizes the *low-latency handshake join* [36] idea:
  // every tuple is replicated and fast-forwarded along the chain before
  // the local join computation, keeping eager (exactly-once, in-order)
  // semantics while trading the tree's O(log N) distribution depth for
  // O(N) — with the narrowest possible fan-out (2) in exchange.
  kChain,
};

[[nodiscard]] constexpr const char* to_string(FlowModel m) noexcept {
  return m == FlowModel::kUniflow ? "uni-flow" : "bi-flow";
}

[[nodiscard]] constexpr const char* to_string(NetworkKind k) noexcept {
  switch (k) {
    case NetworkKind::kLightweight: return "lightweight";
    case NetworkKind::kScalable: return "scalable";
    case NetworkKind::kChain: return "chain";
  }
  return "?";
}

struct DesignStats {
  FlowModel flow = FlowModel::kUniflow;
  std::uint32_t num_cores = 0;
  // Per-stream sub-window capacity of one join core, in tuples.
  std::size_t sub_window_capacity = 0;
  std::uint32_t tuple_bits = 64;

  NetworkKind distribution = NetworkKind::kScalable;
  NetworkKind gathering = NetworkKind::kScalable;
  std::uint32_t fanout = 2;  // DNode fan-out in the scalable tree

  std::uint32_t num_dnodes = 0;
  std::uint32_t num_gnodes = 0;

  // Largest single-driver fan-out anywhere in the design; the dominant
  // term of the timing model (lightweight networks drive all N cores from
  // one register, which is exactly the clock-frequency drop of Fig. 17).
  std::uint32_t max_broadcast_fanout = 1;

  // I/O channel count per join core: 2 for uni-flow vs 5 for bi-flow
  // (§IV: "reduces the number of I/Os from five to two").
  std::uint32_t io_channels_per_core = 2;

  // Hash-join cores pair each sub-window with a key-index memory bank of
  // the same capacity (doubles the window memory in the resource model).
  bool hash_index = false;

  // Selection cores on the pipeline ahead of the join stage (OP-Chain).
  std::uint32_t num_select_cores = 0;

  [[nodiscard]] std::size_t window_size_per_stream() const noexcept {
    return static_cast<std::size_t>(num_cores) * sub_window_capacity;
  }
};

}  // namespace hal::hw
