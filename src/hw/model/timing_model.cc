#include "hw/model/timing_model.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/math_util.h"

namespace hal::hw {

double TimingModel::fmax_mhz(const DesignStats& stats,
                             const FpgaDevice& device) const {
  HAL_CHECK(stats.num_cores >= 1, "design must have cores");
  const double fanout = std::max(1u, stats.max_broadcast_fanout);
  const double cores = stats.num_cores;

  double delay = device.base_logic_delay_ns;
  delay += device.fanout_log_delay_ns * std::log2(fanout);
  delay += device.fanout_linear_delay_ns * fanout;
  delay += device.routing_log_delay_ns * std::log2(cores);
  if (const auto it = device.quirk_delay_ns.find(stats.num_cores);
      it != device.quirk_delay_ns.end()) {
    delay += it->second;
  }
  HAL_ASSERT(delay > 0.0);
  return std::min(device.max_clock_mhz, 1000.0 / delay);
}

double TimingModel::operating_mhz(const DesignStats& stats,
                                  const FpgaDevice& device,
                                  double requested_mhz) const {
  return std::min(requested_mhz, fmax_mhz(stats, device));
}

}  // namespace hal::hw
