// Cycle costs of the bi-flow join core's arbitrated operations.
//
// The bi-flow core (Fig. 10) funnels every window access and every
// neighbor transfer through its Coordinator Unit, which "controls
// permissions and priorities to manage data communication requests". The
// paper attributes the uni-flow model's ~order-of-magnitude throughput
// advantage (Fig. 14b) to the removal of exactly this machinery: in the
// uni-flow core the processing unit reads its BRAM-coupled sub-window
// directly, one tuple per cycle, while the bi-flow core pays an
// arbitration round trip per access and serializes the two stream
// directions through one coordinator.
//
// The constants below are the per-operation cycle counts of that
// arbitration, structured as: request to the coordinator (1) + grant wait
// under round-robin/toggle priority among the three requestors
// (BufferManager-R, BufferManager-S, Processing Unit) + address/read
// through the buffer manager + the operation itself. They are calibrated
// (and documented in EXPERIMENTS.md) so the simulated 16-core Virtex-5
// uni/bi gap lands in the paper's "nearly an order of magnitude" band;
// the *scaling shape* (cost ∝ window size, gap roughly constant across
// window sizes) is produced by the micro-architecture, not by the
// constants.
#pragma once

#include <cstdint>

namespace hal::hw {

struct BiflowCosts {
  // Cycles per window probe during an entry scan.
  std::uint32_t probe_cycles = 8;
  // Cycles to commit a store (insert + possible eviction bookkeeping).
  std::uint32_t store_cycles = 8;
  // Cycles for a neighbor-to-neighbor tuple transfer (4-phase handshake:
  // request, grant, data, ack).
  std::uint32_t transfer_cycles = 4;
  // Cycles for the core to latch an entry from a neighbor/input port.
  std::uint32_t accept_cycles = 2;
};

}  // namespace hal::hw
