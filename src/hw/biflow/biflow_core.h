// Bi-flow join core (Fig. 10): the handshake-join processing element used
// by the OP-Chain realization of FQP.
//
// Topology: cores form a linear chain. R tuples enter the chain at core 0
// and flow left-to-right; S tuples enter at core N-1 and flow right-to-left
// (Fig. 8a). Each core keeps one sub-window per stream. A tuple *entering*
// a core — whether fresh from the input or handed over by a neighbor — is
// compared against the core's opposite-stream sub-window (and against the
// opposite stream's outgoing buffer, whose occupants are still logically
// resident), then stored in its own stream's sub-window; the tuple evicted
// by that store waits in the outgoing buffer for the handshake channel.
// Tuples evicted past the chain ends have traveled the full window and
// expire.
//
// This entry-scan-plus-serialized-crossing discipline guarantees each R/S
// pair within the window meets exactly once (the channel never lets two
// tuples cross a boundary simultaneously, which is the race the paper's
// "locks needed to avoid race conditions" prevent). Results may be emitted
// later than in the eager uni-flow semantics — the latency cost inherent
// to the bi-directional flow that §III describes.
//
// Every operation runs through the Coordinator Unit's arbitration and its
// cycle costs (BiflowCosts). One operation is in flight at a time: the
// processing unit, the two buffer managers and the neighbor handshakes all
// share the coordinator, which serializes the two stream directions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "hw/biflow/costs.h"
#include "hw/common/sub_window.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::hw {

enum class BiflowState : std::uint8_t {
  kIdle,
  kAccept,      // latching an entry from a neighbor/input port
  kScan,        // arbitrated probes of the opposite sub-window
  kEmitResult,  // pushing a match into the result gathering network
  kStore,       // arbitrated insert + eviction into the outgoing buffer
};

class BiflowJoinCore final : public sim::Module {
 public:
  // `r_entry` / `s_entry`: depth-1 delivery ports (from the left/right
  // handshake channel or the stream inputs at the chain ends).
  // `r_outgoing` / `s_outgoing`: eviction buffers drained by the channels;
  // null at the chain ends, where an evicted tuple has left the window and
  // simply expires.
  BiflowJoinCore(std::string name, std::size_t sub_window_capacity,
                 BiflowCosts costs, sim::Fifo<stream::Tuple>& r_entry,
                 sim::Fifo<stream::Tuple>& s_entry,
                 sim::Fifo<stream::Tuple>* r_outgoing,
                 sim::Fifo<stream::Tuple>* s_outgoing,
                 sim::Fifo<stream::ResultTuple>& results);

  void eval() override;

  void program(const stream::JoinSpec& spec) { spec_ = spec; }

  // Simulation-state injection for bench warm-start: places a tuple in
  // this core's own-stream sub-window. Only valid while quiescent.
  void prefill(const stream::Tuple& t) {
    HAL_CHECK(quiescent(), "prefill requires a quiescent core");
    (t.origin == stream::StreamId::R ? win_r_ : win_s_).insert(t);
  }

  [[nodiscard]] BiflowState state() const noexcept { return state_; }
  [[nodiscard]] bool quiescent() const noexcept {
    return state_ == BiflowState::kIdle;
  }
  [[nodiscard]] const SubWindow& window(stream::StreamId id) const noexcept {
    return id == stream::StreamId::R ? win_r_ : win_s_;
  }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t matches() const noexcept { return matches_; }
  [[nodiscard]] std::uint64_t entries_processed() const noexcept {
    return entries_processed_;
  }
  [[nodiscard]] std::uint64_t expired() const noexcept { return expired_; }

  // Test hook: record the order in which entries were accepted, so tests
  // can replay the exact sequence against the reference oracle.
  void set_record_acceptance(bool on) noexcept { record_acceptance_ = on; }
  [[nodiscard]] const std::vector<stream::Tuple>& acceptance_log()
      const noexcept {
    return acceptance_log_;
  }

 private:
  void begin_entry(const stream::Tuple& t);
  void finish_store();

  const BiflowCosts costs_;
  SubWindow win_r_;
  SubWindow win_s_;
  sim::Fifo<stream::Tuple>& r_entry_;
  sim::Fifo<stream::Tuple>& s_entry_;
  sim::Fifo<stream::Tuple>* r_outgoing_;
  sim::Fifo<stream::Tuple>* s_outgoing_;
  sim::Fifo<stream::ResultTuple>& results_;

  stream::JoinSpec spec_;
  BiflowState state_ = BiflowState::kIdle;
  bool prefer_r_ = true;  // toggle priority between the two entry ports

  std::uint32_t countdown_ = 0;  // remaining cycles of the current step
  std::optional<stream::Tuple> current_;
  // Snapshot of the opposite outgoing buffer taken when the scan begins
  // (its occupants are logically still in the window).
  std::vector<stream::Tuple> outgoing_snapshot_;
  std::size_t scan_idx_ = 0;
  std::size_t scan_window_len_ = 0;
  std::optional<stream::ResultTuple> emit_pending_;

  std::uint64_t probes_ = 0;
  std::uint64_t matches_ = 0;
  std::uint64_t entries_processed_ = 0;
  std::uint64_t expired_ = 0;
  bool record_acceptance_ = false;
  std::vector<stream::Tuple> acceptance_log_;
};

}  // namespace hal::hw
