#include "hw/biflow/biflow_core.h"

#include "common/assert.h"

namespace hal::hw {

using stream::StreamId;
using stream::Tuple;

BiflowJoinCore::BiflowJoinCore(std::string name,
                               std::size_t sub_window_capacity,
                               BiflowCosts costs,
                               sim::Fifo<Tuple>& r_entry,
                               sim::Fifo<Tuple>& s_entry,
                               sim::Fifo<Tuple>* r_outgoing,
                               sim::Fifo<Tuple>* s_outgoing,
                               sim::Fifo<stream::ResultTuple>& results)
    : Module(std::move(name)),
      costs_(costs),
      win_r_(sub_window_capacity),
      win_s_(sub_window_capacity),
      r_entry_(r_entry),
      s_entry_(s_entry),
      r_outgoing_(r_outgoing),
      s_outgoing_(s_outgoing),
      results_(results) {}

void BiflowJoinCore::begin_entry(const Tuple& t) {
  current_ = t;
  ++entries_processed_;
  if (record_acceptance_) acceptance_log_.push_back(t);
  state_ = BiflowState::kAccept;
  countdown_ = costs_.accept_cycles;
}

void BiflowJoinCore::eval() {
  switch (state_) {
    case BiflowState::kIdle: {
      // Toggle priority between the two entry ports (the coordinator's
      // alternating grant between the R and S directions). An entry is
      // accepted only when its eventual eviction has a free slot in the
      // outgoing buffer — the reservation that keeps the chain's locking
      // protocol deadlock-free (see HandshakeChannel).
      const bool can_r = r_entry_.can_pop() &&
                         (r_outgoing_ == nullptr || r_outgoing_->can_push());
      const bool can_s = s_entry_.can_pop() &&
                         (s_outgoing_ == nullptr || s_outgoing_->can_push());
      const bool r_first = prefer_r_;
      prefer_r_ = !prefer_r_;
      if (can_r && (r_first || !can_s)) {
        begin_entry(r_entry_.pop());
      } else if (can_s) {
        begin_entry(s_entry_.pop());
      }
      break;
    }
    case BiflowState::kAccept: {
      if (--countdown_ > 0) break;
      // Latch the scan set: the opposite sub-window plus the opposite
      // outgoing buffer (still logically resident).
      HAL_ASSERT(current_.has_value());
      const bool is_r = current_->origin == StreamId::R;
      const SubWindow& opposite = is_r ? win_s_ : win_r_;
      const sim::Fifo<Tuple>* opp_out = is_r ? s_outgoing_ : r_outgoing_;
      outgoing_snapshot_.clear();
      if (opp_out != nullptr) {
        for (std::size_t i = 0; i < opp_out->size(); ++i) {
          outgoing_snapshot_.push_back(opp_out->peek(i));
        }
      }
      scan_window_len_ = opposite.size();
      scan_idx_ = 0;
      if (scan_window_len_ + outgoing_snapshot_.size() == 0) {
        state_ = BiflowState::kStore;
        countdown_ = costs_.store_cycles;
      } else {
        state_ = BiflowState::kScan;
        countdown_ = costs_.probe_cycles;
      }
      break;
    }
    case BiflowState::kScan: {
      if (--countdown_ > 0) break;
      HAL_ASSERT(current_.has_value());
      const bool is_r = current_->origin == StreamId::R;
      const SubWindow& opposite = is_r ? win_s_ : win_r_;
      const std::size_t total =
          scan_window_len_ + outgoing_snapshot_.size();
      HAL_ASSERT(scan_idx_ < total);
      const Tuple& candidate =
          scan_idx_ < scan_window_len_
              ? opposite.at(scan_idx_)
              : outgoing_snapshot_[scan_idx_ - scan_window_len_];
      ++scan_idx_;
      ++probes_;
      const Tuple& r = is_r ? *current_ : candidate;
      const Tuple& s = is_r ? candidate : *current_;
      if (spec_.matches(r, s)) {
        ++matches_;
        emit_pending_ = stream::ResultTuple{r, s};
        state_ = BiflowState::kEmitResult;
      } else if (scan_idx_ == total) {
        state_ = BiflowState::kStore;
        countdown_ = costs_.store_cycles;
      } else {
        countdown_ = costs_.probe_cycles;
      }
      break;
    }
    case BiflowState::kEmitResult: {
      HAL_ASSERT(emit_pending_.has_value());
      if (!results_.can_push()) break;  // stall until the gatherer drains
      results_.push(*emit_pending_);
      emit_pending_.reset();
      if (scan_idx_ == scan_window_len_ + outgoing_snapshot_.size()) {
        state_ = BiflowState::kStore;
        countdown_ = costs_.store_cycles;
      } else {
        state_ = BiflowState::kScan;
        countdown_ = costs_.probe_cycles;
      }
      break;
    }
    case BiflowState::kStore: {
      if (countdown_ > 1) {
        --countdown_;
        break;
      }
      // Completion may stall if the eviction target buffer is full (the
      // handshake channel has not drained it yet); retry every cycle.
      const bool is_r = current_->origin == StreamId::R;
      SubWindow& own = is_r ? win_r_ : win_s_;
      sim::Fifo<Tuple>* own_out = is_r ? r_outgoing_ : s_outgoing_;
      if (own.size() == own.capacity() && own_out != nullptr &&
          !own_out->can_push()) {
        break;
      }
      finish_store();
      break;
    }
  }
}

void BiflowJoinCore::finish_store() {
  HAL_ASSERT(current_.has_value());
  const bool is_r = current_->origin == StreamId::R;
  SubWindow& own = is_r ? win_r_ : win_s_;
  sim::Fifo<Tuple>* own_out = is_r ? r_outgoing_ : s_outgoing_;

  if (own.size() == own.capacity()) {
    // The oldest resident leaves toward the next core — or, at the chain
    // end, has traversed the whole window and expires.
    const Tuple evicted = own.at(0);
    if (own_out != nullptr) {
      HAL_ASSERT(own_out->can_push());  // checked by the caller
      own_out->push(evicted);
    } else {
      ++expired_;
    }
  }
  own.insert(*current_);
  current_.reset();
  state_ = BiflowState::kIdle;
}

}  // namespace hal::hw
