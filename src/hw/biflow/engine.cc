#include "hw/biflow/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "hw/common/network_builder.h"

namespace hal::hw {

using stream::StreamId;
using stream::Tuple;

BiflowEngine::BiflowEngine(BiflowConfig cfg) : cfg_(cfg) {
  HAL_CHECK(cfg_.num_cores >= 1, "need at least one join core");
  HAL_CHECK(cfg_.window_size >= cfg_.num_cores,
            "window must hold at least one tuple per core");
  HAL_CHECK(cfg_.window_size % cfg_.num_cores == 0,
            "window_size must be a multiple of num_cores");
  HAL_CHECK(cfg_.costs.probe_cycles >= 1 && cfg_.costs.store_cycles >= 1 &&
                cfg_.costs.transfer_cycles >= 1 &&
                cfg_.costs.accept_cycles >= 1,
            "bi-flow operation costs must be at least one cycle");
  HAL_CHECK(cfg_.outgoing_capacity >= 2,
            "outgoing buffers need headroom for the handshake");
  HAL_CHECK(cfg_.link_depth >= 2,
            "link depth < 2 cannot sustain one word per cycle");

  const std::size_t sub_window = cfg_.window_size / cfg_.num_cores;
  const std::uint32_t n = cfg_.num_cores;

  sim_.configure(cfg_.sim);
  // Per core: 2 entry + ~2 eviction + 1 result fifo + the core itself,
  // plus channels, gathering and the test bench.
  sim_.reserve(8 * static_cast<std::size_t>(n) + 8);

  stats_.flow = FlowModel::kBiflow;
  stats_.num_cores = n;
  stats_.sub_window_capacity = sub_window;
  stats_.distribution = NetworkKind::kLightweight;  // chain ends; no tree
  stats_.gathering = cfg_.gathering;
  stats_.io_channels_per_core = 5;  // R-in, R-out, S-in, S-out, results
  stats_.max_broadcast_fanout = 1;

  // Entry ports (depth 1: the channel lock requires rendezvous semantics)
  // and eviction buffers.
  std::vector<sim::Fifo<Tuple>*> r_entry(n);
  std::vector<sim::Fifo<Tuple>*> s_entry(n);
  std::vector<sim::Fifo<Tuple>*> r_out(n, nullptr);
  std::vector<sim::Fifo<Tuple>*> s_out(n, nullptr);
  for (std::uint32_t i = 0; i < n; ++i) {
    r_entry[i] = &new_tuple_fifo("r_entry" + std::to_string(i), 1);
    s_entry[i] = &new_tuple_fifo("s_entry" + std::to_string(i), 1);
    if (i + 1 < n) {
      r_out[i] = &new_tuple_fifo("r_out" + std::to_string(i),
                                 cfg_.outgoing_capacity);
    }
    if (i > 0) {
      s_out[i] = &new_tuple_fifo("s_out" + std::to_string(i),
                                 cfg_.outgoing_capacity);
    }
  }

  // Join cores and result links.
  std::vector<sim::Fifo<stream::ResultTuple>*> result_leaves;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& rf = new_result_fifo("results" + std::to_string(i));
    result_leaves.push_back(&rf);
    cores_.push_back(std::make_unique<BiflowJoinCore>(
        "jc" + std::to_string(i), sub_window, cfg_.costs, *r_entry[i],
        *s_entry[i], r_out[i], s_out[i], rf));
    sim_.add(*cores_.back());
    sim_.link(*cores_.back(), *r_entry[i]);
    sim_.link(*cores_.back(), *s_entry[i]);
    if (r_out[i] != nullptr) sim_.link(*cores_.back(), *r_out[i]);
    if (s_out[i] != nullptr) sim_.link(*cores_.back(), *s_out[i]);
    sim_.link(*cores_.back(), rf);
  }

  // Handshake channels on each boundary. The eviction buffers of the
  // destination cores gate transfer starts (deadlock avoidance).
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    channels_.push_back(std::make_unique<HandshakeChannel>(
        "ch" + std::to_string(i), cfg_.costs, *r_out[i], *r_entry[i + 1],
        r_out[i + 1], *s_out[i + 1], *s_entry[i], s_out[i]));
    sim_.add(*channels_.back());
    sim_.link(*channels_.back(), *r_out[i]);
    sim_.link(*channels_.back(), *r_entry[i + 1]);
    sim_.link(*channels_.back(), *s_out[i + 1]);
    sim_.link(*channels_.back(), *s_entry[i]);
  }

  // Result gathering (same building blocks as the uni-flow engine).
  auto& output = new_result_fifo("output");
  auto gather = build_gathering(
      cfg_.gathering, result_leaves, output,
      [this](const std::string& name) -> sim::Fifo<stream::ResultTuple>& {
        return new_result_fifo(name);
      },
      sim_);
  gnodes_ = std::move(gather.nodes);
  stats_.num_gnodes = gather.counted_nodes;
  stats_.max_broadcast_fanout =
      std::max(stats_.max_broadcast_fanout, gather.max_fanin);

  r_driver_ = std::make_unique<TupleDriver>("r_driver", sim_, *r_entry[0]);
  sim_.add(*r_driver_);
  sim_.link(*r_driver_, *r_entry[0]);
  s_driver_ =
      std::make_unique<TupleDriver>("s_driver", sim_, *s_entry[n - 1]);
  sim_.add(*s_driver_);
  sim_.link(*s_driver_, *s_entry[n - 1]);
  sink_ = std::make_unique<ResultSink>("sink", sim_, output);
  sim_.add(*sink_);
  sim_.link(*sink_, output);
}

sim::Fifo<Tuple>& BiflowEngine::new_tuple_fifo(std::string name,
                                               std::size_t capacity) {
  tuple_fifos_.push_back(
      std::make_unique<sim::Fifo<Tuple>>(std::move(name), capacity));
  sim_.add(*tuple_fifos_.back());
  return *tuple_fifos_.back();
}

sim::Fifo<stream::ResultTuple>& BiflowEngine::new_result_fifo(
    std::string name) {
  result_fifos_.push_back(std::make_unique<sim::Fifo<stream::ResultTuple>>(
      std::move(name), cfg_.link_depth));
  sim_.add(*result_fifos_.back());
  return *result_fifos_.back();
}

void BiflowEngine::program(const stream::JoinSpec& spec) {
  HAL_CHECK(quiescent(),
            "bi-flow operator programming requires a drained chain");
  for (auto& c : cores_) c->program(spec);
  programmed_ = true;
}

void BiflowEngine::prefill(const std::vector<Tuple>& tuples) {
  HAL_CHECK(quiescent(), "prefill requires a quiescent engine");
  std::vector<Tuple> r_list;
  std::vector<Tuple> s_list;
  for (const auto& t : tuples) {
    (t.origin == StreamId::R ? r_list : s_list).push_back(t);
  }
  const std::size_t sub = cfg_.window_size / cfg_.num_cores;
  // Keep the newest `window_size` of each stream (the rest would already
  // have expired off the chain ends).
  auto lay_out = [&](std::vector<Tuple>& list, bool is_r) {
    if (list.size() > cfg_.window_size) {
      list.erase(list.begin(),
                 list.end() - static_cast<std::ptrdiff_t>(cfg_.window_size));
    }
    // list is oldest-first. R ages rightward (core N-1 oldest slice);
    // S ages leftward (core 0 oldest slice). Slices that are not full
    // belong to the entry-side core.
    const std::size_t n = cfg_.num_cores;
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::size_t age_from_newest = list.size() - 1 - i;
      const std::size_t slice = age_from_newest / sub;  // 0 = newest slice
      const std::size_t core_idx = is_r ? slice : (n - 1 - slice);
      cores_[core_idx]->prefill(list[i]);
    }
  };
  lay_out(r_list, /*is_r=*/true);
  lay_out(s_list, /*is_r=*/false);
}

void BiflowEngine::offer(const Tuple& t) {
  HAL_CHECK(programmed_, "program() must be called before offering tuples");
  (t.origin == StreamId::R ? r_driver_ : s_driver_)->enqueue(t);
}

void BiflowEngine::offer(const std::vector<Tuple>& tuples) {
  for (const auto& t : tuples) offer(t);
}

void BiflowEngine::step(std::uint64_t cycles) { sim_.step_n(cycles); }

bool BiflowEngine::quiescent() const {
  if (r_driver_ && (!r_driver_->done() || !s_driver_->done())) return false;
  for (const auto& f : tuple_fifos_) {
    if (!f->empty()) return false;
  }
  for (const auto& f : result_fifos_) {
    if (!f->empty()) return false;
  }
  if (!std::all_of(channels_.begin(), channels_.end(),
                   [](const auto& c) { return c->idle(); })) {
    return false;
  }
  return std::all_of(cores_.begin(), cores_.end(),
                     [](const auto& c) { return c->quiescent(); });
}

std::uint64_t BiflowEngine::run_to_quiescence(std::uint64_t max_cycles,
                                              bool require_quiescent) {
  const std::uint64_t stepped =
      sim_.run_until([this] { return quiescent(); }, max_cycles);
  if (require_quiescent) {
    HAL_ASSERT_MSG(quiescent(), "engine did not quiesce within max_cycles");
  }
  return stepped;
}

std::vector<stream::ResultTuple> BiflowEngine::result_tuples() const {
  std::vector<stream::ResultTuple> out;
  out.reserve(sink_->collected().size());
  for (const auto& tr : sink_->collected()) out.push_back(tr.result);
  return out;
}

std::uint64_t BiflowEngine::last_injection_cycle() const {
  return std::max(r_driver_->last_push_cycle(), s_driver_->last_push_cycle());
}

std::uint64_t BiflowEngine::injection_cycle(std::uint64_t seq) const {
  if (r_driver_->has_injection_cycle(seq)) {
    return r_driver_->injection_cycle(seq);
  }
  return s_driver_->injection_cycle(seq);
}

void BiflowEngine::set_record_injections(bool on) {
  r_driver_->set_record_injections(on);
  s_driver_->set_record_injections(on);
}

std::uint64_t BiflowEngine::total_probes() const {
  std::uint64_t total = 0;
  for (const auto& c : cores_) total += c->probes();
  return total;
}

void BiflowEngine::collect_metrics(obs::MetricRegistry& registry,
                                   const std::string& prefix) const {
  sim_.collect_metrics(registry, prefix);

  // Reused key buffer — see UniflowEngine::collect_metrics.
  std::string key;
  key.reserve(prefix.size() + 48);
  const auto with = [&](std::string_view suffix) -> const std::string& {
    key.assign(prefix);
    key.append(suffix);
    return key;
  };

  std::uint64_t probes = 0;
  std::uint64_t matches = 0;
  std::uint64_t expired = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const BiflowJoinCore& c = *cores_[i];
    key.assign(prefix);
    key.append("core.");
    key.append(std::to_string(i));
    const std::size_t stem = key.size();
    key.append(".probes");
    registry.set_counter(key, c.probes());
    key.resize(stem);
    key.append(".matches");
    registry.set_counter(key, c.matches());
    key.resize(stem);
    key.append(".entries");
    registry.set_counter(key, c.entries_processed());
    key.resize(stem);
    key.append(".expired");
    registry.set_counter(key, c.expired());
    probes += c.probes();
    matches += c.matches();
    expired += c.expired();
  }
  registry.set_counter(with("probes"), probes);
  registry.set_counter(with("matches"), matches);
  registry.set_counter(with("expired"), expired);
  registry.set_counter(with("results"), sink_->collected().size());

  std::uint64_t crossings = 0;
  for (const auto& ch : channels_) crossings += ch->transfers();
  registry.set_counter(with("channel.crossings"), crossings);
  std::uint64_t gather_stalls = 0;
  for (const auto& g : gnodes_) gather_stalls += g->stall_cycles();
  registry.set_counter(with("gathering.stall_cycles"), gather_stalls);

  const auto fifo_key = [&](std::string_view name) -> const std::string& {
    key.assign(prefix);
    key.append("fifo.");
    key.append(name);
    key.append(".high_water");
    return key;
  };
  for (const auto& f : tuple_fifos_) {
    registry.set_counter(fifo_key(f->name()), f->high_water());
  }
  for (const auto& f : result_fifos_) {
    registry.set_counter(fifo_key(f->name()), f->high_water());
  }
}

}  // namespace hal::hw
