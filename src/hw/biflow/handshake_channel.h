// Handshake channel: the locked neighbor-to-neighbor link of the bi-flow
// chain.
//
// One channel sits on each boundary between adjacent join cores and owns
// *both* transfer directions across it (R moving right, S moving left).
// The paper's observation that "it is impossible to achieve simultaneous
// transmission of both TR and TS between two neighboring join cores due to
// the locks needed to avoid race conditions" is implemented literally:
// the channel carries one tuple at a time, pays a 4-phase handshake per
// transfer, and does not begin a new transfer until the destination core
// has drained the previous delivery from its entry port. That final rule
// is what makes the entry-scan discipline exact — two tuples can never
// cross a boundary without one of them seeing the other in a window scan.
#pragma once

#include <cstdint>
#include <optional>

#include "hw/biflow/costs.h"
#include "sim/fifo.h"
#include "sim/module.h"
#include "stream/tuple.h"

namespace hal::hw {

class HandshakeChannel final : public sim::Module {
 public:
  // r_src → r_dst carries R tuples rightward; s_src → s_dst carries S
  // tuples leftward across the same boundary. r_dst_evict / s_dst_evict
  // are the destination cores' same-stream outgoing buffers (null at the
  // chain ends): a transfer only begins when the destination can still
  // evict for both the entry it may currently be processing and the one
  // being delivered, which guarantees every delivery is eventually
  // accepted and excludes the circular-wait deadlock between a stalled
  // store and the channel that would drain it.
  HandshakeChannel(std::string name, BiflowCosts costs,
                   sim::Fifo<stream::Tuple>& r_src,
                   sim::Fifo<stream::Tuple>& r_dst,
                   sim::Fifo<stream::Tuple>* r_dst_evict,
                   sim::Fifo<stream::Tuple>& s_src,
                   sim::Fifo<stream::Tuple>& s_dst,
                   sim::Fifo<stream::Tuple>* s_dst_evict)
      : Module(std::move(name)),
        costs_(costs),
        r_src_(r_src),
        r_dst_(r_dst),
        r_dst_evict_(r_dst_evict),
        s_src_(s_src),
        s_dst_(s_dst),
        s_dst_evict_(s_dst_evict) {}

  void eval() override {
    switch (state_) {
      case State::kFree: {
        // Alternate direction priority each cycle (toggle grant).
        auto evict_headroom = [](const sim::Fifo<stream::Tuple>* f) {
          return f == nullptr || f->capacity() - f->size() >= 2;
        };
        const bool can_r = r_src_.can_pop() && evict_headroom(r_dst_evict_);
        const bool can_s = s_src_.can_pop() && evict_headroom(s_dst_evict_);
        const bool r_first = prefer_r_;
        prefer_r_ = !prefer_r_;
        if (can_r && (r_first || !can_s)) {
          begin(r_src_.pop(), /*rightward=*/true);
        } else if (can_s) {
          begin(s_src_.pop(), /*rightward=*/false);
        }
        break;
      }
      case State::kCarry:
        if (--countdown_ == 0) state_ = State::kDeliver;
        break;
      case State::kDeliver: {
        auto& dst = rightward_ ? r_dst_ : s_dst_;
        if (dst.can_push()) {
          dst.push(*in_flight_);
          in_flight_.reset();
          state_ = State::kWaitDrain;
        }
        break;
      }
      case State::kWaitDrain: {
        // The lock releases only once the destination core accepted the
        // tuple (its depth-1 entry port is empty again).
        const auto& dst = rightward_ ? r_dst_ : s_dst_;
        if (dst.empty()) {
          state_ = State::kFree;
          ++transfers_;
        }
        break;
      }
    }
  }

  [[nodiscard]] bool idle() const noexcept { return state_ == State::kFree; }
  [[nodiscard]] std::uint64_t transfers() const noexcept { return transfers_; }

 private:
  enum class State : std::uint8_t { kFree, kCarry, kDeliver, kWaitDrain };

  void begin(stream::Tuple t, bool rightward) {
    in_flight_ = t;
    rightward_ = rightward;
    state_ = State::kCarry;
    countdown_ = costs_.transfer_cycles;
  }

  const BiflowCosts costs_;
  sim::Fifo<stream::Tuple>& r_src_;
  sim::Fifo<stream::Tuple>& r_dst_;
  sim::Fifo<stream::Tuple>* r_dst_evict_;
  sim::Fifo<stream::Tuple>& s_src_;
  sim::Fifo<stream::Tuple>& s_dst_;
  sim::Fifo<stream::Tuple>* s_dst_evict_;

  State state_ = State::kFree;
  bool prefer_r_ = true;
  std::uint32_t countdown_ = 0;
  bool rightward_ = true;
  std::optional<stream::Tuple> in_flight_;
  std::uint64_t transfers_ = 0;
};

}  // namespace hal::hw
