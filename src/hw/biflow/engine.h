// Top-level bi-flow parallel stream join: a linear chain of handshake-join
// cores (Fig. 8a) with R entering from the left, S from the right, and a
// result gathering network identical to the uni-flow engine's.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "hw/biflow/biflow_core.h"
#include "hw/biflow/handshake_channel.h"
#include "hw/common/drivers.h"
#include "hw/model/design_stats.h"
#include "hw/uniflow/gnode.h"
#include "obs/metrics.h"
#include "sim/fifo.h"
#include "sim/simulator.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::hw {

struct BiflowConfig {
  std::uint32_t num_cores = 4;
  // Per-stream sliding window size summed across cores; multiple of
  // num_cores.
  std::size_t window_size = 1024;
  NetworkKind gathering = NetworkKind::kLightweight;
  BiflowCosts costs;
  std::size_t link_depth = 2;        // result links
  std::size_t outgoing_capacity = 16;  // eviction buffer per direction
  // Simulation-kernel knobs (host-side execution only; never changes the
  // simulated design or any cycle count). threads=1 is the serial oracle.
  sim::SimConfig sim;
};

// Feeds one chain end with the tuples of one stream, one per cycle when
// the entry port is free.
class TupleDriver final : public sim::Module {
 public:
  TupleDriver(std::string name, const sim::Simulator& sim,
              sim::Fifo<stream::Tuple>& out)
      : Module(std::move(name)), sim_(sim), out_(out) {}

  void enqueue(const stream::Tuple& t) { pending_.push_back(t); }

  void eval() override {
    if (pending_.empty() || !out_.can_push()) return;
    if (record_injections_) {
      injection_cycles_[pending_.front().seq] = sim_.cycle();
    }
    last_push_cycle_ = sim_.cycle();
    out_.push(pending_.front());
    pending_.pop_front();
  }

  [[nodiscard]] bool done() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::uint64_t last_push_cycle() const noexcept {
    return last_push_cycle_;
  }
  void set_record_injections(bool on) noexcept { record_injections_ = on; }
  [[nodiscard]] bool has_injection_cycle(std::uint64_t seq) const {
    return injection_cycles_.contains(seq);
  }
  [[nodiscard]] std::uint64_t injection_cycle(std::uint64_t seq) const {
    return injection_cycles_.at(seq);
  }

 private:
  const sim::Simulator& sim_;
  sim::Fifo<stream::Tuple>& out_;
  std::deque<stream::Tuple> pending_;
  std::unordered_map<std::uint64_t, std::uint64_t> injection_cycles_;
  bool record_injections_ = true;
  std::uint64_t last_push_cycle_ = 0;
};

class BiflowEngine {
 public:
  explicit BiflowEngine(BiflowConfig cfg);

  // Programs the join operator on every core. The chain must be quiescent
  // (bi-flow reprogramming requires draining — exactly the §I pain point
  // of static hardware designs that FQP's dynamic model addresses).
  void program(const stream::JoinSpec& spec);

  void offer(const stream::Tuple& t);
  void offer(const std::vector<stream::Tuple>& tuples);

  // Warm-start: loads the newest `window_size` tuples of each stream into
  // the chain's sub-windows with the correct age layout (newest R at core
  // 0, newest S at core N-1), as if they had flowed through. Requires a
  // quiescent engine with no tuples streamed yet.
  void prefill(const std::vector<stream::Tuple>& tuples);

  void step(std::uint64_t cycles = 1);
  std::uint64_t run_to_quiescence(std::uint64_t max_cycles,
                                  bool require_quiescent = true);
  [[nodiscard]] bool quiescent() const;

  [[nodiscard]] std::uint64_t cycle() const { return sim_.cycle(); }
  [[nodiscard]] std::size_t module_count() const {
    return sim_.module_count();
  }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const std::vector<TimedResult>& results() const {
    return sink_->collected();
  }
  [[nodiscard]] std::vector<stream::ResultTuple> result_tuples() const;
  [[nodiscard]] bool input_drained() const {
    return r_driver_->done() && s_driver_->done();
  }
  [[nodiscard]] std::uint64_t last_injection_cycle() const;
  [[nodiscard]] std::uint64_t injection_cycle(std::uint64_t seq) const;
  void set_record_injections(bool on);
  [[nodiscard]] std::uint64_t last_result_cycle() const {
    return sink_->last_result_cycle();
  }

  [[nodiscard]] const BiflowConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] DesignStats design_stats() const noexcept { return stats_; }
  [[nodiscard]] const BiflowJoinCore& core(std::size_t i) const {
    return *cores_.at(i);
  }
  [[nodiscard]] BiflowJoinCore& mutable_core(std::size_t i) {
    return *cores_.at(i);
  }
  [[nodiscard]] std::uint64_t total_probes() const;

  // Publishes cycle counts, per-core probe/match/expiry counters, channel
  // crossings and per-FIFO occupancy high-water under `prefix`. All
  // values are deterministic (cycle-accurate simulation).
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  sim::Fifo<stream::Tuple>& new_tuple_fifo(std::string name,
                                           std::size_t capacity);
  sim::Fifo<stream::ResultTuple>& new_result_fifo(std::string name);

  BiflowConfig cfg_;
  DesignStats stats_;
  sim::Simulator sim_;
  bool programmed_ = false;

  std::vector<std::unique_ptr<sim::Fifo<stream::Tuple>>> tuple_fifos_;
  std::vector<std::unique_ptr<sim::Fifo<stream::ResultTuple>>> result_fifos_;
  std::vector<std::unique_ptr<BiflowJoinCore>> cores_;
  std::vector<std::unique_ptr<HandshakeChannel>> channels_;
  std::vector<std::unique_ptr<GNode>> gnodes_;
  std::unique_ptr<TupleDriver> r_driver_;
  std::unique_ptr<TupleDriver> s_driver_;
  std::unique_ptr<ResultSink> sink_;
};

}  // namespace hal::hw
