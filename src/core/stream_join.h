// hal::core — the library's public facade.
//
// One interface, four interchangeable realizations of the paper's
// flow-based parallel stream join:
//
//   Backend::kHwUniflow  — SplitJoin micro-architecture on the cycle
//                          simulator (Figs. 9/11/12/13)
//   Backend::kHwBiflow   — handshake-join / OP-Chain micro-architecture on
//                          the cycle simulator (Figs. 8a/10)
//   Backend::kSwSplitJoin — SplitJoin on std::thread (the paper's
//                           software comparison system, Figs. 14d/16)
//   Backend::kSwHandshake — handshake join on std::thread
//
// Hardware backends report simulated cycles and convert to wall-clock time
// at the configured clock; software backends report measured wall-clock
// time. `RunReport` is deliberately common so examples and benches can
// compare backends side by side, which is the paper's whole exercise.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/window_image.h"
#include "guard/guard.h"
#include "hw/model/design_stats.h"
#include "obs/metrics.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"
#include "sw/probe_path.h"

namespace hal::core {

enum class Backend : std::uint8_t {
  kHwUniflow,
  kHwBiflow,
  kSwSplitJoin,
  kSwHandshake,
  kSwBatch,    // GPU/CellJoin-style batched kernels
  kCluster,    // sharded multi-worker runtime (hal::cluster) wrapping any
               // of the above as per-shard engines
};

[[nodiscard]] const char* to_string(Backend b) noexcept;

struct EngineConfig {
  Backend backend = Backend::kHwUniflow;
  std::uint32_t num_cores = 4;
  // Per-stream sliding-window size (multiple of num_cores).
  std::size_t window_size = 1 << 10;
  stream::JoinSpec spec = stream::JoinSpec::equi_on_key();

  // Hardware backends only.
  hw::NetworkKind distribution = hw::NetworkKind::kScalable;
  hw::NetworkKind gathering = hw::NetworkKind::kScalable;
  double clock_mhz = 100.0;  // operating point for cycle→time conversion

  // Software backends only: keep full result tuples (disable for large
  // throughput runs).
  bool collect_results = true;

  // kSwBatch only: tuples per data-parallel kernel dispatch.
  std::size_t batch_size = 1 << 10;

  // Software + cluster backends: dispatch granularity of the batched data
  // path. 0 = tuple-at-a-time (the oracle path); n >= 1 slices every
  // process() call into arrival-order TupleBatch spans of n, which travel
  // as one queue push / one wire frame each and probe through the
  // engines' vectorized contiguous-key kernels. Results and deterministic
  // metrics are identical either way; only the dispatch cost changes.
  // Cluster workers and the shard transport inherit this granularity.
  std::size_t dispatch_batch = 0;

  // Software + cluster backends: equi-probe strategy of the batched path
  // (sw/probe_path.h). kIndexed probes hash buckets (O(matches+bucket)),
  // kScan runs the explicit-SIMD full-lane scan — kept as the measured
  // contrast and differential oracle. Cluster workers inherit this.
  sw::ProbePath probe = sw::ProbePath::kIndexed;

  // Backend::kCluster only: shard count and the backend each shard wraps.
  // Equi-on-key specs shard by key hash; any other predicate runs on a
  // near-square store-to-one/process-against-all grid. For full control
  // (mixed backends, transport modeling, replication, fault injection)
  // construct a cluster::ClusterEngine directly.
  std::uint32_t cluster_shards = 4;
  Backend cluster_worker_backend = Backend::kSwSplitJoin;
  // Per-key routed-tuple counters in the cluster router — the measured
  // skew that elastic::Controller::rebalance() acts on. Off by default
  // (costs one hash-map increment per routed tuple).
  bool cluster_track_key_load = false;

  // SLO-bounded admission (hal::guard). With guard.enabled, software
  // backends are wrapped in a guarded ingress (guard::GuardedEngine) and
  // kCluster runs the guard at its router ingress; either way shed
  // tuples are exactly accounted (engine->admission_guard()->log()).
  // Disabled guards cost nothing: the wrapper is never constructed.
  guard::GuardConfig guard;
};

struct RunReport {
  std::uint64_t tuples_processed = 0;
  std::uint64_t results_emitted = 0;
  double elapsed_seconds = 0.0;            // wall (sw) or cycles/clock (hw)
  std::optional<std::uint64_t> cycles;     // hw backends only

  [[nodiscard]] double throughput_tuples_per_sec() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(tuples_processed) / elapsed_seconds
               : 0.0;
  }
};

// Unified stream-join engine. Feed tuples with process(); matches
// accumulate and can be taken with take_results().
class StreamJoinEngine {
 public:
  virtual ~StreamJoinEngine() = default;

  // Processes a batch to completion and reports timing for this batch.
  virtual RunReport process(const std::vector<stream::Tuple>& tuples) = 0;

  // Warm-start the sliding windows without timing (see engine prefill
  // docs). Must precede the first process() call.
  virtual void prefill(const std::vector<stream::Tuple>& tuples) = 0;

  // Re-program the join operator at runtime. Hardware uni-flow programs
  // in-stream (no drain); other backends require a drained engine, which
  // process() guarantees on return.
  virtual void program(const stream::JoinSpec& spec) = 0;

  // All results emitted since the last take_results() call.
  virtual std::vector<stream::ResultTuple> take_results() = 0;

  [[nodiscard]] virtual Backend backend() const noexcept = 0;

  // Hardware backends expose their design descriptor for the model layer;
  // software backends return nullopt.
  [[nodiscard]] virtual std::optional<hw::DesignStats> design_stats()
      const = 0;

  // Checkpoint/restore of the engine's windowed state (hal::recovery).
  // snapshot() fills `out` with the window contents and arrival cursors at
  // quiescence; returns false when the backend does not support
  // checkpointing (hardware and cluster backends today). restore()
  // replaces the windowed state with the image's and returns false —
  // leaving the engine untouched — when the image's backend, core count or
  // window size does not match. Both require a quiescent engine, which
  // process() guarantees on return. Restoring does not resurrect already
  // emitted results; take_results() keeps returning only post-restore
  // matches.
  [[nodiscard]] virtual bool snapshot(WindowImage& out) {
    (void)out;
    return false;
  }
  [[nodiscard]] virtual bool restore(const WindowImage& image) {
    (void)image;
    return false;
  }

  // Publishes the engine's internal observability counters (per-core
  // probes/matches, stalls, queue high-water, ...) under `prefix`. Call
  // between process() calls (quiescent engine). The default is a no-op so
  // external StreamJoinEngine implementations keep compiling.
  virtual void collect_metrics(obs::MetricRegistry& registry,
                               const std::string& prefix) const {
    (void)registry;
    (void)prefix;
  }

  // The engine's ingress admission guard (hal::guard), or nullptr when
  // the engine has none. Non-null implies exact shed accounting: the
  // engine's emitted results equal the reference join of the offered
  // input minus the guard's shed log. Read between process() calls.
  [[nodiscard]] virtual const guard::AdmissionGuard* admission_guard()
      const noexcept {
    return nullptr;
  }
};

// One ObsSnapshot per run: a fresh registry filled with the engine's
// internals (under "engine.") plus the RunReport (under "run."), labeled
// with the backend name when `label` is empty. The run counters carry the
// right Stability per backend — kSwHandshake's result count races (its
// chain's window semantics depend on thread interleaving), so only there
// results_emitted is kRuntime.
[[nodiscard]] obs::ObsSnapshot snapshot_run(const StreamJoinEngine& engine,
                                            const RunReport& report,
                                            std::string label = {});

[[nodiscard]] std::unique_ptr<StreamJoinEngine> make_engine(
    const EngineConfig& config);

}  // namespace hal::core
