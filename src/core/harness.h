// Measurement harness used by the benchmark binaries and integration
// tests: runs a hardware engine to steady state and combines the cycle
// measurements with the device models into the quantities the paper
// reports (tuples/s at the operating clock, latency in cycles and µs,
// F_max, resource fit, power).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/stream_join.h"
#include "hw/biflow/engine.h"
#include "hw/model/device.h"
#include "hw/model/power_model.h"
#include "hw/model/resource_model.h"
#include "hw/model/timing_model.h"
#include "hw/uniflow/engine.h"
#include "obs/metrics.h"

namespace hal::core {

struct HwThroughput {
  bool fits = false;
  double fmax_mhz = 0.0;
  double clock_mhz = 0.0;  // operating point used for the time conversion
  std::uint64_t tuples = 0;
  std::uint64_t cycles = 0;
  std::uint64_t results = 0;
  hw::ResourceUsage usage;
  double power_mw = 0.0;

  [[nodiscard]] double tuples_per_cycle() const noexcept {
    return cycles > 0 ? static_cast<double>(tuples) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
  [[nodiscard]] double mtuples_per_sec() const noexcept {
    return tuples_per_cycle() * clock_mhz;  // MHz · t/cycle = Mt/s
  }
};

struct HwLatency {
  bool fits = false;
  double fmax_mhz = 0.0;
  double clock_mhz = 0.0;
  std::uint64_t cycles_to_last_result = 0;
  std::uint64_t cycles_to_quiescent = 0;

  [[nodiscard]] double microseconds() const noexcept {
    return clock_mhz > 0.0
               ? static_cast<double>(cycles_to_last_result) / clock_mhz
               : 0.0;
  }
};

struct MeasureOptions {
  // Tuples streamed for the throughput measurement after the windows have
  // been pre-filled to steady state.
  std::size_t num_tuples = 512;
  std::uint64_t seed = 42;
  // Requested clock; the operating clock is min(requested, modeled F_max),
  // mirroring the paper's fixed 100 MHz (V5) / 300 MHz (V7) choices.
  double requested_mhz = 100.0;
  // Key domain of the uniform workload; sized so equi-join selectivity is
  // low (result traffic does not bottleneck the gathering network, as in
  // the paper's throughput runs).
  std::uint32_t key_domain = 1u << 20;

  // Software/cluster measurements only: dispatch granularity of the
  // batched data path. 0 keeps the EngineConfig's own dispatch_batch
  // (default tuple-at-a-time); n overrides it for this measurement, so
  // batch-size sweeps reuse one config.
  std::size_t dispatch_batch = 0;

  // Hardware measurements only: host threads for the simulation kernel.
  // 0 keeps the engine config's own sim.threads; n overrides it for this
  // measurement. Purely host-side — simulated results and cycle counts are
  // byte-identical across values (the two-phase determinism contract).
  std::uint32_t sim_threads = 0;

  // When set, the measurement publishes the engine's internal metrics
  // (under "<obs_prefix>engine.") and its own outputs (under
  // "<obs_prefix>run.") into this registry. With HAL_OBS=0 the registry
  // is a no-op shell and nothing is recorded.
  obs::MetricRegistry* registry = nullptr;
  std::string obs_prefix;
};

// Steady-state input throughput of a uni-flow hardware design on `device`.
[[nodiscard]] HwThroughput measure_uniflow_throughput(
    const hw::UniflowConfig& cfg, const hw::FpgaDevice& device,
    const MeasureOptions& opts);

// Same for a bi-flow design.
[[nodiscard]] HwThroughput measure_biflow_throughput(
    const hw::BiflowConfig& cfg, const hw::FpgaDevice& device,
    const MeasureOptions& opts);

// Latency of one tuple inserted into a quiescent design with full windows
// containing exactly one matching partner (§V: "the time it takes to
// process and emit all results for a newly inserted tuple").
[[nodiscard]] HwLatency measure_uniflow_latency(const hw::UniflowConfig& cfg,
                                                const hw::FpgaDevice& device,
                                                const MeasureOptions& opts);

// Wall-clock throughput of a software or cluster backend at steady state:
// windows are warmed to 2·W tuples first (prefilled, or streamed for
// backends without state injection), then `num_tuples` fresh tuples are
// timed end to end through the path selected by dispatch_batch.
struct SwMeasurement {
  std::uint64_t tuples = 0;
  std::uint64_t results = 0;
  double elapsed_seconds = 0.0;

  [[nodiscard]] double tuples_per_sec() const noexcept {
    return elapsed_seconds > 0.0
               ? static_cast<double>(tuples) / elapsed_seconds
               : 0.0;
  }
};
[[nodiscard]] SwMeasurement measure_sw_throughput(const EngineConfig& cfg,
                                                  const MeasureOptions& opts);

// Model-only evaluation (fit, F_max, power) for sweeps that do not need a
// simulation run, e.g. Fig. 17.
struct HwModelPoint {
  bool fits = false;
  double fmax_mhz = 0.0;
  hw::ResourceUsage usage;
  double power_mw_at_fmax = 0.0;
};
[[nodiscard]] HwModelPoint evaluate_design(const hw::DesignStats& stats,
                                           const hw::FpgaDevice& device);

}  // namespace hal::core
