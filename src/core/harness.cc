#include "core/harness.h"

#include "common/assert.h"
#include "stream/generator.h"

namespace hal::core {

namespace {

using stream::JoinSpec;
using stream::StreamId;
using stream::Tuple;
using stream::WorkloadConfig;
using stream::WorkloadGenerator;

std::vector<Tuple> steady_state_fill(std::size_t window_size,
                                     std::uint32_t key_domain,
                                     std::uint64_t seed) {
  WorkloadConfig wl;
  wl.seed = seed;
  wl.key_domain = key_domain;
  WorkloadGenerator gen(wl);
  return gen.take(2 * window_size);  // window_size tuples per stream
}

template <typename Engine>
HwThroughput run_throughput(Engine& engine, const hw::DesignStats& stats,
                            const hw::FpgaDevice& device,
                            const MeasureOptions& opts,
                            std::uint64_t fill_seed_offset) {
  const hw::ResourceModel resources;
  const hw::TimingModel timing;
  const hw::PowerModel power;

  HwThroughput out;
  out.usage = resources.estimate(stats, &device);
  out.fits = out.usage.fits(device);
  out.fmax_mhz = timing.fmax_mhz(stats, device);
  out.clock_mhz = timing.operating_mhz(stats, device, opts.requested_mhz);
  out.power_mw = power.estimate_mw(out.usage, device, out.clock_mhz);

  engine.program(JoinSpec::equi_on_key());
  engine.run_to_quiescence(1'000'000);
  engine.prefill(steady_state_fill(stats.window_size_per_stream(),
                                   opts.key_domain,
                                   opts.seed + fill_seed_offset));
  engine.set_record_injections(false);

  WorkloadConfig wl;
  wl.seed = opts.seed;
  wl.key_domain = opts.key_domain;
  WorkloadGenerator gen(wl);
  const std::uint64_t start = engine.cycle();
  engine.offer(gen.take(opts.num_tuples));
  while (!engine.input_drained()) engine.step(64);

  out.tuples = opts.num_tuples;
  out.cycles = engine.last_injection_cycle() - start + 1;
  // Drain so the result count is complete.
  engine.run_to_quiescence(
      (stats.window_size_per_stream() + 64) * 64 + 100'000);
  out.results = engine.results().size();

  if (opts.registry != nullptr) {
    engine.collect_metrics(*opts.registry, opts.obs_prefix + "engine.");
    opts.registry->set_counter(opts.obs_prefix + "run.tuples", out.tuples);
    opts.registry->set_counter(opts.obs_prefix + "run.cycles", out.cycles);
    opts.registry->set_counter(opts.obs_prefix + "run.results", out.results);
    // Model outputs are pure functions of the design descriptor.
    opts.registry->set_gauge(opts.obs_prefix + "run.fmax_mhz", out.fmax_mhz,
                             obs::Stability::kDeterministic);
    opts.registry->set_gauge(opts.obs_prefix + "run.clock_mhz", out.clock_mhz,
                             obs::Stability::kDeterministic);
    opts.registry->set_gauge(opts.obs_prefix + "run.power_mw", out.power_mw,
                             obs::Stability::kDeterministic);
  }
  return out;
}

}  // namespace

HwThroughput measure_uniflow_throughput(const hw::UniflowConfig& cfg,
                                        const hw::FpgaDevice& device,
                                        const MeasureOptions& opts) {
  hw::UniflowConfig run_cfg = cfg;
  if (opts.sim_threads > 0) run_cfg.sim.threads = opts.sim_threads;
  hw::UniflowEngine engine(run_cfg);
  return run_throughput(engine, engine.design_stats(), device, opts,
                        /*fill_seed_offset=*/1000);
}

HwThroughput measure_biflow_throughput(const hw::BiflowConfig& cfg,
                                       const hw::FpgaDevice& device,
                                       const MeasureOptions& opts) {
  hw::BiflowConfig run_cfg = cfg;
  if (opts.sim_threads > 0) run_cfg.sim.threads = opts.sim_threads;
  hw::BiflowEngine engine(run_cfg);
  return run_throughput(engine, engine.design_stats(), device, opts,
                        /*fill_seed_offset=*/1000);
}

HwLatency measure_uniflow_latency(const hw::UniflowConfig& cfg,
                                  const hw::FpgaDevice& device,
                                  const MeasureOptions& opts) {
  const hw::TimingModel timing;

  hw::UniflowConfig run_cfg = cfg;
  if (opts.sim_threads > 0) run_cfg.sim.threads = opts.sim_threads;
  hw::UniflowEngine engine(run_cfg);
  const hw::DesignStats stats = engine.design_stats();
  const hw::ResourceModel resources;

  HwLatency out;
  out.fits = resources.estimate(stats, &device).fits(device);
  out.fmax_mhz = timing.fmax_mhz(stats, device);
  out.clock_mhz = timing.operating_mhz(stats, device, opts.requested_mhz);

  engine.program(JoinSpec::equi_on_key());
  engine.run_to_quiescence(1'000'000);

  // Fill the windows with non-matching keys plus exactly one S tuple that
  // matches the probe, so the probe's scan emits exactly one result.
  const std::uint32_t probe_key = 0;
  auto fill = steady_state_fill(stats.window_size_per_stream(),
                                opts.key_domain, opts.seed);
  for (auto& t : fill) t.key |= 1u << 21;  // disjoint from probe_key
  fill.back().origin = StreamId::S;
  fill.back().key = probe_key;
  engine.prefill(fill);

  Tuple probe;
  probe.key = probe_key;
  probe.origin = StreamId::R;
  probe.seq = fill.size();
  const std::uint64_t start = engine.cycle();
  engine.offer(probe);
  const std::uint64_t budget =
      64 * (stats.window_size_per_stream() + stats.num_cores + 64) + 10'000;
  engine.run_to_quiescence(budget);
  HAL_ASSERT_MSG(!engine.results().empty(),
                 "latency probe produced no result");
  out.cycles_to_last_result = engine.last_result_cycle() - start;
  out.cycles_to_quiescent = engine.cycle() - start;

  if (opts.registry != nullptr) {
    engine.collect_metrics(*opts.registry, opts.obs_prefix + "engine.");
    opts.registry->set_counter(opts.obs_prefix + "run.cycles_to_last_result",
                               out.cycles_to_last_result);
    opts.registry->set_counter(opts.obs_prefix + "run.cycles_to_quiescent",
                               out.cycles_to_quiescent);
  }
  return out;
}

SwMeasurement measure_sw_throughput(const EngineConfig& cfg,
                                    const MeasureOptions& opts) {
  EngineConfig run_cfg = cfg;
  if (opts.dispatch_batch > 0) run_cfg.dispatch_batch = opts.dispatch_batch;
  auto engine = make_engine(run_cfg);

  // Warm the windows to steady state. Handshake chains bind the window to
  // the flow, so their warmup streams through the untimed path; everything
  // else takes the state-injection shortcut.
  auto fill = steady_state_fill(run_cfg.window_size, opts.key_domain,
                                opts.seed + 1000);
  const bool handshake =
      run_cfg.backend == Backend::kSwHandshake ||
      (run_cfg.backend == Backend::kCluster &&
       run_cfg.cluster_worker_backend == Backend::kSwHandshake);
  if (handshake) {
    (void)engine->process(fill);
    (void)engine->take_results();
  } else {
    engine->prefill(fill);
  }

  WorkloadConfig wl;
  wl.seed = opts.seed;
  wl.key_domain = opts.key_domain;
  WorkloadGenerator gen(wl);
  // Continue the seq numbering after the warmup so window accounting (and
  // the cluster's exact-global filter, which requires unique seqs) stays
  // consistent.
  auto workload = gen.take(opts.num_tuples);
  for (auto& t : workload) t.seq += fill.size();
  const RunReport report = engine->process(workload);

  SwMeasurement out;
  out.tuples = report.tuples_processed;
  out.results = report.results_emitted;
  out.elapsed_seconds = report.elapsed_seconds;

  if (opts.registry != nullptr) {
    engine->collect_metrics(*opts.registry, opts.obs_prefix + "engine.");
    opts.registry->set_counter(opts.obs_prefix + "run.tuples", out.tuples);
    opts.registry->set_counter(opts.obs_prefix + "run.results", out.results);
    opts.registry->set_gauge(opts.obs_prefix + "run.tuples_per_sec",
                             out.tuples_per_sec(), obs::Stability::kRuntime);
  }
  return out;
}

HwModelPoint evaluate_design(const hw::DesignStats& stats,
                             const hw::FpgaDevice& device) {
  const hw::ResourceModel resources;
  const hw::TimingModel timing;
  const hw::PowerModel power;
  HwModelPoint p;
  p.usage = resources.estimate(stats, &device);
  p.fits = p.usage.fits(device);
  p.fmax_mhz = timing.fmax_mhz(stats, device);
  p.power_mw_at_fmax = power.estimate_mw(p.usage, device, p.fmax_mhz);
  return p;
}

}  // namespace hal::core
