#include "core/stream_join.h"

#include <algorithm>

#include "cluster/cluster_engine.h"
#include "common/assert.h"
#include "guard/guarded_engine.h"
#include "hw/biflow/engine.h"
#include "hw/uniflow/engine.h"
#include "sw/batch_join.h"
#include "sw/handshake_join.h"
#include "sw/splitjoin.h"

namespace hal::core {

namespace {

using stream::ResultTuple;
using stream::Tuple;

// Generous default: benches/tests that need tighter control use the
// engines directly.
constexpr std::uint64_t kMaxCyclesPerBatchTuple = 1u << 22;

class HwUniflowAdapter final : public StreamJoinEngine {
 public:
  explicit HwUniflowAdapter(const EngineConfig& cfg) : cfg_(cfg) {
    hw::UniflowConfig hw_cfg;
    hw_cfg.num_cores = cfg.num_cores;
    hw_cfg.window_size = cfg.window_size;
    hw_cfg.distribution = cfg.distribution;
    hw_cfg.gathering = cfg.gathering;
    engine_ = std::make_unique<hw::UniflowEngine>(hw_cfg);
    engine_->set_record_injections(false);
    engine_->program(cfg.spec);
  }

  RunReport process(const std::vector<Tuple>& tuples) override {
    const std::uint64_t start = engine_->cycle();
    engine_->offer(tuples);
    engine_->run_to_quiescence(kMaxCyclesPerBatchTuple *
                               std::max<std::uint64_t>(tuples.size(), 1));
    RunReport report;
    report.tuples_processed = tuples.size();
    report.cycles = engine_->cycle() - start;
    report.elapsed_seconds =
        static_cast<double>(*report.cycles) / (cfg_.clock_mhz * 1e6);
    report.results_emitted = engine_->results().size() - taken_;
    return report;
  }

  void prefill(const std::vector<Tuple>& tuples) override {
    engine_->prefill(tuples);
  }

  void program(const stream::JoinSpec& spec) override {
    engine_->program(spec);
  }

  std::vector<ResultTuple> take_results() override {
    auto all = engine_->result_tuples();
    std::vector<ResultTuple> fresh(all.begin() + static_cast<std::ptrdiff_t>(
                                                     taken_),
                                   all.end());
    taken_ = all.size();
    return fresh;
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kHwUniflow;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return engine_->design_stats();
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override {
    engine_->collect_metrics(registry, prefix);
  }

 private:
  EngineConfig cfg_;
  std::unique_ptr<hw::UniflowEngine> engine_;
  std::size_t taken_ = 0;
};

class HwBiflowAdapter final : public StreamJoinEngine {
 public:
  explicit HwBiflowAdapter(const EngineConfig& cfg) : cfg_(cfg) {
    hw::BiflowConfig hw_cfg;
    hw_cfg.num_cores = cfg.num_cores;
    hw_cfg.window_size = cfg.window_size;
    hw_cfg.gathering = cfg.gathering;
    engine_ = std::make_unique<hw::BiflowEngine>(hw_cfg);
    engine_->set_record_injections(false);
    engine_->program(cfg.spec);
  }

  RunReport process(const std::vector<Tuple>& tuples) override {
    const std::uint64_t start = engine_->cycle();
    engine_->offer(tuples);
    engine_->run_to_quiescence(kMaxCyclesPerBatchTuple *
                               std::max<std::uint64_t>(tuples.size(), 1));
    RunReport report;
    report.tuples_processed = tuples.size();
    report.cycles = engine_->cycle() - start;
    report.elapsed_seconds =
        static_cast<double>(*report.cycles) / (cfg_.clock_mhz * 1e6);
    report.results_emitted = engine_->results().size() - taken_;
    return report;
  }

  void prefill(const std::vector<Tuple>& tuples) override {
    engine_->prefill(tuples);
  }

  void program(const stream::JoinSpec& spec) override {
    engine_->program(spec);
  }

  std::vector<ResultTuple> take_results() override {
    auto all = engine_->result_tuples();
    std::vector<ResultTuple> fresh(all.begin() + static_cast<std::ptrdiff_t>(
                                                     taken_),
                                   all.end());
    taken_ = all.size();
    return fresh;
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kHwBiflow;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return engine_->design_stats();
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override {
    engine_->collect_metrics(registry, prefix);
  }

 private:
  EngineConfig cfg_;
  std::unique_ptr<hw::BiflowEngine> engine_;
  std::size_t taken_ = 0;
};

class SwSplitJoinAdapter final : public StreamJoinEngine {
 public:
  explicit SwSplitJoinAdapter(const EngineConfig& cfg)
      : spec_(cfg.spec), dispatch_batch_(cfg.dispatch_batch) {
    sw::SplitJoinConfig sw_cfg;
    sw_cfg.num_cores = cfg.num_cores;
    sw_cfg.window_size = cfg.window_size;
    sw_cfg.collect_results = cfg.collect_results;
    sw_cfg.probe = cfg.probe;
    engine_ = std::make_unique<sw::SplitJoinEngine>(sw_cfg, spec_);
  }

  RunReport process(const std::vector<Tuple>& tuples) override {
    const sw::SwRunReport r =
        dispatch_batch_ > 0 ? engine_->process_batched(tuples, dispatch_batch_)
                            : engine_->process(tuples);
    RunReport report;
    report.tuples_processed = r.tuples_processed;
    report.results_emitted = r.results_emitted - last_emitted_;
    last_emitted_ = r.results_emitted;
    report.elapsed_seconds = r.elapsed_seconds;
    return report;
  }

  void prefill(const std::vector<Tuple>& tuples) override {
    engine_->prefill(tuples);
  }

  void program(const stream::JoinSpec& spec) override {
    // The software engine binds the spec at construction (each probe reads
    // it); rebuild preserving nothing — reprogramming software SplitJoin
    // mid-stream is out of the paper's scope.
    HAL_CHECK(false,
              "kSwSplitJoin does not support runtime re-programming; "
              "construct a new engine");
    (void)spec;
  }

  std::vector<ResultTuple> take_results() override {
    auto out = engine_->results();
    engine_->clear_results();
    return out;
  }

  bool snapshot(WindowImage& out) override {
    out = WindowImage{};
    engine_->snapshot_state(out);
    out.backend = Backend::kSwSplitJoin;
    return true;
  }
  bool restore(const WindowImage& image) override {
    if (image.backend != Backend::kSwSplitJoin) return false;
    return engine_->restore_state(image);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kSwSplitJoin;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return std::nullopt;
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override {
    engine_->collect_metrics(registry, prefix);
  }

 private:
  stream::JoinSpec spec_;
  std::size_t dispatch_batch_ = 0;
  std::unique_ptr<sw::SplitJoinEngine> engine_;
  std::uint64_t last_emitted_ = 0;
};

class SwHandshakeAdapter final : public StreamJoinEngine {
 public:
  explicit SwHandshakeAdapter(const EngineConfig& cfg)
      : dispatch_batch_(cfg.dispatch_batch) {
    sw::HandshakeJoinConfig sw_cfg;
    sw_cfg.num_cores = cfg.num_cores;
    sw_cfg.window_size = cfg.window_size;
    sw_cfg.probe = cfg.probe;
    engine_ = std::make_unique<sw::HandshakeJoinEngine>(sw_cfg, cfg.spec);
  }

  RunReport process(const std::vector<Tuple>& tuples) override {
    const sw::SwRunReport r =
        dispatch_batch_ > 0 ? engine_->process_batched(tuples, dispatch_batch_)
                            : engine_->process(tuples);
    RunReport report;
    report.tuples_processed = r.tuples_processed;
    report.results_emitted = r.results_emitted - last_emitted_;
    last_emitted_ = r.results_emitted;
    report.elapsed_seconds = r.elapsed_seconds;
    return report;
  }

  void prefill(const std::vector<Tuple>& tuples) override {
    HAL_CHECK(tuples.empty(),
              "kSwHandshake does not support prefill (chain layout is "
              "flow-dependent); stream the warmup instead");
  }

  void program(const stream::JoinSpec& spec) override {
    HAL_CHECK(false,
              "kSwHandshake does not support runtime re-programming; "
              "construct a new engine");
    (void)spec;
  }

  std::vector<ResultTuple> take_results() override {
    auto all = engine_->results();
    std::vector<ResultTuple> fresh(
        all.begin() + static_cast<std::ptrdiff_t>(taken_), all.end());
    taken_ = all.size();
    return fresh;
  }

  bool snapshot(WindowImage& out) override {
    out = WindowImage{};
    engine_->snapshot_state(out);
    out.backend = Backend::kSwHandshake;
    return true;
  }
  bool restore(const WindowImage& image) override {
    if (image.backend != Backend::kSwHandshake) return false;
    return engine_->restore_state(image);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kSwHandshake;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return std::nullopt;
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override {
    engine_->collect_metrics(registry, prefix);
  }

 private:
  std::size_t dispatch_batch_ = 0;
  std::unique_ptr<sw::HandshakeJoinEngine> engine_;
  std::size_t taken_ = 0;
  std::uint64_t last_emitted_ = 0;
};

class SwBatchAdapter final : public StreamJoinEngine {
 public:
  explicit SwBatchAdapter(const EngineConfig& cfg) {
    sw::BatchJoinConfig sw_cfg;
    sw_cfg.num_workers = cfg.num_cores;
    sw_cfg.window_size = cfg.window_size;
    sw_cfg.batch_size = std::min(cfg.batch_size, cfg.window_size);
    sw_cfg.probe = cfg.probe;
    // The kernel engine is batched by construction; dispatch_batch just
    // overrides the per-call granularity (capped by the window).
    dispatch_batch_ = std::min(cfg.dispatch_batch, cfg.window_size);
    engine_ = std::make_unique<sw::BatchJoinEngine>(sw_cfg, cfg.spec);
  }

  RunReport process(const std::vector<Tuple>& tuples) override {
    const sw::SwRunReport r =
        dispatch_batch_ > 0 ? engine_->process_batched(tuples, dispatch_batch_)
                            : engine_->process(tuples);
    RunReport report;
    report.tuples_processed = r.tuples_processed;
    report.results_emitted = r.results_emitted;
    report.elapsed_seconds = r.elapsed_seconds;
    return report;
  }

  void prefill(const std::vector<Tuple>& tuples) override {
    // The batch engine warms up by streaming: batching makes the fill
    // cheap enough that no state-injection shortcut is needed.
    (void)engine_->process(tuples);
    engine_->clear_results();
  }

  void program(const stream::JoinSpec& spec) override {
    HAL_CHECK(false,
              "kSwBatch does not support runtime re-programming; construct "
              "a new engine");
    (void)spec;
  }

  std::vector<ResultTuple> take_results() override {
    auto out = engine_->results();
    engine_->clear_results();
    return out;
  }

  bool snapshot(WindowImage& out) override {
    out = WindowImage{};
    engine_->snapshot_state(out);
    out.backend = Backend::kSwBatch;
    return true;
  }
  bool restore(const WindowImage& image) override {
    if (image.backend != Backend::kSwBatch) return false;
    return engine_->restore_state(image);
  }

  [[nodiscard]] Backend backend() const noexcept override {
    return Backend::kSwBatch;
  }
  [[nodiscard]] std::optional<hw::DesignStats> design_stats() const override {
    return std::nullopt;
  }
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const override {
    engine_->collect_metrics(registry, prefix);
  }

 private:
  std::size_t dispatch_batch_ = 0;
  std::unique_ptr<sw::BatchJoinEngine> engine_;
};

// Maps the flat facade config onto a cluster: key-hash sharding when the
// operator pins the key, otherwise the near-square split grid (rows×cols
// closest to square with rows·cols == shards).
std::unique_ptr<StreamJoinEngine> make_cluster_from_facade(
    const EngineConfig& cfg) {
  cluster::ClusterConfig ccfg;
  ccfg.window_size = cfg.window_size;
  ccfg.spec = cfg.spec;
  // dispatch_batch, when set, governs the shard transport granularity too:
  // one ingress batch = one Link message = one wire frame = one batched
  // worker dispatch.
  const std::size_t wire_batch =
      cfg.dispatch_batch > 0 ? cfg.dispatch_batch : cfg.batch_size;
  ccfg.transport.batch_size =
      std::max<std::size_t>(1, std::min<std::size_t>(wire_batch, 256));
  ccfg.worker = cfg;
  ccfg.worker.backend = cfg.cluster_worker_backend;
  // The cluster guards once, at its router ingress; per-worker guards
  // would double-shed, so the workers' template runs unguarded.
  ccfg.guard = cfg.guard;
  ccfg.worker.guard = guard::GuardConfig{};
  ccfg.elastic.track_key_load = cfg.cluster_track_key_load;
  if (cluster::key_hashable(cfg.spec)) {
    ccfg.partitioning = cluster::Partitioning::kKeyHash;
    ccfg.shards = cfg.cluster_shards;
  } else {
    ccfg.partitioning = cluster::Partitioning::kSplitGrid;
    std::uint32_t rows = 1;
    for (std::uint32_t d = 1; d * d <= cfg.cluster_shards; ++d) {
      if (cfg.cluster_shards % d == 0) rows = d;
    }
    ccfg.grid_rows = rows;
    ccfg.grid_cols = cfg.cluster_shards / rows;
  }
  return cluster::make_cluster_engine(ccfg);
}

}  // namespace

const char* to_string(Backend b) noexcept {
  switch (b) {
    case Backend::kHwUniflow: return "hw-uniflow";
    case Backend::kHwBiflow: return "hw-biflow";
    case Backend::kSwSplitJoin: return "sw-splitjoin";
    case Backend::kSwHandshake: return "sw-handshake";
    case Backend::kSwBatch: return "sw-batch";
    case Backend::kCluster: return "cluster";
  }
  return "?";
}

obs::ObsSnapshot snapshot_run(const StreamJoinEngine& engine,
                              const RunReport& report, std::string label) {
  obs::MetricRegistry registry;
  engine.collect_metrics(registry, "engine.");

  // Result multisets are reproducible everywhere except the threaded
  // handshake chain (window semantics there depend on crossing/arrival
  // interleaving, so even the count races run to run).
  const obs::Stability result_stability =
      engine.backend() == Backend::kSwHandshake ? obs::Stability::kRuntime
                                                : obs::Stability::kDeterministic;
  registry.set_counter("run.tuples_processed", report.tuples_processed);
  registry.set_counter("run.results_emitted", report.results_emitted,
                       result_stability);
  if (report.cycles.has_value()) {
    registry.set_counter("run.cycles", *report.cycles);
    // Cycle-derived time is as reproducible as the cycle count itself.
    registry.set_gauge("run.elapsed_seconds", report.elapsed_seconds,
                       obs::Stability::kDeterministic);
  } else {
    registry.set_gauge("run.elapsed_seconds", report.elapsed_seconds,
                       obs::Stability::kRuntime);
  }

  if (label.empty()) label = to_string(engine.backend());
  return registry.snapshot(std::move(label));
}

std::unique_ptr<StreamJoinEngine> make_engine(const EngineConfig& config) {
  // Software backends get a guarded ingress (guard/guarded_engine.h) iff
  // the guard is compiled in and enabled — a disabled guard never even
  // constructs the decorator. The cluster guards at its own router
  // ingress; hardware backends are cycle-accurate models where admission
  // control would falsify the measured design, so they stay unguarded.
  const auto maybe_guard = [&config](std::unique_ptr<StreamJoinEngine> e)
      -> std::unique_ptr<StreamJoinEngine> {
    if constexpr (guard::kEnabled) {
      if (config.guard.enabled) {
        return std::make_unique<guard::GuardedEngine>(std::move(e),
                                                      config.guard);
      }
    }
    return e;
  };
  switch (config.backend) {
    case Backend::kHwUniflow:
      return std::make_unique<HwUniflowAdapter>(config);
    case Backend::kHwBiflow:
      return std::make_unique<HwBiflowAdapter>(config);
    case Backend::kSwSplitJoin:
      return maybe_guard(std::make_unique<SwSplitJoinAdapter>(config));
    case Backend::kSwHandshake:
      return maybe_guard(std::make_unique<SwHandshakeAdapter>(config));
    case Backend::kSwBatch:
      return maybe_guard(std::make_unique<SwBatchAdapter>(config));
    case Backend::kCluster:
      return make_cluster_from_facade(config);
  }
  HAL_ASSERT_MSG(false, "unknown backend");
  return nullptr;
}

}  // namespace hal::core
