// Portable checkpoint of a software engine's windowed state.
//
// A WindowImage is what `StreamJoinEngine::snapshot()` produces and
// `restore()` consumes: the per-core sub-window contents in age order plus
// the arrival/turn cursors needed to resume tuple routing exactly where the
// producer left off. Images are backend-shaped — restore() requires the
// same backend, core count and window size — but the container itself is
// backend-agnostic so `recovery::serialize()` can frame any of them with
// one CRC32C-checked wire format (see src/recovery/checkpoint.h).
#pragma once

#include <cstdint>
#include <vector>

#include "stream/tuple.h"

namespace hal::core {

enum class Backend : std::uint8_t;  // defined in core/stream_join.h

struct WindowImage {
  Backend backend{};              // producing engine; restore must match
  std::uint32_t num_cores = 0;    // per-core layout; restore must match
  std::uint64_t window_size = 0;  // per-stream window W
  std::uint64_t epoch = 0;        // producer's epoch cursor (set by cluster)
  // Arrival/turn counters: SplitJoin's round-robin store counters and
  // BatchJoin's global arrival indices. Unused (zero) for HandshakeJoin,
  // whose routing state is fully captured by the boundary queues.
  std::uint64_t count_r = 0;
  std::uint64_t count_s = 0;
  std::uint64_t results_emitted = 0;  // cumulative emission cursor

  struct CoreState {
    std::vector<stream::Tuple> win_r;  // age order, oldest first
    std::vector<stream::Tuple> win_s;
    // kSwBatch only: per-entry arrival indices (logical-expiry cursors),
    // parallel to win_r/win_s. Empty for the other backends.
    std::vector<std::uint64_t> arr_r;
    std::vector<std::uint64_t> arr_s;
  };
  std::vector<CoreState> cores;

  // kSwHandshake only: the in-flight eviction queues between adjacent
  // cores (num_cores - 1 of them, left to right).
  struct BoundaryState {
    std::vector<stream::Tuple> r_q;
    std::vector<stream::Tuple> s_q;
  };
  std::vector<BoundaryState> boundaries;
};

}  // namespace hal::core
