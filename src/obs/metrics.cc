#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace hal::obs {

std::vector<double> exponential_buckets(double first_upper, double factor,
                                        std::size_t count) {
  HAL_CHECK(first_upper > 0.0 && factor > 1.0 && count >= 1,
            "exponential_buckets needs first_upper > 0, factor > 1, "
            "count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = first_upper;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

double HistogramSnapshot::percentile(double p) const {
  HAL_ASSERT(p >= 0.0 && p <= 100.0);
  if (count == 0) return 0.0;
  // Rank of the target sample, 1-based, rounded up (nearest-rank method).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= upper_bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward; report the
      // ladder's top edge clamped to the exact max.
      return upper_bounds.empty() ? max
                                  : std::min(max, upper_bounds.back());
    }
    const double hi = upper_bounds[i];
    const double lo = i == 0 ? std::min(min, hi) : upper_bounds[i - 1];
    const double frac = in_bucket == 0
                            ? 1.0
                            : static_cast<double>(target - cumulative) /
                                  static_cast<double>(in_bucket);
    return lo + (hi - lo) * frac;
  }
  return max;
}

const MetricSnapshot* ObsSnapshot::find(std::string_view name) const {
  const auto it =
      std::lower_bound(metrics.begin(), metrics.end(), name,
                       [](const MetricSnapshot& m, std::string_view n) {
                         return m.name < n;
                       });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

#if HAL_OBS

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    HAL_CHECK(upper_bounds_[i - 1] < upper_bounds_[i],
              "histogram bounds must be strictly increasing");
  }
}

void Histogram::add_to_extrema(double lo, double hi) noexcept {
  double cur = min_.load(std::memory_order_relaxed);
  while (lo < cur &&
         !min_.compare_exchange_weak(cur, lo, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (hi > cur &&
         !max_.compare_exchange_weak(cur, hi, std::memory_order_relaxed)) {
  }
}

void Histogram::record(double v) noexcept {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  const auto idx =
      static_cast<std::size_t>(it - upper_bounds_.begin());  // overflow ok
  add_to_extrema(v, v);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + v,
                                     std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
}

void Histogram::merge(const Histogram& other) { merge(other.snapshot()); }

void Histogram::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  HAL_CHECK(other.upper_bounds == upper_bounds_,
            "histogram merge requires identical bucket ladders");
  add_to_extrema(other.min, other.max);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.counts[i], std::memory_order_relaxed);
  }
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + other.sum,
                                     std::memory_order_relaxed)) {
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.upper_bounds = upper_bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

MetricRegistry::Entry& MetricRegistry::entry(std::string_view name,
                                             Kind kind,
                                             Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{kind, stability, {}, {}, {}})
             .first;
  } else {
    HAL_CHECK(it->second.kind == kind,
              "metric re-registered with a different kind");
    HAL_CHECK(it->second.stability == stability,
              "metric re-registered with a different stability class");
  }
  return it->second;
}

Counter& MetricRegistry::counter(std::string_view name, Stability stability) {
  Entry& e = entry(name, Kind::kCounter, stability);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricRegistry::gauge(std::string_view name, Stability stability) {
  Entry& e = entry(name, Kind::kGauge, stability);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> upper_bounds,
                                     Stability stability) {
  Entry& e = entry(name, Kind::kHistogram, stability);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    HAL_CHECK(e.histogram->upper_bounds() == upper_bounds,
              "histogram re-registered with a different bucket ladder");
  }
  return *e.histogram;
}

ObsSnapshot MetricRegistry::snapshot(std::string label) const {
  ObsSnapshot out;
  out.label = std::move(label);
  std::lock_guard<std::mutex> lock(mu_);
  out.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: sorted by name
    MetricSnapshot m;
    m.name = name;
    m.kind = e.kind;
    m.stability = e.stability;
    switch (e.kind) {
      case Kind::kCounter: m.counter_value = e.counter->value(); break;
      case Kind::kGauge: m.gauge_value = e.gauge->value(); break;
      case Kind::kHistogram: m.histogram = e.histogram->snapshot(); break;
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

std::size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

#endif  // HAL_OBS

}  // namespace hal::obs
