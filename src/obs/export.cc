#include "obs/export.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace hal::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// %.17g round-trips every double and is byte-stable for equal values.
void append_double(std::string& out, double v) {
  append_fmt(out, "%.17g", v);
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          append_fmt(out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const ObsSnapshot& snapshot, const ExportOptions& opts) {
  std::string out = "{\n  \"obs\": ";
  append_json_string(
      out, snapshot.label.empty() ? opts.default_label : snapshot.label);
  append_fmt(out, ",\n  \"deterministic_only\": %s",
             opts.include_runtime ? "false" : "true");
  out += ",\n  \"metrics\": [";
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!opts.include_runtime && m.stability == Stability::kRuntime) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, m.name);
    append_fmt(out, ", \"kind\": \"%s\", \"stability\": \"%s\"",
               to_string(m.kind), to_string(m.stability));
    switch (m.kind) {
      case Kind::kCounter:
        append_fmt(out, ", \"value\": %llu}",
                   static_cast<unsigned long long>(m.counter_value));
        break;
      case Kind::kGauge:
        out += ", \"value\": ";
        append_double(out, m.gauge_value);
        out += '}';
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = m.histogram.value();
        append_fmt(out, ", \"count\": %llu, \"sum\": ",
                   static_cast<unsigned long long>(h.count));
        append_double(out, h.sum);
        out += ", \"min\": ";
        append_double(out, h.min);
        out += ", \"max\": ";
        append_double(out, h.max);
        out += ", \"p50\": ";
        append_double(out, h.p50());
        out += ", \"p99\": ";
        append_double(out, h.p99());
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) out += ", ";
          out += "{\"le\": ";
          if (i < h.upper_bounds.size()) {
            append_double(out, h.upper_bounds[i]);
          } else {
            out += "\"inf\"";
          }
          append_fmt(out, ", \"count\": %llu}",
                     static_cast<unsigned long long>(h.counts[i]));
        }
        out += "]}";
        break;
      }
    }
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string to_csv(const ObsSnapshot& snapshot, const ExportOptions& opts) {
  std::string out = "name,kind,stability,value,count,min,max,p50,p99\n";
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!opts.include_runtime && m.stability == Stability::kRuntime) {
      continue;
    }
    // Metric names are identifier-style (no commas/quotes); write as-is.
    out += m.name;
    append_fmt(out, ",%s,%s,", to_string(m.kind), to_string(m.stability));
    switch (m.kind) {
      case Kind::kCounter:
        append_fmt(out, "%llu,,,,,",
                   static_cast<unsigned long long>(m.counter_value));
        break;
      case Kind::kGauge:
        append_double(out, m.gauge_value);
        out += ",,,,,";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot& h = m.histogram.value();
        append_double(out, h.sum);
        append_fmt(out, ",%llu,", static_cast<unsigned long long>(h.count));
        append_double(out, h.min);
        out += ',';
        append_double(out, h.max);
        out += ',';
        append_double(out, h.p50());
        out += ',';
        append_double(out, h.p99());
        break;
      }
    }
    out += '\n';
  }
  return out;
}

// --- json_lint -------------------------------------------------------------

namespace {

struct Lint {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  [[nodiscard]] bool value() {
    skip_ws();
    if (pos >= text.size()) return false;
    switch (text[pos]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  [[nodiscard]] bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }

  [[nodiscard]] bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  [[nodiscard]] bool string() {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char esc = text[pos];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos;
    }
    return false;
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool digits = false;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
      digits = true;
    }
    if (!digits) return false;
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      digits = false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        digits = true;
      }
      if (!digits) return false;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      digits = false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
        digits = true;
      }
      if (!digits) return false;
    }
    return pos > start;
  }
};

}  // namespace

bool json_lint(std::string_view text) {
  Lint lint{text};
  if (!lint.value()) return false;
  lint.skip_ws();
  return lint.pos == text.size();
}

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  return written == content.size() && closed;
}

}  // namespace hal::obs
