// hal::obs — unified metrics layer shared by every engine realization.
//
// The paper's whole exercise (Figs. 14-17) is comparing throughput,
// latency and power across hardware and software realizations of the same
// operator; this registry is the common substrate those comparisons flow
// through. Engines record into three primitive kinds:
//
//   Counter   — monotonically increasing u64 (tuples routed, matches,
//               stall spins). Lock-free; safe from any thread.
//   Gauge     — last-written double (queue high-water, F_max, power).
//   Histogram — fixed-bucket distribution with p50/p99/max (latency
//               samples, batch fill). Per-thread instances merge
//               order-independently.
//
// Every metric carries a `Stability` class: kDeterministic values must be
// byte-identical across runs with the same seed and config (cycle counts,
// match counts), while kRuntime values may vary (wall times, thread-race
// dependent queue depths). Exporters can filter on it, which is what the
// determinism snapshot tests compare.
//
// With HAL_OBS=0 every type below degenerates to an empty shell whose
// methods are inline no-ops, and the registry drops all registrations.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.h"
#include "obs/enabled.h"

namespace hal::obs {

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
enum class Stability : std::uint8_t { kDeterministic, kRuntime };

[[nodiscard]] constexpr const char* to_string(Kind k) noexcept {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Stability s) noexcept {
  return s == Stability::kDeterministic ? "deterministic" : "runtime";
}

// Latency-style bucket ladders (upper bounds; an implicit +inf bucket
// catches overflow). Exponential, so one ladder spans sub-µs FPGA results
// and multi-ms software tails.
[[nodiscard]] std::vector<double> exponential_buckets(double first_upper,
                                                      double factor,
                                                      std::size_t count);

// Point-in-time copy of one histogram, used by snapshots and by merge
// order-independence tests.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;   // sorted, strictly increasing
  std::vector<std::uint64_t> counts;  // upper_bounds.size() + 1 (overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // exact observed extrema (0 when empty)
  double max = 0.0;

  // Interpolated quantile from the bucket counts; the overflow bucket
  // reports its lower edge (we cannot interpolate past the ladder).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
};

struct MetricSnapshot {
  std::string name;
  Kind kind = Kind::kCounter;
  Stability stability = Stability::kDeterministic;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  std::optional<HistogramSnapshot> histogram;
};

// One run's worth of metrics, sorted by name. This is the unit the
// harness emits per run and the exporters serialize.
struct ObsSnapshot {
  std::string label;
  std::vector<MetricSnapshot> metrics;

  [[nodiscard]] const MetricSnapshot* find(std::string_view name) const;
};

#if HAL_OBS

class Counter {
 public:
  void inc() noexcept { add(1); }
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  // Fold-in of an externally tracked total (engine-internal u64 counters
  // published at collection time).
  void set(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  // Monotone high-water update.
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `upper_bounds` must be sorted and strictly increasing; values above
  // the last bound land in the overflow bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v) noexcept;
  // Adds `other`'s buckets into this histogram. Bucket ladders must match
  // (HAL_CHECKed). Addition commutes, so merging per-thread histograms in
  // any order yields the same snapshot.
  void merge(const Histogram& other);
  void merge(const HistogramSnapshot& other);

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    return upper_bounds_;
  }

 private:
  void add_to_extrema(double lo, double hi) noexcept;

  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/-inf sentinels make the extrema updates pure CAS loops (no racy
  // first-sample initialization); snapshot() maps empty back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Named metric store. Creation takes a mutex (cold path); updates through
// the returned references are lock-free. References stay valid for the
// registry's lifetime. Re-requesting a name returns the same instance and
// HAL_CHECKs that kind and stability agree.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view name,
                   Stability stability = Stability::kDeterministic);
  Gauge& gauge(std::string_view name,
               Stability stability = Stability::kRuntime);
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds,
                       Stability stability = Stability::kRuntime);

  // Fold-in conveniences for engines that keep raw integral counters.
  void set_counter(std::string_view name, std::uint64_t value,
                   Stability stability = Stability::kDeterministic) {
    counter(name, stability).set(value);
  }
  void set_gauge(std::string_view name, double value,
                 Stability stability = Stability::kRuntime) {
    gauge(name, stability).set(value);
  }

  [[nodiscard]] ObsSnapshot snapshot(std::string label = {}) const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct Entry {
    Kind kind;
    Stability stability;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, Kind kind, Stability stability);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

#else  // HAL_OBS == 0: every hook is an inline no-op on shared dummies.

class Counter {
 public:
  void inc() noexcept {}
  void add(std::uint64_t) noexcept {}
  void set(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(double) noexcept {}
  void set_max(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void record(double) noexcept {}
  void merge(const Histogram&) noexcept {}
  void merge(const HistogramSnapshot&) noexcept {}
  [[nodiscard]] HistogramSnapshot snapshot() const { return {}; }
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter& counter(std::string_view,
                   Stability = Stability::kDeterministic) {
    return counter_;
  }
  Gauge& gauge(std::string_view, Stability = Stability::kRuntime) {
    return gauge_;
  }
  Histogram& histogram(std::string_view, std::vector<double>,
                       Stability = Stability::kRuntime) {
    return histogram_;
  }
  void set_counter(std::string_view, std::uint64_t,
                   Stability = Stability::kDeterministic) {}
  void set_gauge(std::string_view, double,
                 Stability = Stability::kRuntime) {}
  [[nodiscard]] ObsSnapshot snapshot(std::string label = {}) const {
    ObsSnapshot s;
    s.label = std::move(label);
    return s;
  }
  [[nodiscard]] std::size_t size() const { return 0; }
  void clear() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_{{}};
};

#endif  // HAL_OBS

}  // namespace hal::obs
