// Serialization of ObsSnapshots: JSON (same shape family as the
// BENCH_*.json artifacts the benches already emit — a top-level object
// with a label key and nested arrays of flat objects) and CSV for
// spreadsheet-side regression tracking.
//
// Formatting is locale-independent and field order is fixed (snapshots
// are name-sorted, doubles print with %.17g round-trip precision), so two
// snapshots with equal contents serialize byte-identically — the property
// the determinism tests lean on.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace hal::obs {

struct ExportOptions {
  // When false, metrics with Stability::kRuntime are omitted — the
  // deterministic projection compared by the snapshot tests.
  bool include_runtime = true;
  // Label written into the JSON "obs" field when the snapshot has none.
  std::string default_label = "hal";
};

[[nodiscard]] std::string to_json(const ObsSnapshot& snapshot,
                                  const ExportOptions& opts = {});
[[nodiscard]] std::string to_csv(const ObsSnapshot& snapshot,
                                 const ExportOptions& opts = {});

// Minimal strict JSON syntax checker (objects, arrays, strings, numbers,
// bools, null; no trailing garbage). Used by tests to validate exporter
// output and the BENCH_*.json artifacts without a JSON dependency.
[[nodiscard]] bool json_lint(std::string_view text);

// Writes `content` to `path` (truncating). Returns false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace hal::obs
