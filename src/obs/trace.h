// hal::obs tracing — lightweight span/event recording.
//
// Each thread owns a fixed-capacity ring buffer of trace events; recording
// a span costs one uncontended mutex acquire plus a ring write, cheap
// enough for per-batch / per-epoch scopes (it is NOT meant for per-tuple
// hot loops — counters cover those). Rings are registered globally on
// first use and outlive their threads, so a harness can drain everything
// at exit — including spans recorded by engine worker threads that have
// already joined. When a ring wraps, the oldest events are overwritten
// (the tail of a run is what benches care about).
//
// Spans record wall-clock timestamps (steady clock, µs since process
// trace-epoch), so all trace data is Stability::kRuntime by nature and is
// never part of the deterministic snapshot comparison.
//
// With HAL_OBS=0, Span is an empty object, record/drain are no-ops, and
// no thread-local state exists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/enabled.h"

namespace hal::obs {

struct TraceEvent {
  // Static-storage name (string literal); the ring stores the pointer.
  const char* name = "";
  double start_us = 0.0;
  double duration_us = 0.0;
  std::uint32_t thread_id = 0;  // registration-order id, not an OS tid
};

#if HAL_OBS

// Records one completed event into the calling thread's ring.
void record_trace_event(const char* name, double start_us,
                        double duration_us);

// Microseconds since the process trace-epoch (first use).
[[nodiscard]] double trace_now_us();

// Collects every ring's events (all threads, including exited ones),
// clears the rings, and returns the events sorted by start time.
[[nodiscard]] std::vector<TraceEvent> drain_trace_events();

// RAII span: records [construction, destruction) under `name`.
class Span {
 public:
  explicit Span(const char* name) : name_(name), start_us_(trace_now_us()) {}
  ~Span() { record_trace_event(name_, start_us_, trace_now_us() - start_us_); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_;
};

#else

inline void record_trace_event(const char*, double, double) {}
[[nodiscard]] inline double trace_now_us() { return 0.0; }
[[nodiscard]] inline std::vector<TraceEvent> drain_trace_events() {
  return {};
}

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // HAL_OBS

// Chrome trace-viewer compatible JSON array ("displayTimeUnit": µs
// semantics: ts/dur fields are in microseconds). Defined for both build
// modes (an empty event list serializes to an empty array).
[[nodiscard]] std::string trace_to_json(const std::vector<TraceEvent>& events);

}  // namespace hal::obs
