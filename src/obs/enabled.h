// Compile-time switch for the hal::obs observability layer.
//
// Build with -DHAL_OBS=0 (CMake: -DHAL_OBS=OFF) to compile every metrics
// and tracing hook down to a no-op: the instrumented hot paths (FIFO
// high-water tracking, per-core counters, span recording) are guarded by
// `if constexpr (obs::kEnabled)` or expand to empty inline bodies, so a
// disabled build carries zero runtime and zero memory overhead. This is
// the contract that lets the figure benches (Figs. 14-17) run with
// instrumentation in the tree without perturbing the numbers they report.
//
// Kept dependency-free so headers as low as sim/fifo.h can include it.
#pragma once

#ifndef HAL_OBS
#define HAL_OBS 1
#endif

namespace hal::obs {

inline constexpr bool kEnabled = (HAL_OBS != 0);

}  // namespace hal::obs
