#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace hal::obs {

#if HAL_OBS

namespace {

constexpr std::size_t kRingCapacity = 4096;

struct TraceRing {
  explicit TraceRing(std::uint32_t id) : thread_id(id) {
    events.resize(kRingCapacity);
  }

  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t next = 0;       // write cursor
  std::size_t recorded = 0;   // total writes since last drain
  std::uint32_t thread_id;
};

struct TraceState {
  std::mutex mu;
  // Rings are never removed: a thread's events must survive its exit so
  // the harness can drain them. Bounded by the number of threads ever
  // started, which the engines keep small.
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::uint32_t next_thread_id = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives all threads
  return *s;
}

TraceRing& local_ring() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    auto r = std::make_shared<TraceRing>(s.next_thread_id++);
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

double trace_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - state().epoch)
      .count();
}

void record_trace_event(const char* name, double start_us,
                        double duration_us) {
  TraceRing& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[ring.next] = {name, start_us, duration_us, ring.thread_id};
  ring.next = (ring.next + 1) % kRingCapacity;
  ++ring.recorded;
}

std::vector<TraceEvent> drain_trace_events() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const std::size_t kept = std::min(ring->recorded, kRingCapacity);
    // Oldest surviving event sits at `next` once the ring has wrapped.
    const std::size_t start =
        ring->recorded > kRingCapacity ? ring->next : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      out.push_back(ring->events[(start + i) % kRingCapacity]);
    }
    ring->next = 0;
    ring->recorded = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

#endif  // HAL_OBS

std::string trace_to_json(const std::vector<TraceEvent>& events) {
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, "
                  "\"dur\": %.3f, \"pid\": 0, \"tid\": %u}",
                  i == 0 ? "" : ",", e.name, e.start_us, e.duration_us,
                  e.thread_id);
    out += buf;
  }
  out += "\n]";
  return out;
}

}  // namespace hal::obs
