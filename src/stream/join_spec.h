// Join operator specification, runtime-programmable as in FQP/SplitJoin.
//
// The paper stresses that the join operator of every join core can be
// re-programmed at runtime by a two-segment instruction (Fig. 12):
//   segment 1 — join parameters: number of join cores + this core's position
//   segment 2 — the join condition(s)
// We model the condition segment as a conjunction of comparator conditions
// over the two 32-bit tuple fields. The common case (and the paper's
// evaluation workload) is a single equi-join on the key. A compact 64-bit
// encoding (`encode`/`decode`) stands in for the instruction word that the
// hardware design would carry on its 64-bit data bus.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stream/tuple.h"

namespace hal::stream {

enum class CmpOp : std::uint8_t { Eq = 0, Ne, Lt, Le, Gt, Ge };

enum class Field : std::uint8_t { Key = 0, Value = 1 };

[[nodiscard]] constexpr const char* to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

// One comparator: r.<lhs> OP s.<rhs> (+ band offset on the S side).
// band != 0 expresses band joins: r.key <= s.key + band etc.
struct JoinCondition {
  Field lhs = Field::Key;
  Field rhs = Field::Key;
  CmpOp op = CmpOp::Eq;
  std::int32_t band = 0;

  [[nodiscard]] bool matches(const Tuple& r, const Tuple& s) const noexcept;

  friend bool operator==(const JoinCondition&,
                         const JoinCondition&) = default;
};

class JoinSpec {
 public:
  JoinSpec() = default;  // empty conjunction: cross product

  static JoinSpec equi_on_key() {
    JoinSpec spec;
    spec.add(JoinCondition{Field::Key, Field::Key, CmpOp::Eq, 0});
    return spec;
  }

  static JoinSpec band_on_key(std::int32_t band) {
    // |r.key - s.key| <= band, expressed as two conjuncts.
    JoinSpec spec;
    spec.add(JoinCondition{Field::Key, Field::Key, CmpOp::Le, band});
    spec.add(JoinCondition{Field::Key, Field::Key, CmpOp::Ge, -band});
    return spec;
  }

  JoinSpec& add(JoinCondition c) {
    conjuncts_.push_back(c);
    return *this;
  }

  [[nodiscard]] bool matches(const Tuple& r, const Tuple& s) const noexcept {
    for (const auto& c : conjuncts_) {
      if (!c.matches(r, s)) return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<JoinCondition>& conjuncts() const noexcept {
    return conjuncts_;
  }

  // True iff the spec is exactly key == key with no band — the workload of
  // the paper's evaluation, and the shape the batched engines' vectorized
  // key-compare kernel handles; everything else takes the generic
  // tuple-at-a-time comparator.
  [[nodiscard]] bool is_pure_key_equi() const noexcept {
    return conjuncts_.size() == 1 &&
           conjuncts_[0] == JoinCondition{Field::Key, Field::Key, CmpOp::Eq, 0};
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const JoinSpec&, const JoinSpec&) = default;

 private:
  std::vector<JoinCondition> conjuncts_;
};

// 64-bit instruction-word encoding for a single condition (the hardware
// data bus carries one condition per Operator word; multi-conjunct specs
// are sent as a sequence of words). Layout (LSB first):
//   [0:2]   CmpOp
//   [3]     lhs field
//   [4]     rhs field
//   [5:31]  reserved (zero)
//   [32:63] band as signed 32-bit
[[nodiscard]] std::uint64_t encode(const JoinCondition& c) noexcept;
[[nodiscard]] std::optional<JoinCondition> decode(std::uint64_t word) noexcept;

}  // namespace hal::stream
