#include "stream/reference_join.h"

#include <algorithm>

#include "common/assert.h"

namespace hal::stream {

ReferenceJoin::ReferenceJoin(std::size_t window_size, JoinSpec spec)
    : window_size_(window_size), spec_(std::move(spec)) {
  HAL_CHECK(window_size_ > 0, "window_size must be positive");
}

void ReferenceJoin::process(const Tuple& t, std::vector<ResultTuple>& out) {
  auto& own = t.origin == StreamId::R ? window_r_ : window_s_;
  const auto& other = t.origin == StreamId::R ? window_s_ : window_r_;

  for (const Tuple& o : other) {
    const Tuple& r = t.origin == StreamId::R ? t : o;
    const Tuple& s = t.origin == StreamId::R ? o : t;
    if (spec_.matches(r, s)) out.push_back(ResultTuple{r, s});
  }

  own.push_back(t);
  if (own.size() > window_size_) own.pop_front();
}

std::vector<ResultTuple> ReferenceJoin::process_all(
    const std::vector<Tuple>& tuples) {
  std::vector<ResultTuple> out;
  for (const Tuple& t : tuples) process(t, out);
  return out;
}

std::vector<ResultKey> normalize(const std::vector<ResultTuple>& results) {
  std::vector<ResultKey> keys;
  keys.reserve(results.size());
  for (const auto& r : results) keys.push_back(key_of(r));
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace hal::stream
