// Single-threaded reference implementation of the sliding-window stream
// join. This is the correctness oracle all four engines (hardware uni-flow,
// hardware bi-flow, software SplitJoin, software handshake join) are
// validated against.
//
// Semantics (shared by all engines in this repo, and by SplitJoin/handshake
// join in the papers): count-based sliding windows of `window_size` tuples
// per stream; a newly arriving tuple is first probed against the *opposite*
// stream's current window, then inserted into its own window, evicting the
// oldest tuple once the window is full.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::stream {

class ReferenceJoin {
 public:
  ReferenceJoin(std::size_t window_size, JoinSpec spec);

  // Processes one tuple; matches are appended to `out`.
  void process(const Tuple& t, std::vector<ResultTuple>& out);

  // Processes a batch, returning all results.
  [[nodiscard]] std::vector<ResultTuple> process_all(
      const std::vector<Tuple>& tuples);

  // Re-programs the join operator mid-stream (windows are kept, matching
  // the runtime re-programming behavior of the hardware engines).
  void set_spec(JoinSpec spec) { spec_ = std::move(spec); }

  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_size_;
  }
  [[nodiscard]] const std::deque<Tuple>& window(StreamId id) const noexcept {
    return id == StreamId::R ? window_r_ : window_s_;
  }

 private:
  std::size_t window_size_;
  JoinSpec spec_;
  std::deque<Tuple> window_r_;
  std::deque<Tuple> window_s_;
};

// Normalizes a result set for comparison: sorted vector of (r_seq, s_seq).
[[nodiscard]] std::vector<ResultKey> normalize(
    const std::vector<ResultTuple>& results);

}  // namespace hal::stream
