// Workload generators.
//
// The paper's evaluation streams 64-bit tuples joined by an equi-join
// (§V: "input streams consist of 64-bit tuples that are joined against
// each other using an equi-join"). The generators here produce such
// streams with controllable key distribution (uniform / zipf / sequential)
// and R:S interleaving, plus the domain-specific scenarios the paper's
// introduction motivates (IoT sensor feeds, algorithmic trading,
// retail/clickstream — §I, Fig. 7's Customer ⋈ Product example).
//
// All generators are deterministic given a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "stream/tuple.h"

namespace hal::stream {

enum class KeyDistribution : std::uint8_t {
  kUniform,     // uniform over [0, key_domain)
  kZipf,        // zipf(theta) over [0, key_domain): skewed hot keys
  kSequential,  // round-robin over [0, key_domain): exact match-rate control
};

struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::uint32_t key_domain = 1u << 12;
  KeyDistribution distribution = KeyDistribution::kUniform;
  double zipf_theta = 0.99;
  // Probability that the next tuple belongs to stream R (0.5 = balanced,
  // 1.0 = R-only; the paper's bi-flow bandwidth discussion uses R-only).
  double r_fraction = 0.5;
  // When true, R and S alternate deterministically instead of randomly
  // (subject to r_fraction being 0.5); useful for exact cycle accounting.
  bool deterministic_interleave = true;
};

// Produces the merged input sequence seen by a stream-join engine.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig config);

  // Next tuple of the merged R/S sequence. seq is assigned consecutively.
  [[nodiscard]] Tuple next();

  // Convenience: materialize the next n tuples.
  [[nodiscard]] std::vector<Tuple> take(std::size_t n);

  [[nodiscard]] const WorkloadConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::uint32_t next_key();

  WorkloadConfig config_;
  hal::Rng rng_;
  std::uint64_t seq_ = 0;
  std::uint64_t interleave_counter_ = 0;
  std::uint32_t sequential_next_ = 0;
  std::vector<double> zipf_cdf_;  // lazily built for kZipf
};

// --- Domain scenarios -----------------------------------------------------

// IoT sensor fusion: stream R = temperature sensors, stream S = humidity
// sensors; join on sensor_id (key), values are scaled readings. Models the
// paper's §I IoT motivation.
[[nodiscard]] WorkloadConfig iot_sensor_workload(std::uint32_t num_sensors,
                                                 std::uint64_t seed);

// Algorithmic trading: stream R = orders, stream S = quotes; join on
// instrument id. Hot instruments are zipf-skewed (fpga-ToPSS / algorithmic
// trading motivation, §II).
[[nodiscard]] WorkloadConfig trading_workload(std::uint32_t num_instruments,
                                              std::uint64_t seed);

// Retail: stream R = customer events, stream S = product events; join on
// product id (the Fig. 7 query-plan example).
[[nodiscard]] WorkloadConfig retail_workload(std::uint32_t num_products,
                                             std::uint64_t seed);

}  // namespace hal::stream
