#include "stream/tuple.h"

#include <cinttypes>
#include <cstdio>

namespace hal::stream {

std::string to_string(const Tuple& t) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s#%" PRIu64 "(key=%u,val=%u)",
                to_string(t.origin), t.seq, t.key, t.value);
  return buf;
}

std::string to_string(const ResultTuple& t) {
  return "<" + to_string(t.r) + " ⋈ " + to_string(t.s) + ">";
}

}  // namespace hal::stream
