#include "stream/generator.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace hal::stream {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), rng_(config.seed) {
  HAL_CHECK(config_.key_domain > 0, "key_domain must be positive");
  HAL_CHECK(config_.r_fraction >= 0.0 && config_.r_fraction <= 1.0,
            "r_fraction must be in [0,1]");
  if (config_.distribution == KeyDistribution::kZipf) {
    HAL_CHECK(config_.zipf_theta > 0.0, "zipf_theta must be positive");
    // Precompute the CDF once; sampling is then a binary search. Domain
    // sizes used in this repo (<= 2^20) keep this cheap.
    zipf_cdf_.resize(config_.key_domain);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < config_.key_domain; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_theta);
      zipf_cdf_[i] = sum;
    }
    for (auto& v : zipf_cdf_) v /= sum;
  }
}

std::uint32_t WorkloadGenerator::next_key() {
  switch (config_.distribution) {
    case KeyDistribution::kUniform:
      return static_cast<std::uint32_t>(rng_.next_below(config_.key_domain));
    case KeyDistribution::kZipf: {
      const double u = rng_.next_double();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      return static_cast<std::uint32_t>(it - zipf_cdf_.begin());
    }
    case KeyDistribution::kSequential: {
      const std::uint32_t k = sequential_next_;
      sequential_next_ = (sequential_next_ + 1) % config_.key_domain;
      return k;
    }
  }
  return 0;
}

Tuple WorkloadGenerator::next() {
  Tuple t;
  t.key = next_key();
  t.value = rng_.next_u32();
  t.seq = seq_++;
  if (config_.deterministic_interleave && config_.r_fraction == 0.5) {
    t.origin = (interleave_counter_++ % 2 == 0) ? StreamId::R : StreamId::S;
  } else {
    t.origin = rng_.next_bool(config_.r_fraction) ? StreamId::R : StreamId::S;
  }
  return t;
}

std::vector<Tuple> WorkloadGenerator::take(std::size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

WorkloadConfig iot_sensor_workload(std::uint32_t num_sensors,
                                   std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.key_domain = num_sensors;
  cfg.distribution = KeyDistribution::kUniform;
  cfg.r_fraction = 0.5;
  return cfg;
}

WorkloadConfig trading_workload(std::uint32_t num_instruments,
                                std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.key_domain = num_instruments;
  cfg.distribution = KeyDistribution::kZipf;
  cfg.zipf_theta = 0.99;
  cfg.r_fraction = 0.5;
  cfg.deterministic_interleave = false;
  return cfg;
}

WorkloadConfig retail_workload(std::uint32_t num_products,
                               std::uint64_t seed) {
  WorkloadConfig cfg;
  cfg.seed = seed;
  cfg.key_domain = num_products;
  cfg.distribution = KeyDistribution::kZipf;
  cfg.zipf_theta = 0.8;
  cfg.r_fraction = 0.5;
  return cfg;
}

}  // namespace hal::stream
