// Core stream data types.
//
// The paper's evaluation uses 64-bit tuples carried on a data bus with a
// 2-bit header that distinguishes "new join operator" words from tuples of
// the R or S stream (§IV, Fig. 9). We model a tuple as a 32-bit key plus a
// 32-bit value, which is exactly the 64-bit payload; `seq` and `origin` are
// simulator-side metadata used for ordering checks and result verification
// and are never part of the modeled wire format.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hal::stream {

enum class StreamId : std::uint8_t { R = 0, S = 1 };

[[nodiscard]] constexpr StreamId opposite(StreamId s) noexcept {
  return s == StreamId::R ? StreamId::S : StreamId::R;
}

[[nodiscard]] constexpr const char* to_string(StreamId s) noexcept {
  return s == StreamId::R ? "R" : "S";
}

struct Tuple {
  std::uint32_t key = 0;
  std::uint32_t value = 0;
  // Arrival index in the merged input sequence (metadata).
  std::uint64_t seq = 0;
  StreamId origin = StreamId::R;

  [[nodiscard]] std::uint64_t payload() const noexcept {
    return (static_cast<std::uint64_t>(key) << 32) | value;
  }

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

// A join result is the concatenation of the two matching input tuples; the
// paper notes the result bus is twice the input tuple width (§IV).
struct ResultTuple {
  Tuple r;
  Tuple s;

  friend bool operator==(const ResultTuple&, const ResultTuple&) = default;
};

// Canonical identity of a result for set comparison across engines that
// emit in different orders.
struct ResultKey {
  std::uint64_t r_seq;
  std::uint64_t s_seq;

  auto operator<=>(const ResultKey&) const = default;
};

[[nodiscard]] inline ResultKey key_of(const ResultTuple& t) noexcept {
  return ResultKey{t.r.seq, t.s.seq};
}

[[nodiscard]] std::string to_string(const Tuple& t);
[[nodiscard]] std::string to_string(const ResultTuple& t);

}  // namespace hal::stream
