#include "stream/tuple_batch.h"

namespace hal::stream {

std::vector<Tuple> TupleBatch::to_tuples() const {
  std::vector<Tuple> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(tuple_at(i));
  return out;
}

}  // namespace hal::stream
