#include "stream/join_spec.h"

namespace hal::stream {

namespace {

[[nodiscard]] std::uint32_t read_field(const Tuple& t, Field f) noexcept {
  return f == Field::Key ? t.key : t.value;
}

[[nodiscard]] bool compare(std::int64_t lhs, CmpOp op,
                           std::int64_t rhs) noexcept {
  switch (op) {
    case CmpOp::Eq: return lhs == rhs;
    case CmpOp::Ne: return lhs != rhs;
    case CmpOp::Lt: return lhs < rhs;
    case CmpOp::Le: return lhs <= rhs;
    case CmpOp::Gt: return lhs > rhs;
    case CmpOp::Ge: return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool JoinCondition::matches(const Tuple& r, const Tuple& s) const noexcept {
  const auto lhs_v = static_cast<std::int64_t>(read_field(r, lhs));
  const auto rhs_v = static_cast<std::int64_t>(read_field(s, rhs)) +
                     static_cast<std::int64_t>(band);
  return compare(lhs_v, op, rhs_v);
}

std::string JoinSpec::to_string() const {
  if (conjuncts_.empty()) return "true (cross product)";
  std::string out;
  for (std::size_t i = 0; i < conjuncts_.size(); ++i) {
    const auto& c = conjuncts_[i];
    if (i > 0) out += " AND ";
    out += "r.";
    out += (c.lhs == Field::Key ? "key" : "value");
    out += ' ';
    out += hal::stream::to_string(c.op);
    out += " s.";
    out += (c.rhs == Field::Key ? "key" : "value");
    if (c.band != 0) {
      out += (c.band > 0 ? "+" : "");
      out += std::to_string(c.band);
    }
  }
  return out;
}

std::uint64_t encode(const JoinCondition& c) noexcept {
  std::uint64_t word = 0;
  word |= static_cast<std::uint64_t>(c.op) & 0x7u;
  word |= (static_cast<std::uint64_t>(c.lhs) & 0x1u) << 3;
  word |= (static_cast<std::uint64_t>(c.rhs) & 0x1u) << 4;
  word |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.band))
          << 32;
  return word;
}

std::optional<JoinCondition> decode(std::uint64_t word) noexcept {
  const auto op_raw = static_cast<std::uint8_t>(word & 0x7u);
  if (op_raw > static_cast<std::uint8_t>(CmpOp::Ge)) return std::nullopt;
  if ((word & 0xffffffe0ULL) != 0) return std::nullopt;  // reserved bits
  JoinCondition c;
  c.op = static_cast<CmpOp>(op_raw);
  c.lhs = static_cast<Field>((word >> 3) & 0x1u);
  c.rhs = static_cast<Field>((word >> 4) & 0x1u);
  c.band = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(word >> 32));
  return c;
}

}  // namespace hal::stream
