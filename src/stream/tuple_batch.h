// Structure-of-arrays tuple batch: the unit of the batched data path.
//
// The software engines' per-tuple dispatch cost (one virtual call, one
// SPSC push, one cache line of `Tuple` per element) is what separates them
// from the hardware pipelines, where a new tuple enters every clock. A
// TupleBatch amortizes that cost: the key of every tuple sits in one
// contiguous `uint32_t` array so a probe kernel can scan it with
// auto-vectorized compares, while the full tuples ride alongside for
// result materialization. Batches are views of a moment in the input
// stream — they preserve arrival order, so a batched engine that consumes
// a batch element-by-element is observationally identical to the
// tuple-at-a-time path (the correctness oracle for differential tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/assert.h"
#include "stream/tuple.h"

namespace hal::stream {

class TupleBatch {
 public:
  TupleBatch() = default;

  // Build a batch from a contiguous run of tuples (arrival order kept).
  static TupleBatch from(std::span<const Tuple> tuples) {
    TupleBatch b;
    b.reserve(tuples.size());
    for (const Tuple& t : tuples) b.push_back(t);
    return b;
  }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    values_.reserve(n);
    seqs_.reserve(n);
    origins_.reserve(n);
  }

  void push_back(const Tuple& t) {
    keys_.push_back(t.key);
    values_.push_back(t.value);
    seqs_.push_back(t.seq);
    origins_.push_back(t.origin);
  }

  void clear() noexcept {
    keys_.clear();
    values_.clear();
    seqs_.clear();
    origins_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  // The contiguous key lane the vectorized probe kernels scan.
  [[nodiscard]] const std::uint32_t* keys() const noexcept {
    return keys_.data();
  }

  [[nodiscard]] std::uint32_t key_at(std::size_t i) const noexcept {
    HAL_ASSERT(i < keys_.size());
    return keys_[i];
  }

  [[nodiscard]] StreamId origin_at(std::size_t i) const noexcept {
    HAL_ASSERT(i < origins_.size());
    return origins_[i];
  }

  // Reassemble element i as a full Tuple (result materialization, and the
  // bridge back to any tuple-at-a-time API).
  [[nodiscard]] Tuple tuple_at(std::size_t i) const noexcept {
    HAL_ASSERT(i < keys_.size());
    return Tuple{keys_[i], values_[i], seqs_[i], origins_[i]};
  }

  // Materialize the whole batch back to AoS form.
  [[nodiscard]] std::vector<Tuple> to_tuples() const;

 private:
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint32_t> values_;
  std::vector<std::uint64_t> seqs_;
  std::vector<StreamId> origins_;
};

}  // namespace hal::stream
