// Indexed sliding window over fqp::Records — the runtime state unit of
// hal::serve's SharedWindowStore.
//
// Mirrors sw::IndexedSoaWindow (circular slot store + dense uint32 key
// lane + KeyBucketIndex, probes through the hal::simd kernels) but holds
// multi-attribute FQP records keyed by one schema field: the join field
// of the queries sharing the window. All queries over the same (input
// sub-plan, join field, window size) triple probe this one window instead
// of N private copies — the state-sharing half of the Rete-like global
// plan (plan-time sharing is fqp::share_common_subplans).
//
// Probe paths match sw/probe_path.h: kIndexed emits matches in bucket
// order, kScan in age order. Windowed equi-join outputs are order-free
// multisets, so both are observationally identical; collect_equal_scan_
// oracle is the plain scalar loop the serve differential tests compare
// against. Not thread-safe (the serve engine is single-threaded by
// design, like the topology interpreter it replaces).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "fqp/record.h"
#include "simd/probe.h"
#include "sw/key_bucket_index.h"
#include "sw/probe_path.h"

namespace hal::serve {

class RecordWindow {
 public:
  RecordWindow(std::size_t capacity, std::size_t key_field,
               sw::ProbePath path = sw::ProbePath::kIndexed)
      : slots_(capacity),
        keys_(capacity, 0),
        index_(capacity),
        scratch_(capacity, 0),
        key_field_(key_field),
        path_(path) {
    HAL_CHECK(capacity > 0, "record window capacity must be positive");
  }

  void insert(const fqp::Record& r) {
    const std::uint32_t key = r.at(key_field_);
    const std::uint32_t slot = static_cast<std::uint32_t>(write_pos_);
    if (size_ == slots_.size()) {
      index_.remove(keys_[write_pos_], slot);
    }
    slots_[write_pos_] = r;
    keys_[write_pos_] = key;
    index_.add(key, slot);
    write_pos_ = (write_pos_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t key_field() const noexcept { return key_field_; }
  [[nodiscard]] sw::ProbePath path() const noexcept { return path_; }

  // Prefetch hint for a probe of `key` a few arrivals ahead (bucket
  // lanes; no-op in the HAL_SIMD=OFF build).
  void prefetch_equal(std::uint32_t key) const noexcept {
    if (path_ == sw::ProbePath::kIndexed) index_.prefetch(key);
  }

  // Once-per-arrival insert gate for windows shared by several join
  // nodes: the first consumer to evaluate claims the arrival (tick > 0,
  // strictly increasing) and performs the inserts; later consumers see
  // false and skip — their producing child's output is identical, so the
  // inserts already happened.
  bool claim_arrival(std::uint64_t tick) noexcept {
    if (tick == last_arrival_tick_) return false;
    last_arrival_tick_ = tick;
    return true;
  }

  // Equi-probe: emit(record) for every resident whose key field equals
  // `key`. Returns the match count.
  template <typename Emit>
  std::size_t collect_equal(std::uint32_t key, Emit&& emit) const {
    if (path_ == sw::ProbePath::kIndexed) {
      const std::size_t b = index_.bucket_of(key);
      const std::size_t hits =
          simd::probe_collect(index_.bucket_keys(b), index_.bucket_size(b),
                              key, scratch_.data());
      const std::uint32_t* bucket_slots = index_.bucket_slots(b);
      for (std::size_t j = 0; j < hits; ++j) {
        emit(slots_[bucket_slots[scratch_[j]]]);
      }
      return hits;
    }
    const std::size_t hits =
        simd::probe_collect(keys_.data(), size_, key, scratch_.data());
    for (std::size_t j = 0; j < hits; ++j) emit(slots_[scratch_[j]]);
    return hits;
  }

  // Scalar scan ground truth, untouched by ProbePath and ISA dispatch.
  template <typename Emit>
  std::size_t collect_equal_scan_oracle(std::uint32_t key,
                                        Emit&& emit) const {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      if (keys_[i] == key) {
        ++hits;
        emit(slots_[i]);
      }
    }
    return hits;
  }

 private:
  std::vector<fqp::Record> slots_;
  std::vector<std::uint32_t> keys_;  // keys_[i] = slots_[i].at(key_field_)
  sw::KeyBucketIndex index_;
  mutable std::vector<std::uint32_t> scratch_;
  std::size_t key_field_;
  std::size_t write_pos_ = 0;
  std::size_t size_ = 0;
  std::uint64_t last_arrival_tick_ = 0;
  sw::ProbePath path_;
};

}  // namespace hal::serve
