// ClusterTenantService — multi-tenant serving over the sharded cluster
// runtime (the fabric-level tier of hal::serve; the record-level tier is
// serve/serve_engine.h).
//
// Operator sharing taken to its extreme: every tenant subscribes to ONE
// supervised cluster equi-join — the paper's case-study operator — so
// the (R, S, W) window state, the partitioned probe work, the transport
// and the recovery machinery are all amortized across the whole tenant
// population. A tenant is a residual MatchFilter over the shared match
// stream plus an admission floor:
//
//   * add_tenant()/remove_tenant() queue; both take effect at the next
//     process() barrier, where the engine is quiescent (the same freeze
//     point recovery checkpoints and elastic migrations use).
//   * A tenant installed at floor F delivers exactly the matches whose
//     newest participant has seq > F: every result the merger emits in
//     an epoch is probed by a tuple of that epoch, so epoch-granular
//     install/remove is seq-exact. The differential suite exploits this:
//     a hot-added tenant's output equals the fixed-tenant-set oracle's
//     output filtered to seq > F — byte-identical, chaos kills included,
//     because the underlying supervised cluster is byte-identical to the
//     fault-free reference.
//
// process() runs on one thread, like ClusterEngine::process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_engine.h"
#include "obs/metrics.h"
#include "stream/join_spec.h"
#include "stream/tuple.h"

namespace hal::serve {

using TenantId = std::uint32_t;

// Conjunction of comparator conditions over a match pair's value fields
// (empty = pass-through). The cluster-level analogue of a residual
// selection OP-Block downstream of the shared join.
struct MatchFilter {
  struct Cond {
    stream::StreamId side = stream::StreamId::R;
    stream::CmpOp op = stream::CmpOp::Eq;
    std::uint32_t operand = 0;
  };
  std::vector<Cond> conds;

  MatchFilter& where_r(stream::CmpOp op, std::uint32_t operand) {
    conds.push_back(Cond{stream::StreamId::R, op, operand});
    return *this;
  }
  MatchFilter& where_s(stream::CmpOp op, std::uint32_t operand) {
    conds.push_back(Cond{stream::StreamId::S, op, operand});
    return *this;
  }

  [[nodiscard]] bool matches(const stream::ResultTuple& t) const noexcept;
};

struct ClusterTenantReport {
  TenantId id = 0;
  std::string name;
  bool live = false;
  std::uint64_t install_floor = 0;  // tuples fed before install
  std::uint64_t remove_floor = 0;   // tuples fed before removal (live: 0)
  std::uint64_t matches = 0;        // delivered results
};

class ClusterTenantService {
 public:
  explicit ClusterTenantService(const cluster::ClusterConfig& cfg);

  // Queued; installed at the next process() barrier.
  TenantId add_tenant(std::string name, MatchFilter filter);
  // Queued; the tenant stops receiving results from the next barrier on.
  // False for unknown / already-removed ids.
  bool remove_tenant(TenantId id);

  // One epoch: apply pending adds/removes, drive the cluster, fan the
  // epoch's merged results out to the live tenants.
  core::RunReport process(const std::vector<stream::Tuple>& tuples);

  [[nodiscard]] const std::vector<stream::ResultTuple>& output(
      TenantId id) const;
  [[nodiscard]] const ClusterTenantReport& tenant(TenantId id) const;
  [[nodiscard]] std::vector<ClusterTenantReport> report() const;
  [[nodiscard]] std::uint64_t tuples_fed() const noexcept {
    return tuples_fed_;
  }

  [[nodiscard]] cluster::ClusterEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const cluster::ClusterEngine& engine() const noexcept {
    return engine_;
  }

  // Cluster metrics plus the deterministic per-tenant delivery tallies.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  struct TenantRt {
    ClusterTenantReport rep;
    MatchFilter filter;
    std::vector<stream::ResultTuple> outputs;
  };

  cluster::ClusterEngine engine_;
  std::vector<TenantRt> tenants_;        // indexed by TenantId
  std::vector<TenantId> pending_add_;    // ids staged for the next barrier
  std::vector<TenantId> pending_remove_;
  std::uint64_t tuples_fed_ = 0;
};

}  // namespace hal::serve
