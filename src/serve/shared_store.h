// SharedWindowStore — refcounted registry of live RecordWindows, the
// runtime-state half of multi-query sharing.
//
// fqp::share_common_subplans (and the serve engine's live
// PlanCanonicalizer) collapse structurally equal sub-plans to one DAG
// node; this store collapses the *window state* those nodes carry, so N
// tenant queries over the same (input sub-plan, join field, window size)
// probe one indexed window instead of keeping N copies. It also carries
// the hot-add warmth guarantee: a query submitted mid-run that acquires
// an already-live key starts against the warm window — its results from
// the install barrier onward are byte-identical to a query that was in
// the fixed set from the start.
//
// Sharing granularity (and why it is exact):
//   * Left-side windows are keyed by the *producing child* node — two
//     different joins with the same (left child, left field, window)
//     share one window. Sound because a left window only ever ingests
//     that child's per-arrival output (identical no matter which
//     consumer inserts first; RecordWindow::claim_arrival makes the
//     insert once-per-arrival) and is only probed by right-phase
//     arrivals, which by the interpreter's semantics must see the
//     current arrival's left records — always true once any consumer
//     ran its left phase, which each join does before its own right
//     phase.
//   * Right-side windows are keyed by the *join node itself*. Left-phase
//     probes must see the right window as of the previous arrival
//     (pre-insert snapshot); if two distinct joins shared one right
//     window, whichever evaluated first would insert — and possibly
//     evict — records the other's left phase must not / must still see.
//     Distinct join nodes therefore keep private right windows; queries
//     whose joins canonicalize to the *same* node still share it (the
//     node is evaluated once per arrival for all of them).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>

#include "common/assert.h"
#include "fqp/query.h"
#include "serve/record_window.h"

namespace hal::serve {

struct WindowKey {
  // Left side: the producing child node. Right side: the join node.
  const fqp::PlanNode* scope = nullptr;
  std::size_t field = 0;
  std::size_t window = 0;
  bool right_side = false;

  friend bool operator<(const WindowKey& a, const WindowKey& b) noexcept {
    return std::tie(a.scope, a.field, a.window, a.right_side) <
           std::tie(b.scope, b.field, b.window, b.right_side);
  }
};

class SharedWindowStore {
 public:
  // Returns the window for `key`, creating it cold if absent; bumps the
  // refcount either way. An acquire that lands on a live window is a
  // "shared hit" — the caller inherits warm state.
  std::shared_ptr<RecordWindow> acquire(const WindowKey& key,
                                        sw::ProbePath path) {
    ++acquires_;
    auto& entry = entries_[key];
    if (!entry.window) {
      entry.window = std::make_shared<RecordWindow>(key.window, key.field,
                                                    path);
      ++created_;
    } else {
      ++shared_hits_;
    }
    ++entry.refs;
    return entry.window;
  }

  // Drops one reference; the window (and its state) is destroyed at zero,
  // so a later re-acquire starts cold.
  void release(const WindowKey& key) {
    const auto it = entries_.find(key);
    HAL_CHECK(it != entries_.end() && it->second.refs > 0,
              "release of a window that is not held");
    if (--it->second.refs == 0) entries_.erase(it);
  }

  [[nodiscard]] std::size_t live() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t created() const noexcept { return created_; }
  [[nodiscard]] std::uint64_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::uint64_t shared_hits() const noexcept {
    return shared_hits_;
  }
  [[nodiscard]] std::size_t resident_records() const noexcept {
    std::size_t total = 0;
    for (const auto& [key, entry] : entries_) total += entry.window->size();
    return total;
  }

 private:
  struct Entry {
    std::shared_ptr<RecordWindow> window;
    std::uint32_t refs = 0;
  };

  std::map<WindowKey, Entry> entries_;
  std::uint64_t created_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t shared_hits_ = 0;
};

}  // namespace hal::serve
