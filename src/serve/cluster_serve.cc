#include "serve/cluster_serve.h"

#include <algorithm>

#include "common/assert.h"

namespace hal::serve {

namespace {

bool cmp(std::uint32_t lhs, stream::CmpOp op, std::uint32_t rhs) noexcept {
  switch (op) {
    case stream::CmpOp::Eq: return lhs == rhs;
    case stream::CmpOp::Ne: return lhs != rhs;
    case stream::CmpOp::Lt: return lhs < rhs;
    case stream::CmpOp::Le: return lhs <= rhs;
    case stream::CmpOp::Gt: return lhs > rhs;
    case stream::CmpOp::Ge: return lhs >= rhs;
  }
  return false;
}

}  // namespace

bool MatchFilter::matches(const stream::ResultTuple& t) const noexcept {
  for (const Cond& c : conds) {
    const std::uint32_t v =
        c.side == stream::StreamId::R ? t.r.value : t.s.value;
    if (!cmp(v, c.op, c.operand)) return false;
  }
  return true;
}

ClusterTenantService::ClusterTenantService(const cluster::ClusterConfig& cfg)
    : engine_(cfg) {}

TenantId ClusterTenantService::add_tenant(std::string name,
                                          MatchFilter filter) {
  const TenantId id = static_cast<TenantId>(tenants_.size());
  TenantRt rt;
  rt.rep.id = id;
  rt.rep.name = std::move(name);
  rt.filter = std::move(filter);
  tenants_.push_back(std::move(rt));
  pending_add_.push_back(id);
  return id;
}

bool ClusterTenantService::remove_tenant(TenantId id) {
  if (id >= tenants_.size()) return false;
  const bool pending =
      std::find(pending_add_.begin(), pending_add_.end(), id) !=
      pending_add_.end();
  if (!tenants_[id].rep.live && !pending) return false;
  if (std::find(pending_remove_.begin(), pending_remove_.end(), id) !=
      pending_remove_.end()) {
    return false;
  }
  pending_remove_.push_back(id);
  return true;
}

core::RunReport ClusterTenantService::process(
    const std::vector<stream::Tuple>& tuples) {
  // Epoch barrier: the engine is quiescent between process() calls, so
  // the floors recorded here are exact seq boundaries for delivery.
  for (const TenantId id : pending_remove_) {
    TenantRt& t = tenants_[id];
    pending_add_.erase(
        std::remove(pending_add_.begin(), pending_add_.end(), id),
        pending_add_.end());
    if (t.rep.live) {
      t.rep.live = false;
      t.rep.remove_floor = tuples_fed_;
    } else {
      // Added and removed between two epochs: never served.
      t.rep.install_floor = tuples_fed_;
      t.rep.remove_floor = tuples_fed_;
    }
  }
  pending_remove_.clear();
  for (const TenantId id : pending_add_) {
    TenantRt& t = tenants_[id];
    t.rep.live = true;
    t.rep.install_floor = tuples_fed_;
  }
  pending_add_.clear();

  core::RunReport rep = engine_.process(tuples);
  tuples_fed_ += tuples.size();

  const std::vector<stream::ResultTuple> results = engine_.take_results();
  for (TenantRt& t : tenants_) {
    if (!t.rep.live) continue;
    for (const stream::ResultTuple& r : results) {
      if (t.filter.matches(r)) {
        t.outputs.push_back(r);
        ++t.rep.matches;
      }
    }
  }
  return rep;
}

const std::vector<stream::ResultTuple>& ClusterTenantService::output(
    TenantId id) const {
  HAL_CHECK(id < tenants_.size(), "unknown tenant id");
  return tenants_[id].outputs;
}

const ClusterTenantReport& ClusterTenantService::tenant(TenantId id) const {
  HAL_CHECK(id < tenants_.size(), "unknown tenant id");
  return tenants_[id].rep;
}

std::vector<ClusterTenantReport> ClusterTenantService::report() const {
  std::vector<ClusterTenantReport> out;
  out.reserve(tenants_.size());
  for (const TenantRt& t : tenants_) out.push_back(t.rep);
  return out;
}

void ClusterTenantService::collect_metrics(obs::MetricRegistry& registry,
                                           const std::string& prefix) const {
  engine_.collect_metrics(registry, prefix + "cluster.");
  registry.set_counter(prefix + "tenants", tenants_.size());
  for (const TenantRt& t : tenants_) {
    const std::string tp = prefix + "tenant." + t.rep.name + ".";
    registry.set_counter(tp + "live", t.rep.live ? 1 : 0);
    registry.set_counter(tp + "matches", t.rep.matches);
    registry.set_counter(tp + "install_floor", t.rep.install_floor);
  }
}

}  // namespace hal::serve
