// hal::serve — multi-tenant continuous-query serving over the FQP layer.
//
// The paper's FQP fabric is programmed once and then serves many queries
// concurrently, with new queries installed in microseconds rather than
// re-synthesized (§II, Fig. 6). This subsystem models the serving layer
// that sits on top of that capability:
//
//   * One Rete-like global plan. Submitted plans are interned through a
//     long-lived fqp::PlanCanonicalizer, so structurally equal sub-plans
//     — across tenants, across time — collapse to one DAG node that is
//     evaluated once per arrival (the memoized fan-out of
//     fqp::PlanInterpreter, here with indexed windows).
//   * Shared runtime state. Join windows live in a SharedWindowStore:
//     N queries over the same (input sub-plan, join field, window size)
//     probe ONE RecordWindow (KeyBucketIndex + hal::simd probes) instead
//     of N copies. A query hot-added mid-run inherits the warm window.
//   * Live lifecycle at the epoch barrier. submit()/cancel() only queue;
//     installs and removals take effect at the start of the next
//     process_epoch() call — the engine is quiescent there, the same
//     freeze point the elastic migration protocol uses. From its install
//     barrier onward a hot-added query's outputs are byte-identical (as
//     multisets) to the same query running in a fixed set since epoch 0.
//   * Admission control and quotas. submit() prices the query's
//     *marginal* cost with fqp::estimate_marginal_cost — a query sharing
//     a warm prefix is charged only for its private residual operators —
//     and rejects it when the fabric capacity or the tenant's estimate
//     quota would be exceeded. At runtime, measured per-tenant work
//     (operator evaluations, shared nodes split across their active
//     consumers) feeds a token-debt regulator: a tenant that overruns
//     max_ops_per_epoch is throttled at the next barrier — its private
//     operators stop evaluating and its deliveries are shed — until the
//     debt drains. Shared nodes keep running for the other tenants, so
//     an over-quota tenant cannot degrade its neighbors.
//
// Single-threaded by design (the record-level tier; the sharded
// cluster-level tier is serve/cluster_serve.h). Callers assign Record::seq
// (tests and benches stamp the global arrival index); the engine never
// rewrites it, so oracle comparisons are exact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fqp/cost.h"
#include "fqp/multi_query.h"
#include "fqp/query.h"
#include "obs/metrics.h"
#include "serve/shared_store.h"
#include "sw/probe_path.h"

namespace hal::serve {

using QueryId = std::uint64_t;

struct Arrival {
  std::string stream;
  fqp::Record record;
};

struct ServeConfig {
  // Fabric-wide admission budget in estimated ops/tuple; 0 = unlimited.
  double capacity_ops_per_tuple = 0.0;
  fqp::CostParams cost;
  sw::ProbePath probe = sw::ProbePath::kIndexed;
  // Keep per-query result records (tests / small serves). Off, only the
  // per-query and per-tenant counts are maintained (benches).
  bool collect_outputs = true;
};

struct TenantQuota {
  // Admission-time cap on the tenant's aggregate *estimated* marginal
  // ops/tuple; 0 = unlimited.
  double max_estimated_ops_per_tuple = 0.0;
  // Runtime cap on measured operator evaluations charged to the tenant
  // per epoch; overruns accumulate as debt and throttle the tenant at
  // the next barrier until repaid. 0 = unlimited.
  double max_ops_per_epoch = 0.0;
};

enum class QueryState : std::uint8_t {
  kAdmitted,          // accepted; installs at the next epoch barrier
  kRunning,
  kRejectedCapacity,  // fabric estimate budget exhausted
  kRejectedQuota,     // tenant estimate quota exhausted
  kCancelled,
};

[[nodiscard]] const char* to_string(QueryState s) noexcept;

struct QueryInfo {
  QueryId id = 0;
  std::string tenant;
  QueryState state = QueryState::kAdmitted;
  // Marginal estimated ops/tuple charged to this query (at admission;
  // re-attributed in install order at every barrier).
  double marginal_ops_per_tuple = 0.0;
  std::uint64_t results = 0;
};

struct TenantReport {
  std::string name;
  std::uint32_t submitted = 0;
  std::uint32_t admitted = 0;
  std::uint32_t rejected = 0;
  std::uint32_t cancelled = 0;
  std::uint32_t running = 0;
  double estimated_ops_per_tuple = 0.0;  // current aggregate estimate
  double measured_ops = 0.0;             // charged operator evaluations
  std::uint64_t results = 0;
  std::uint64_t throttled_epochs = 0;
  // query-arrivals shed while throttled (one per running query per
  // arrival).
  std::uint64_t shed_arrivals = 0;
};

struct ServeReport {
  std::uint64_t epochs = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t results = 0;
  std::uint64_t ops = 0;  // operator evaluation work units, fabric-wide
  std::uint32_t queries_running = 0;
  std::uint64_t nodes_live = 0;  // canonical DAG nodes installed
  // SharedWindowStore:
  std::uint64_t windows_live = 0;
  std::uint64_t windows_created = 0;
  std::uint64_t window_acquires = 0;
  std::uint64_t window_shared_hits = 0;
  std::uint64_t resident_records = 0;
  double estimated_ops_per_tuple = 0.0;
  double capacity_ops_per_tuple = 0.0;
  std::vector<TenantReport> tenants;  // sorted by name
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig cfg = {});

  // Prices and decides admission immediately (so capacity accounting is
  // submission-ordered); an admitted query installs at the next barrier.
  QueryId submit(const std::string& tenant, const fqp::Query& query);
  // Queued; takes effect at the next barrier. False if the query cannot
  // be cancelled (unknown id, rejected, or already cancelled).
  bool cancel(QueryId id);
  void set_quota(const std::string& tenant, const TenantQuota& quota);

  // One epoch: barrier (cancels, installs, re-pricing, throttle flags),
  // then the arrivals in order. Returns results delivered this epoch.
  std::uint64_t process_epoch(const std::vector<Arrival>& arrivals);

  [[nodiscard]] const QueryInfo& info(QueryId id) const;
  [[nodiscard]] QueryState state(QueryId id) const { return info(id).state; }
  // Delivered results (empty unless cfg.collect_outputs).
  [[nodiscard]] const std::vector<fqp::Record>& output(QueryId id) const;
  void clear_outputs();

  [[nodiscard]] ServeReport report() const;
  // Deterministic serving tallies (arrivals, results, ops, sharing
  // stats, per-tenant counts) folded into the registry.
  void collect_metrics(obs::MetricRegistry& registry,
                       const std::string& prefix) const;

 private:
  struct NodeRt {
    fqp::PlanPtr plan;           // keeps the canonical node alive
    std::uint32_t refs = 0;      // running queries whose DAG contains it
    std::vector<QueryId> consumers;
    std::uint32_t active_consumers = 0;  // non-throttled, this epoch
    // kJoin only:
    std::shared_ptr<RecordWindow> left_win;
    std::shared_ptr<RecordWindow> right_win;
  };

  struct QueryRt {
    QueryInfo info;
    fqp::Query query;  // canonical root
    std::vector<fqp::Record> outputs;
  };

  struct TenantRt {
    TenantQuota quota;
    TenantReport rep;
    double epoch_ops = 0.0;
    double debt = 0.0;
    bool throttled = false;
  };

  void barrier();
  void install(QueryRt& q);
  void uninstall(QueryRt& q);
  // Walks q's canonical DAG, visiting every node once.
  template <typename Fn>
  void for_each_node(const QueryRt& q, Fn&& fn) const;

  const std::vector<fqp::Record>& evaluate(const fqp::PlanNode* node,
                                           const std::string& stream,
                                           const fqp::Record& r);
  void charge(const NodeRt& rt, double work);

  ServeConfig cfg_;
  fqp::PlanCanonicalizer canon_;
  SharedWindowStore store_;
  std::map<QueryId, QueryRt> queries_;
  std::vector<QueryId> running_;  // install order
  std::vector<QueryId> pending_install_;
  std::vector<QueryId> pending_cancel_;
  std::map<const fqp::PlanNode*, NodeRt> nodes_;
  std::map<std::string, TenantRt> tenants_;
  // Marginal-pricing state (rebuilt from the live set at each barrier).
  std::map<const fqp::PlanNode*, double> priced_;
  double total_estimated_ = 0.0;

  std::map<const fqp::PlanNode*, std::vector<fqp::Record>> memo_;
  QueryId next_id_ = 1;
  std::uint64_t tick_ = 0;  // arrival counter (window insert claims)
  std::uint64_t epochs_ = 0;
  std::uint64_t arrivals_ = 0;
  std::uint64_t results_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace hal::serve
