#include "serve/serve_engine.h"

#include <algorithm>

#include "common/assert.h"

namespace hal::serve {

namespace {

// Join output record, matching fqp::PlanInterpreter byte for byte.
fqp::Record joined_record(const fqp::Record& l, const fqp::Record& r) {
  fqp::Record joined;
  joined.seq = std::max(l.seq, r.seq);
  joined.fields = l.fields;
  joined.fields.insert(joined.fields.end(), r.fields.begin(), r.fields.end());
  return joined;
}

}  // namespace

const char* to_string(QueryState s) noexcept {
  switch (s) {
    case QueryState::kAdmitted: return "admitted";
    case QueryState::kRunning: return "running";
    case QueryState::kRejectedCapacity: return "rejected-capacity";
    case QueryState::kRejectedQuota: return "rejected-quota";
    case QueryState::kCancelled: return "cancelled";
  }
  return "?";
}

ServeEngine::ServeEngine(ServeConfig cfg) : cfg_(cfg) {}

template <typename Fn>
void ServeEngine::for_each_node(const QueryRt& q, Fn&& fn) const {
  std::vector<const fqp::PlanNode*> seen;
  std::vector<fqp::PlanPtr> stack{q.query.root};
  while (!stack.empty()) {
    fqp::PlanPtr node = std::move(stack.back());
    stack.pop_back();
    if (std::find(seen.begin(), seen.end(), node.get()) != seen.end()) {
      continue;
    }
    seen.push_back(node.get());
    if (node->left) stack.push_back(node->left);
    if (node->right) stack.push_back(node->right);
    fn(node);
  }
}

QueryId ServeEngine::submit(const std::string& tenant,
                            const fqp::Query& query) {
  HAL_CHECK(query.root != nullptr, "submit of an empty plan");
  TenantRt& t = tenants_[tenant];
  t.rep.name = tenant;
  ++t.rep.submitted;

  const QueryId id = next_id_++;
  QueryRt rt;
  rt.info.id = id;
  rt.info.tenant = tenant;
  // Intern onto the running global plan: structurally equal sub-plans —
  // including whole plans another tenant already runs — collapse to the
  // live canonical nodes.
  rt.query = fqp::Query{canon_.canonical(query.root), query.output_name};

  // Price the marginal cost against a copy of the live pricing so a
  // rejected submit leaves the books untouched (and a resubmit is priced
  // the same way).
  auto priced = priced_;
  const fqp::CostEstimate est =
      fqp::estimate_marginal_cost(*rt.query.root, priced, cfg_.cost);
  rt.info.marginal_ops_per_tuple = est.ops_per_tuple;

  if (cfg_.capacity_ops_per_tuple > 0.0 &&
      total_estimated_ + est.ops_per_tuple > cfg_.capacity_ops_per_tuple) {
    rt.info.state = QueryState::kRejectedCapacity;
    ++t.rep.rejected;
  } else if (t.quota.max_estimated_ops_per_tuple > 0.0 &&
             t.rep.estimated_ops_per_tuple + est.ops_per_tuple >
                 t.quota.max_estimated_ops_per_tuple) {
    rt.info.state = QueryState::kRejectedQuota;
    ++t.rep.rejected;
  } else {
    rt.info.state = QueryState::kAdmitted;
    priced_ = std::move(priced);
    total_estimated_ += est.ops_per_tuple;
    t.rep.estimated_ops_per_tuple += est.ops_per_tuple;
    ++t.rep.admitted;
    pending_install_.push_back(id);
  }
  queries_.emplace(id, std::move(rt));
  return id;
}

bool ServeEngine::cancel(QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  const QueryState s = it->second.info.state;
  if (s != QueryState::kAdmitted && s != QueryState::kRunning) return false;
  if (std::find(pending_cancel_.begin(), pending_cancel_.end(), id) !=
      pending_cancel_.end()) {
    return false;
  }
  pending_cancel_.push_back(id);
  return true;
}

void ServeEngine::set_quota(const std::string& tenant,
                            const TenantQuota& quota) {
  TenantRt& t = tenants_[tenant];
  t.rep.name = tenant;
  t.quota = quota;
}

void ServeEngine::install(QueryRt& q) {
  for_each_node(q, [&](const fqp::PlanPtr& node) {
    NodeRt& rt = nodes_[node.get()];
    if (rt.refs == 0) {
      rt.plan = node;
      if (node->kind == fqp::PlanNode::Kind::kJoin) {
        const auto& instr = std::get<fqp::JoinInstruction>(node->instr);
        rt.left_win = store_.acquire(
            WindowKey{node->left.get(), instr.left_field, instr.window_size,
                      /*right_side=*/false},
            cfg_.probe);
        rt.right_win = store_.acquire(
            WindowKey{node.get(), instr.right_field, instr.window_size,
                      /*right_side=*/true},
            cfg_.probe);
      }
    }
    ++rt.refs;
  });
  q.info.state = QueryState::kRunning;
  running_.push_back(q.info.id);
}

void ServeEngine::uninstall(QueryRt& q) {
  for_each_node(q, [&](const fqp::PlanPtr& node) {
    const auto it = nodes_.find(node.get());
    HAL_CHECK(it != nodes_.end() && it->second.refs > 0,
              "uninstall of a query whose nodes are not installed");
    if (--it->second.refs == 0) {
      if (node->kind == fqp::PlanNode::Kind::kJoin) {
        const auto& instr = std::get<fqp::JoinInstruction>(node->instr);
        store_.release(WindowKey{node->left.get(), instr.left_field,
                                 instr.window_size, /*right_side=*/false});
        store_.release(WindowKey{node.get(), instr.right_field,
                                 instr.window_size, /*right_side=*/true});
      }
      nodes_.erase(it);
    }
  });
  running_.erase(std::find(running_.begin(), running_.end(), q.info.id));
}

void ServeEngine::barrier() {
  for (const QueryId id : pending_cancel_) {
    QueryRt& q = queries_.at(id);
    if (q.info.state == QueryState::kAdmitted) {
      pending_install_.erase(std::find(pending_install_.begin(),
                                       pending_install_.end(), id));
    } else {
      uninstall(q);
    }
    q.info.state = QueryState::kCancelled;
    ++tenants_.at(q.info.tenant).rep.cancelled;
  }
  pending_cancel_.clear();
  for (const QueryId id : pending_install_) {
    install(queries_.at(id));
  }
  pending_install_.clear();

  // Re-price the live set from scratch in install order: cancels release
  // their share, and shared prefixes stay attributed to their earliest
  // surviving consumer.
  priced_.clear();
  total_estimated_ = 0.0;
  for (auto& [name, t] : tenants_) {
    t.rep.estimated_ops_per_tuple = 0.0;
    t.rep.running = 0;
  }
  for (auto& [node, rt] : nodes_) {
    rt.consumers.clear();
  }
  for (const QueryId id : running_) {
    QueryRt& q = queries_.at(id);
    const fqp::CostEstimate est =
        fqp::estimate_marginal_cost(*q.query.root, priced_, cfg_.cost);
    q.info.marginal_ops_per_tuple = est.ops_per_tuple;
    total_estimated_ += est.ops_per_tuple;
    TenantRt& t = tenants_.at(q.info.tenant);
    t.rep.estimated_ops_per_tuple += est.ops_per_tuple;
    ++t.rep.running;
    for_each_node(q, [&](const fqp::PlanPtr& node) {
      nodes_.at(node.get()).consumers.push_back(id);
    });
  }
  // Work on a shared node is split across the consumers that can demand
  // it this epoch; a fully throttled node is never evaluated at all.
  for (auto& [node, rt] : nodes_) {
    rt.active_consumers = 0;
    for (const QueryId id : rt.consumers) {
      if (!tenants_.at(queries_.at(id).info.tenant).throttled) {
        ++rt.active_consumers;
      }
    }
  }
}

void ServeEngine::charge(const NodeRt& rt, double work) {
  ops_ += static_cast<std::uint64_t>(work);
  if (rt.active_consumers == 0) return;
  const double share = work / rt.active_consumers;
  for (const QueryId id : rt.consumers) {
    TenantRt& t = tenants_.at(queries_.at(id).info.tenant);
    if (!t.throttled) t.epoch_ops += share;
  }
}

const std::vector<fqp::Record>& ServeEngine::evaluate(
    const fqp::PlanNode* node, const std::string& stream,
    const fqp::Record& r) {
  if (const auto hit = memo_.find(node); hit != memo_.end()) {
    return hit->second;
  }
  NodeRt& rt = nodes_.at(node);
  std::vector<fqp::Record> result;
  double inputs = 0.0;
  switch (node->kind) {
    case fqp::PlanNode::Kind::kSource:
      if (node->stream_name == stream) result.push_back(r);
      break;
    case fqp::PlanNode::Kind::kSelect: {
      const auto& instr = std::get<fqp::SelectInstruction>(node->instr);
      const auto& in = evaluate(node->left.get(), stream, r);
      inputs = static_cast<double>(in.size());
      for (const fqp::Record& e : in) {
        if (instr.matches(e)) result.push_back(e);
      }
      break;
    }
    case fqp::PlanNode::Kind::kTruthSelect: {
      const auto& instr = std::get<fqp::TruthTableInstruction>(node->instr);
      const auto& in = evaluate(node->left.get(), stream, r);
      inputs = static_cast<double>(in.size());
      for (const fqp::Record& e : in) {
        if (instr.matches(e)) result.push_back(e);
      }
      break;
    }
    case fqp::PlanNode::Kind::kProject: {
      const auto& instr = std::get<fqp::ProjectInstruction>(node->instr);
      const auto& in = evaluate(node->left.get(), stream, r);
      inputs = static_cast<double>(in.size());
      for (const fqp::Record& e : in) {
        fqp::Record projected;
        projected.seq = e.seq;
        for (const std::size_t f : instr.keep) {
          projected.fields.push_back(e.at(f));
        }
        result.push_back(std::move(projected));
      }
      break;
    }
    case fqp::PlanNode::Kind::kJoin: {
      const auto& instr = std::get<fqp::JoinInstruction>(node->instr);
      const auto& left_in = evaluate(node->left.get(), stream, r);
      const auto& right_in = evaluate(node->right.get(), stream, r);
      inputs = static_cast<double>(left_in.size() + right_in.size());
      // Interpreter semantics, phased: left arrivals probe the right
      // window as of the previous arrival, then land in the (possibly
      // shared) left window; right arrivals probe the left window
      // *including* this arrival's left records, then land in the right
      // window. claim_arrival makes the inserts once-per-arrival when
      // several join nodes share a window.
      for (const fqp::Record& e : left_in) {
        rt.right_win->collect_equal(e.at(instr.left_field),
                                    [&](const fqp::Record& o) {
                                      result.push_back(joined_record(e, o));
                                    });
      }
      if (rt.left_win->claim_arrival(tick_)) {
        for (const fqp::Record& e : left_in) rt.left_win->insert(e);
      }
      for (const fqp::Record& o : right_in) {
        rt.left_win->collect_equal(o.at(instr.right_field),
                                   [&](const fqp::Record& l) {
                                     result.push_back(joined_record(l, o));
                                   });
      }
      if (rt.right_win->claim_arrival(tick_)) {
        for (const fqp::Record& o : right_in) rt.right_win->insert(o);
      }
      break;
    }
  }
  charge(rt, 1.0 + inputs + static_cast<double>(result.size()));
  return memo_[node] = std::move(result);
}

std::uint64_t ServeEngine::process_epoch(const std::vector<Arrival>& epoch) {
  barrier();
  ++epochs_;
  for (auto& [name, t] : tenants_) {
    t.epoch_ops = 0.0;
    if (t.throttled) ++t.rep.throttled_epochs;
  }
  std::uint64_t delivered = 0;
  for (const Arrival& a : epoch) {
    ++arrivals_;
    ++tick_;
    memo_.clear();
    for (const QueryId id : running_) {
      QueryRt& q = queries_.at(id);
      TenantRt& t = tenants_.at(q.info.tenant);
      if (t.throttled) {
        ++t.rep.shed_arrivals;
        continue;
      }
      const auto& out = evaluate(q.query.root.get(), a.stream, a.record);
      if (out.empty()) continue;
      q.info.results += out.size();
      t.rep.results += out.size();
      results_ += out.size();
      delivered += out.size();
      if (cfg_.collect_outputs) {
        q.outputs.insert(q.outputs.end(), out.begin(), out.end());
      }
    }
  }
  // Token-debt regulator: an overrun accumulates as debt; a throttled
  // epoch generates (almost) no charges, so the debt drains by the quota
  // per epoch until the tenant is re-admitted at a later barrier.
  for (auto& [name, t] : tenants_) {
    t.rep.measured_ops += t.epoch_ops;
    if (t.quota.max_ops_per_epoch > 0.0) {
      t.debt = std::max(0.0, t.debt + t.epoch_ops - t.quota.max_ops_per_epoch);
      t.throttled = t.debt > 0.0;
    } else {
      t.throttled = false;
    }
  }
  return delivered;
}

const QueryInfo& ServeEngine::info(QueryId id) const {
  const auto it = queries_.find(id);
  HAL_CHECK(it != queries_.end(), "unknown query id");
  return it->second.info;
}

const std::vector<fqp::Record>& ServeEngine::output(QueryId id) const {
  static const std::vector<fqp::Record> kEmpty;
  const auto it = queries_.find(id);
  return it == queries_.end() ? kEmpty : it->second.outputs;
}

void ServeEngine::clear_outputs() {
  for (auto& [id, q] : queries_) q.outputs.clear();
}

ServeReport ServeEngine::report() const {
  ServeReport rep;
  rep.epochs = epochs_;
  rep.arrivals = arrivals_;
  rep.results = results_;
  rep.ops = ops_;
  rep.queries_running = static_cast<std::uint32_t>(running_.size());
  rep.nodes_live = nodes_.size();
  rep.windows_live = store_.live();
  rep.windows_created = store_.created();
  rep.window_acquires = store_.acquires();
  rep.window_shared_hits = store_.shared_hits();
  rep.resident_records = store_.resident_records();
  rep.estimated_ops_per_tuple = total_estimated_;
  rep.capacity_ops_per_tuple = cfg_.capacity_ops_per_tuple;
  for (const auto& [name, t] : tenants_) rep.tenants.push_back(t.rep);
  return rep;
}

void ServeEngine::collect_metrics(obs::MetricRegistry& registry,
                                  const std::string& prefix) const {
  const ServeReport rep = report();
  registry.set_counter(prefix + "epochs", rep.epochs);
  registry.set_counter(prefix + "arrivals", rep.arrivals);
  registry.set_counter(prefix + "results", rep.results);
  registry.set_counter(prefix + "ops", rep.ops);
  registry.set_counter(prefix + "queries_running", rep.queries_running);
  registry.set_counter(prefix + "nodes_live", rep.nodes_live);
  registry.set_counter(prefix + "windows.live", rep.windows_live);
  registry.set_counter(prefix + "windows.created", rep.windows_created);
  registry.set_counter(prefix + "windows.acquires", rep.window_acquires);
  registry.set_counter(prefix + "windows.shared_hits",
                       rep.window_shared_hits);
  registry.set_counter(prefix + "windows.resident_records",
                       rep.resident_records);
  registry.set_gauge(prefix + "estimated_ops_per_tuple",
                     rep.estimated_ops_per_tuple);
  for (const TenantReport& t : rep.tenants) {
    const std::string tp = prefix + "tenant." + t.name + ".";
    registry.set_counter(tp + "running", t.running);
    registry.set_counter(tp + "results", t.results);
    registry.set_counter(tp + "rejected", t.rejected);
    registry.set_counter(tp + "throttled_epochs", t.throttled_epochs);
    registry.set_counter(tp + "shed_arrivals", t.shed_arrivals);
  }
}

}  // namespace hal::serve
