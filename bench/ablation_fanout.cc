// Ablation A2: DNode fan-out in the scalable distribution tree. §IV:
// "Other fan-out sizes (e.g., 1→4) could be interesting to explore since
// they reduce the height of the distribution network and lower
// communication latency."
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/harness.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::core;

  bench::banner("Ablation A2",
                "DNode fan-out 1→2 / 1→4 / 1→8 (uni-flow, 256 cores, V7)");

  const auto& v7 = hw::virtex7_xc7vx485t();
  constexpr std::uint32_t kCores = 256;

  Table table({"fan-out", "tree depth", "DNodes", "latency (cycles)",
               "F_max (MHz)", "latency (µs)"});
  std::map<std::uint32_t, HwLatency> lat;
  std::map<std::uint32_t, std::uint32_t> dnodes;

  for (const std::uint32_t fanout : {2u, 4u, 8u}) {
    hw::UniflowConfig cfg;
    cfg.num_cores = kCores;
    cfg.window_size = kCores * 64;
    cfg.distribution = hw::NetworkKind::kScalable;
    cfg.gathering = hw::NetworkKind::kScalable;
    cfg.fanout = fanout;
    MeasureOptions opts;
    opts.sim_threads = bench::sim_threads();
    opts.requested_mhz = 1e9;
    lat[fanout] = measure_uniflow_latency(cfg, v7, opts);
    const hw::DesignStats stats = hw::UniflowEngine(cfg).design_stats();
    dnodes[fanout] = stats.num_dnodes;
    table.add_row({"1->" + std::to_string(fanout),
                   Table::integer(ceil_log(kCores, fanout)),
                   Table::integer(stats.num_dnodes),
                   Table::integer(lat[fanout].cycles_to_last_result),
                   Table::num(lat[fanout].fmax_mhz, 0),
                   Table::num(lat[fanout].microseconds(), 3)});
  }
  table.print();

  bench::claim(dnodes[8] < dnodes[4] && dnodes[4] < dnodes[2],
               "wider fan-out needs fewer DNodes");
  bench::claim(lat[8].cycles_to_last_result < lat[2].cycles_to_last_result,
               "wider fan-out shortens the distribution pipeline "
               "(fewer stages → lower latency), as §IV anticipates");
  bench::claim(lat[8].fmax_mhz <= lat[2].fmax_mhz,
               "...but pays in the widest net's fan-out, pressuring F_max");

  return bench::finish();
}
