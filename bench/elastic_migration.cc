// hal::elastic migration cost and skew-aware scaling.
//
// Three measurements against the elastic key-hash cluster:
//
//   1. Migration pause — wall time the epoch barrier is held while a
//      shard add/remove freezes, ships, rebuilds and swaps keyspace
//      state (p50/p99 over repeated grow/shrink cycles).
//   2. Steady-state dip — processing throughput of a run that rescales
//      mid-stream vs an identical fixed-topology run. Migrations happen
//      *between* epochs, so the residual dip is cache/state-rebuild
//      cost, claimed < 10%.
//   3. Skew scaling — zipf(θ=1.0) vs uniform at 8 shards. The claimed
//      quantity is the one routing owns: per-worker load scaling. With
//      measured-load rebalancing (hot-key splits + keyslot moves) the
//      zipfian run's max-worker ingress share must land within 1.5x of
//      the uniform run's — i.e. the skewed workload spreads across 8
//      shards like a uniform one. Throughput speedups (normalized per
//      workload by its own 1-shard run) are reported alongside, not
//      claimed: on this single-CPU host time-shared threads flatten
//      parallel speedup (the Fig. 14d substitution note), and in
//      exact-global mode a sharded worker's count-based window spans
//      ~shards× the global seq range, so a hot self-joining key emits
//      ~shards× candidate pairs for the merger to filter — an
//      amplification no routing policy can remove (it would take
//      seq-horizon eviction inside the workers; see ROADMAP).
//
// Emits BENCH_elastic.json. Deterministic workloads; --seed replays.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster_engine.h"
#include "elastic/controller.h"
#include "stream/generator.h"

namespace {

using hal::cluster::ClusterConfig;
using hal::cluster::ClusterEngine;
using hal::cluster::Partitioning;
using hal::elastic::Controller;
using hal::elastic::ElasticConfig;
using hal::elastic::MigrationReport;
using hal::stream::Tuple;

constexpr std::uint64_t kDefaultSeed = 20170605;

std::vector<Tuple> make_stream(std::size_t n, std::uint64_t seed,
                               std::uint32_t key_domain, bool zipf,
                               double theta) {
  hal::stream::WorkloadConfig wl;
  wl.seed = seed;
  wl.key_domain = key_domain;
  wl.deterministic_interleave = false;
  if (zipf) {
    wl.distribution = hal::stream::KeyDistribution::kZipf;
    wl.zipf_theta = theta;
  }
  return hal::stream::WorkloadGenerator(wl).take(n);
}

ClusterConfig cluster_config(std::uint32_t shards, std::size_t window) {
  ClusterConfig cfg;
  cfg.partitioning = Partitioning::kKeyHash;
  cfg.shards = shards;
  cfg.window_size = window;
  cfg.worker.backend = hal::core::Backend::kSwSplitJoin;
  cfg.worker.num_cores = 1;
  cfg.transport.batch_size = 64;
  return cfg;
}

// Processing throughput (Mtuples/s) over chunked ingest, with an optional
// per-chunk hook run at the epoch barrier. Throughput counts process()
// wall time only — barrier work is what measurement 1 reports.
template <typename Hook>
double run_chunks(ClusterEngine& engine, const std::vector<Tuple>& all,
                  std::size_t chunks, Hook&& hook) {
  const std::size_t per = all.size() / chunks;
  double elapsed = 0.0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = c + 1 == chunks ? all.size() : lo + per;
    const std::vector<Tuple> chunk(
        all.begin() + static_cast<std::ptrdiff_t>(lo),
        all.begin() + static_cast<std::ptrdiff_t>(hi));
    elapsed += engine.process(chunk).elapsed_seconds;
    (void)engine.take_results();
    hook(c);
  }
  return elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed / 1e6
                       : 0.0;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  const std::uint64_t seed = bench::seed_or(kDefaultSeed);

  bench::banner("elastic_migration",
                "live rescale pause, steady-state dip, and skew-aware "
                "scaling for the elastic key-hash cluster");

  // --- 1. Migration pause distribution -----------------------------------
  constexpr std::size_t kWindow = std::size_t{1} << 10;
  constexpr std::size_t kCycles = 10;
  std::vector<double> grow_pauses;
  std::vector<double> shrink_pauses;
  std::uint64_t moved_tuples = 0;
  std::uint64_t image_bytes = 0;
  {
    ClusterEngine engine(cluster_config(4, kWindow));
    Controller ctl(engine);
    const auto stream =
        make_stream(kCycles * 2 * 4096, seed, 1u << 16, false, 0.0);
    run_chunks(engine, stream, kCycles * 2, [&](std::size_t c) {
      // Alternate grow/shrink so every barrier migrates real state.
      const MigrationReport rep =
          c % 2 == 0 ? ctl.add_shards(1) : ctl.remove_shards(1);
      (c % 2 == 0 ? grow_pauses : shrink_pauses).push_back(rep.pause_seconds);
      moved_tuples += rep.moved_tuples;
      image_bytes += rep.image_bytes;
    });
  }
  const double grow_p50_ms = percentile(grow_pauses, 50.0) * 1e3;
  const double grow_p99_ms = percentile(grow_pauses, 99.0) * 1e3;
  const double shrink_p50_ms = percentile(shrink_pauses, 50.0) * 1e3;
  const double shrink_p99_ms = percentile(shrink_pauses, 99.0) * 1e3;

  Table pause_table({"migration", "count", "p50 (ms)", "p99 (ms)"});
  pause_table.add_row({"grow 4->5", Table::integer(grow_pauses.size()),
                       Table::num(grow_p50_ms, 3), Table::num(grow_p99_ms, 3)});
  pause_table.add_row({"shrink 5->4", Table::integer(shrink_pauses.size()),
                       Table::num(shrink_p50_ms, 3),
                       Table::num(shrink_p99_ms, 3)});
  pause_table.print();
  std::printf("  migrated %llu tuples, %llu image bytes across %zu cycles\n",
              static_cast<unsigned long long>(moved_tuples),
              static_cast<unsigned long long>(image_bytes), kCycles);

  // --- 2. Steady-state throughput dip -------------------------------------
  constexpr std::size_t kDipChunks = 24;
  const auto dip_stream = make_stream(kDipChunks * 4096, seed + 1, 1u << 16,
                                      false, 0.0);
  double fixed_mtps = 0.0;
  double elastic_mtps = 0.0;
  {
    ClusterEngine fixed(cluster_config(4, kWindow));
    fixed_mtps = run_chunks(fixed, dip_stream, kDipChunks, [](std::size_t) {});
  }
  {
    ClusterEngine engine(cluster_config(4, kWindow));
    Controller ctl(engine);
    elastic_mtps = run_chunks(engine, dip_stream, kDipChunks,
                              [&](std::size_t c) {
                                // Rescale every 6th barrier: 4→6→4→6…
                                if (c % 12 == 5) (void)ctl.add_shards(2);
                                if (c % 12 == 11) (void)ctl.remove_shards(2);
                              });
  }
  const double dip = fixed_mtps > 0.0 ? 1.0 - elastic_mtps / fixed_mtps : 1.0;

  Table dip_table({"run", "Mtuples/s"});
  dip_table.add_row({"fixed 4 shards", Table::num(fixed_mtps, 3)});
  dip_table.add_row({"rescaling 4<->6", Table::num(elastic_mtps, 3)});
  dip_table.print();
  std::printf("  steady-state dip: %.1f%%\n", dip * 100.0);

  // --- 3. Zipf vs uniform at 8 shards -------------------------------------
  constexpr std::size_t kSkewChunks = 16;
  constexpr std::size_t kSkewTuples = kSkewChunks * 4096;
  constexpr std::uint32_t kSkewDomain = 1u << 16;
  const auto uniform_stream =
      make_stream(kSkewTuples, seed + 2, kSkewDomain, false, 0.0);
  const auto zipf_stream =
      make_stream(kSkewTuples, seed + 2, kSkewDomain, true, 1.0);

  // Routing imbalance of the last run: max/mean ingress tuples across the
  // live workers. 1.0 = perfectly even.
  const auto imbalance = [](const ClusterEngine& engine) {
    std::uint64_t total = 0;
    std::uint64_t max = 0;
    std::size_t live = 0;
    for (const auto& w : engine.report().workers) {
      if (engine.slot_retired(w.slot)) continue;
      total += w.tuples_in;
      max = std::max(max, w.tuples_in);
      ++live;
    }
    return total > 0 ? static_cast<double>(max) * static_cast<double>(live) /
                           static_cast<double>(total)
                     : 0.0;
  };

  const auto measure = [&](const std::vector<Tuple>& stream,
                           std::uint32_t shards, bool rebalance,
                           double* imbalance_out) {
    ClusterConfig cfg = cluster_config(shards, kWindow);
    cfg.elastic.track_key_load = rebalance;
    ClusterEngine engine(cfg);
    Controller ctl(engine);
    const double mtps = run_chunks(engine, stream, kSkewChunks,
                                   [&](std::size_t c) {
                                     // One measured-load rebalance after a
                                     // short warmup; splits persist.
                                     if (rebalance && c == 1) {
                                       (void)ctl.rebalance();
                                     }
                                   });
    if (imbalance_out != nullptr) *imbalance_out = imbalance(engine);
    return mtps;
  };

  const double uniform_1 = measure(uniform_stream, 1, false, nullptr);
  const double zipf_1 = measure(zipf_stream, 1, false, nullptr);
  double uniform_imb = 0.0;
  double zipf_static_imb = 0.0;
  double zipf_balanced_imb = 0.0;
  const double uniform_8 = measure(uniform_stream, 8, false, &uniform_imb);
  const double zipf_static_8 =
      measure(zipf_stream, 8, false, &zipf_static_imb);
  const double zipf_balanced_8 =
      measure(zipf_stream, 8, true, &zipf_balanced_imb);

  const double uniform_speedup = uniform_1 > 0.0 ? uniform_8 / uniform_1 : 0.0;
  const double zipf_static_speedup = zipf_1 > 0.0 ? zipf_static_8 / zipf_1 : 0.0;
  const double zipf_balanced_speedup =
      zipf_1 > 0.0 ? zipf_balanced_8 / zipf_1 : 0.0;
  const double scaling_gap = zipf_balanced_speedup > 0.0
                                 ? uniform_speedup / zipf_balanced_speedup
                                 : 0.0;

  Table skew_table({"workload @ 8 shards", "Mtuples/s", "1-shard", "speedup",
                    "imbalance"});
  skew_table.add_row({"uniform", Table::num(uniform_8, 3),
                      Table::num(uniform_1, 3), Table::num(uniform_speedup, 2),
                      Table::num(uniform_imb, 2)});
  skew_table.add_row({"zipf 1.0, static routing", Table::num(zipf_static_8, 3),
                      Table::num(zipf_1, 3),
                      Table::num(zipf_static_speedup, 2),
                      Table::num(zipf_static_imb, 2)});
  skew_table.add_row({"zipf 1.0, rebalanced", Table::num(zipf_balanced_8, 3),
                      Table::num(zipf_1, 3),
                      Table::num(zipf_balanced_speedup, 2),
                      Table::num(zipf_balanced_imb, 2)});
  skew_table.print();
  std::printf("  (imbalance = max/mean worker ingress; host hw threads "
              "flatten absolute speedups)\n");

  // --- Artifact ------------------------------------------------------------
  const std::string json_path = bench::out_path("BENCH_elastic.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    bench::json_header(f, "elastic_migration", seed, json_path);
    std::fprintf(f, "  \"window\": %zu,\n", kWindow);
    std::fprintf(f, "  \"pause\": {\n");
    std::fprintf(f,
                 "    \"grow_p50_ms\": %.4f, \"grow_p99_ms\": %.4f,\n"
                 "    \"shrink_p50_ms\": %.4f, \"shrink_p99_ms\": %.4f,\n",
                 grow_p50_ms, grow_p99_ms, shrink_p50_ms, shrink_p99_ms);
    std::fprintf(f,
                 "    \"moved_tuples\": %llu, \"image_bytes\": %llu\n  },\n",
                 static_cast<unsigned long long>(moved_tuples),
                 static_cast<unsigned long long>(image_bytes));
    std::fprintf(f,
                 "  \"steady_state\": {\"fixed_mtps\": %.4f, "
                 "\"elastic_mtps\": %.4f, \"dip_fraction\": %.4f},\n",
                 fixed_mtps, elastic_mtps, dip);
    std::fprintf(f,
                 "  \"skew\": {\"uniform_mtps\": %.4f, "
                 "\"zipf_static_mtps\": %.4f, \"zipf_balanced_mtps\": %.4f, "
                 "\"uniform_speedup\": %.4f, \"zipf_balanced_speedup\": %.4f, "
                 "\"scaling_gap\": %.4f, \"zipf_static_imbalance\": %.4f, "
                 "\"zipf_balanced_imbalance\": %.4f}\n",
                 uniform_8, zipf_static_8, zipf_balanced_8, uniform_speedup,
                 zipf_balanced_speedup, scaling_gap, zipf_static_imb,
                 zipf_balanced_imb);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  bench::claim(grow_p99_ms < 1000.0 && shrink_p99_ms < 1000.0,
               "migration pause p99 under a second at window 2^10 "
               "(grow " + Table::num(grow_p99_ms, 2) + " ms, shrink " +
                   Table::num(shrink_p99_ms, 2) + " ms)");
  bench::claim(dip < 0.10,
               "rescaling run within 10% of fixed-topology throughput "
               "(measured dip " + Table::num(dip * 100.0, 1) + "%)");
  bench::claim(uniform_imb > 0.0 && zipf_balanced_imb / uniform_imb < 1.5,
               "zipf(1.0) load scaling with skew-aware routing within 1.5x "
               "of uniform at 8 shards (max/mean ingress " +
                   Table::num(zipf_balanced_imb, 2) + " vs " +
                   Table::num(uniform_imb, 2) + ")");
  bench::claim(zipf_balanced_imb < zipf_static_imb,
               "rebalancing reduces zipf routing imbalance (max/mean " +
                   Table::num(zipf_static_imb, 2) + " -> " +
                   Table::num(zipf_balanced_imb, 2) + ")");

  return bench::finish();
}
