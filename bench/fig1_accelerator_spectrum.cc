// Figure 1 ("Envisioned acceleration technology outlook"): the paper's
// opening landscape places general-purpose processors at high latency /
// modest throughput, GPUs above them in throughput but still latency-
// bound (batching), and FPGAs/ASICs in the microsecond real-time corner.
//
// This bench reproduces that qualitative placement with the three engine
// families of this repository on one workload (equi-join, W=2^12/stream):
//   CPU streaming  — software SplitJoin, per-tuple processing;
//   GPU-style batch — BatchJoinEngine, data-parallel kernels per batch;
//   FPGA           — the uni-flow engine on the simulated Virtex-7.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/harness.h"
#include "stream/generator.h"
#include "sw/batch_join.h"
#include "sw/splitjoin.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;

  bench::banner("Fig. 1", "accelerator spectrum: throughput vs latency "
                          "(equi-join, W=2^12 per stream)");
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  constexpr std::size_t kWindow = 1u << 12;
  constexpr std::uint32_t kWorkers = 4;
  stream::WorkloadConfig wl;
  wl.seed = 8;
  wl.key_domain = 1u << 20;

  // --- CPU streaming ------------------------------------------------------
  double cpu_mtps = 0.0;
  double cpu_latency_us = 0.0;
  {
    sw::SplitJoinConfig cfg;
    cfg.num_cores = kWorkers;
    cfg.window_size = kWindow;
    cfg.collect_results = false;
    sw::SplitJoinEngine engine(cfg, stream::JoinSpec::equi_on_key());
    stream::WorkloadGenerator gen(wl);
    engine.prefill(gen.take(2 * kWindow));
    const auto report = engine.process(gen.take(4'000));
    cpu_mtps = report.throughput_tuples_per_sec() / 1e6;
    LatencyRecorder rec;
    for (int i = 0; i < 9; ++i) {
      rec.record(engine.measure_tuple_latency_seconds(gen.next()) * 1e6);
    }
    cpu_latency_us = rec.percentile(50);
  }

  // --- GPU-style batch ----------------------------------------------------
  double gpu_mtps = 0.0;
  double gpu_latency_us = 0.0;
  {
    sw::BatchJoinConfig cfg;
    cfg.num_workers = kWorkers;
    cfg.window_size = kWindow;
    cfg.batch_size = kWindow / 2;
    sw::BatchJoinEngine engine(cfg, stream::JoinSpec::equi_on_key());
    stream::WorkloadGenerator gen(wl);
    engine.process(gen.take(2 * kWindow));  // warm windows
    const auto report = engine.process(gen.take(8 * kWindow));
    gpu_mtps = report.throughput_tuples_per_sec() / 1e6;
    gpu_latency_us =
        engine.batch_latency_seconds(report.throughput_tuples_per_sec()) *
        1e6;
  }

  // --- FPGA (simulated V7) -------------------------------------------------
  hw::UniflowConfig hw_cfg;
  hw_cfg.num_cores = 64;
  hw_cfg.window_size = kWindow;
  hw_cfg.distribution = hw::NetworkKind::kScalable;
  hw_cfg.gathering = hw::NetworkKind::kScalable;
  core::MeasureOptions opts;
  opts.num_tuples = 512;
  opts.requested_mhz = 300.0;
  const core::HwThroughput fpga = core::measure_uniflow_throughput(
      hw_cfg, hw::virtex7_xc7vx485t(), opts);
  const core::HwLatency fpga_lat = core::measure_uniflow_latency(
      hw_cfg, hw::virtex7_xc7vx485t(), opts);

  Table table({"technology", "throughput (Mt/s)", "latency", "regime"});
  table.add_row({"CPU streaming (SplitJoin)", Table::num(cpu_mtps, 3),
                 Table::num(cpu_latency_us / 1e3, 2) + " ms",
                 "1 ... 100 milliseconds (Fig. 1)"});
  table.add_row({"GPU-style batch", Table::num(gpu_mtps, 3),
                 Table::num(gpu_latency_us / 1e3, 2) + " ms",
                 "batch-bound"});
  table.add_row({"FPGA uni-flow (64 JC, V7)",
                 Table::num(fpga.mtuples_per_sec(), 3),
                 Table::num(fpga_lat.microseconds(), 2) + " µs",
                 "< 1 ... 100 microseconds (Fig. 1)"});
  table.print();

  bench::claim(gpu_mtps > cpu_mtps,
               "batched data-parallel processing out-runs per-tuple CPU "
               "streaming (" +
                   Table::num(gpu_mtps / cpu_mtps, 1) + "x)");
  bench::claim(gpu_latency_us > cpu_latency_us,
               "...but pays for it in latency (batch accumulation)");
  bench::claim(fpga.mtuples_per_sec() > gpu_mtps,
               "the FPGA engine leads the spectrum in throughput");
  bench::claim(fpga_lat.microseconds() < cpu_latency_us / 10.0,
               "and sits orders of magnitude lower in latency "
               "(microseconds vs milliseconds)");

  return bench::finish();
}
