// Ablation A4: the low-latency handshake join [36] as an OP-Chain layout.
//
// §III: the handshake join "suffers from latency increase since the
// processing of a single incoming tuple requires a sequential flow through
// the entire processing pipeline. To improve latency ... each tuple of
// each stream is replicated and forwarded to the next join core before the
// join computation is carried out by the current core."
//
// Realization here: the uni-flow engine with chain (daisy-chained)
// networks — replication + fast-forwarding over a linear chain, eager
// exactly-once semantics, fan-out 2 everywhere. Comparing it against the
// basic bi-flow chain and the SplitJoin tree decomposes the design space:
//   basic bi-flow:   throughput gap AND O(N·W/N) result latency;
//   LL-HSJ (chain):  throughput fixed, distribution latency still O(N);
//   SplitJoin tree:  throughput fixed, O(log N) distribution latency.
#include <cstdio>

#include "bench_util.h"
#include "core/harness.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::core;

  bench::banner("Ablation A4",
                "low-latency handshake join (chain) vs SplitJoin tree vs "
                "basic bi-flow (V7, 64 JCs, W=2^12)");

  const auto& v7 = hw::virtex7_xc7vx485t();
  constexpr std::uint32_t kCores = 64;
  constexpr std::size_t kWindow = 1u << 12;

  MeasureOptions opts;
  opts.sim_threads = bench::sim_threads();
  opts.num_tuples = 384;
  opts.requested_mhz = 1e9;  // modeled F_max

  auto uniflow_point = [&](hw::NetworkKind net) {
    hw::UniflowConfig cfg;
    cfg.num_cores = kCores;
    cfg.window_size = kWindow;
    cfg.distribution = net;
    cfg.gathering = net;
    return std::pair{measure_uniflow_throughput(cfg, v7, opts),
                     measure_uniflow_latency(cfg, v7, opts)};
  };

  const auto [tree_t, tree_l] = uniflow_point(hw::NetworkKind::kScalable);
  const auto [chain_t, chain_l] = uniflow_point(hw::NetworkKind::kChain);

  hw::BiflowConfig bcfg;
  bcfg.num_cores = kCores;
  bcfg.window_size = kWindow;
  MeasureOptions bopts = opts;
  bopts.num_tuples = 128;
  const HwThroughput bi_t = measure_biflow_throughput(bcfg, v7, bopts);

  Table table({"design", "Mt/s @F_max", "F_max (MHz)", "latency (cycles)",
               "latency (µs)"});
  table.add_row({"basic bi-flow (handshake join)",
                 Table::num(bi_t.mtuples_per_sec(), 3),
                 Table::num(bi_t.fmax_mhz, 0), "-", "-"});
  table.add_row({"LL-HSJ (uni-flow, chain nets)",
                 Table::num(chain_t.mtuples_per_sec(), 3),
                 Table::num(chain_t.fmax_mhz, 0),
                 Table::integer(chain_l.cycles_to_last_result),
                 Table::num(chain_l.microseconds(), 3)});
  table.add_row({"SplitJoin (uni-flow, tree nets)",
                 Table::num(tree_t.mtuples_per_sec(), 3),
                 Table::num(tree_t.fmax_mhz, 0),
                 Table::integer(tree_l.cycles_to_last_result),
                 Table::num(tree_l.microseconds(), 3)});
  table.print();

  bench::claim(chain_t.mtuples_per_sec() > 3.0 * bi_t.mtuples_per_sec(),
               "replication + fast-forwarding recovers most of the "
               "bi-flow throughput gap");
  bench::claim(std::abs(chain_t.mtuples_per_sec() -
                        tree_t.mtuples_per_sec()) <
                   0.1 * tree_t.mtuples_per_sec(),
               "chain and tree distribution sustain the same scan-bound "
               "throughput");
  bench::claim(chain_l.cycles_to_last_result >
                   tree_l.cycles_to_last_result + kCores / 2,
               "the chain still pays O(N) distribution latency vs the "
               "tree's O(log N) (SplitJoin's remaining advantage)");
  bench::claim(chain_t.fmax_mhz >= tree_t.fmax_mhz,
               "fan-out-2 chain clocks at least as fast as the tree");

  return bench::finish();
}
