// Multi-query optimization bench: Rete-like sharing of common sub-plans
// across a growing workload, and Q100-style temporal scheduling when the
// workload outgrows the fabric (Fig. 4's representational/algorithmic
// model entries).
#include <cstdio>

#include "bench_util.h"
#include "fqp/multi_query.h"
#include "fqp/temporal.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::fqp;
  using stream::CmpOp;

  bench::banner("FQP multi-query",
                "Rete-like sharing + Q100-style temporal scheduling");

  const Schema customer("Customer", {"Age", "Gender", "ProductID"});
  const Schema product("Product", {"ProductID", "Price"});

  // A workload family: every query filters adults and joins with the
  // product stream (identical prefix, shareable), then applies a
  // query-specific projection/selection.
  auto make_query = [&](int i) {
    auto b = QueryBuilder::from("Customer", customer)
                 .select("Age", CmpOp::Gt, 25)
                 .join(QueryBuilder::from("Product", product), "ProductID",
                       "ProductID", 1024);
    if (i % 2 == 0) {
      b.project({"Customer.Age", "Product.Price"});
    } else {
      b.select("Product.Price", CmpOp::Lt,
               static_cast<std::uint32_t>(100 + i));
    }
    return b.output("out" + std::to_string(i));
  };

  Table table({"queries", "operators (no sharing)", "operators (shared)",
               "saved", "rounds on 8 blocks", "overhead @5µs/100µs"});
  std::size_t saved_at_8 = 0;
  double overhead_at_8 = 0.0;
  std::size_t rounds_at_16 = 0;
  for (const int n : {1, 2, 4, 8, 16}) {
    std::vector<Query> queries;
    for (int i = 0; i < n; ++i) queries.push_back(make_query(i));
    const SharingReport report = share_common_subplans(queries);
    const TemporalSchedule sched = temporal_schedule(queries, 8);
    const double overhead =
        sched.feasible
            ? sched.overhead_factor(5.0, 8 - sched.pinned_joins.size(),
                                    100.0)
            : 0.0;
    if (n == 8) {
      saved_at_8 = report.saved();
      overhead_at_8 = overhead;
    }
    if (n == 16 && sched.feasible) rounds_at_16 = sched.num_rounds();
    table.add_row({Table::integer(n), Table::integer(report.operators_before),
                   Table::integer(report.operators_after),
                   Table::integer(report.saved()),
                   sched.feasible ? Table::integer(sched.num_rounds())
                                  : "infeasible",
                   sched.feasible ? Table::num(overhead, 2) + "x" : "-"});
  }
  table.print();

  bench::claim(saved_at_8 >= 7,
               "the shared σ+⋈ prefix collapses across all 8 queries "
               "(saved " +
                   Table::integer(saved_at_8) + " operators)");
  bench::claim(overhead_at_8 >= 1.0 && overhead_at_8 < 4.0,
               "after sharing, the 8-query workload runs in a single pass "
               "on 8 blocks (" +
                   Table::num(overhead_at_8, 2) + "x overhead)");
  bench::claim(rounds_at_16 >= 2,
               "at 16 queries even the shared plan outgrows the fabric: "
               "Q100-style temporal rounds kick in (" +
                   Table::integer(rounds_at_16) + " rounds)");

  return bench::finish();
}
