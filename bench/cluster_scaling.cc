// hal::cluster scaling bench: sharded stream-join throughput vs shard
// count, transport batch size, and wrapped backend.
//
// Runs the equi-join under key-hash partitioning with per-partition
// windows (WindowMode::kPartitionedLocal) — the discipline a real
// key-partitioned deployment uses, where each of N shards maintains W/N
// of the global window. On a single machine the speedup therefore comes
// from state partitioning (each probe scans a window N× smaller), which
// is the same lever the paper's SplitJoin sub-windows pull inside one
// FPGA (§III-B), applied at cluster scale.
//
// Also exercises the modeled transport: an overload scenario with tiny
// link buffers (backpressure stalls + queue high-water must register),
// and a throttled-link run whose measured throughput is checked against
// the dist::PathModel prediction for the same shard path.
//
// A final section re-runs the sharded join with hal::net links — every
// batch crossing the frame codec and a real (or loopback) wire instead
// of the in-process SPSC ring — and reports the wire tax next to the
// SPSC baseline. `--transport=loopback|unix|tcp` picks the wire (default
// loopback); the series lands in BENCH_net.json.
//
// Emits BENCH_cluster.json with the full sweep for downstream tooling.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster_engine.h"
#include "stream/generator.h"

namespace {

using namespace hal;

struct SweepPoint {
  const char* backend;
  std::uint32_t shards;
  std::size_t batch;
  double tps;
  double speedup;
  std::uint64_t results;
};

std::vector<stream::Tuple> sweep_workload(std::size_t n) {
  stream::WorkloadConfig wl;
  wl.seed = hal::bench::seed_or(20170605);  // default: ICDCS'17
  wl.key_domain = 1u << 16;
  wl.deterministic_interleave = false;
  return stream::WorkloadGenerator(wl).take(n);
}

cluster::ClusterConfig sharded(core::Backend backend, std::uint32_t shards,
                               std::size_t batch, std::size_t window) {
  cluster::ClusterConfig cfg;
  cfg.partitioning = cluster::Partitioning::kKeyHash;
  cfg.window_mode = cluster::WindowMode::kPartitionedLocal;
  cfg.shards = shards;
  cfg.window_size = window;
  cfg.spec = stream::JoinSpec::equi_on_key();
  cfg.worker.backend = backend;
  cfg.worker.num_cores = 1;
  cfg.transport.batch_size = batch;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  bench::banner("Cluster scaling",
                "sharded stream join: throughput vs shards × transport "
                "batch × wrapped backend (key-hash, W/N windows)");

  constexpr std::size_t kWindow = 4096;
  constexpr std::size_t kTuples = 80'000;
  const auto tuples = sweep_workload(kTuples);

  const std::pair<core::Backend, const char*> backends[] = {
      {core::Backend::kSwSplitJoin, "sw-splitjoin"},
      {core::Backend::kSwBatch, "sw-batch"},
  };

  std::vector<SweepPoint> sweep;
  // speedup baseline: shards=1 at the same batch size, per backend
  std::map<std::pair<std::string, std::size_t>, double> base_tps;

  Table table({"backend", "shards", "batch", "Mtuples/s", "speedup",
               "results"});
  for (const auto& [backend, name] : backends) {
    for (const std::size_t batch : {std::size_t{32}, std::size_t{256}}) {
      for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        cluster::ClusterEngine engine(
            sharded(backend, shards, batch, kWindow));
        const auto run = engine.process(tuples);
        const double tps = run.tuples_processed / run.elapsed_seconds;
        if (shards == 1) base_tps[{name, batch}] = tps;
        const double speedup = tps / base_tps[{name, batch}];
        sweep.push_back(
            {name, shards, batch, tps, speedup, run.results_emitted});
        table.add_row({name, Table::integer(shards), Table::integer(batch),
                       Table::num(tps / 1e6, 3), Table::num(speedup, 2),
                       Table::integer(run.results_emitted)});
      }
    }
  }
  table.print();

  double best_speedup8_splitjoin = 0.0;
  bool monotone = true;
  std::map<std::pair<std::string, std::size_t>, double> tps8;
  for (const auto& p : sweep) {
    if (p.shards == 8) {
      tps8[{p.backend, p.batch}] = p.tps;
      if (std::string(p.backend) == "sw-splitjoin") {
        best_speedup8_splitjoin = std::max(best_speedup8_splitjoin,
                                           p.speedup);
      }
    }
  }
  for (const auto& [key, t8] : tps8) {
    if (t8 <= base_tps[key]) monotone = false;
  }
  bench::claim(best_speedup8_splitjoin >= 3.0,
               "8 software shards sustain >= 3x the 1-shard equi-join "
               "rate (W/N windows cut per-probe work)");
  bench::claim(monotone,
               "8 shards beat 1 shard for every backend x batch point");

  // --- Backpressure under overload ---------------------------------------
  bench::banner("Cluster overload",
                "tiny link buffers + slow workers: backpressure must "
                "register as stalls and queue high-water, never loss");
  cluster::ClusterConfig over =
      sharded(core::Backend::kSwSplitJoin, 4, 16, kWindow);
  over.transport.ingress.capacity_batches = 2;
  cluster::ClusterEngine over_engine(over);
  const auto over_run = over_engine.process(
      std::vector<stream::Tuple>(tuples.begin(), tuples.begin() + 20'000));
  const cluster::ClusterReport over_rep = over_engine.report();
  std::printf("  router stall spins : %llu\n",
              static_cast<unsigned long long>(over_rep.router_stall_spins));
  std::printf("  ingress high-water : %zu batches (capacity 2)\n",
              over_rep.ingress_queue_high_water);
  bench::claim(over_rep.router_stall_spins > 0,
               "bounded ingress queues push back on the router");
  bench::claim(over_rep.ingress_queue_high_water >= 2,
               "ingress queues hit their high-water mark");
  bench::claim(over_run.tuples_processed == 20'000 &&
                   over_rep.lost_tuples == 0,
               "backpressure loses nothing");

  // --- PathModel validation ----------------------------------------------
  bench::banner("Cluster path model",
                "throttled ingress links: measured cluster throughput vs "
                "dist::PathModel prediction for the shard path");
  cluster::ClusterConfig throttled =
      sharded(core::Backend::kSwSplitJoin, 2, 64, 64);
  throttled.transport.ingress.bandwidth_tps = 2e5;  // per shard link
  cluster::ClusterEngine thr_engine(throttled);
  const auto thr_run = thr_engine.process(
      std::vector<stream::Tuple>(tuples.begin(), tuples.begin() + 40'000));
  const double measured = thr_run.tuples_processed / thr_run.elapsed_seconds;
  // Each shard's path: throttled link -> (fast) worker -> unthrottled
  // egress. The cluster sustains shards x the per-path rate.
  const auto path = cluster::shard_path_model(
      throttled.transport, /*worker_tps=*/1e9, /*result_selectivity=*/1.0,
      "throttled-shard");
  const double predicted = path.sustainable_input_tps() * throttled.shards;
  std::printf("  predicted : %.0f tuples/s (2 links x 200k)\n", predicted);
  std::printf("  measured  : %.0f tuples/s\n", measured);
  bench::claim(measured > 0.5 * predicted && measured < 1.5 * predicted,
               "measured throughput within 50% of the PathModel "
               "prediction (link-bound)");

  // --- hal::net wire tax ---------------------------------------------------
  net::TransportKind wire = net::TransportKind::kLoopback;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--transport=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      if (!net::parse_transport_kind(argv[i] + std::strlen(kFlag), wire)) {
        std::fprintf(stderr, "unknown --transport, using loopback\n");
      }
    }
  }
  bench::banner("Cluster wire tax",
                "same sharded join, links over hal::net instead of the "
                "SPSC ring: codec + credit + (real) socket cost");
  std::printf("  wire: %s\n", net::to_string(wire));

  struct NetPoint {
    std::uint32_t shards;
    double spsc_tps;
    double net_tps;
    cluster::ClusterReport rep;
  };
  std::vector<NetPoint> net_sweep;
  const auto net_tuples =
      std::vector<stream::Tuple>(tuples.begin(), tuples.begin() + 40'000);
  Table net_table({"shards", "SPSC Mtuples/s", "net Mtuples/s", "ratio",
                   "frames", "MB on wire", "credit stalls"});
  bool results_identical = true;
  for (const std::uint32_t shards : {2u, 4u}) {
    cluster::ClusterConfig base =
        sharded(core::Backend::kSwSplitJoin, shards, 64, kWindow);
    // Exact-global windows: the threaded sw backend's window-edge
    // tolerance is filtered out, so the result count is deterministic
    // and the SPSC/net comparison is exact, not approximate.
    base.window_mode = cluster::WindowMode::kExactGlobal;
    cluster::ClusterEngine spsc_engine(base);
    const auto spsc_run = spsc_engine.process(net_tuples);
    const double spsc_tps = spsc_run.tuples_processed / spsc_run.elapsed_seconds;

    cluster::ClusterConfig wired = base;
    wired.transport.link_transport = wire;
    cluster::ClusterEngine net_engine(wired);
    const auto net_run = net_engine.process(net_tuples);
    const double net_tps = net_run.tuples_processed / net_run.elapsed_seconds;
    if (net_run.results_emitted != spsc_run.results_emitted) {
      results_identical = false;
    }
    const cluster::ClusterReport rep = net_engine.report();
    net_sweep.push_back({shards, spsc_tps, net_tps, rep});
    net_table.add_row({Table::integer(shards), Table::num(spsc_tps / 1e6, 3),
                       Table::num(net_tps / 1e6, 3),
                       Table::num(net_tps / spsc_tps, 2),
                       Table::integer(rep.net.frames_sent),
                       Table::num(rep.net.bytes_sent / 1e6, 1),
                       Table::integer(rep.net.credit_stalls)});
  }
  net_table.print();
  bench::claim(results_identical,
               "net-backed links emit exactly the SPSC result count");

  const std::string net_json_path = bench::out_path("BENCH_net.json");
  if (std::FILE* f = std::fopen(net_json_path.c_str(), "w")) {
    bench::json_header(f, "cluster_scaling/net", bench::seed_or(20170605),
                       net_json_path);
    std::fprintf(f, "  \"transport\": \"%s\",\n  \"tuples\": %zu,\n",
                 net::to_string(wire), net_tuples.size());
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < net_sweep.size(); ++i) {
      const auto& p = net_sweep[i];
      std::fprintf(f,
                   "    {\"shards\": %u, \"spsc_tps\": %.1f, \"net_tps\": "
                   "%.1f, \"frames_sent\": %llu, \"bytes_sent\": %llu, "
                   "\"credit_stalls\": %llu, \"acks\": %llu}%s\n",
                   p.shards, p.spsc_tps, p.net_tps,
                   static_cast<unsigned long long>(p.rep.net.frames_sent),
                   static_cast<unsigned long long>(p.rep.net.bytes_sent),
                   static_cast<unsigned long long>(p.rep.net.credit_stalls),
                   static_cast<unsigned long long>(p.rep.net.acks_received),
                   i + 1 < net_sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", net_json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", net_json_path.c_str());
  }

  // Fold the overload run's counters into the process registry so
  // --obs-json captures the cluster layer's metrics too.
  over_engine.collect_metrics(bench::registry(), "cluster.overload.");

  // --- JSON dump ----------------------------------------------------------
  const std::string json_path = bench::out_path("BENCH_cluster.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    bench::json_header(f, "cluster_scaling", bench::seed_or(20170605),
                       json_path);
    std::fprintf(f, "  \"window\": %zu,\n  \"tuples\": %zu,\n", kWindow,
                 kTuples);
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      std::fprintf(f,
                   "    {\"backend\": \"%s\", \"shards\": %u, \"batch\": "
                   "%zu, \"tuples_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"results\": %llu}%s\n",
                   p.backend, p.shards, p.batch, p.tps, p.speedup,
                   static_cast<unsigned long long>(p.results),
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"overload\": {\"router_stall_spins\": %llu, "
        "\"ingress_queue_high_water\": %zu, \"lost_tuples\": %llu},\n",
        static_cast<unsigned long long>(over_rep.router_stall_spins),
        over_rep.ingress_queue_high_water,
        static_cast<unsigned long long>(over_rep.lost_tuples));
    std::fprintf(f,
                 "  \"path_model\": {\"predicted_tps\": %.1f, "
                 "\"measured_tps\": %.1f}\n}\n",
                 predicted, measured);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  return bench::finish();
}
