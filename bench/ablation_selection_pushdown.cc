// Ablation A7: selection pushdown on the cycle-accurate OP-Chain.
//
// The dist-layer placement model (bench/dist_placement) predicts that a
// filter on the data path multiplies downstream capacity by
// 1/selectivity. This bench verifies the mechanism at cycle level: a
// SelectCore ahead of the join stage drops tuples at line rate, so the
// sustainable input rate of the whole pipeline approaches
// N·F/(W·selectivity) instead of N·F/W.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "hw/model/timing_model.h"
#include "hw/opchain/op_chain_engine.h"
#include "stream/generator.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::hw;

  bench::banner("Ablation A7",
                "selection pushdown on the OP-Chain (8 JCs, W=2^12, "
                "V7 @300 MHz)");

  Table table({"selectivity", "cycles/input tuple", "input Mt/s @300MHz",
               "prediction N*F/(W*sel)"});
  std::map<double, double> mtps;

  // Filter: keep keys below a threshold of the 2^20 domain.
  for (const double sel : {1.0, 0.25, 1.0 / 16, 1.0 / 64}) {
    OpChainConfig cfg;
    cfg.num_select_cores = 1;
    cfg.join.num_cores = 8;
    cfg.join.window_size = 1u << 12;
    cfg.sim.threads = bench::sim_threads();
    OpChainEngine engine(cfg);
    engine.program_join(stream::JoinSpec::equi_on_key());
    if (sel < 1.0) {
      SelectSpec filter;
      filter.conjuncts = {SelectCondition{
          stream::Field::Key, stream::CmpOp::Lt,
          static_cast<std::uint32_t>(sel * static_cast<double>(1u << 20))}};
      engine.program_select(0, filter);
    }

    stream::WorkloadConfig wl;
    wl.seed = 11;
    wl.key_domain = 1u << 20;
    stream::WorkloadGenerator gen(wl);
    // Warm the windows through the filter so the join stage is in steady
    // state with respect to surviving traffic.
    engine.run_to_quiescence(10'000);
    engine.offer(gen.take(static_cast<std::size_t>(
        2.0 * static_cast<double>(cfg.join.window_size) / sel)));
    engine.run_to_quiescence(4'000'000'000ull);

    const std::size_t m = 512;
    const std::uint64_t start = engine.cycle();
    engine.offer(gen.take(m));
    while (!engine.input_drained()) engine.step(32);
    const double cycles_per_tuple =
        static_cast<double>(engine.last_injection_cycle() - start) /
        static_cast<double>(m);
    mtps[sel] = 300.0 / cycles_per_tuple;
    const double predicted = 8.0 * 300.0 / (4096.0 * sel);
    table.add_row({Table::num(sel, 4), Table::num(cycles_per_tuple, 2),
                   Table::num(mtps[sel], 3), Table::num(predicted, 3)});
  }
  table.print();

  bench::claim(mtps[0.25] > 3.0 * mtps[1.0],
               "a 25% filter roughly quadruples sustainable input rate");
  bench::claim(mtps[1.0 / 16] > 10.0 * mtps[1.0],
               "a 1/16 filter raises it by an order of magnitude");
  // At very tight selectivity the 1-tuple/cycle selection core itself
  // becomes the bound.
  bench::claim(mtps[1.0 / 64] <= 300.0 + 1.0,
               "the selection core's line rate (1 tuple/cycle) is the "
               "ultimate ceiling");

  return bench::finish();
}
