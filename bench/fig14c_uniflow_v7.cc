// Figure 14c: uni-flow hardware throughput on the Virtex-7 (VC707) with
// 512 join cores at 300 MHz, window sizes 2^11 .. 2^18.
//
// Paper series: ~75 Mtuples/s at W=2^11 falling to sub-Mtuple/s at 2^18 —
// about two orders of magnitude above the Virtex-5 realization (more cores
// x higher clock), and ~15x above the 28-core software SplitJoin at the
// same W=2^18 (compare bench/fig14d_uniflow_sw).
#include <cstdio>
#include <map>
#include <thread>

#include "bench_util.h"
#include "core/harness.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::core;

  bench::banner("Fig. 14c",
                "uni-flow HW throughput, 512 JCs on V7 @300 MHz, scalable "
                "networks");

  const auto& v7 = hw::virtex7_xc7vx485t();
  constexpr std::uint32_t kCores = 512;

  Table table({"window", "fits V7", "F (MHz)", "cycles/tuple",
               "throughput (Mtuples/s)", "paper shape N*F/W"});
  std::map<int, double> mtps;

  for (int exp = 11; exp <= 18; ++exp) {
    const std::size_t window = std::size_t{1} << exp;
    hw::UniflowConfig cfg;
    cfg.num_cores = kCores;
    cfg.window_size = window;
    cfg.distribution = hw::NetworkKind::kScalable;
    cfg.gathering = hw::NetworkKind::kScalable;
    MeasureOptions opts;
    opts.sim_threads = bench::sim_threads();
    // Enough tuples for steady state; scans dominate at large windows.
    opts.num_tuples = exp >= 17 ? 192 : 1024;
    opts.requested_mhz = 300.0;  // paper: "300MHz clock ... as provided by
                                 // the synthesis report"
    const HwThroughput t = measure_uniflow_throughput(cfg, v7, opts);
    mtps[exp] = t.mtuples_per_sec();
    table.add_row({"2^" + std::to_string(exp), t.fits ? "yes" : "NO",
                   Table::num(t.clock_mhz, 0),
                   Table::num(1.0 / t.tuples_per_cycle(), 1),
                   Table::num(t.mtuples_per_sec(), 3),
                   Table::num(512.0 * 300.0 / static_cast<double>(window),
                              3)});
  }
  table.print();

  // The paper's peak is ~75-80 Mt/s (3.75-4 cycles/tuple). Our cores pay a
  // constant ~1.2 extra cycles/tuple for the Fig. 12 storage-done handoff,
  // which only shows at W/N=4 (5.2 cycles/tuple → ~59 Mt/s); from W=2^13
  // upward the sub-window scan dominates and the law N*F/W holds exactly.
  bench::claim(mtps[11] > 50.0 && mtps[11] < 90.0,
               "512 cores @ W=2^11 reach the tens-of-Mtuples/s peak "
               "(measured " +
                   Table::num(mtps[11], 1) +
                   ", paper ~75; see EXPERIMENTS.md on the constant "
                   "per-tuple overhead at W/N=4)");
  bench::claim(mtps[18] > 0.3 && mtps[18] < 1.0,
               "W=2^18 lands below 1 Mtuples/s (measured " +
                   Table::num(mtps[18], 3) + ")");

  // "acceleration of around two orders of magnitude when we utilize a
  // window size of 2^13 compared to the realization on Virtex-5":
  // V5 @ 16 cores/100 MHz/W=2^13 is ~0.195 Mt/s (Fig. 14a).
  const double v5_anchor = 16.0 * 100.0 / 8192.0;
  bench::claim(mtps[13] / v5_anchor > 50.0 && mtps[13] / v5_anchor < 200.0,
               "~two orders of magnitude over the V5 realization at W=2^13 "
               "(measured " +
                   Table::num(mtps[13] / v5_anchor, 0) + "x)");

  std::printf(
      "\nHW-vs-SW (paper: ~15x at W=2^18 vs 28 software join cores): "
      "hardware = %.3f Mt/s here; compare the W=2^18 row of "
      "fig14d_uniflow_sw, noting this host has %u hardware thread(s) vs "
      "the paper's 32-core Xeon, so the software absolute numbers are not "
      "comparable on this machine.\n",
      mtps[18], std::thread::hardware_concurrency());

  return bench::finish();
}
