// Cycles/probe for the hal::simd kernels, measured with the raw cycle
// counter (RDTSC on x86-64, CNTVCT_EL0 on aarch64 — cycle_counter_name()
// lands in the JSON so tables from different hosts are never silently
// mixed).
//
// Methodology (CV-gated, the discipline the qMEMO-style micro-harnesses
// use): each kernel series is measured as R repetitions of K probes over
// a pre-generated probe-key schedule; a repetition's score is
// total-cycles/K. An attempt is accepted only when the coefficient of
// variation (stddev/mean) across its repetitions is below the gate —
// otherwise the attempt is retried (up to a cap) so a background-noise
// spike cannot publish a garbage headline. The reported value is the
// accepted attempt's median repetition.
//
// Series, all over a W = 4096 resident window with a 2^24 key domain
// (low selectivity, matching the sw_batch_sweep workload):
//   scan/scalar  — probe_count over the dense lane, forced kScalar
//   scan/simd    — probe_count over the dense lane, detected best ISA
//   indexed      — IndexedSoaWindow::count_equal through the bucket index
//   hash         — hash_fib_hi16, cycles per key (router ingress)
//
// Emits BENCH_kernel.json; tools/bench_diff.py gates the headline
// cycles/probe numbers at 15% against the committed baseline.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "simd/probe.h"
#include "stream/tuple.h"
#include "sw/indexed_window.h"

namespace {

constexpr std::size_t kWindow = 4096;
constexpr std::uint32_t kKeyDomain = 1u << 24;
constexpr std::size_t kProbes = 4096;  // K probes per repetition
constexpr int kReps = 9;               // R repetitions per attempt
constexpr int kMaxAttempts = 5;
constexpr double kCvGate = 0.20;

struct Series {
  std::string name;
  double cycles = 0.0;  // median cycles/probe of the accepted attempt
  double cv = 0.0;      // coefficient of variation of that attempt
  bool cv_ok = false;   // an attempt passed the gate
};

// One attempt: R repetitions of `run` (which must consume the schedule
// and return a checksum to defeat dead-code elimination).
template <typename RunFn>
Series measure(const std::string& name, std::size_t probes_per_rep,
               RunFn&& run) {
  Series s;
  s.name = name;
  volatile std::uint64_t sink = 0;
  // Warmup: fault pages, train the branch predictor, spin the clock up.
  sink = sink + run();
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<double> reps;
    reps.reserve(kReps);
    for (int r = 0; r < kReps; ++r) {
      const std::uint64_t begin = hal::simd::cycles_now();
      sink = sink + run();
      const std::uint64_t end = hal::simd::cycles_now();
      reps.push_back(static_cast<double>(end - begin) /
                     static_cast<double>(probes_per_rep));
    }
    double mean = 0.0;
    for (const double v : reps) mean += v;
    mean /= static_cast<double>(reps.size());
    double var = 0.0;
    for (const double v : reps) var += (v - mean) * (v - mean);
    var /= static_cast<double>(reps.size());
    const double cv = mean > 0.0 ? std::sqrt(var) / mean : 1.0;
    std::sort(reps.begin(), reps.end());
    s.cycles = reps[reps.size() / 2];
    s.cv = cv;
    if (cv <= kCvGate) {
      s.cv_ok = true;
      break;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;

  bench::banner("kernel_cycles",
                "cycles/probe of the simd probe kernels (CV-gated)");

  // Resident window + probe schedule, shared by every series.
  Rng rng(bench::seed_or(20170605));
  std::vector<std::uint32_t> lane(kWindow);
  sw::IndexedSoaWindow window(kWindow, sw::ProbePath::kIndexed);
  for (std::size_t i = 0; i < kWindow; ++i) {
    stream::Tuple t;
    t.key = static_cast<std::uint32_t>(rng.next_u64() % kKeyDomain);
    t.seq = i;
    lane[i] = t.key;
    window.insert(t);
  }
  std::vector<std::uint32_t> probes(kProbes);
  for (auto& key : probes) {
    // Half resident keys, half fresh draws (usually misses).
    key = (rng.next_u64() & 1)
              ? lane[rng.next_u64() % kWindow]
              : static_cast<std::uint32_t>(rng.next_u64() % kKeyDomain);
  }

  const simd::Isa best = simd::detected_isa();
  std::vector<Series> series;

  {
    const simd::Isa got = simd::force_isa(simd::Isa::kScalar);
    (void)got;
    series.push_back(measure("scan_scalar", kProbes, [&] {
      std::uint64_t acc = 0;
      for (const std::uint32_t key : probes) {
        acc += simd::probe_count(lane.data(), kWindow, key);
      }
      return acc;
    }));
    simd::reset_isa();
  }
  {
    (void)simd::force_isa(best);
    series.push_back(measure("scan_simd", kProbes, [&] {
      std::uint64_t acc = 0;
      for (const std::uint32_t key : probes) {
        acc += simd::probe_count(lane.data(), kWindow, key);
      }
      return acc;
    }));
    series.push_back(measure("indexed", kProbes, [&] {
      std::uint64_t acc = 0;
      for (const std::uint32_t key : probes) {
        acc += window.count_equal(key);
      }
      return acc;
    }));
    std::vector<std::uint32_t> hashes(kProbes);
    series.push_back(measure("hash_fib_hi16", kProbes, [&] {
      simd::hash_fib_hi16(probes.data(), kProbes, hashes.data());
      return static_cast<std::uint64_t>(hashes[kProbes - 1]);
    }));
    simd::reset_isa();
  }

  Table table({"series", "isa", "cycles/probe", "CV", "gate"});
  for (const Series& s : series) {
    table.add_row({s.name,
                   s.name == "scan_scalar" ? "scalar" : simd::to_string(best),
                   Table::num(s.cycles, 2), Table::num(s.cv, 3),
                   s.cv_ok ? "ok" : "NOISY"});
  }
  table.print();
  std::printf("  cycle counter: %s\n", simd::cycle_counter_name());

  const Series& scan_scalar = series[0];
  const Series& scan_simd = series[1];
  const Series& indexed = series[2];
  const Series& hash = series[3];
  const double simd_vs_scalar =
      scan_simd.cycles > 0.0 ? scan_scalar.cycles / scan_simd.cycles : 0.0;
  const double indexed_vs_scan =
      indexed.cycles > 0.0 ? scan_simd.cycles / indexed.cycles : 0.0;

  const std::string json_path = bench::out_path("BENCH_kernel.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    bench::json_header(f, "kernel_cycles", bench::seed_or(20170605),
                       json_path);
    std::fprintf(f, "  \"cycle_counter\": \"%s\",\n",
                 simd::cycle_counter_name());
    std::fprintf(f, "  \"isa\": \"%s\",\n", simd::to_string(best));
    std::fprintf(f, "  \"window\": %zu,\n", kWindow);
    for (const Series& s : series) {
      std::fprintf(f,
                   "  \"%s\": {\"cycles_per_probe\": %.3f, \"cv\": %.4f, "
                   "\"cv_ok\": %s},\n",
                   s.name.c_str(), s.cycles, s.cv,
                   s.cv_ok ? "true" : "false");
    }
    std::fprintf(f, "  \"simd_vs_scalar_speedup\": %.3f,\n", simd_vs_scalar);
    std::fprintf(f, "  \"indexed_vs_scan_speedup\": %.3f\n", indexed_vs_scan);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  for (const Series& s : series) {
    bench::claim(s.cv_ok, s.name + " series met the CV gate (CV " +
                              Table::num(s.cv, 3) + " <= " +
                              Table::num(kCvGate, 2) + ")");
  }
  // Release-native measures ~14x; the bar leaves headroom so a -O2 or
  // noisy-host run does not flake (seed-dependent probe mixes land
  // 9-15x). The exact number is regression-gated at 15% by
  // tools/bench_diff.py against the committed release-native baseline.
  bench::claim(indexed_vs_scan >= 8.0,
               "indexed probe >= 8x the full-lane simd scan at window "
               "4096 (measured " +
                   Table::num(indexed_vs_scan, 1) + "x)");
  // Sanity, not a perf bar: the hash kernel is a few cycles/key. A blown
  // dispatch (e.g. scalar fallback on an AVX2 box) shows up as 10x this.
  bench::claim(hash.cycles < 50.0,
               "keyslot hash <= 50 cycles/key (measured " +
                   Table::num(hash.cycles, 1) + ")");

  return bench::finish();
}
