// google-benchmark micro-benchmarks for the library's hot primitives:
// the cycle-simulation kernel's step rate (which bounds how much hardware
// we can simulate per wall-second), the SPSC ring the software engines
// communicate over, the reference join's probe rate, and workload
// generation.
#include <benchmark/benchmark.h>

#include "common/spsc_queue.h"
#include "hw/uniflow/engine.h"
#include "stream/generator.h"
#include "stream/reference_join.h"

namespace {

using namespace hal;

void BM_SimulatorStep_Uniflow16(benchmark::State& state) {
  hw::UniflowConfig cfg;
  cfg.num_cores = 16;
  cfg.window_size = 1024;
  hw::UniflowEngine engine(cfg);
  engine.program(stream::JoinSpec::equi_on_key());
  stream::WorkloadConfig wl;
  stream::WorkloadGenerator gen(wl);
  engine.offer(gen.take(1'000'000));
  for (auto _ : state) {
    engine.step(64);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.SetLabel("simulated cycles");
}
BENCHMARK(BM_SimulatorStep_Uniflow16);

void BM_SpscQueue_PushPop(benchmark::State& state) {
  SpscQueue<std::uint64_t> q(1024);
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push(v));
    benchmark::DoNotOptimize(q.try_pop(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscQueue_PushPop);

void BM_ReferenceJoin_Probe(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  stream::ReferenceJoin join(window, stream::JoinSpec::equi_on_key());
  stream::WorkloadConfig wl;
  wl.key_domain = 1u << 20;
  stream::WorkloadGenerator gen(wl);
  std::vector<stream::ResultTuple> out;
  for (const auto& t : gen.take(2 * window)) join.process(t, out);
  for (auto _ : state) {
    out.clear();
    join.process(gen.next(), out);
  }
  state.SetItemsProcessed(state.iterations() * window);
  state.SetLabel("window probes");
}
BENCHMARK(BM_ReferenceJoin_Probe)->Arg(1 << 10)->Arg(1 << 14);

void BM_WorkloadGenerator(benchmark::State& state) {
  stream::WorkloadConfig wl;
  wl.distribution = state.range(0) == 0 ? stream::KeyDistribution::kUniform
                                        : stream::KeyDistribution::kZipf;
  wl.key_domain = 1u << 16;
  stream::WorkloadGenerator gen(wl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGenerator)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
