// Host-side scaling of the thread-parallel simulation kernel on the
// paper's open-problem fabric shapes: uni-flow distribution/gathering
// trees and OP-Chain selection pipelines at 2^10-2^14 modules.
//
// Unlike every other bench, nothing here is about the simulated design —
// the simulated results are byte-identical at every thread count (the
// two-phase determinism contract, asserted below against the serial
// oracle). What is measured is how fast the host can turn the crank:
// module-evaluations per second over a fixed cycle budget, per thread
// count, plus the partition quality (cut links) the topology-aware
// sharding achieves.
//
// Emits BENCH_simscale.json. tools/bench_diff.py gates the deterministic
// fields exactly and the serial throughput generously; the speedup claim
// is gated on hardware_concurrency >= 8 (a 1-2 core CI box cannot
// demonstrate an 8-way speedup and SKIPs instead of lying).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "hw/opchain/op_chain_engine.h"
#include "hw/uniflow/engine.h"
#include "obs/export.h"
#include "stream/generator.h"
#include "stream/join_spec.h"

namespace {

using hal::hw::OpChainConfig;
using hal::hw::OpChainEngine;
using hal::hw::UniflowConfig;
using hal::hw::UniflowEngine;

constexpr std::uint32_t kThreadSweep[] = {1, 2, 4, 8};

struct RunResult {
  std::uint64_t cycle = 0;
  std::vector<hal::stream::ResultTuple> results;
  std::string det_obs;  // deterministic obs projection (uniflow only)
  double seconds = 0.0;
  std::size_t modules = 0;
  std::uint64_t partition_links = 0;
  std::uint64_t partition_cut_links = 0;
};

struct FabricResult {
  std::string name;
  std::size_t modules = 0;
  std::uint64_t cycles = 0;
  std::map<std::uint32_t, double> seconds;   // thread count -> wall time
  bool identical = true;                     // all runs matched serial
  std::uint64_t partition_links = 0;         // at the max thread count
  std::uint64_t partition_cut_links = 0;

  [[nodiscard]] double mevals_per_sec(std::uint32_t t) const {
    const double s = seconds.at(t);
    return s > 0.0 ? static_cast<double>(modules) *
                         static_cast<double>(cycles) / s / 1e6
                   : 0.0;
  }
  [[nodiscard]] double speedup(std::uint32_t t) const {
    const double base = seconds.at(1);
    const double s = seconds.at(t);
    return s > 0.0 ? base / s : 0.0;
  }
};

std::vector<hal::stream::Tuple> make_workload(std::uint64_t seed,
                                              std::size_t n) {
  hal::stream::WorkloadConfig wl;
  wl.seed = seed;
  wl.key_domain = 1u << 16;  // enough matches to keep result paths busy
  hal::stream::WorkloadGenerator gen(wl);
  return gen.take(n);
}

// Deterministic projection of the engine's metrics: byte-identical across
// thread counts iff the simulated design behaved identically.
std::string det_projection(const UniflowEngine& engine) {
  hal::obs::MetricRegistry reg;
  engine.collect_metrics(reg, "engine.");
  hal::obs::ExportOptions det;
  det.include_runtime = false;
  return hal::obs::to_json(reg.snapshot("sim_scale"), det);
}

template <typename Engine>
void read_partition_stats(const Engine& engine, RunResult& out) {
  out.modules = engine.module_count();
  const auto* stepper = engine.simulator().stepper();
  if (stepper == nullptr) return;
  hal::obs::MetricRegistry reg;
  engine.simulator().collect_metrics(reg, "");
  const auto snap = reg.snapshot();
  if (const auto* m = snap.find("sim.partition.links")) {
    out.partition_links = m->counter_value;
  }
  if (const auto* m = snap.find("sim.partition.cut_links")) {
    out.partition_cut_links = m->counter_value;
  }
}

RunResult run_uniflow(const UniflowConfig& cfg, std::uint32_t threads,
                      std::uint64_t cycles, std::uint64_t seed) {
  UniflowConfig run_cfg = cfg;
  run_cfg.sim.threads = threads;
  UniflowEngine engine(run_cfg);
  engine.set_record_injections(false);
  engine.program(hal::stream::JoinSpec::equi_on_key());
  engine.offer(make_workload(seed, 256));

  const auto start = std::chrono::steady_clock::now();
  engine.step(cycles);
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.cycle = engine.cycle();
  out.results = engine.result_tuples();
  out.det_obs = det_projection(engine);
  out.seconds = std::chrono::duration<double>(stop - start).count();
  read_partition_stats(engine, out);
  return out;
}

RunResult run_opchain(const OpChainConfig& cfg, std::uint32_t threads,
                      std::uint64_t cycles, std::uint64_t seed) {
  OpChainConfig run_cfg = cfg;
  run_cfg.sim.threads = threads;
  OpChainEngine engine(run_cfg);
  engine.set_record_injections(false);
  engine.program_join(hal::stream::JoinSpec::equi_on_key());
  engine.offer(make_workload(seed, 256));

  const auto start = std::chrono::steady_clock::now();
  engine.step(cycles);
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.cycle = engine.cycle();
  out.results = engine.result_tuples();
  out.seconds = std::chrono::duration<double>(stop - start).count();
  read_partition_stats(engine, out);
  return out;
}

template <typename RunFn>
FabricResult sweep(const std::string& name, std::uint64_t cycles,
                   std::uint64_t seed, RunFn&& run_at) {
  FabricResult fab;
  fab.name = name;
  fab.cycles = cycles;
  RunResult oracle;
  for (const std::uint32_t t : kThreadSweep) {
    RunResult r = run_at(t, cycles, seed);
    fab.seconds[t] = r.seconds;
    if (t == 1) {
      oracle = std::move(r);
      fab.modules = oracle.modules;
      continue;
    }
    if (r.cycle != oracle.cycle || r.results != oracle.results ||
        r.det_obs != oracle.det_obs) {
      fab.identical = false;
      std::printf("  MISMATCH: %s at %u threads diverged from serial\n",
                  name.c_str(), t);
    }
    fab.partition_links = r.partition_links;
    fab.partition_cut_links = r.partition_cut_links;
  }
  return fab;
}

}  // namespace

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;

  bench::banner("sim_scale",
                "thread scaling of the two-phase simulation kernel");

  const std::uint64_t seed = bench::seed_or(20170605);
  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf("  host hardware threads: %u\n", hw_threads);

  std::vector<FabricResult> fabrics;

  // Uni-flow trees: fetch/result fifo per core + core + tree nodes, so
  // C cores land at roughly 6C modules. The sweep spans 2^10 - 2^14.
  struct UniPoint {
    std::uint32_t cores;
    std::uint32_t fanout;
    std::uint64_t cycles;
  };
  for (const auto& p : {UniPoint{128, 2, 4096}, UniPoint{512, 4, 2048},
                        UniPoint{2048, 2, 768}}) {
    UniflowConfig cfg;
    cfg.num_cores = p.cores;
    cfg.window_size = static_cast<std::size_t>(p.cores) * 4;
    cfg.fanout = p.fanout;
    const std::string name = "uniflow_" + std::to_string(p.cores) + "_f" +
                             std::to_string(p.fanout);
    fabrics.push_back(
        sweep(name, p.cycles, seed, [&](std::uint32_t t, std::uint64_t c,
                                        std::uint64_t s) {
          return run_uniflow(cfg, t, c, s);
        }));
  }

  // OP-Chain selection pipelines: a σ-core + link per stage ahead of a
  // modest join stage — the long-thin topology, worst case for
  // partition balance.
  struct OpPoint {
    std::uint32_t selects;
    std::uint64_t cycles;
  };
  for (const auto& p : {OpPoint{256, 2048}, OpPoint{1024, 1024}}) {
    OpChainConfig cfg;
    cfg.num_select_cores = p.selects;
    cfg.join.num_cores = 64;
    cfg.join.window_size = 64 * 4;
    const std::string name = "opchain_" + std::to_string(p.selects);
    fabrics.push_back(
        sweep(name, p.cycles, seed, [&](std::uint32_t t, std::uint64_t c,
                                        std::uint64_t s) {
          return run_opchain(cfg, t, c, s);
        }));
  }

  Table table({"fabric", "modules", "cycles", "serial Mevals/s", "x2", "x4",
               "x8", "cut links", "identical"});
  for (const auto& f : fabrics) {
    table.add_row(
        {f.name, Table::integer(f.modules), Table::integer(f.cycles),
         Table::num(f.mevals_per_sec(1), 2),
         Table::num(f.speedup(2), 2) + "x", Table::num(f.speedup(4), 2) + "x",
         Table::num(f.speedup(8), 2) + "x",
         Table::integer(f.partition_cut_links) + "/" +
             Table::integer(f.partition_links),
         f.identical ? "yes" : "NO"});
  }
  table.print();

  const std::string json_path = bench::out_path("BENCH_simscale.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    bench::json_header(f, "sim_scale", seed, json_path);
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw_threads);
    double best8 = 0.0;
    for (const auto& fab : fabrics) {
      if (fab.modules >= 4096 && fab.speedup(8) > best8) {
        best8 = fab.speedup(8);
      }
      std::fprintf(
          f,
          "  \"%s\": {\"modules\": %zu, \"cycles\": %llu, "
          "\"identical\": %d,\n"
          "    \"serial_mevals_per_sec\": %.3f, \"speedup_t2\": %.3f, "
          "\"speedup_t4\": %.3f, \"speedup_t8\": %.3f,\n"
          "    \"partition_links\": %llu, \"partition_cut_links\": %llu},\n",
          fab.name.c_str(), fab.modules,
          static_cast<unsigned long long>(fab.cycles), fab.identical ? 1 : 0,
          fab.mevals_per_sec(1), fab.speedup(2), fab.speedup(4),
          fab.speedup(8),
          static_cast<unsigned long long>(fab.partition_links),
          static_cast<unsigned long long>(fab.partition_cut_links));
    }
    std::fprintf(f, "  \"best_speedup_t8_large_fabric\": %.3f\n", best8);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", json_path.c_str());
  }

  // Claims. Byte-identity holds on any host; the scaling claim needs
  // enough cores to mean anything.
  for (const auto& fab : fabrics) {
    bench::claim(fab.identical,
                 fab.name + ": threaded runs byte-identical to the serial "
                            "oracle (cycles, results, deterministic obs)");
  }
  // The tree fabrics' declared links should be nearly all intact after
  // partitioning (contiguous DFS chunks cut near chunk boundaries only).
  // Small fabrics pay a fixed per-boundary toll that dwarfs their link
  // count, so the locality bar applies to the scaling targets.
  for (const auto& fab : fabrics) {
    if (fab.partition_links == 0 || fab.modules < 2048) continue;
    const double cut_ratio = static_cast<double>(fab.partition_cut_links) /
                             static_cast<double>(fab.partition_links);
    bench::claim(cut_ratio < 0.05,
                 fab.name + ": partition cuts < 5% of declared links (" +
                     Table::num(cut_ratio * 100.0, 2) + "%)");
  }
  if (hw_threads >= 8) {
    double best8 = 0.0;
    for (const auto& fab : fabrics) {
      if (fab.modules >= 4096 && fab.speedup(8) > best8) {
        best8 = fab.speedup(8);
      }
    }
    bench::claim(best8 >= 4.0,
                 "8 threads reach >= 4x self-relative speedup on a >= "
                 "4096-module fabric (best " +
                     Table::num(best8, 2) + "x)");
  } else {
    std::printf("  [SKIP] 8-thread speedup claim (host has %u hardware "
                "threads; needs >= 8)\n",
                hw_threads);
  }

  return bench::finish();
}
