// Figure 15: uni-flow hardware latency (clock cycles, and microseconds at
// the modeled clock) vs. number of join cores, for three realizations:
//   W=2^18 on the V7 with lightweight networks,
//   W=2^18 on the V7 with scalable networks ("V7s"),
//   W=2^13 on the V5 with lightweight networks.
//
// Paper observations reproduced here: latency is dominated by the
// sub-window scan (so it falls ~linearly as cores are added); lightweight
// and scalable need similar cycle counts at small N (fewer distribution
// stages vs. cheaper collection), but at large N the lightweight variant's
// O(N) round-robin collection and — more importantly — its clock-frequency
// drop make its real-time latency significantly worse.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/harness.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::core;

  bench::banner("Fig. 15",
                "uni-flow HW latency vs #join cores (cycles and µs)");

  struct Series {
    const char* name;
    const hw::FpgaDevice& device;
    std::size_t window;
    hw::NetworkKind network;
    double requested_mhz;
    std::uint32_t max_cores;
  };
  const Series series[] = {
      {"W:2^18 (V7)", hw::virtex7_xc7vx485t(), std::size_t{1} << 18,
       hw::NetworkKind::kLightweight, 1e9, 512},
      {"W:2^18 (V7s)", hw::virtex7_xc7vx485t(), std::size_t{1} << 18,
       hw::NetworkKind::kScalable, 1e9, 512},
      {"W:2^13 (V5)", hw::virtex5_xc5vlx50t(), std::size_t{1} << 13,
       hw::NetworkKind::kLightweight, 100.0, 512},
  };

  Table table({"series", "join cores", "fits", "F (MHz)", "latency (cycles)",
               "latency (µs)"});
  std::map<std::string, std::map<std::uint32_t, HwLatency>> results;

  for (const Series& s : series) {
    for (std::uint32_t cores = 2; cores <= s.max_cores; cores *= 2) {
      hw::UniflowConfig cfg;
      cfg.num_cores = cores;
      cfg.window_size = s.window;
      cfg.distribution = s.network;
      cfg.gathering = s.network;
      MeasureOptions opts;
      opts.sim_threads = bench::sim_threads();
      opts.requested_mhz = s.requested_mhz;  // V7: run at modeled F_max
      const HwLatency lat = measure_uniflow_latency(cfg, s.device, opts);
      results[s.name][cores] = lat;
      table.add_row({s.name, Table::integer(cores),
                     lat.fits ? "yes" : "NO", Table::num(lat.clock_mhz, 0),
                     Table::integer(lat.cycles_to_last_result),
                     Table::num(lat.microseconds(), 2)});
    }
  }
  table.print();

  auto& v7l = results["W:2^18 (V7)"];
  auto& v7s = results["W:2^18 (V7s)"];
  auto& v5 = results["W:2^13 (V5)"];

  // Span: ~10^5 cycles at 2 cores down to ~10^2..10^3 at 512 (Fig. 15's
  // log axis runs 10^2..10^5).
  bench::claim(v7s[2].cycles_to_last_result > 100'000 &&
                   v7s[512].cycles_to_last_result < 2'000,
               "V7s cycles span ~10^5 (2 cores) down to ~10^3 (512 cores)");

  // Latency ∝ 1/cores while the scan dominates.
  const double ratio =
      static_cast<double>(v7s[2].cycles_to_last_result) /
      static_cast<double>(v7s[32].cycles_to_last_result);
  bench::claim(ratio > 12.0 && ratio < 20.0,
               "16x cores → ~16x lower scan latency (measured " +
                   Table::num(ratio, 1) + "x)");

  // §V: "we do not observe a significant difference in the number of
  // cycles required to process a tuple in either realization" (lightweight
  // vs scalable) at moderate sizes...
  const double cyc_delta =
      std::abs(static_cast<double>(v7l[8].cycles_to_last_result) -
               static_cast<double>(v7s[8].cycles_to_last_result)) /
      static_cast<double>(v7s[8].cycles_to_last_result);
  bench::claim(cyc_delta < 0.10,
               "lightweight vs scalable cycle counts within 10% at 8 cores");

  // ...but "by taking into account the clock frequency drop in the
  // lightweight solution ... the actual difference in latency becomes
  // significant" at scale: µs latency favors scalable at 512 cores.
  bench::claim(v7l[512].microseconds() > 1.25 * v7s[512].microseconds(),
               "at 512 cores the scalable variant's µs latency beats the "
               "lightweight one (clock drop + O(N) collection)");

  // V5 realization is ~two orders of magnitude slower than V7 at matched
  // per-core scan length? (Different windows — check the µs anchor only.)
  bench::claim(v5[2].microseconds() > 30.0,
               "V5 2-core latency lands in the tens of µs (Fig. 15 right "
               "axis)");

  return bench::finish();
}
