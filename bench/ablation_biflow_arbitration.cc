// Ablation A3: decomposing the uni/bi-flow gap (Fig. 14b) into its
// mechanistic parts. The bi-flow core pays (a) an arbitration round trip
// through the Coordinator Unit per window probe, and (b) structural
// serialization of the two stream directions plus neighbor handshakes.
// Sweeping the per-probe arbitration cost shows where the gap comes from:
// with idealized 1-cycle probes the two flows do equal scan work per core
// and the throughput gap collapses to ~1x — exactly the paper's "in
// theory, both models are similar in their parallelization concept; the
// simpler architecture in uni-flow brings superior performance" (§V). The
// bi-directional flow's structural costs surface elsewhere: latency,
// design complexity, I/O count and power.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/harness.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::core;

  bench::banner("Ablation A3",
                "bi-flow coordinator cost sweep (16 JCs, W=2^10, V5 @100MHz)");

  const auto& v5 = hw::virtex5_xc5vlx50t();
  constexpr std::size_t kWindow = 1u << 10;

  // Uni-flow reference point.
  hw::UniflowConfig ucfg;
  ucfg.num_cores = 16;
  ucfg.window_size = kWindow;
  ucfg.distribution = hw::NetworkKind::kLightweight;
  ucfg.gathering = hw::NetworkKind::kLightweight;
  MeasureOptions opts;
  opts.sim_threads = bench::sim_threads();
  opts.num_tuples = 256;
  opts.requested_mhz = 100.0;
  const HwThroughput uni = measure_uniflow_throughput(ucfg, v5, opts);

  Table table({"probe cost (cycles)", "store cost", "transfer cost",
               "bi Mt/s", "uni/bi gap"});
  std::map<std::uint32_t, double> gap;

  for (const std::uint32_t probe : {1u, 2u, 4u, 8u}) {
    hw::BiflowConfig bcfg;
    bcfg.num_cores = 16;
    bcfg.window_size = kWindow;
    bcfg.costs.probe_cycles = probe;
    bcfg.costs.store_cycles = probe;  // same arbitration path
    bcfg.costs.transfer_cycles = probe == 1 ? 1 : 4;
    bcfg.costs.accept_cycles = probe == 1 ? 1 : 2;
    const HwThroughput bi = measure_biflow_throughput(bcfg, v5, opts);
    gap[probe] = uni.mtuples_per_sec() / bi.mtuples_per_sec();
    table.add_row({Table::integer(probe), Table::integer(probe),
                   Table::integer(bcfg.costs.transfer_cycles),
                   Table::num(bi.mtuples_per_sec(), 4),
                   Table::num(gap[probe], 2) + "x"});
  }
  std::printf("uni-flow reference: %.4f Mt/s\n\n", uni.mtuples_per_sec());
  table.print();

  bench::claim(gap[8] > gap[4] && gap[4] > gap[2] && gap[2] > gap[1],
               "the gap shrinks monotonically as arbitration gets cheaper");
  // §V: "Although in theory, both models are similar in their
  // parallelization concept, the simpler architecture in uni-flow brings
  // superior performance." With idealized 1-cycle window access the two
  // flows do equal work per core per tuple and the throughput gap
  // collapses to ~1x — confirming the gap is the coordinator/buffer-
  // manager machinery, while bi-flow's structural costs surface as
  // latency, complexity, I/O count and power instead.
  bench::claim(gap[1] > 0.7 && gap[1] < 1.5,
               "with 1-cycle probes the throughput gap collapses to ~1x "
               "(paper: 'in theory, both models are similar') — measured " +
                   Table::num(gap[1], 2) + "x");
  bench::claim(gap[8] >= 5.0,
               "with the calibrated 8-cycle arbitration the gap reaches "
               "the paper's order-of-magnitude band (measured " +
                   Table::num(gap[8], 2) + "x)");

  return bench::finish();
}
