// Ablation A6: ordering precision of the software handshake join.
//
// SplitJoin's title promise is "adjustable ordering precision"; the
// bi-flow baseline has the same dial in the feeder queues: small end
// queues keep the two streams' processing order close to arrival order
// (tight window semantics), large queues decouple the feeder (higher
// burst absorption) but let the R/S processing orders drift apart. We
// quantify the drift as the fraction of the eager oracle's result set the
// engine misses/adds at each queue depth.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_util.h"
#include "stream/generator.h"
#include "stream/reference_join.h"
#include "sw/handshake_join.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using stream::ResultKey;

  bench::banner("Ablation A6",
                "sw handshake join: feeder queue depth vs window-semantics "
                "drift (4 cores, W=256)");

  constexpr std::size_t kWindow = 256;
  stream::WorkloadConfig wl;
  wl.seed = 13;
  wl.key_domain = 24;
  stream::WorkloadGenerator gen(wl);
  const auto tuples = gen.take(8 * kWindow);

  stream::ReferenceJoin oracle(kWindow, stream::JoinSpec::equi_on_key());
  const auto oracle_keys = stream::normalize(oracle.process_all(tuples));
  const std::set<ResultKey> oracle_set(oracle_keys.begin(),
                                       oracle_keys.end());

  Table table({"queue depth", "results", "oracle", "missing (%)",
               "extra (%)", "symmetric diff (%)"});
  double drift_small = 0.0;
  double drift_large = 0.0;

  for (const std::size_t depth : {2u, 4u, 16u, 64u, 256u}) {
    sw::HandshakeJoinConfig cfg;
    cfg.num_cores = 4;
    cfg.window_size = kWindow;
    cfg.input_queue_capacity = depth;
    sw::HandshakeJoinEngine engine(cfg, stream::JoinSpec::equi_on_key());
    engine.process(tuples);
    const auto keys = stream::normalize(engine.results());
    const std::set<ResultKey> got(keys.begin(), keys.end());

    std::size_t missing = 0;
    for (const auto& k : oracle_set) {
      if (!got.contains(k)) ++missing;
    }
    std::size_t extra = 0;
    for (const auto& k : got) {
      if (!oracle_set.contains(k)) ++extra;
    }
    const double denom = static_cast<double>(oracle_set.size());
    const double drift = 100.0 * static_cast<double>(missing + extra) / denom;
    if (depth == 2) drift_small = drift;
    if (depth == 256) drift_large = drift;
    table.add_row({Table::integer(depth), Table::integer(got.size()),
                   Table::integer(oracle_set.size()),
                   Table::num(100.0 * static_cast<double>(missing) / denom, 2),
                   Table::num(100.0 * static_cast<double>(extra) / denom, 2),
                   Table::num(drift, 2)});
  }
  table.print();

  bench::claim(drift_small < 40.0,
               "shallow feeder queues keep the drift bounded (measured " +
                   Table::num(drift_small, 1) + "% vs eager semantics)");
  bench::claim(drift_large > drift_small,
               "deep queues trade ordering precision away (drift grows to " +
                   Table::num(drift_large, 1) + "%)");

  return bench::finish();
}
