// System-model bench: deployment-mode crossovers on the active data path
// (§II / Fig. 18). Sweeps the pushed-down filter's selectivity and finds
// where each placement wins — the "partial or best-effort computation"
// trade-off the paper describes for co-placement.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "dist/deployments.h"

int main(int argc, char** argv) {
  hal::bench::init(argc, argv);
  using namespace hal;
  using namespace hal::dist;

  bench::banner("Placement sweep",
                "sustainable input rate vs filter selectivity, per "
                "deployment mode");

  PipelineParams base;
  // A host an order of magnitude stronger than the default, so the
  // co-placement/co-processor crossover falls inside the sweep.
  base.cpu_join_tps = 2e6;
  base.cpu_filter_tps = 4e6;

  Table table({"selectivity", "cpu-only (Mt/s)", "co-placement",
               "co-processor", "standalone"});
  std::map<double, std::map<Deployment, double>> rates;

  for (const double sel : {0.5, 0.2, 0.1, 0.05, 0.01, 0.001}) {
    PipelineParams p = base;
    p.filter_selectivity = sel;
    std::vector<std::string> row{Table::num(sel, 3)};
    for (const Deployment d :
         {Deployment::kCpuOnly, Deployment::kCoPlacement,
          Deployment::kCoProcessor, Deployment::kStandalone}) {
      const double r = make_pipeline(d, p).sustainable_input_tps() / 1e6;
      rates[sel][d] = r;
      row.push_back(Table::num(r, 3));
    }
    table.add_row(row);
  }
  table.print();

  bench::claim(rates[0.5][Deployment::kCoProcessor] >
                   rates[0.5][Deployment::kCoPlacement],
               "at loose selectivity, co-processor beats co-placement "
               "(the host join still sees most of the traffic)");
  bench::claim(rates[0.001][Deployment::kCoPlacement] >=
                   rates[0.001][Deployment::kCoProcessor],
               "at tight selectivity, co-placement catches up: filtering "
               "on the path makes the weak host sufficient (crossover)");
  bool standalone_always_best = true;
  for (const auto& [sel, by_mode] : rates) {
    for (const auto& [mode, r] : by_mode) {
      if (r > by_mode.at(Deployment::kStandalone) + 1e-9) {
        standalone_always_best = false;
      }
    }
  }
  bench::claim(standalone_always_best,
               "standalone dominates throughput at every selectivity "
               "(nothing crosses the host)");
  bool cpu_flat = true;
  const double cpu_ref = rates[0.5][Deployment::kCpuOnly];
  for (const auto& [sel, by_mode] : rates) {
    if (sel <= 0.05 &&
        by_mode.at(Deployment::kCpuOnly) > 2.5 * cpu_ref) {
      cpu_flat = false;
    }
  }
  bench::claim(cpu_flat,
               "cpu-only cannot exploit selectivity (its own filter is "
               "the bottleneck)");

  return bench::finish();
}
